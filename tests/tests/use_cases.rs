//! End-to-end reproduction of every Section-3 use case of the paper
//! (UC1–UC11 in DESIGN.md): each test writes the paper's semantic patch
//! in our SMPL dialect, applies it to a realistic target file, and checks
//! the enacted transformation.

use cocci_core::Patcher;
use cocci_examples::timed;
use cocci_smpl::parse_semantic_patch;

fn apply(patch: &str, target: &str) -> String {
    let sp = parse_semantic_patch(patch).unwrap_or_else(|e| panic!("patch parse: {e}"));
    let mut p = Patcher::new(&sp).unwrap_or_else(|e| panic!("patch compile: {e}"));
    // `timed` comes from the cocci-examples library crate; routing every
    // use-case apply through it keeps the examples' public API exercised
    // from the test crate (the packaging contract of `examples/lib.rs`).
    let (out, _secs) = timed(|| p.apply("target.c", target));
    out.unwrap_or_else(|e| panic!("apply: {e}"))
        .unwrap_or_else(|| panic!("patch did not change the target:\n{target}"))
}

fn apply_no_change(patch: &str, target: &str) -> Option<String> {
    let sp = parse_semantic_patch(patch).unwrap();
    let mut p = Patcher::new(&sp).unwrap();
    p.apply("target.c", target).unwrap()
}

// ---------------------------------------------------------------- UC1

const LIKWID_PATCH: &str = r#"
@@ @@
#include <omp.h>
+ #include <likwid-marker.h>

@@ @@
#pragma omp ...
{
+ LIKWID_MARKER_START(__func__);
...
+ LIKWID_MARKER_STOP(__func__);
}
"#;

#[test]
fn uc1_likwid_instrumentation() {
    let target = r#"#include <omp.h>
#include <math.h>

void daxpy(int n, double a, double *x, double *y) {
#pragma omp parallel
{
    for (int i = 0; i < n; ++i)
        y[i] += a * x[i];
}
}
"#;
    let out = apply(LIKWID_PATCH, target);
    // Header inserted right after the omp include.
    let omp = out.find("#include <omp.h>").unwrap();
    let lik = out.find("#include <likwid-marker.h>").unwrap();
    let math = out.find("#include <math.h>").unwrap();
    assert!(omp < lik && lik < math, "{out}");
    // Markers bracket the parallel block.
    let start = out.find("LIKWID_MARKER_START(__func__);").unwrap();
    let stop = out.find("LIKWID_MARKER_STOP(__func__);").unwrap();
    let loop_pos = out.find("for (int i").unwrap();
    assert!(start < loop_pos && loop_pos < stop, "{out}");
}

#[test]
fn uc1_does_not_touch_files_without_openmp() {
    let target = "#include <stdio.h>\nvoid f(void) { puts(\"x\"); }\n";
    assert!(apply_no_change(LIKWID_PATCH, target).is_none());
}

// ---------------------------------------------------------------- UC2

const VARIANT_PATCH: &str = r#"
@@
type T;
identifier f =~ "kernel";
parameter list PL;
statement list SL;
fresh identifier f512 = "avx512_" ## f;
fresh identifier f10 = "avx10_" ## f;
@@
+ T f512 (PL) { SL }
+ T f10 (PL) { SL }
+ #pragma omp declare variant(f512) match(device={isa("core-avx512")})
+ #pragma omp declare variant(f10) match(device={isa("core-avx10")})
T f (PL) { SL }
"#;

#[test]
fn uc2_declare_variant_cloning() {
    let target = r#"double kernel_dot(const double *a, const double *b, int n) {
    double s = 0.0;
    for (int i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
}

void unrelated_helper(int n) {
    (void)n;
}
"#;
    let out = apply(VARIANT_PATCH, target);
    assert!(
        out.contains("double avx512_kernel_dot (const double *a, const double *b, int n)"),
        "{out}"
    );
    assert!(out.contains("double avx10_kernel_dot"), "{out}");
    assert!(
        out.contains(
            "#pragma omp declare variant(avx512_kernel_dot) match(device={isa(\"core-avx512\")})"
        ),
        "{out}"
    );
    assert!(
        out.contains("#pragma omp declare variant(avx10_kernel_dot)"),
        "{out}"
    );
    // Clones appear before the base function.
    let clone = out.find("avx512_kernel_dot (").unwrap();
    let base = out.find("double kernel_dot(").unwrap();
    assert!(clone < base, "{out}");
    // The helper is untouched (its name does not match the regex).
    assert!(!out.contains("avx512_unrelated_helper"), "{out}");
    // Clone bodies replicate the original statements.
    assert_eq!(out.matches("s += a[i] * b[i];").count(), 3, "{out}");
}

// ---------------------------------------------------------------- UC3

const MULTIVERSION_PATCH: &str = r#"
@@
identifier f;
type T;
@@
__attribute__((target(...,"avx512",...)))
T f(...)
{
+ avx512_specific_setup();
...
}
"#;

#[test]
fn uc3_function_multiversioning_attribute() {
    let target = r#"__attribute__((target("avx512")))
double norm(const double *x, int n) {
    double s = 0;
    for (int i = 0; i < n; ++i) s += x[i] * x[i];
    return s;
}

__attribute__((target("default")))
double norm_default(const double *x, int n) {
    return x[0] * n;
}
"#;
    let out = apply(MULTIVERSION_PATCH, target);
    // Setup call inserted at the top of the avx512 body only.
    assert_eq!(out.matches("avx512_specific_setup();").count(), 1, "{out}");
    let setup = out.find("avx512_specific_setup();").unwrap();
    let avx512_body = out.find("double s = 0;").unwrap();
    assert!(setup < avx512_body, "{out}");
    let default_fn = out.find("norm_default").unwrap();
    assert!(setup < default_fn, "{out}");
}

// ---------------------------------------------------------------- UC4

const BLOAT_PATCH: &str = r#"
@c@
type T;
function f;
parameter list PL;
@@
- __attribute__((target( \( "avx512" \| "avx2" \) )))
- T f(PL) { ... }

@d depends on c@
type c.T;
function c.f;
parameter list c.PL;
@@
- __attribute__((target("default")))
T f(PL) { ... }
"#;

#[test]
fn uc4_bloat_and_clone_removal() {
    let target = r#"__attribute__((target("avx512")))
double dot(const double *a, const double *b, int n) {
    return avx512_impl(a, b, n);
}
__attribute__((target("avx2")))
double dot(const double *a, const double *b, int n) {
    return avx2_impl(a, b, n);
}
__attribute__((target("default")))
double dot(const double *a, const double *b, int n) {
    double s = 0;
    for (int i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
}
"#;
    let out = apply(BLOAT_PATCH, target);
    assert!(!out.contains("avx512_impl"), "{out}");
    assert!(!out.contains("avx2_impl"), "{out}");
    assert!(!out.contains("__attribute__"), "{out}");
    // The default implementation's body survives.
    assert!(
        out.contains("double dot(const double *a, const double *b, int n)"),
        "{out}"
    );
    assert!(out.contains("s += a[i] * b[i];"), "{out}");
}

// ---------------------------------------------------------------- UC5

const UNROLL_P0_PATCH: &str = r#"
@p0@
type T;
identifier i,l;
constant k={4};
statement A,B,C,D;
@@
+ #pragma omp unroll partial(4)
for (T i=0; i
- +k-1
< l ;
- i+=k
+ ++i
)
{
\( A \& i+0 \) \(
- B \& i+1
\) \(
- C \& i+2
\) \(
- D \& i+3
\)
}
"#;

#[test]
fn uc5_unroll_removal_p0() {
    let target = r#"void scale(int n, double a, double *x, double *y) {
    for (int i = 0; i + 3 < n; i += 4)
    {
        y[i+0] = a * x[i+0];
        y[i+1] = a * x[i+1];
        y[i+2] = a * x[i+2];
        y[i+3] = a * x[i+3];
    }
}
"#;
    let out = apply(UNROLL_P0_PATCH, target);
    assert!(out.contains("#pragma omp unroll partial(4)"), "{out}");
    assert!(out.contains("++i"), "{out}");
    assert!(!out.contains("i += 4"), "{out}");
    assert!(out.contains("y[i+0] = a * x[i+0];"), "{out}");
    assert!(!out.contains("y[i+1]"), "{out}");
    assert!(!out.contains("y[i+2]"), "{out}");
    assert!(!out.contains("y[i+3]"), "{out}");
}

const UNROLL_P1_R1_PATCH: &str = r#"
@p1@
type T;
identifier i,l;
constant k={4};
statement A,B,C,D;
@@
for (T i=0; i+k-1 < l; i+=k)
{
\( A \& i+0 \) \( B \&
- i+1
+ i+0
\) \( C \&
- i+2
+ i+0
\) \( D \&
- i+3
+ i+0
\)
}

@r1@
type T;
identifier i,l;
constant k={4};
statement p1.A;
@@
+ #pragma omp unroll partial(4)
for (T i=0; i
- +k-1
< l ;
- i+=k
+ ++i
)
{
A
- A A A
}
"#;

#[test]
fn uc5_unroll_removal_p1_r1() {
    let target = r#"void scale(int n, double a, double *x, double *y) {
    for (int i = 0; i + 3 < n; i += 4)
    {
        y[i+0] = a * x[i+0];
        y[i+1] = a * x[i+1];
        y[i+2] = a * x[i+2];
        y[i+3] = a * x[i+3];
    }
}
"#;
    let out = apply(UNROLL_P1_R1_PATCH, target);
    assert!(out.contains("#pragma omp unroll partial(4)"), "{out}");
    assert!(out.contains("++i"), "{out}");
    assert_eq!(out.matches("y[i+0] = a * x[i+0];").count(), 1, "{out}");
    assert!(!out.contains("i+1"), "{out}");
    assert!(!out.contains("i+2"), "{out}");
    assert!(!out.contains("i+3"), "{out}");
}

#[test]
fn uc5_p1_r1_leaves_non_unrolled_loops_alone() {
    // Statements that are NOT identical modulo the index offset: p1 must
    // not fire as a complete set, so r1 cannot match either.
    let target = r#"void mix(int n, double *x, double *y) {
    for (int i = 0; i + 3 < n; i += 4)
    {
        y[i+0] = x[i+0];
        y[i+1] = 2 * x[i+1];
        q[i+2] = x[i+2];
        y[i+3] = x[i+3] + 1;
    }
}
"#;
    let sp = parse_semantic_patch(UNROLL_P1_R1_PATCH).unwrap();
    let mut p = Patcher::new(&sp).unwrap();
    let out = p.apply("t.c", target).unwrap();
    if let Some(o) = &out {
        // p1 may normalize indices, but r1 must not fire: all four
        // statements are still present.
        assert!(o.contains("2 * x[i+0]") || o.contains("2 * x[i+1]"), "{o}");
        assert_eq!(o.matches("q[").count(), 1, "{o}");
        assert!(!o.contains("#pragma omp unroll"), "{o}");
    }
}

// ---------------------------------------------------------------- UC6

const MDSPAN_PATCH: &str = r#"
#spatch --c++=23
@tomultiindex@
symbol a;
expression x,y,z;
@@
- a[x][y][z]
+ a[x, y, z]
"#;

#[test]
fn uc6_multi_index_rewrite() {
    let target = r#"void stencil(int n) {
    for (int i = 1; i + 1 < n; ++i)
        a[i][j][k] = a[i-1][j][k] + a[i+1][j][k];
    b[i][j][k] = 0;
}
"#;
    let out = apply(MDSPAN_PATCH, target);
    assert!(out.contains("a[i, j, k]"), "{out}");
    assert!(out.contains("a[i-1, j, k]"), "{out}");
    assert!(out.contains("a[i+1, j, k]"), "{out}");
    // Only the array named `a` is rewritten (symbol semantics).
    assert!(out.contains("b[i][j][k]"), "{out}");
}

// ---------------------------------------------------------------- UC7

const CUDA_HIP_PATCH: &str = r#"
@initialize:python@ @@
C2HF = { "curand_uniform_double": "rocrand_uniform_double" }
C2HT = { "__half": "rocblas_half" }

@cfe@
identifier fn;
expression list el;
position p;
@@
fn@p(el)

@script:python cf2hf@
fn << cfe.fn;
nf;
@@
coccinelle.nf = cocci.make_ident(C2HF[fn]);

@hfe@
identifier cfe.fn;
identifier cf2hf.nf;
position cfe.p;
@@
- fn@p
+ nf
(...)

@cte@
type c_t;
identifier i;
@@
c_t i;

@script:python ct2hf@
c_t << cte.c_t;
h_t;
@@
coccinelle.h_t = cocci.make_type(C2HT[c_t]);

@hte@
type ct2hf.h_t;
type cte.c_t;
identifier cte.i;
@@
- c_t i;
+ h_t i;
"#;

#[test]
fn uc7_cuda_to_hip_dictionaries() {
    let target = r#"void init_rng(double *out, int tid) {
    __half h;
    double r;
    r = curand_uniform_double(rng_state);
    out[tid] = r;
    keep_this_call(tid);
}
"#;
    let out = apply(CUDA_HIP_PATCH, target);
    assert!(out.contains("rocrand_uniform_double"), "{out}");
    assert!(!out.contains("curand_uniform_double"), "{out}");
    assert!(out.contains("rocblas_half h;"), "{out}");
    assert!(!out.contains("__half"), "{out}");
    // Functions without a dictionary entry are untouched.
    assert!(out.contains("keep_this_call(tid);"), "{out}");
}

// ---------------------------------------------------------------- UC8

const CHEVRON_PATCH: &str = r#"
#spatch --c++
@@
identifier k;
expression b,t,x,y;
expression list el;
@@
- k<<<b,t,x,y>>>(el)
+ hipLaunchKernelGGL(k,b,t,x,y,el)
"#;

#[test]
fn uc8_triple_chevron_to_hip_launch() {
    let target = r#"void launch(int n, double *xs, double *ys) {
    saxpy<<<grid, block, 0, stream>>>(n, 2.0, xs, ys);
}
"#;
    let out = apply(CHEVRON_PATCH, target);
    assert!(
        out.contains("hipLaunchKernelGGL(saxpy,grid,block,0,stream,n, 2.0, xs, ys)"),
        "{out}"
    );
    assert!(!out.contains("<<<"), "{out}");
}

// ---------------------------------------------------------------- UC9

const ACC_OMP_PATCH: &str = r#"
@moa@
pragmainfo pi;
@@
#pragma acc pi

@script:python o2o@
pi << moa.pi;
po;
@@
coccinelle.po = cocci.make_pragmainfo("target teams " + pi);

@depends on o2o@
pragmainfo moa.pi;
pragmainfo o2o.po;
@@
- #pragma acc pi
+ #pragma omp po
"#;

#[test]
fn uc9_openacc_to_openmp() {
    let target = r#"void compute(int n, double *a) {
#pragma acc parallel loop
    for (int i = 0; i < n; ++i)
        a[i] = 2.0 * a[i];
}
"#;
    let out = apply(ACC_OMP_PATCH, target);
    assert!(
        out.contains("#pragma omp target teams parallel loop"),
        "{out}"
    );
    assert!(!out.contains("#pragma acc"), "{out}");
    // The loop itself is untouched.
    assert!(out.contains("a[i] = 2.0 * a[i];"), "{out}");
}

// ---------------------------------------------------------------- UC10

const STL_FIND_PATCH: &str = r#"
#spatch --c++
@rl@
type T;
constant kc;
identifier elem,result,arrid;
@@
- bool result = false;
...
- for ( T &elem : arrid )
- if ( \( elem == kc \| kc == elem \) )
- {
- ...
- result = true;
- break;
- }
+ const bool result = (find(begin(arrid),end(arrid),kc) != end(arrid));

@ah depends on rl@
@@
#include <iostream>
+ #include <algorithm>
+ #include <functional>
"#;

#[test]
fn uc10_raw_loop_to_std_find() {
    let target = r#"#include <iostream>

int lookup(int n) {
    bool found = false;
    for ( int &v : values )
    if ( v == 42 )
    {
        log_hit(v);
        found = true;
        break;
    }
    return found ? 1 : 0;
}
"#;
    let out = apply(STL_FIND_PATCH, target);
    assert!(
        out.contains("const bool found = (find(begin(values),end(values),42) != end(values));"),
        "{out}"
    );
    assert!(!out.contains("break;"), "{out}");
    assert!(!out.contains("log_hit"), "{out}");
    assert!(out.contains("#include <algorithm>"), "{out}");
    assert!(out.contains("#include <functional>"), "{out}");
    assert!(out.contains("return found ? 1 : 0;"), "{out}");
}

// ---------------------------------------------------------------- UC11

const PRAGMA_INJECT_PATCH: &str = r#"
@pragma_inject@
identifier i =~ "rsb__BCSR_spmv_sasa_double_complex_[CH]__t[NTC]_r1_c1_uu_s[HS]_dE_uG";
type T;
@@
+ #pragma GCC push_options
+ #pragma GCC optimize "-O3", "-fno-tree-loop-vectorize"
T i(...)
{
...
}
+ #pragma GCC pop_options
"#;

#[test]
fn uc11_compiler_bug_workaround() {
    let target = r#"int rsb__BCSR_spmv_sasa_double_complex_C__tN_r1_c1_uu_sH_dE_uG(const void *a) {
    return spmv_inner(a);
}

int rsb__BCSR_spmv_other_kernel(const void *a) {
    return spmv_inner(a);
}
"#;
    let out = apply(PRAGMA_INJECT_PATCH, target);
    let push = out.find("#pragma GCC push_options").unwrap();
    let opt = out
        .find("#pragma GCC optimize \"-O3\", \"-fno-tree-loop-vectorize\"")
        .unwrap();
    let affected = out
        .find("rsb__BCSR_spmv_sasa_double_complex_C__tN")
        .unwrap();
    let pop = out.find("#pragma GCC pop_options").unwrap();
    let unaffected = out.find("rsb__BCSR_spmv_other_kernel").unwrap();
    assert!(push < opt && opt < affected && affected < pop, "{out}");
    assert!(pop < unaffected, "{out}");
    assert_eq!(out.matches("push_options").count(), 1, "{out}");
}
