//! Property tests for `cocci-lint`, driven by the in-house harness:
//!
//! * every rule the rule-matrix workload generates is lint-clean — the
//!   corpus generators must never produce rules the engine itself would
//!   warn about (they feed benchmarks and CI e2e runs);
//! * lint class SPL07 (unroutable quantified dots) fires **exactly**
//!   when `CompiledPatch::compile` refuses the patch with its
//!   "CFG-routable" error — the lint is a faithful predictor of the
//!   load-time refusal, never stricter and never laxer.

use cocci_core::CompiledPatch;
use cocci_lint::{lint_patch, LintConfig};
use cocci_smpl::parse_semantic_patch;
use cocci_tests::{pick, Runner};
use cocci_workloads::rule_matrix::{rule_matrix_rules, RuleMatrixSpec};

#[test]
fn rule_matrix_rules_are_lint_clean() {
    Runner::new("rule_matrix_rules_are_lint_clean")
        .cases(64)
        .run(|rng| {
            let spec = RuleMatrixSpec {
                rules: rng.gen_range(1..30),
                files: 1,
                functions_per_file: 1,
                overlap: rng.gen_range(1..5),
                seed: rng.next_u64(),
            };
            let cfg = LintConfig::default();
            for rule in rule_matrix_rules(&spec) {
                let patch = parse_semantic_patch(&rule.text)
                    .unwrap_or_else(|e| panic!("{}: {e}", rule.name));
                let lints = lint_patch(&patch, &rule.name, Some(&rule.text), &cfg);
                assert!(lints.is_empty(), "{}: {lints:?}", rule.name);
            }
        });
}

#[test]
fn spl07_exactly_predicts_compile_refusal() {
    Runner::new("spl07_exactly_predicts_compile_refusal")
        .cases(256)
        .run(|rng| {
            let quant = pick(rng, &["", " when exists", " when strict"]);
            // Pattern shapes around one dots line: routable (simple
            // statement anchors at the top level), and three shapes the
            // CFG lowering rejects — dots nested in a sub-block, a
            // missing second anchor, and a compound-statement anchor.
            let body = match rng.gen_range(0..4) {
                0 => format!("probe_begin(e);\n...{quant}\nprobe_end(e);\n"),
                1 => format!("probe_begin(e);\n{{\n...{quant}\n}}\n"),
                2 => format!("...{quant}\nprobe_end(e);\n"),
                _ => format!("if (e) {{ probe_begin(e); }}\n...{quant}\nprobe_end(e);\n"),
            };
            let src = format!("@@\nexpression e;\n@@\n{body}");
            let patch = parse_semantic_patch(&src).unwrap_or_else(|e| panic!("{src:?}: {e}"));

            let lints = lint_patch(&patch, "prop.cocci", Some(&src), &LintConfig::default());
            let predicted_refusal = lints.iter().any(|l| l.id == "SPL07");

            match CompiledPatch::compile(&patch) {
                Ok(_) => assert!(
                    !predicted_refusal,
                    "SPL07 fired but the patch compiles: {src:?}"
                ),
                Err(e) => {
                    let msg = e.to_string();
                    assert!(
                        msg.contains("CFG-routable"),
                        "unexpected compile error for {src:?}: {msg}"
                    );
                    assert!(
                        predicted_refusal,
                        "compile refused ({msg}) but SPL07 did not fire: {src:?}"
                    );
                }
            }
        });
}
