//! Coverage tests for pattern constructs not exercised by the paper's
//! use cases: ternary patterns, initializer lists, kernel-launch dots,
//! expression disjunction with rewrites, switch/case matching, labels,
//! C++ range-for patterns, and statement dots over control flow
//! (all-paths CFG semantics vs the legacy tree-sequence reading).

use cocci_core::Patcher;
use cocci_smpl::parse_semantic_patch;

fn apply(patch: &str, target: &str) -> Option<String> {
    let sp = parse_semantic_patch(patch).unwrap_or_else(|e| panic!("patch parse: {e}"));
    let mut p = Patcher::new(&sp).unwrap_or_else(|e| panic!("compile: {e}"));
    p.apply("t.c", target)
        .unwrap_or_else(|e| panic!("apply: {e}"))
}

/// Like [`apply`], but with CFG flow routing forced on or off — the
/// tree/flow disagreement tests below use both sides.
fn apply_flow(patch: &str, target: &str, flow: bool) -> Option<String> {
    let sp = parse_semantic_patch(patch).unwrap_or_else(|e| panic!("patch parse: {e}"));
    let mut p = Patcher::new(&sp).unwrap_or_else(|e| panic!("compile: {e}"));
    p.flow_enabled = flow;
    p.apply("t.c", target)
        .unwrap_or_else(|e| panic!("apply: {e}"))
}

const PROBE_PATCH: &str = r#"
@@
expression b;
@@
- probe_begin(b);
+ probe_enter(b);
...
probe_end(b);
"#;

#[test]
fn dots_match_across_if_else_join() {
    // probe_end sits in *both* arms of the branch: every path reaches
    // it, so the CFG engine matches — the tree matcher cannot see a
    // sequence [probe_begin; ...; probe_end] in any single block and
    // wrongly refuses.
    let src = "void f(int x, double *q) {\n    probe_begin(q);\n    if (x) {\n        work(q);\n        probe_end(q);\n    } else {\n        probe_end(q);\n    }\n    done();\n}\n";
    let out = apply(PROBE_PATCH, src).expect("all paths reach probe_end");
    assert!(out.contains("probe_enter(q);"), "{out}");
    assert!(
        apply_flow(PROBE_PATCH, src, false).is_none(),
        "tree matcher misses the cross-branch pair"
    );
}

#[test]
fn dots_refuse_early_return_where_tree_overmatches() {
    // The acceptance disagreement case: a path escapes through `return`
    // without reaching probe_end. The tree matcher absorbs the whole
    // `if (x) return;` into the dots and matches anyway — the CFG
    // engine's refusal is the correct (all-paths) answer and is what
    // the default configuration produces.
    let src = "void f(int x, double *q) {\n    probe_begin(q);\n    if (x)\n        return;\n    probe_end(q);\n}\n";
    assert!(
        apply(PROBE_PATCH, src).is_none(),
        "default (CFG) semantics must refuse the escaping path"
    );
    assert!(
        apply_flow(PROBE_PATCH, src, false).is_some(),
        "tree semantics over-matches, demonstrating the disagreement"
    );
}

#[test]
fn dots_across_loop_reach_join_after_exit() {
    // All paths leave the loop eventually (loop cut-points) and reach
    // probe_end after it.
    let src = "void f(int n, double *q) {\n    probe_begin(q);\n    while (n > 0) {\n        step(q);\n        n = n - 1;\n    }\n    probe_end(q);\n}\n";
    let out = apply(PROBE_PATCH, src).unwrap();
    assert!(out.contains("probe_enter(q);"), "{out}");
    // But a probe_end only *inside* the loop body does not hold on the
    // zero-iteration path.
    let src2 = "void f(int n, double *q) {\n    probe_begin(q);\n    while (n > 0) {\n        probe_end(q);\n        n = n - 1;\n    }\n}\n";
    assert!(apply(PROBE_PATCH, src2).is_none());
}

#[test]
fn dots_refuse_break_escape_inside_loop() {
    // Inside the loop body, the `break` path leaves the loop and exits
    // the function without passing probe_end.
    let src = "void f(int n, double *q) {\n    while (n > 0) {\n        probe_begin(q);\n        if (n == 2)\n            break;\n        probe_end(q);\n        n = n - 1;\n    }\n}\n";
    assert!(apply(PROBE_PATCH, src).is_none(), "break path escapes");
    let src_ok = "void f(int n, double *q) {\n    while (n > 0) {\n        probe_begin(q);\n        probe_end(q);\n        n = n - 1;\n    }\n}\n";
    assert!(apply(PROBE_PATCH, src_ok).is_some());
}

#[test]
fn dots_when_not_holds_on_every_path() {
    let patch = r#"
@@
expression b;
@@
- probe_begin(b);
+ probe_enter(b);
... when != reset(b)
probe_end(b);
"#;
    // Clean on the straight line…
    let ok = "void f(double *q) {\n    probe_begin(q);\n    mid(q);\n    probe_end(q);\n}\n";
    assert!(apply(patch, ok).is_some());
    // …but a reset on *one* branch poisons that path.
    let bad = "void f(int x, double *q) {\n    probe_begin(q);\n    if (x) {\n        reset(q);\n    }\n    probe_end(q);\n}\n";
    assert!(apply(patch, bad).is_none());
}

#[test]
fn dots_join_requires_consistent_bindings() {
    // Metavariable environments are reconciled at the join: the two
    // paths bind `b` to different expressions, so no single match
    // survives.
    let src = "void f(int x) {\n    probe_begin(p);\n    if (x) {\n        probe_end(p);\n    } else {\n        probe_end(r);\n    }\n}\n";
    assert!(apply(PROBE_PATCH, src).is_none());
}

#[test]
fn ternary_pattern() {
    let patch = r#"
@@
expression a, b;
@@
- a > b ? a : b
+ max(a, b)
"#;
    let out = apply(patch, "void f(void) { m = x > y ? x : y; }\n").unwrap();
    assert!(out.contains("m = max(x, y);"), "{out}");
    // Non-max ternaries untouched.
    assert!(apply(patch, "void f(void) { m = x > y ? y : x; }\n").is_none());
}

#[test]
fn initializer_list_pattern() {
    let patch = r#"
@@
expression a, b;
@@
- dim3 grid = {a, b};
+ dim3 grid = make_dim3(a, b);
"#;
    let out = apply(patch, "void f(void) { dim3 grid = {nx, ny}; use(grid); }\n").unwrap();
    assert!(out.contains("dim3 grid = make_dim3(nx, ny);"), "{out}");
}

#[test]
fn kernel_launch_with_dots_config() {
    // `k<<<...>>>(...)`: any launch configuration, any arguments.
    let patch = r#"
#spatch --c++
@@
identifier k =~ "^legacy_";
@@
- k<<<...>>>(...);
+ launch_shim();
"#;
    let src =
        "void f(void) {\n    legacy_sum<<<g, b>>>(n, x);\n    modern_sum<<<g, b>>>(n, x);\n}\n";
    let out = apply(patch, src).unwrap();
    assert!(out.contains("launch_shim();"), "{out}");
    assert!(out.contains("modern_sum<<<g, b>>>(n, x);"), "{out}");
}

#[test]
fn expression_disjunction_with_rewrite() {
    let patch = r#"
@@
expression x;
@@
- report( \( x == 0 \| 0 == x \) );
+ report_zero(x);
"#;
    let out = apply(
        patch,
        "void f(void) { report(n == 0); report(0 == m); report(k == 1); }\n",
    )
    .unwrap();
    assert!(out.contains("report_zero(n);"), "{out}");
    assert!(out.contains("report_zero(m);"), "{out}");
    assert!(out.contains("report(k == 1);"), "{out}");
}

#[test]
fn switch_case_value_pattern() {
    let patch = r#"
@@
expression s;
@@
switch (s) {
case 0:
- legacy_zero();
+ fast_zero();
break;
...
}
"#;
    let src = "void f(int mode) {\n    switch (mode) {\n    case 0:\n        legacy_zero();\n        break;\n    default:\n        other();\n    }\n}\n";
    let out = apply(patch, src).unwrap();
    assert!(out.contains("fast_zero();"), "{out}");
    assert!(out.contains("other();"), "{out}");
}

#[test]
fn label_and_goto_pattern() {
    let patch = r#"
@@
identifier lbl;
@@
- goto lbl;
+ return cleanup();
"#;
    let out = apply(
        patch,
        "int f(int n) { if (n) goto out; work(); out: return done(); }\n",
    )
    .unwrap();
    assert!(out.contains("return cleanup();"), "{out}");
}

#[test]
fn range_for_body_rewrite() {
    let patch = r#"
#spatch --c++
@@
type T;
identifier v;
expression c;
@@
for (T &v : c) {
- v = v * v;
+ v = square(v);
}
"#;
    let src = "void f(void) {\n    for (double &x : values) {\n        x = x * x;\n    }\n}\n";
    let out = apply(patch, src).unwrap();
    assert!(out.contains("x = square(x);"), "{out}");
}

#[test]
fn postfix_and_prefix_incdec() {
    let patch = r#"
@@
identifier i;
@@
- i++;
+ advance(&i);
"#;
    let out = apply(patch, "void f(void) { n++; ++m; }\n").unwrap();
    assert!(out.contains("advance(&n);"), "{out}");
    assert!(out.contains("++m;"), "{out}");
}

#[test]
fn nested_member_chain() {
    let patch = r#"
@@
expression p;
@@
- p->hdr.magic
+ header_magic(p)
"#;
    let out = apply(
        patch,
        "int ok(struct pkt *q) { return q->hdr.magic == 0xCAFE; }\n",
    )
    .unwrap();
    assert!(out.contains("header_magic(q) == 0xCAFE"), "{out}");
}

#[test]
fn comma_operator_expression() {
    let patch = r#"
@@
expression a, b;
@@
- swap_prep(a), swap_commit(b);
+ swap(a, b);
"#;
    let out = apply(patch, "void f(void) { swap_prep(x), swap_commit(y); }\n").unwrap();
    assert!(out.contains("swap(x, y);"), "{out}");
}

#[test]
fn hex_and_suffix_literals_compare_by_value() {
    let patch = r#"
@@
expression e;
@@
- mask(e, 255)
+ mask_byte(e)
"#;
    // 0xff written differently in source still matches (value equality).
    let out = apply(patch, "void f(void) { y = mask(x, 0xFF); }\n").unwrap();
    assert!(out.contains("mask_byte(x)"), "{out}");
    let out2 = apply(patch, "void f(void) { y = mask(x, 255u); }\n").unwrap();
    assert!(out2.contains("mask_byte(x)"), "{out2}");
}

#[test]
fn multiple_rules_compose_on_one_function() {
    // Three rules touching the same function: include, body, call.
    let patch = r#"
@inc@
@@
#include <omp.h>
+ #include <profiler.h>

@body depends on inc@
identifier f;
statement list SL;
@@
void f(void)
{
+ prof_enter();
SL
}

@call depends on body@
@@
- finish();
+ prof_exit(); finish();
"#;
    let src = "#include <omp.h>\n\nvoid stage(void)\n{\n    work();\n    finish();\n}\n";
    let out = apply(patch, src).unwrap();
    assert!(out.contains("#include <profiler.h>"), "{out}");
    assert!(out.contains("prof_enter();"), "{out}");
    assert!(out.contains("prof_exit(); finish();"), "{out}");
}
