//! Coverage tests for pattern constructs not exercised by the paper's
//! use cases: ternary patterns, initializer lists, kernel-launch dots,
//! expression disjunction with rewrites, switch/case matching, labels,
//! C++ range-for patterns, and statement dots over control flow
//! (all-paths CFG semantics vs the legacy tree-sequence reading).

use cocci_core::Patcher;
use cocci_smpl::parse_semantic_patch;

fn apply(patch: &str, target: &str) -> Option<String> {
    let sp = parse_semantic_patch(patch).unwrap_or_else(|e| panic!("patch parse: {e}"));
    let mut p = Patcher::new(&sp).unwrap_or_else(|e| panic!("compile: {e}"));
    p.apply("t.c", target)
        .unwrap_or_else(|e| panic!("apply: {e}"))
}

/// Like [`apply`], but with CFG flow routing forced on or off — the
/// tree/flow disagreement tests below use both sides.
fn apply_flow(patch: &str, target: &str, flow: bool) -> Option<String> {
    let sp = parse_semantic_patch(patch).unwrap_or_else(|e| panic!("patch parse: {e}"));
    let mut p = Patcher::new(&sp).unwrap_or_else(|e| panic!("compile: {e}"));
    p.flow_enabled = flow;
    p.apply("t.c", target)
        .unwrap_or_else(|e| panic!("apply: {e}"))
}

const PROBE_PATCH: &str = r#"
@@
expression b;
@@
- probe_begin(b);
+ probe_enter(b);
...
probe_end(b);
"#;

#[test]
fn dots_match_across_if_else_join() {
    // probe_end sits in *both* arms of the branch: every path reaches
    // it, so the CFG engine matches — the tree matcher cannot see a
    // sequence [probe_begin; ...; probe_end] in any single block and
    // wrongly refuses.
    let src = "void f(int x, double *q) {\n    probe_begin(q);\n    if (x) {\n        work(q);\n        probe_end(q);\n    } else {\n        probe_end(q);\n    }\n    done();\n}\n";
    let out = apply(PROBE_PATCH, src).expect("all paths reach probe_end");
    assert!(out.contains("probe_enter(q);"), "{out}");
    assert!(
        apply_flow(PROBE_PATCH, src, false).is_none(),
        "tree matcher misses the cross-branch pair"
    );
}

#[test]
fn dots_refuse_early_return_where_tree_overmatches() {
    // The acceptance disagreement case: a path escapes through `return`
    // without reaching probe_end. The tree matcher absorbs the whole
    // `if (x) return;` into the dots and matches anyway — the CFG
    // engine's refusal is the correct (all-paths) answer and is what
    // the default configuration produces.
    let src = "void f(int x, double *q) {\n    probe_begin(q);\n    if (x)\n        return;\n    probe_end(q);\n}\n";
    assert!(
        apply(PROBE_PATCH, src).is_none(),
        "default (CFG) semantics must refuse the escaping path"
    );
    assert!(
        apply_flow(PROBE_PATCH, src, false).is_some(),
        "tree semantics over-matches, demonstrating the disagreement"
    );
}

#[test]
fn dots_across_loop_reach_join_after_exit() {
    // All paths leave the loop eventually (loop cut-points) and reach
    // probe_end after it.
    let src = "void f(int n, double *q) {\n    probe_begin(q);\n    while (n > 0) {\n        step(q);\n        n = n - 1;\n    }\n    probe_end(q);\n}\n";
    let out = apply(PROBE_PATCH, src).unwrap();
    assert!(out.contains("probe_enter(q);"), "{out}");
    // But a probe_end only *inside* the loop body does not hold on the
    // zero-iteration path.
    let src2 = "void f(int n, double *q) {\n    probe_begin(q);\n    while (n > 0) {\n        probe_end(q);\n        n = n - 1;\n    }\n}\n";
    assert!(apply(PROBE_PATCH, src2).is_none());
}

#[test]
fn dots_refuse_break_escape_inside_loop() {
    // Inside the loop body, the `break` path leaves the loop and exits
    // the function without passing probe_end.
    let src = "void f(int n, double *q) {\n    while (n > 0) {\n        probe_begin(q);\n        if (n == 2)\n            break;\n        probe_end(q);\n        n = n - 1;\n    }\n}\n";
    assert!(apply(PROBE_PATCH, src).is_none(), "break path escapes");
    let src_ok = "void f(int n, double *q) {\n    while (n > 0) {\n        probe_begin(q);\n        probe_end(q);\n        n = n - 1;\n    }\n}\n";
    assert!(apply(PROBE_PATCH, src_ok).is_some());
}

#[test]
fn dots_when_not_holds_on_every_path() {
    let patch = r#"
@@
expression b;
@@
- probe_begin(b);
+ probe_enter(b);
... when != reset(b)
probe_end(b);
"#;
    // Clean on the straight line…
    let ok = "void f(double *q) {\n    probe_begin(q);\n    mid(q);\n    probe_end(q);\n}\n";
    assert!(apply(patch, ok).is_some());
    // …but a reset on *one* branch poisons that path.
    let bad = "void f(int x, double *q) {\n    probe_begin(q);\n    if (x) {\n        reset(q);\n    }\n    probe_end(q);\n}\n";
    assert!(apply(patch, bad).is_none());
}

#[test]
fn dots_join_requires_consistent_bindings_when_pre_bound() {
    // `b` is pinned at probe_begin(p), so the else arm's probe_end(r)
    // is not a hit at all: that path escapes and the match refuses.
    // (Witness forking only applies to metavariables still *unbound*
    // when the paths diverge — see the forked-witness test below.)
    let src = "void f(int x) {\n    probe_begin(p);\n    if (x) {\n        probe_end(p);\n    } else {\n        probe_end(r);\n    }\n}\n";
    assert!(apply(PROBE_PATCH, src).is_none());
}

#[test]
fn forked_witnesses_rewrite_both_arms() {
    // The acceptance case: `e` binds differently in the two arms, so
    // the engine forks one witness per path and each witness rewrites
    // its own arm — the pre-fork engine rewrote neither.
    let patch = r#"
@@
expression e;
@@
begin();
...
- commit(e);
+ commit_logged(e);
"#;
    let src = "void f(int x) {\n    begin();\n    if (x) {\n        commit(a);\n    } else {\n        commit(b);\n    }\n    done();\n}\n";
    let out = apply(patch, src).expect("forked witnesses rewrite both arms");
    assert!(out.contains("commit_logged(a);"), "{out}");
    assert!(out.contains("commit_logged(b);"), "{out}");
    assert!(!out.contains("commit(a);"), "{out}");
    assert!(!out.contains("commit(b);"), "{out}");
    // The tree reading sees no [begin; ...; commit] sequence in any
    // single block and misses both.
    assert!(apply_flow(patch, src, false).is_none());
}

#[test]
fn when_exists_matches_where_all_paths_reading_refuses() {
    // The acceptance case for `when exists`: the early return escapes
    // the default (forall) gap, but some path does reach probe_end —
    // the existential reading accepts exactly that.
    let exists_patch = r#"
@@
expression b;
@@
- probe_begin(b);
+ probe_enter(b);
... when exists
probe_end(b);
"#;
    let src = "void f(int x, double *q) {\n    probe_begin(q);\n    if (x)\n        return;\n    probe_end(q);\n}\n";
    assert!(
        apply(PROBE_PATCH, src).is_none(),
        "default all-paths reading refuses the escaping path"
    );
    let out = apply(exists_patch, src).expect("when exists matches the surviving path");
    assert!(out.contains("probe_enter(q);"), "{out}");
}

#[test]
fn contradictory_forked_rewrites_refuse_cleanly() {
    // `e` forks at the gap but is substituted into the *shared* anchor's
    // replacement: the two witnesses demand different text for the same
    // span. That is a genuinely contradictory rewrite — the whole group
    // is rejected (no edits, no error), matching the pre-fork engine's
    // clean refusal rather than failing the file.
    let patch = r#"
@@
expression e;
@@
- a();
+ a2(e);
...
b(e);
"#;
    let src = "void f(int x) {\n    a();\n    if (x) {\n        b(1);\n    } else {\n        b(2);\n    }\n}\n";
    assert!(
        apply(patch, src).is_none(),
        "contradictory witnesses must not rewrite (and must not error)"
    );
    // With agreeing bindings the shared-anchor rewrite applies once.
    let agree = "void f(int x) {\n    a();\n    if (x) {\n        b(7);\n    } else {\n        b(7);\n    }\n}\n";
    let out = apply(patch, agree).expect("consistent bindings rewrite");
    assert!(out.contains("a2(7);"), "{out}");
}

#[test]
fn contradictory_forked_insertions_refuse_cleanly() {
    // The forked metavariable lands in an *insertion* at the shared
    // anchor point rather than a replacement: log(1) vs log(2) at one
    // site is just as contradictory, and must refuse (not insert both).
    let patch = r#"
@@
expression e;
@@
a();
+ log(e);
...
b(e);
"#;
    let src = "void f(int x) {\n    a();\n    if (x) {\n        b(1);\n    } else {\n        b(2);\n    }\n}\n";
    assert!(
        apply(patch, src).is_none(),
        "contradictory insertions at the shared anchor must refuse"
    );
}

#[test]
fn plus_group_between_anchor_and_dots_inserts_after_the_anchor() {
    // The CFG route's dots span begins right after the anchor's
    // semicolon (mid-line); the insertion must still land *after* the
    // anchor statement, like the tree route places it.
    let patch = r#"
@@
expression e;
@@
a();
+ log(e);
...
b(e);
"#;
    let src = "void f(void) {\n    a();\n    mid();\n    b(5);\n}\n";
    let out = apply(patch, src).expect("straight-line insert");
    let a_pos = out.find("a();").expect("anchor kept");
    let log_pos = out.find("log(5);").expect("inserted");
    let mid_pos = out.find("mid();").expect("mid kept");
    assert!(
        a_pos < log_pos && log_pos < mid_pos,
        "insertion must sit between the anchor and the skipped code: {out}"
    );
}

#[test]
fn independent_exists_witnesses_survive_a_contradicting_sibling() {
    // Pure-exists patterns fork one *independent* witness per surviving
    // path (EF: one path suffices). A sibling whose shared-anchor
    // rewrite contradicts an earlier-accepted one drops alone; the
    // attempt still rewrites via the first path — unlike the forall
    // reading, where the group is rejected as a whole.
    let patch = r#"
@@
expression e;
@@
- a();
+ a2(e);
... when exists
b(e);
"#;
    let src = "void f(int x) {\n    a();\n    if (x) {\n        b(1);\n    } else {\n        b(2);\n    }\n}\n";
    let out = apply(patch, src).expect("one exists path suffices");
    assert!(
        out.contains("a2(1);"),
        "first-in-source witness wins: {out}"
    );
}

#[test]
fn rejected_witness_group_does_not_claim_territory() {
    // The outer a() attempt forks contradictorily (a2(1) vs a2(2) at
    // the shared anchor) and is rejected — *before* claiming, so the
    // clean inner attempt (e binds only 3) must still rewrite.
    let patch = r#"
@@
expression e;
@@
- a();
+ a2(e);
...
b(e);
"#;
    let src = "void f(int x) {\n    a();\n    if (x) {\n        b(1);\n        a();\n        b(3);\n    } else {\n        b(2);\n    }\n}\n";
    let out = apply(patch, src).expect("inner attempt survives");
    assert!(out.contains("a2(3);"), "{out}");
    assert!(out.contains("a();"), "outer anchor stays: {out}");
    assert!(out.contains("b(1);") && out.contains("b(2);"), "{out}");
}

#[test]
fn rejected_witness_group_does_not_count_as_matched() {
    // The contradictory-fork refusal must be a *full* refusal: the rule
    // is not recorded as matched, so `depends on` rules downstream do
    // not fire (the pre-fork engine refused the match outright).
    let patch = r#"
@r1@
expression e;
@@
- a();
+ a2(e);
...
b(e);

@r2 depends on r1@
@@
- done();
+ done2();
"#;
    let src =
        "void f(int x) {\n    a();\n    if (x) {\n        b(1);\n    } else {\n        b(2);\n    }\n    done();\n}\n";
    assert!(
        apply(patch, src).is_none(),
        "r1's refusal must not satisfy r2's dependency"
    );
}

#[test]
fn claim_blocked_witness_groups_drop_atomically() {
    // Two seeds of an inheriting rule overlap: the x=q seed claims the
    // else arm first, blocking the x=p attempt's e=2 sibling. The x=p
    // attempt must then drop *atomically* — rewriting only its e=1 arm
    // would leave the attempt's all-paths obligation half-applied.
    let patch = r#"
@r1@
identifier x;
@@
init(x);

@r2@
identifier r1.x;
expression e;
@@
a(x);
...
- b(e);
+ b2(x, e);
"#;
    let src = "void g(void) {\n    init(q);\n    init(p);\n}\nvoid f(int c, int p, int q) {\n    a(p);\n    if (c) {\n        b(1);\n    } else {\n        a(q);\n        b(2);\n    }\n}\n";
    let out = apply(patch, src).expect("the x=q seed rewrites its arm");
    assert!(out.contains("b2(q, 2);"), "{out}");
    assert!(
        out.contains("b(1);"),
        "x=p attempt must drop atomically, leaving b(1) untouched: {out}"
    );
}

#[test]
fn no_flow_refuses_quantified_rules_loudly() {
    // `--no-flow` forces the tree reading, which has no path
    // quantifiers; silently running `when strict` there would
    // over-match (rewrite across an escaping path). It is a per-file
    // error instead.
    let patch = r#"
@@
expression b;
@@
- probe_begin(b);
+ probe_enter(b);
... when strict
probe_end(b);
"#;
    let sp = parse_semantic_patch(patch).unwrap();
    let mut p = Patcher::new(&sp).unwrap();
    p.flow_enabled = false;
    let src = "void f(int x, double *q) {\n    probe_begin(q);\n    if (x)\n        return;\n    probe_end(q);\n}\n";
    let err = p.apply("t.c", src).unwrap_err();
    assert!(err.message.contains("when exists"), "{}", err.message);
    assert!(err.message.contains("no-flow"), "{}", err.message);
}

#[test]
fn when_strict_is_the_explicit_all_paths_spelling() {
    let strict_patch = r#"
@@
expression b;
@@
- probe_begin(b);
+ probe_enter(b);
... when strict
probe_end(b);
"#;
    let escape = "void f(int x, double *q) {\n    probe_begin(q);\n    if (x)\n        return;\n    probe_end(q);\n}\n";
    assert!(
        apply(strict_patch, escape).is_none(),
        "strict refuses escapes"
    );
    let clean = "void f(double *q) {\n    probe_begin(q);\n    mid(q);\n    probe_end(q);\n}\n";
    let out = apply(strict_patch, clean).expect("strict matches the clean gap");
    assert!(out.contains("probe_enter(q);"), "{out}");
}

#[test]
fn loop_back_edge_rewrite_keeps_forward_region() {
    // do-while: the body's flush() is reached through the loop back
    // edge and *precedes* the anchor in the source; the post-loop
    // flush() is the forward hit. The dots span must not collapse, and
    // the anchor rewrite must land.
    let patch = r#"
@@
@@
- stage();
+ stage2();
...
flush();
"#;
    let src = "void f(int n) {\n    do {\n        flush();\n        stage();\n    } while (n);\n    flush();\n}\n";
    let out = apply(patch, src).expect("loop back-edge match");
    assert!(out.contains("stage2();"), "{out}");
    assert!(!out.contains("stage();"), "{out}");
}

#[test]
fn ternary_pattern() {
    let patch = r#"
@@
expression a, b;
@@
- a > b ? a : b
+ max(a, b)
"#;
    let out = apply(patch, "void f(void) { m = x > y ? x : y; }\n").unwrap();
    assert!(out.contains("m = max(x, y);"), "{out}");
    // Non-max ternaries untouched.
    assert!(apply(patch, "void f(void) { m = x > y ? y : x; }\n").is_none());
}

#[test]
fn initializer_list_pattern() {
    let patch = r#"
@@
expression a, b;
@@
- dim3 grid = {a, b};
+ dim3 grid = make_dim3(a, b);
"#;
    let out = apply(patch, "void f(void) { dim3 grid = {nx, ny}; use(grid); }\n").unwrap();
    assert!(out.contains("dim3 grid = make_dim3(nx, ny);"), "{out}");
}

#[test]
fn kernel_launch_with_dots_config() {
    // `k<<<...>>>(...)`: any launch configuration, any arguments.
    let patch = r#"
#spatch --c++
@@
identifier k =~ "^legacy_";
@@
- k<<<...>>>(...);
+ launch_shim();
"#;
    let src =
        "void f(void) {\n    legacy_sum<<<g, b>>>(n, x);\n    modern_sum<<<g, b>>>(n, x);\n}\n";
    let out = apply(patch, src).unwrap();
    assert!(out.contains("launch_shim();"), "{out}");
    assert!(out.contains("modern_sum<<<g, b>>>(n, x);"), "{out}");
}

#[test]
fn expression_disjunction_with_rewrite() {
    let patch = r#"
@@
expression x;
@@
- report( \( x == 0 \| 0 == x \) );
+ report_zero(x);
"#;
    let out = apply(
        patch,
        "void f(void) { report(n == 0); report(0 == m); report(k == 1); }\n",
    )
    .unwrap();
    assert!(out.contains("report_zero(n);"), "{out}");
    assert!(out.contains("report_zero(m);"), "{out}");
    assert!(out.contains("report(k == 1);"), "{out}");
}

#[test]
fn switch_case_value_pattern() {
    let patch = r#"
@@
expression s;
@@
switch (s) {
case 0:
- legacy_zero();
+ fast_zero();
break;
...
}
"#;
    let src = "void f(int mode) {\n    switch (mode) {\n    case 0:\n        legacy_zero();\n        break;\n    default:\n        other();\n    }\n}\n";
    let out = apply(patch, src).unwrap();
    assert!(out.contains("fast_zero();"), "{out}");
    assert!(out.contains("other();"), "{out}");
}

#[test]
fn label_and_goto_pattern() {
    let patch = r#"
@@
identifier lbl;
@@
- goto lbl;
+ return cleanup();
"#;
    let out = apply(
        patch,
        "int f(int n) { if (n) goto out; work(); out: return done(); }\n",
    )
    .unwrap();
    assert!(out.contains("return cleanup();"), "{out}");
}

#[test]
fn range_for_body_rewrite() {
    let patch = r#"
#spatch --c++
@@
type T;
identifier v;
expression c;
@@
for (T &v : c) {
- v = v * v;
+ v = square(v);
}
"#;
    let src = "void f(void) {\n    for (double &x : values) {\n        x = x * x;\n    }\n}\n";
    let out = apply(patch, src).unwrap();
    assert!(out.contains("x = square(x);"), "{out}");
}

#[test]
fn postfix_and_prefix_incdec() {
    let patch = r#"
@@
identifier i;
@@
- i++;
+ advance(&i);
"#;
    let out = apply(patch, "void f(void) { n++; ++m; }\n").unwrap();
    assert!(out.contains("advance(&n);"), "{out}");
    assert!(out.contains("++m;"), "{out}");
}

#[test]
fn nested_member_chain() {
    let patch = r#"
@@
expression p;
@@
- p->hdr.magic
+ header_magic(p)
"#;
    let out = apply(
        patch,
        "int ok(struct pkt *q) { return q->hdr.magic == 0xCAFE; }\n",
    )
    .unwrap();
    assert!(out.contains("header_magic(q) == 0xCAFE"), "{out}");
}

#[test]
fn comma_operator_expression() {
    let patch = r#"
@@
expression a, b;
@@
- swap_prep(a), swap_commit(b);
+ swap(a, b);
"#;
    let out = apply(patch, "void f(void) { swap_prep(x), swap_commit(y); }\n").unwrap();
    assert!(out.contains("swap(x, y);"), "{out}");
}

#[test]
fn hex_and_suffix_literals_compare_by_value() {
    let patch = r#"
@@
expression e;
@@
- mask(e, 255)
+ mask_byte(e)
"#;
    // 0xff written differently in source still matches (value equality).
    let out = apply(patch, "void f(void) { y = mask(x, 0xFF); }\n").unwrap();
    assert!(out.contains("mask_byte(x)"), "{out}");
    let out2 = apply(patch, "void f(void) { y = mask(x, 255u); }\n").unwrap();
    assert!(out2.contains("mask_byte(x)"), "{out2}");
}

#[test]
fn multiple_rules_compose_on_one_function() {
    // Three rules touching the same function: include, body, call.
    let patch = r#"
@inc@
@@
#include <omp.h>
+ #include <profiler.h>

@body depends on inc@
identifier f;
statement list SL;
@@
void f(void)
{
+ prof_enter();
SL
}

@call depends on body@
@@
- finish();
+ prof_exit(); finish();
"#;
    let src = "#include <omp.h>\n\nvoid stage(void)\n{\n    work();\n    finish();\n}\n";
    let out = apply(patch, src).unwrap();
    assert!(out.contains("#include <profiler.h>"), "{out}");
    assert!(out.contains("prof_enter();"), "{out}");
    assert!(out.contains("prof_exit(); finish();"), "{out}");
}

// ---- position metavariables and the findings route ----

/// Apply a reporting-only patch and return its findings (with the flow
/// route forced on or off).
fn findings_flow(patch: &str, target: &str, flow: bool) -> Vec<cocci_core::Finding> {
    let sp = parse_semantic_patch(patch).unwrap_or_else(|e| panic!("patch parse: {e}"));
    let mut p = Patcher::new(&sp).unwrap_or_else(|e| panic!("compile: {e}"));
    p.flow_enabled = flow;
    let out = p
        .apply("t.c", target)
        .unwrap_or_else(|e| panic!("apply: {e}"));
    assert!(out.is_none(), "reporting-only rules never edit");
    p.last_stats.findings.clone()
}

const SCAN_PAIR_PATCH: &str = r#"
@scan@
expression r;
position p;
@@
acquire(r)@p;
...
release(r);
"#;

#[test]
fn position_on_calls_binds_at_cfg_match_sites() {
    // Flow route: the position pins the matched CFG node (the acquire
    // call) — line 3, column 5 of this file.
    let src = "void f(int n, double *buf) {\n    prep();\n    acquire(buf[0]);\n    work();\n    release(buf[0]);\n}\n";
    let fs = findings_flow(SCAN_PAIR_PATCH, src, true);
    assert_eq!(fs.len(), 1);
    assert_eq!((fs[0].line, fs[0].col), (3, 5));
    assert_eq!(fs[0].rule, "scan");
    assert_eq!(fs[0].path, "t.c");
    // The bindings carry the witness's non-position metavariables.
    assert_eq!(
        fs[0].bindings,
        vec![("r".to_string(), "buf[0]".to_string())]
    );

    // All-paths semantics: an early return between the pair kills the
    // finding on the flow route; the tree reading (--no-flow) still
    // reports it — the disagreement the CFG route exists to fix.
    let escaping = "void f(int n, double *buf) {\n    acquire(buf[0]);\n    if (n)\n        return;\n    release(buf[0]);\n}\n";
    assert!(findings_flow(SCAN_PAIR_PATCH, escaping, true).is_empty());
    assert_eq!(findings_flow(SCAN_PAIR_PATCH, escaping, false).len(), 1);
}

#[test]
fn position_on_statement_metavars_reports_the_statement() {
    // `S@p`: the position rides a statement metavariable; the finding
    // pins the matched statement (tree route — statement metavariables
    // are not CFG anchors).
    let patch = r#"
@after@
statement S;
position p;
@@
barrier();
S@p
"#;
    let src = "void f(double *q) {\n    barrier();\n    q[0] = 1.0;\n}\n";
    let fs = findings_flow(patch, src, true);
    assert_eq!(fs.len(), 1);
    assert_eq!((fs[0].line, fs[0].col), (3, 5));
}

#[test]
fn forked_witnesses_yield_one_finding_per_path_with_distinct_positions() {
    // The release expression binds differently per arm, so the flow
    // engine forks one witness per path — and the findings route must
    // surface one finding per witness, each at its own arm's site.
    let patch = r#"
@fork@
expression e;
position p;
@@
checkpoint();
...
commit(e)@p;
"#;
    let src = "void f(int n, double *buf) {\n    checkpoint();\n    if (n) {\n        commit(buf[1]);\n    } else {\n        commit(buf[2]);\n    }\n    wrap_up();\n}\n";
    let mut fs = findings_flow(patch, src, true);
    fs.sort_by_key(|f| (f.line, f.col));
    assert_eq!(fs.len(), 2, "one finding per forked witness: {fs:?}");
    assert_eq!((fs[0].line, fs[0].col), (4, 9));
    assert_eq!((fs[1].line, fs[1].col), (6, 9));
    assert_eq!(
        fs[0].bindings,
        vec![("e".to_string(), "buf[1]".to_string())]
    );
    assert_eq!(
        fs[1].bindings,
        vec![("e".to_string(), "buf[2]".to_string())]
    );
}

#[test]
fn inherited_positions_resolve_per_file_across_a_corpus() {
    // Two files with byte-identical content: rule `use` inherits `decl`'s
    // position and must re-match at that exact spot *in its own file* —
    // positions carry file identity, so the (equal) offsets cannot alias
    // across the corpus, and each file's findings name that file.
    let patch = r#"
@decl@
expression e;
position p;
@@
old_api(e)@p;

@use depends on decl@
position decl.p;
expression e2;
@@
old_api(e2)@p;
"#;
    let sp = parse_semantic_patch(patch).unwrap();
    let text = "void f(void) {\n    old_api(1);\n}\n".to_string();
    let files = vec![
        ("first.c".to_string(), text.clone()),
        ("second.c".to_string(), text),
    ];
    let outcomes = cocci_core::apply_to_files(&sp, &files, 1).unwrap();
    for (o, name) in outcomes.iter().zip(["first.c", "second.c"]) {
        assert!(o.error.is_none(), "{:?}", o.error);
        let use_findings: Vec<_> = o.findings.iter().filter(|f| f.rule == "use").collect();
        assert_eq!(use_findings.len(), 1, "{name}: {:?}", o.findings);
        assert_eq!(use_findings[0].path, name);
        assert_eq!((use_findings[0].line, use_findings[0].col), (2, 5));
    }
}
