//! Robustness and failure-path tests: malformed inputs, conflicting
//! edits, finalize blocks, statistics, and parser resilience on
//! real-world-shaped C.

use cocci_core::{apply_to_files, Patcher};
use cocci_smpl::parse_semantic_patch;

// ---- failure paths ----

#[test]
fn unparsable_target_is_an_error_not_a_panic() {
    let patch = parse_semantic_patch("@@ @@\n- a();\n+ b();\n").unwrap();
    let mut p = Patcher::new(&patch).unwrap();
    let err = p.apply("t.c", "void f( { garbage").unwrap_err();
    assert!(err.to_string().contains("cannot parse"), "{err}");
}

#[test]
fn bad_regex_constraint_fails_at_compile_time() {
    let patch =
        parse_semantic_patch("@@\nidentifier f =~ \"unclosed(\";\n@@\n- f();\n+ g();\n").unwrap();
    let err = match Patcher::new(&patch) {
        Err(e) => e,
        Ok(_) => panic!("expected compile error"),
    };
    assert!(err.to_string().contains("regex"), "{err}");
}

#[test]
fn script_hard_error_propagates() {
    let patch = parse_semantic_patch(
        "@m@\nidentifier f;\nexpression list el;\n@@\nf(el)\n\n@script:python s@\nf << m.f;\ng;\n@@\ncoccinelle.g = undefined_name;\n",
    )
    .unwrap();
    let mut p = Patcher::new(&patch).unwrap();
    let err = p.apply("t.c", "void t(void) { call(1); }\n").unwrap_err();
    assert!(err.to_string().contains("undefined name"), "{err}");
}

#[test]
fn overlapping_matches_resolve_first_wins() {
    // Nested `a[x][y][z]` inside another: the outer match claims the
    // span; the inner occurrence inside the binding is left as-is (one
    // rewrite, no conflict, no panic).
    let patch = parse_semantic_patch(
        "#spatch --c++\n@@\nsymbol a;\nexpression x,y,z;\n@@\n- a[x][y][z]\n+ a[x, y, z]\n",
    )
    .unwrap();
    let mut p = Patcher::new(&patch).unwrap();
    let out = p
        .apply("t.cpp", "void f(void) { q = a[a[0][1][2]][j][k]; }\n")
        .unwrap()
        .unwrap();
    assert!(out.contains("a[a[0][1][2], j, k]"), "{out}");
}

// ---- finalize blocks and statistics ----

#[test]
fn finalize_block_runs_after_rules() {
    // A finalize block that would fail proves it ran; one that is fine
    // must not disturb the result.
    let ok =
        parse_semantic_patch("@@ @@\n- a();\n+ b();\n\n@finalize:python@ @@\nmsg = \"done\"\n")
            .unwrap();
    let mut p = Patcher::new(&ok).unwrap();
    assert!(p.apply("t.c", "void f(void) { a(); }\n").unwrap().is_some());

    let bad =
        parse_semantic_patch("@@ @@\n- a();\n+ b();\n\n@finalize:python@ @@\nboom = missing\n")
            .unwrap();
    let mut p2 = Patcher::new(&bad).unwrap();
    assert!(p2.apply("t.c", "void f(void) { a(); }\n").is_err());
}

#[test]
fn apply_stats_count_matches() {
    let patch = parse_semantic_patch("@r@\nexpression e;\n@@\n- f(e);\n+ g(e);\n").unwrap();
    let mut p = Patcher::new(&patch).unwrap();
    p.apply("t.c", "void t(void) { f(1); f(2); f(3); }\n")
        .unwrap()
        .unwrap();
    assert_eq!(p.last_stats.matches_per_rule.iter().sum::<usize>(), 3);
    assert!(p.last_stats.edits >= 3);
}

// ---- parser resilience on real-world-shaped C ----

#[test]
fn handles_crlf_line_endings() {
    let patch = parse_semantic_patch("@@ @@\n- old();\n+ new_call();\n").unwrap();
    let mut p = Patcher::new(&patch).unwrap();
    let src = "void f(void) {\r\n    old();\r\n}\r\n";
    let out = p.apply("t.c", src).unwrap().unwrap();
    assert!(out.contains("new_call();"), "{out:?}");
}

#[test]
fn handles_tabs_and_deep_nesting() {
    let patch = parse_semantic_patch("@@ @@\n- leaf();\n+ LEAF();\n").unwrap();
    let mut p = Patcher::new(&patch).unwrap();
    let src = "void f(int a, int b, int c) {\n\tif (a) {\n\t\twhile (b) {\n\t\t\tfor (int i = 0; i < c; ++i) {\n\t\t\t\tleaf();\n\t\t\t}\n\t\t}\n\t}\n}\n";
    let out = p.apply("t.c", src).unwrap().unwrap();
    assert!(out.contains("\t\t\t\tLEAF();"), "{out}");
}

#[test]
fn preprocessor_conditionals_are_preserved() {
    let patch = parse_semantic_patch("@@ @@\n- old();\n+ new_call();\n").unwrap();
    let mut p = Patcher::new(&patch).unwrap();
    let src = "#ifdef FAST\n#define N 4\n#else\n#define N 1\n#endif\nvoid f(void) { old(); }\n";
    let out = p.apply("t.c", src).unwrap().unwrap();
    assert!(out.contains("#ifdef FAST"));
    assert!(out.contains("#else"));
    assert!(out.contains("#endif"));
    assert!(out.contains("new_call();"));
}

#[test]
fn string_escapes_do_not_confuse_matching() {
    let patch = parse_semantic_patch("@@ @@\n- old();\n+ new_call();\n").unwrap();
    let mut p = Patcher::new(&patch).unwrap();
    let src = r#"void f(void) { printf("quote \" and old(); inside"); old(); }"#;
    let out = p.apply("t.c", src).unwrap().unwrap();
    // The string literal must be untouched.
    assert!(out.contains(r#""quote \" and old(); inside""#), "{out}");
    assert!(out.trim_end().ends_with("new_call(); }"), "{out}");
}

#[test]
fn comment_only_changes_never_happen() {
    let patch = parse_semantic_patch("@@ @@\n- old();\n+ new_call();\n").unwrap();
    let mut p = Patcher::new(&patch).unwrap();
    let src = "/* old(); */\n// old();\nvoid f(void) { real(); }\n";
    assert!(p.apply("t.c", src).unwrap().is_none());
}

// ---- idempotence and fixpoints ----

#[test]
fn insertion_patches_are_not_idempotent_but_stable() {
    // UC1-style insertion: a second application would double-insert —
    // unless the patch guards itself with depends on !has_marker.
    let guarded = r#"
@has@
@@
PROLOGUE();

@depends on !has@
identifier f;
statement list SL;
@@
void f(void)
{
+ PROLOGUE();
SL
}
"#;
    let patch = parse_semantic_patch(guarded).unwrap();
    let mut p = Patcher::new(&patch).unwrap();
    let src = "void step(void)\n{\n    work();\n}\n";
    let once = p.apply("t.c", src).unwrap().unwrap();
    assert_eq!(once.matches("PROLOGUE();").count(), 1);
    // Second application: guard rule sees the marker, nothing happens.
    assert!(p.apply("t.c", &once).unwrap().is_none());
}

#[test]
fn large_file_many_matches() {
    let mut body = String::new();
    for i in 0..500 {
        body.push_str(&format!("    x{i} = f(x{i});\n"));
    }
    let src = format!("void big(void) {{\n{body}}}\n");
    let patch = parse_semantic_patch("@@\nexpression e;\n@@\n- f(e)\n+ g(e)\n").unwrap();
    let mut p = Patcher::new(&patch).unwrap();
    let out = p.apply("big.c", &src).unwrap().unwrap();
    assert_eq!(out.matches("g(x").count(), 500);
    assert!(!out.contains("f(x"));
}

#[test]
fn driver_compile_error_is_run_level_not_per_file() {
    // The patch compiles once per run; a compile error surfaces exactly
    // once as the driver's `Err`, not duplicated onto every file.
    let patch =
        parse_semantic_patch("@@\nidentifier f =~ \"bad(regex\";\n@@\n- f();\n+ g();\n").unwrap();
    let files: Vec<(String, String)> = (0..8)
        .map(|i| (format!("f{i}.c"), "void f(void) {}\n".to_string()))
        .collect();
    let err = apply_to_files(&patch, &files, 4).unwrap_err();
    assert!(err.to_string().contains("regex"), "{err}");
}
