//! Property-based tests (proptest) over the core invariants:
//!
//! * lexer: token spans partition the input (ordered, non-overlapping),
//!   and lexing is total on valid token soup;
//! * parser/renderer: `parse ∘ render` is the identity modulo spans
//!   (structural equality), and rendering is idempotent;
//! * regex engine: agrees with a naive reference on literal patterns and
//!   never diverges (no panics) on arbitrary inputs;
//! * edit sets: applying disjoint edits commutes with order of insertion,
//!   and output length is predictable;
//! * engine: a rename patch rewrites exactly the call sites present and
//!   is idempotent.

use cocci_cast::eq::expr_eq;
use cocci_cast::parser::{parse_expression, NoMeta, ParseOptions};
use cocci_cast::render::render_expr;
use cocci_cast::{lex, LexMode, TokenKind};
use cocci_core::{EditSet, Patcher};
use cocci_smpl::parse_semantic_patch;
use cocci_source::Span;
use proptest::prelude::*;

// ---- generators ----

fn arb_ident() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("alpha".to_string()),
        Just("beta".to_string()),
        Just("buf".to_string()),
        Just("n".to_string()),
        Just("idx".to_string()),
    ]
}

/// Generate a well-formed C expression as text by construction.
fn arb_expr_text() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        arb_ident(),
        (0u32..1000).prop_map(|v| v.to_string()),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a} + {b}")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a} * {b}")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}[{b}]")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("f({a}, {b})")),
            inner.clone().prop_map(|a| format!("-{a}")),
            inner.clone().prop_map(|a| format!("({a})")),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| format!("{a} ? {b} : {c}")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---- lexer ----

    #[test]
    fn lexer_spans_partition_input(src in arb_expr_text()) {
        let toks = lex(&src, LexMode::C).unwrap();
        let mut prev_end = 0u32;
        for t in &toks {
            if t.kind == TokenKind::Eof { break; }
            prop_assert!(t.span.start >= prev_end, "overlap at {:?}", t.span);
            prop_assert!(t.span.end > t.span.start);
            // Gap text must be whitespace only.
            let gap = &src[prev_end as usize..t.span.start as usize];
            prop_assert!(gap.chars().all(char::is_whitespace), "gap {gap:?}");
            prev_end = t.span.end;
        }
    }

    #[test]
    fn lexer_total_on_ascii_word_soup(words in proptest::collection::vec("[a-z_][a-z0-9_]{0,6}", 0..20)) {
        let src = words.join(" ");
        let toks = lex(&src, LexMode::C).unwrap();
        // One token per word plus EOF.
        prop_assert_eq!(toks.len(), words.len() + 1);
    }

    // ---- parse/render round-trip ----

    #[test]
    fn parse_render_roundtrip(src in arb_expr_text()) {
        let e1 = parse_expression(&src, ParseOptions::cpp(), &NoMeta).unwrap();
        let rendered = render_expr(&e1);
        let e2 = parse_expression(&rendered, ParseOptions::cpp(), &NoMeta)
            .unwrap_or_else(|err| panic!("re-parse of {rendered:?} failed: {err}"));
        prop_assert!(expr_eq(&e1, &e2), "{src:?} -> {rendered:?} not structurally equal");
        // Idempotence of rendering.
        prop_assert_eq!(rendered.clone(), render_expr(&e2));
    }

    // ---- regex ----

    #[test]
    fn regex_literal_agrees_with_contains(
        needle in "[a-z]{1,6}",
        hay in "[a-z_ ]{0,30}",
    ) {
        let re = cocci_rex::Regex::new(&needle).unwrap();
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }

    #[test]
    fn regex_never_panics(pattern in "[a-z().|*+?\\[\\]{}0-9,^$-]{0,15}", hay in "[a-z0-9]{0,20}") {
        if let Ok(re) = cocci_rex::Regex::new(&pattern) {
            let _ = re.is_match(&hay);
        }
    }

    #[test]
    fn regex_alternation_is_union(a in "[a-z]{1,4}", b in "[a-z]{1,4}", hay in "[a-z]{0,12}") {
        let re = cocci_rex::Regex::new(&format!("{a}|{b}")).unwrap();
        prop_assert_eq!(re.is_match(&hay), hay.contains(&a) || hay.contains(&b));
    }

    // ---- edit sets ----

    #[test]
    fn disjoint_edits_apply_in_any_order(
        src in "[a-z]{30,60}",
        cuts in proptest::collection::vec((0usize..10, 0usize..3), 1..5),
    ) {
        // Build disjoint spans deterministically from the cut list.
        let mut spans: Vec<(u32, u32)> = Vec::new();
        let mut pos = 0usize;
        for (gap, len) in cuts {
            let start = pos + gap;
            let end = (start + len).min(src.len());
            if start >= src.len() || start >= end { break; }
            spans.push((start as u32, end as u32));
            pos = end + 1;
        }
        prop_assume!(!spans.is_empty());

        let mut forward = EditSet::new();
        for (s, e) in &spans {
            forward.replace(Span::new(*s, *e), "X");
        }
        let mut backward = EditSet::new();
        for (s, e) in spans.iter().rev() {
            backward.replace(Span::new(*s, *e), "X");
        }
        prop_assert_eq!(forward.apply(&src).unwrap(), backward.apply(&src).unwrap());
    }

    #[test]
    fn edit_output_length_is_predictable(src in "[a-z]{10,40}") {
        let mut es = EditSet::new();
        es.delete(Span::new(2, 5));
        es.insert(7, "abc");
        let out = es.apply(&src).unwrap();
        prop_assert_eq!(out.len(), src.len() - 3 + 3);
    }

    // ---- engine ----

    #[test]
    fn rename_patch_rewrites_every_call_site(calls in 1usize..8, decoys in 0usize..5) {
        let mut body = String::new();
        for i in 0..calls {
            body.push_str(&format!("    old_fn({i});\n"));
        }
        for i in 0..decoys {
            body.push_str(&format!("    other_fn({i});\n"));
        }
        let src = format!("void g(void) {{\n{body}}}\n");
        let patch = parse_semantic_patch(
            "@@\nexpression e;\n@@\n- old_fn(e)\n+ new_fn(e)\n",
        ).unwrap();
        let mut p = Patcher::new(&patch).unwrap();
        let out = p.apply("t.c", &src).unwrap().expect("must match");
        prop_assert_eq!(out.matches("new_fn(").count(), calls);
        prop_assert_eq!(out.matches("old_fn(").count(), 0);
        prop_assert_eq!(out.matches("other_fn(").count(), decoys);
        // Idempotence: nothing left to match.
        let again = p.apply("t.c", &out).unwrap();
        prop_assert!(again.is_none());
    }

    #[test]
    fn patched_output_still_parses(calls in 1usize..6) {
        let mut body = String::new();
        for i in 0..calls {
            body.push_str(&format!("    acc[{i}] = old_fn(acc[{i}]);\n"));
        }
        let src = format!("void g(double *acc) {{\n{body}}}\n");
        let patch = parse_semantic_patch(
            "@@\nexpression e;\n@@\n- old_fn(e)\n+ scale(e, 2.0)\n",
        ).unwrap();
        let mut p = Patcher::new(&patch).unwrap();
        let out = p.apply("t.c", &src).unwrap().expect("must match");
        cocci_cast::parser::parse_translation_unit(&out, ParseOptions::c(), &NoMeta)
            .unwrap_or_else(|e| panic!("output no longer parses: {e}\n{out}"));
    }
}
