//! Property-based tests over the core invariants, driven by the
//! in-house harness in `cocci_tests` (see `tests/lib.rs`):
//!
//! * lexer: token spans partition the input (ordered, non-overlapping),
//!   and lexing is total on valid token soup;
//! * parser/renderer: `parse ∘ render` is the identity modulo spans
//!   (structural equality), and rendering is idempotent;
//! * regex engine: agrees with a naive reference on literal patterns and
//!   never diverges (no panics) on arbitrary inputs;
//! * edit sets: applying disjoint edits commutes with order of insertion,
//!   and output length is predictable;
//! * engine: a rename patch rewrites exactly the call sites present and
//!   is idempotent.

use cocci_cast::eq::expr_eq;
use cocci_cast::parser::{parse_expression, NoMeta, ParseOptions};
use cocci_cast::render::render_expr;
use cocci_cast::{lex, LexMode, TokenKind};
use cocci_core::{EditSet, Patcher};
use cocci_smpl::parse_semantic_patch;
use cocci_source::{Span, Symbol};
use cocci_tests::{arb_expr_text, ident_soup_word, string_of_len, Runner};

const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";

// ---- lexer ----

#[test]
fn lexer_spans_partition_input() {
    Runner::new("lexer_spans_partition_input").run(|rng| {
        let src = arb_expr_text(rng, 4);
        let toks = lex(&src, LexMode::C).unwrap();
        let mut prev_end = 0u32;
        for t in &toks {
            if t.kind == TokenKind::Eof {
                break;
            }
            assert!(
                t.span.start >= prev_end,
                "overlap at {:?} in {src:?}",
                t.span
            );
            assert!(t.span.end > t.span.start);
            // Gap text must be whitespace only.
            let gap = &src[prev_end as usize..t.span.start as usize];
            assert!(gap.chars().all(char::is_whitespace), "gap {gap:?}");
            prev_end = t.span.end;
        }
    });
}

#[test]
fn lexer_total_on_ascii_word_soup() {
    Runner::new("lexer_total_on_ascii_word_soup").run(|rng| {
        let words: Vec<String> = (0..rng.gen_range(0..20))
            .map(|_| ident_soup_word(rng))
            .collect();
        let src = words.join(" ");
        let toks = lex(&src, LexMode::C).unwrap();
        // One token per word plus EOF.
        assert_eq!(toks.len(), words.len() + 1, "{src:?}");
    });
}

// ---- parse/render round-trip ----

#[test]
fn parse_render_roundtrip() {
    Runner::new("parse_render_roundtrip").run(|rng| {
        let src = arb_expr_text(rng, 4);
        let e1 = parse_expression(&src, ParseOptions::cpp(), &NoMeta).unwrap();
        let rendered = render_expr(&e1);
        let e2 = parse_expression(&rendered, ParseOptions::cpp(), &NoMeta)
            .unwrap_or_else(|err| panic!("re-parse of {rendered:?} failed: {err}"));
        assert!(
            expr_eq(&e1, &e2),
            "{src:?} -> {rendered:?} not structurally equal"
        );
        // Idempotence of rendering.
        assert_eq!(rendered, render_expr(&e2));
    });
}

// ---- regex ----

#[test]
fn regex_literal_agrees_with_contains() {
    Runner::new("regex_literal_agrees_with_contains").run(|rng| {
        let needle = string_of_len(rng, LOWER, 1, 6);
        let hay = string_of_len(rng, "abcdefghijklmnopqrstuvwxyz_ ", 0, 30);
        let re = cocci_rex::Regex::new(&needle).unwrap();
        assert_eq!(
            re.is_match(&hay),
            hay.contains(&needle),
            "{needle:?} in {hay:?}"
        );
    });
}

#[test]
fn regex_never_panics() {
    Runner::new("regex_never_panics").run(|rng| {
        let pattern = string_of_len(
            rng,
            "abcdefghijklmnopqrstuvwxyz().|*+?[]{}0123456789,^$-",
            0,
            15,
        );
        let hay = string_of_len(rng, "abcdefghijklmnopqrstuvwxyz0123456789", 0, 20);
        if let Ok(re) = cocci_rex::Regex::new(&pattern) {
            let _ = re.is_match(&hay);
        }
    });
}

#[test]
fn regex_alternation_is_union() {
    Runner::new("regex_alternation_is_union").run(|rng| {
        let a = string_of_len(rng, LOWER, 1, 4);
        let b = string_of_len(rng, LOWER, 1, 4);
        let hay = string_of_len(rng, LOWER, 0, 12);
        let re = cocci_rex::Regex::new(&format!("{a}|{b}")).unwrap();
        assert_eq!(
            re.is_match(&hay),
            hay.contains(&a) || hay.contains(&b),
            "{a}|{b} on {hay:?}"
        );
    });
}

// ---- edit sets ----

#[test]
fn disjoint_edits_apply_in_any_order() {
    Runner::new("disjoint_edits_apply_in_any_order").run(|rng| {
        let src = string_of_len(rng, LOWER, 30, 60);
        let cuts: Vec<(usize, usize)> = (0..rng.gen_range(1..5))
            .map(|_| (rng.gen_range(0..10), rng.gen_range(0..3)))
            .collect();
        // Build disjoint spans deterministically from the cut list.
        let mut spans: Vec<(u32, u32)> = Vec::new();
        let mut pos = 0usize;
        for (gap, len) in cuts {
            let start = pos + gap;
            let end = (start + len).min(src.len());
            if start >= src.len() || start >= end {
                break;
            }
            spans.push((start as u32, end as u32));
            pos = end + 1;
        }
        if spans.is_empty() {
            return; // vacuous case, like prop_assume! discarding
        }

        let mut forward = EditSet::new();
        for (s, e) in &spans {
            forward.replace(Span::new(*s, *e), "X");
        }
        let mut backward = EditSet::new();
        for (s, e) in spans.iter().rev() {
            backward.replace(Span::new(*s, *e), "X");
        }
        assert_eq!(forward.apply(&src).unwrap(), backward.apply(&src).unwrap());
    });
}

#[test]
fn edit_output_length_is_predictable() {
    Runner::new("edit_output_length_is_predictable").run(|rng| {
        let src = string_of_len(rng, LOWER, 10, 40);
        let mut es = EditSet::new();
        es.delete(Span::new(2, 5));
        es.insert(7, "abc");
        let out = es.apply(&src).unwrap();
        assert_eq!(out.len(), src.len() - 3 + 3);
    });
}

// ---- engine ----

#[test]
fn rename_patch_rewrites_every_call_site() {
    Runner::new("rename_patch_rewrites_every_call_site")
        .cases(48)
        .run(|rng| {
            let calls = rng.gen_range(1..8);
            let decoys = rng.gen_range(0..5);
            let mut body = String::new();
            for i in 0..calls {
                body.push_str(&format!("    old_fn({i});\n"));
            }
            for i in 0..decoys {
                body.push_str(&format!("    other_fn({i});\n"));
            }
            let src = format!("void g(void) {{\n{body}}}\n");
            let patch =
                parse_semantic_patch("@@\nexpression e;\n@@\n- old_fn(e)\n+ new_fn(e)\n").unwrap();
            let mut p = Patcher::new(&patch).unwrap();
            let out = p.apply("t.c", &src).unwrap().expect("must match");
            assert_eq!(out.matches("new_fn(").count(), calls);
            assert_eq!(out.matches("old_fn(").count(), 0);
            assert_eq!(out.matches("other_fn(").count(), decoys);
            // Idempotence: nothing left to match.
            let again = p.apply("t.c", &out).unwrap();
            assert!(again.is_none());
        });
}

#[test]
fn prefilter_never_prunes_a_matching_file() {
    // Soundness of the compile-time prefilter: for any UC patch and any
    // generated workload file the prefilter skips, the full matcher must
    // find zero matches (no false prunes). Generators and patch are drawn
    // per case so the property sweeps the whole UC × generator matrix.
    use cocci_core::CompiledPatch;
    use cocci_workloads::gen::{self, CodebaseSpec};

    Runner::new("prefilter_never_prunes_a_matching_file")
        .cases(64)
        .run(|rng| {
            let spec = CodebaseSpec {
                files: rng.gen_range(1..4),
                functions_per_file: rng.gen_range(1..8),
                seed: rng.next_u64(),
            };
            let files = match rng.gen_range(0..9) {
                0 => gen::omp_codebase(&spec),
                1 => gen::kernel_codebase(&spec),
                2 => gen::multiversion_codebase(&spec),
                3 => gen::unrolled_codebase(&spec, 4),
                4 => gen::stencil_codebase(&spec),
                5 => gen::cuda_codebase(&spec),
                6 => gen::openacc_codebase(&spec),
                7 => gen::raw_loop_codebase(&spec),
                _ => gen::librsb_codebase(&spec),
            };
            let all = cocci_workloads::patches::ALL;
            let (uc, patch_text) = all[rng.gen_range(0..all.len())];
            let patch = parse_semantic_patch(patch_text).unwrap_or_else(|e| panic!("{uc}: {e}"));
            let compiled = CompiledPatch::compile(&patch).unwrap_or_else(|e| panic!("{uc}: {e}"));
            for f in &files {
                if compiled.may_match(&f.text) {
                    continue; // not pruned; nothing to check
                }
                // Pruned: the full pipeline must agree there is nothing
                // here. A parse error also means "no match possible".
                let mut p = Patcher::from_compiled(std::sync::Arc::new(compiled.clone()));
                if let Ok(out) = p.apply(&f.name, &f.text) {
                    let matches: usize = p.last_stats.matches_per_rule.iter().sum();
                    assert_eq!(
                        matches, 0,
                        "{uc}: prefilter pruned {} which matches {matches}x\n{}",
                        f.name, f.text
                    );
                    assert!(
                        out.is_none(),
                        "{uc}: prefilter pruned {} which the engine changed",
                        f.name
                    );
                }
            }
        });
}

#[test]
fn when_exists_matches_superset_of_all_paths_on_branchy_workloads() {
    // `when exists` (EF) is implied by the default all-paths reading
    // (AF): every witness the forall engine produces has at least one
    // path behind it, so on any input the existential patch must match
    // wherever — and at least as often as — the forall patch does.
    use cocci_workloads::gen::{branchy_codebase, CodebaseSpec};

    const FORALL: &str =
        "@@\nexpression b;\n@@\n- probe_begin(b);\n+ probe_enter(b);\n...\nprobe_end(b);\n";
    const EXISTS: &str =
        "@@\nexpression b;\n@@\n- probe_begin(b);\n+ probe_enter(b);\n... when exists\nprobe_end(b);\n";
    let forall = parse_semantic_patch(FORALL).unwrap();
    let exists = parse_semantic_patch(EXISTS).unwrap();

    Runner::new("when_exists_matches_superset_of_all_paths")
        .cases(16)
        .run(|rng| {
            let spec = CodebaseSpec {
                files: 2,
                functions_per_file: 6,
                seed: rng.next_u64(),
            };
            for f in branchy_codebase(&spec) {
                let mut pa = Patcher::new(&forall).unwrap();
                let out_a = pa.apply(&f.name, &f.text).unwrap();
                let matches_a: usize = pa.last_stats.matches_per_rule.iter().sum();
                let mut pe = Patcher::new(&exists).unwrap();
                let out_e = pe.apply(&f.name, &f.text).unwrap();
                let matches_e: usize = pe.last_stats.matches_per_rule.iter().sum();
                assert!(
                    matches_e >= matches_a,
                    "{}: exists found {matches_e} < forall {matches_a}",
                    f.name
                );
                if out_a.is_some() {
                    assert!(
                        out_e.is_some(),
                        "{}: forall transformed but exists did not",
                        f.name
                    );
                }
            }
        });
}

#[test]
fn patched_output_still_parses() {
    Runner::new("patched_output_still_parses")
        .cases(48)
        .run(|rng| {
            let calls = rng.gen_range(1..6);
            let mut body = String::new();
            for i in 0..calls {
                body.push_str(&format!("    acc[{i}] = old_fn(acc[{i}]);\n"));
            }
            let src = format!("void g(double *acc) {{\n{body}}}\n");
            let patch =
                parse_semantic_patch("@@\nexpression e;\n@@\n- old_fn(e)\n+ scale(e, 2.0)\n")
                    .unwrap();
            let mut p = Patcher::new(&patch).unwrap();
            let out = p.apply("t.c", &src).unwrap().expect("must match");
            cocci_cast::parser::parse_translation_unit(&out, ParseOptions::c(), &NoMeta)
                .unwrap_or_else(|e| panic!("output no longer parses: {e}\n{out}"));
        });
}

// ---- findings engine ----

/// The reporting rule the findings properties drive: pure context, a
/// position metavariable on the opening call, statement dots to the
/// close — flow-routed by default, tree-readable under `--no-flow`.
const SCAN_DOTS: &str = "@scan@\nexpression r;\nposition p;\n@@\nacquire(r)@p;\n...\nrelease(r);\n";

#[test]
fn findings_lie_within_file_bounds() {
    // Every finding a reporting-only rule emits must point at a real
    // line/column of its file: 1-based, line within the line count,
    // column within the line's length (+1 for the just-past-end column
    // of an end offset).
    use cocci_workloads::gen::{report_scan_codebase, CodebaseSpec};

    let patch = parse_semantic_patch(SCAN_DOTS).unwrap();
    Runner::new("findings_lie_within_file_bounds")
        .cases(24)
        .run(|rng| {
            let spec = CodebaseSpec {
                files: 2,
                functions_per_file: 4 * rng.gen_range(1..4),
                seed: rng.next_u64(),
            };
            for f in report_scan_codebase(&spec) {
                let mut p = Patcher::new(&patch).unwrap();
                let out = p.apply(&f.name, &f.text).unwrap();
                assert!(out.is_none(), "a reporting-only rule never edits");
                let lines: Vec<&str> = f.text.lines().collect();
                for fd in &p.last_stats.findings {
                    assert_eq!(fd.path, f.name);
                    assert!(fd.line >= 1 && (fd.line as usize) <= lines.len(), "{fd:?}");
                    let text = lines[fd.line as usize - 1];
                    assert!(
                        fd.col >= 1 && (fd.col as usize) <= text.len() + 1,
                        "{fd:?} in {text:?}"
                    );
                    assert!(
                        (fd.end_line, fd.end_col) >= (fd.line, fd.col),
                        "end precedes start: {fd:?}"
                    );
                    assert!(fd.end_line >= 1 && (fd.end_line as usize) <= lines.len());
                    // The position pins the `acquire` call.
                    assert!(
                        text[fd.col as usize - 1..].starts_with("acquire("),
                        "{fd:?} does not point at the call in {text:?}"
                    );
                }
            }
        });
}

#[test]
fn tree_and_flow_routes_emit_identical_findings_on_dots_free_rules() {
    // On straight-line code the tree-sequence and all-paths readings of
    // dots coincide, so the two routes must produce the *same finding
    // set* — same files, same lines, same columns, same rules.
    use cocci_workloads::gen::{linear_probe_codebase, CodebaseSpec};

    let patch = parse_semantic_patch(
        "@pair@\nexpression b;\nposition p;\n@@\nprobe_begin(b)@p;\n...\nprobe_end(b);\n",
    )
    .unwrap();
    Runner::new("tree_and_flow_routes_emit_identical_findings")
        .cases(16)
        .run(|rng| {
            let spec = CodebaseSpec {
                files: 2,
                functions_per_file: rng.gen_range(1..8),
                seed: rng.next_u64(),
            };
            for f in linear_probe_codebase(&spec) {
                let keys = |flow: bool| {
                    let mut p = Patcher::new(&patch).unwrap();
                    p.flow_enabled = flow;
                    p.apply(&f.name, &f.text).unwrap();
                    let mut ks: Vec<_> = p
                        .last_stats
                        .findings
                        .iter()
                        .map(cocci_core::Finding::key)
                        .collect();
                    ks.sort();
                    ks
                };
                let flow = keys(true);
                let tree = keys(false);
                assert!(!flow.is_empty(), "{}: linear pairs must match", f.name);
                assert_eq!(flow, tree, "{}: routes disagree", f.name);
            }
        });
}

// ---- string interner ----

#[test]
fn intern_resolve_round_trips() {
    Runner::new("intern_resolve_round_trips")
        .cases(400)
        .run(|rng| {
            let s = ident_soup_word(rng);
            let sym = Symbol::intern(&s);
            assert_eq!(sym.as_str(), s, "resolve returns the interned text");
            // Re-interning is stable: same string, same handle.
            assert_eq!(Symbol::intern(&s), sym);
            assert_eq!(Symbol::from(s.as_str()), sym);
        });
}

#[test]
fn symbol_equality_is_string_equality() {
    Runner::new("symbol_equality_is_string_equality")
        .cases(400)
        .run(|rng| {
            let a = ident_soup_word(rng);
            // Half the cases compare equal strings, half independent
            // draws (which may still collide — that must agree too).
            let b = if rng.gen_range(0..2) == 0 {
                a.clone()
            } else {
                ident_soup_word(rng)
            };
            let (sa, sb) = (Symbol::intern(&a), Symbol::intern(&b));
            assert_eq!(sa == sb, a == b, "{a:?} vs {b:?}");
            assert_eq!(sa == b.as_str(), a == b, "Symbol == &str agrees");
            // Hash-map keying agrees with equality: one entry iff equal.
            let set: std::collections::HashSet<Symbol> = [sa, sb].into_iter().collect();
            assert_eq!(set.len() == 1, a == b);
        });
}
