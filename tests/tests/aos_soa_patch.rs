//! The paper's flagship application ([ML21]): AoS→SoA transformation of
//! particle code by semantic patch. The paper describes patching "many
//! tens of array-accessing expressions within each of thousands of
//! loops" in GADGET while leaving the original AoS code as the versioned
//! source of truth.
//!
//! These tests run the same campaign on a synthetic particle code: field
//! accesses `ps[e].x` become `ps_x[e]`, the AoS array declaration is
//! replaced by per-field arrays, and — the paper's fine-grained-control
//! point — a *second* particle array can be deliberately kept in AoS
//! form by simply not mentioning it in the patch.

use cocci_core::Patcher;
use cocci_smpl::parse_semantic_patch;

/// The AoS→SoA semantic patch for the `ps` array (positions + velocity).
const AOS2SOA: &str = r#"
@decl@
constant n;
@@
- struct particle ps[n];
+ double ps_x[n];
+ double ps_y[n];
+ double ps_z[n];
+ double ps_vx[n];
+ double ps_vy[n];
+ double ps_vz[n];

@x@
expression e;
@@
- ps[e].x
+ ps_x[e]

@y@
expression e;
@@
- ps[e].y
+ ps_y[e]

@z@
expression e;
@@
- ps[e].z
+ ps_z[e]

@vx@
expression e;
@@
- ps[e].vx
+ ps_vx[e]

@vy@
expression e;
@@
- ps[e].vy
+ ps_vy[e]

@vz@
expression e;
@@
- ps[e].vz
+ ps_vz[e]
"#;

const GADGET_LIKE: &str = r#"struct particle { double x; double y; double z; double vx; double vy; double vz; };

struct particle ps[4096];
struct particle halo[512];

void kick_drift(int n, double dt) {
    for (int i = 0; i < n; ++i) {
        ps[i].x += dt * ps[i].vx;
        ps[i].y += dt * ps[i].vy;
        ps[i].z += dt * ps[i].vz;
    }
}

void boundary(int n) {
    for (int i = 0; i < n; ++i) {
        if (ps[i].x > 1.0) ps[i].x -= 1.0;
        halo[i].x = ps[i].x;
    }
}

double momentum_x(int n) {
    double s = 0.0;
    for (int i = 0; i < n; ++i) s += ps[i].vx;
    return s;
}
"#;

fn apply(patch: &str, target: &str) -> String {
    let sp = parse_semantic_patch(patch).unwrap_or_else(|e| panic!("patch: {e}"));
    let mut p = Patcher::new(&sp).unwrap();
    p.apply("gadget.c", target)
        .unwrap_or_else(|e| panic!("apply: {e}"))
        .expect("must transform")
}

#[test]
fn aos_accesses_become_soa() {
    let out = apply(AOS2SOA, GADGET_LIKE);
    // Every ps[…].field access rewritten, with arbitrary index exprs.
    assert!(out.contains("ps_x[i] += dt * ps_vx[i];"), "{out}");
    assert!(out.contains("ps_y[i] += dt * ps_vy[i];"), "{out}");
    assert!(out.contains("ps_z[i] += dt * ps_vz[i];"), "{out}");
    assert!(out.contains("if (ps_x[i] > 1.0) ps_x[i] -= 1.0;"), "{out}");
    assert!(out.contains("s += ps_vx[i];"), "{out}");
    // No ps[...] AoS access survives.
    assert!(!out.contains("ps["), "{out}");
}

#[test]
fn declaration_is_exploded_per_field() {
    let out = apply(AOS2SOA, GADGET_LIKE);
    for field in ["x", "y", "z", "vx", "vy", "vz"] {
        assert!(
            out.contains(&format!("double ps_{field}[4096];")),
            "missing ps_{field}: {out}"
        );
    }
    assert!(!out.contains("struct particle ps[4096];"), "{out}");
}

#[test]
fn unmentioned_arrays_stay_aos() {
    // The paper: "specified quantities can be kept in AoS form if this is
    // desired for modularization or organizational reasons."
    let out = apply(AOS2SOA, GADGET_LIKE);
    assert!(out.contains("struct particle halo[512];"), "{out}");
    assert!(out.contains("halo[i].x = ps_x[i];"), "{out}");
}

#[test]
fn struct_definition_survives_for_remaining_users() {
    let out = apply(AOS2SOA, GADGET_LIKE);
    assert!(out.contains("struct particle { double x;"), "{out}");
}

#[test]
fn transformed_code_reparses() {
    use cocci_cast::parser::{parse_translation_unit, NoMeta, ParseOptions};
    let out = apply(AOS2SOA, GADGET_LIKE);
    parse_translation_unit(&out, ParseOptions::c(), &NoMeta)
        .unwrap_or_else(|e| panic!("SoA output no longer parses: {e}\n{out}"));
}

#[test]
fn campaign_scales_to_many_loops() {
    // "thousands of loops": a bigger synthetic body, every access
    // rewritten, none missed.
    let mut body = String::from(
        "struct particle { double x; double y; double z; double vx; double vy; double vz; };\n\nstruct particle ps[65536];\n\n",
    );
    let loops = 200;
    for f in 0..loops {
        body.push_str(&format!(
            "void step_{f}(int n, double dt) {{\n    for (int i = 0; i < n; ++i) {{\n        ps[i].x += dt * ps[i].vx;\n        ps[i].y += dt * ps[i].vy;\n    }}\n}}\n\n"
        ));
    }
    let out = apply(AOS2SOA, &body);
    assert_eq!(out.matches("ps_x[i] += dt * ps_vx[i];").count(), loops);
    assert_eq!(out.matches("ps_y[i] += dt * ps_vy[i];").count(), loops);
    assert!(!out.contains("ps["));
}
