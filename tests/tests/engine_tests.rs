//! Engine-level integration tests beyond the paper's use cases: rule
//! orchestration (dependencies, negation, inheritance chains), matcher
//! edge cases, edit interplay, and cross-crate behaviour (CFG of patched
//! output).

use cocci_core::{apply_to_files, Patcher};
use cocci_smpl::parse_semantic_patch;

fn apply(patch: &str, target: &str) -> Option<String> {
    let sp = parse_semantic_patch(patch).unwrap_or_else(|e| panic!("patch parse: {e}"));
    let mut p = Patcher::new(&sp).unwrap_or_else(|e| panic!("compile: {e}"));
    p.apply("t.c", target)
        .unwrap_or_else(|e| panic!("apply: {e}"))
}

// ---- orchestration ----

#[test]
fn depends_on_negation_fires_when_rule_missing() {
    let patch = r#"
@has_omp@
@@
#include <omp.h>

@depends on !has_omp@
@@
#include <stdio.h>
+ #include <omp.h>
"#;
    // File without omp: the second rule adds it.
    let out = apply(patch, "#include <stdio.h>\nint x;\n").unwrap();
    assert!(out.contains("#include <omp.h>"));
    // File with omp already: nothing to do.
    assert!(apply(patch, "#include <omp.h>\n#include <stdio.h>\nint x;\n").is_none());
}

#[test]
fn depends_on_conjunction() {
    let patch = r#"
@a@
@@
first_marker();

@b@
@@
second_marker();

@depends on a && b@
@@
- both_present();
+ confirmed();
"#;
    let both = "void f(void) { first_marker(); second_marker(); both_present(); }\n";
    let out = apply(patch, both).unwrap();
    assert!(out.contains("confirmed();"));

    let only_a = "void f(void) { first_marker(); both_present(); }\n";
    assert!(apply(patch, only_a).is_none());
}

#[test]
fn depends_on_disjunction() {
    let patch = r#"
@a@
@@
first_marker();

@b@
@@
second_marker();

@depends on a || b@
@@
- target();
+ hit();
"#;
    let only_b = "void f(void) { second_marker(); target(); }\n";
    assert!(apply(patch, only_b).unwrap().contains("hit();"));
    let neither = "void f(void) { target(); }\n";
    assert!(apply(patch, neither).is_none());
}

#[test]
fn sequential_rules_see_previous_transformations() {
    // Rule 2 matches code created by rule 1 — Coccinelle's sequential
    // application semantics.
    let patch = r#"
@one@
@@
- step_a();
+ step_b();

@two@
@@
- step_b();
+ step_c();
"#;
    let out = apply(patch, "void f(void) { step_a(); }\n").unwrap();
    assert!(out.contains("step_c();"), "{out}");
    assert!(!out.contains("step_b();"), "{out}");
}

#[test]
fn inherited_identifier_narrows_later_rule() {
    // Rule `find` locates the deprecated call and binds the argument
    // variable; the dependent rule renames only that variable's decl.
    let patch = r#"
@find@
identifier v;
@@
deprecated_use(v);

@depends on find@
identifier find.v;
type T;
@@
- T v;
+ T v = 0;
"#;
    let src =
        "void f(void) {\n    double amount;\n    double other;\n    deprecated_use(amount);\n}\n";
    let out = apply(patch, src).unwrap();
    assert!(out.contains("double amount = 0;"), "{out}");
    assert!(out.contains("double other;"), "{out}");
}

#[test]
fn rule_chain_through_two_scripts() {
    let patch = r#"
@initialize:python@ @@
STEP1 = { "alpha": "beta" }
STEP2 = { "beta": "gamma" }

@m@
identifier f;
expression list el;
@@
f(el)

@script:python s1@
f << m.f;
g;
@@
coccinelle.g = cocci.make_ident(STEP1[f]);

@script:python s2@
g << s1.g;
h;
@@
coccinelle.h = cocci.make_ident(STEP2[g]);

@r@
identifier m.f;
identifier s2.h;
expression list m.el;
@@
- f(el)
+ h(el)
"#;
    let out = apply(patch, "void t(void) { alpha(1, 2); other(3); }\n").unwrap();
    assert!(out.contains("gamma(1, 2);"), "{out}");
    assert!(out.contains("other(3);"), "{out}");
}

// ---- matcher edges ----

#[test]
fn nested_dots_in_two_blocks() {
    let patch = r#"
@@
expression e;
@@
while (e)
{
...
- legacy_poll();
+ modern_poll();
...
}
"#;
    let src = "void f(int n) {\n    while (n > 0) {\n        prep();\n        legacy_poll();\n        post();\n    }\n}\n";
    let out = apply(patch, src).unwrap();
    assert!(out.contains("modern_poll();"), "{out}");
    assert!(out.contains("prep();"), "{out}");
    assert!(out.contains("post();"), "{out}");
}

#[test]
fn expression_list_reuse_must_agree() {
    let patch = r#"
@@
identifier f;
expression list el;
@@
- first(el);
- second(el);
+ fused(el);
"#;
    let same = "void g(void) { first(a, b); second(a, b); }\n";
    let out = apply(patch, same).unwrap();
    assert!(out.contains("fused(a, b);"), "{out}");
    assert!(!out.contains("first"), "{out}");

    let diff = "void g(void) { first(a, b); second(a, c); }\n";
    assert!(apply(patch, diff).is_none());
}

#[test]
fn statement_list_metavar_captures_body() {
    let patch = r#"
@@
identifier f;
statement list SL;
@@
void f(void)
{
+ prologue();
SL
}
"#;
    let src = "void target(void)\n{\n    a();\n    b();\n}\n";
    let out = apply(patch, src).unwrap();
    let p = out.find("prologue();").unwrap();
    assert!(p < out.find("a();").unwrap(), "{out}");
}

#[test]
fn type_metavar_consistency_across_params() {
    let patch = r#"
@@
type T;
identifier f, x, y;
@@
- T f(T x, T y);
+ T f(T x, T y, T z);
"#;
    let same = "double combine(double a, double b);\n";
    let out = apply(patch, same).unwrap();
    assert!(
        out.contains("double combine(double a, double b, double z);"),
        "{out}"
    );
    // Mixed types must not match a single type metavariable.
    let mixed = "double combine(double a, float b);\n";
    assert!(apply(patch, mixed).is_none());
}

#[test]
fn constant_metavar_set_constraint() {
    let patch = r#"
@@
constant c = {8, 16};
expression e;
@@
- aligned_alloc(c, e)
+ smart_alloc(e)
"#;
    let out = apply(
        patch,
        "void f(void) { p = aligned_alloc(16, n); q = aligned_alloc(4, n); }\n",
    )
    .unwrap();
    assert!(out.contains("smart_alloc(n)"), "{out}");
    assert!(out.contains("aligned_alloc(4, n)"), "{out}");
}

#[test]
fn regex_not_constraint() {
    let patch = r#"
@@
identifier f !~ "^debug_";
expression list el;
@@
- f(el);
+ traced(f, el);
"#;
    let out = apply(patch, "void g(void) { compute(1); debug_log(2); }\n").unwrap();
    assert!(out.contains("traced(compute, 1);"), "{out}");
    assert!(out.contains("debug_log(2);"), "{out}");
}

#[test]
fn member_access_patterns() {
    let patch = r#"
@@
expression p;
identifier fld;
@@
- p->fld = 0;
+ reset_field(p, &p->fld);
"#;
    let out = apply(
        patch,
        "void f(struct node *n) { n->next = 0; n->prev = q; }\n",
    )
    .unwrap();
    assert!(out.contains("reset_field(n, &n->next);"), "{out}");
    assert!(out.contains("n->prev = q;"), "{out}");
}

#[test]
fn cast_and_sizeof_matching() {
    let patch = r#"
@@
type T;
expression n;
@@
- (T)malloc(n * sizeof(T))
+ new_array(T, n)
"#;
    let out = apply(
        patch,
        "void f(int n) { double *p; p = (double)malloc(n * sizeof(double)); }\n",
    );
    // `(double)` casts the result; consistency of T across cast and
    // sizeof is required.
    let out = out.unwrap();
    assert!(out.contains("new_array(double, n)"), "{out}");
}

#[test]
fn if_condition_rewrite_rerenders_whole_statement() {
    let patch = r#"
@@
expression a, b;
@@
- if (a == b) flag_equal();
+ if (cmp(a, b)) flag_equal();
"#;
    let out = apply(
        patch,
        "void f(int x, int y) { if (x == y) flag_equal(); }\n",
    )
    .unwrap();
    assert!(out.contains("if (cmp(x, y)) flag_equal();"), "{out}");
}

#[test]
fn do_while_and_switch_matching() {
    let patch = r#"
@@
expression e;
@@
do {
- spin_old(e);
+ spin_new(e);
} while (e);
"#;
    let out = apply(patch, "void f(int n) { do { spin_old(n); } while (n); }\n").unwrap();
    assert!(out.contains("spin_new(n);"), "{out}");
}

// ---- multi-file / driver ----

#[test]
fn driver_reports_mixed_outcomes() {
    let patch = parse_semantic_patch("@@ @@\n- hit();\n+ HIT();\n").unwrap();
    let files = vec![
        ("a.c".to_string(), "void f(void) { hit(); }\n".to_string()),
        ("b.c".to_string(), "void f(void) { miss(); }\n".to_string()),
        ("broken.c".to_string(), "void f( {".to_string()),
    ];
    let outcomes = apply_to_files(&patch, &files, 2).unwrap();
    assert!(outcomes[0].output.is_some());
    assert!(outcomes[1].output.is_none() && outcomes[1].error.is_none());
    assert!(outcomes[2].error.is_some());
}

// ---- cross-crate: CFG of patched output ----

#[test]
fn patched_output_has_wellformed_cfg() {
    use cocci_cast::parser::{parse_translation_unit, NoMeta, ParseOptions};
    use cocci_cast::Item;
    use cocci_flow::{build_cfg, natural_loops, reachable};

    let patch = r#"
@@
@@
#pragma omp ...
{
+ LIKWID_MARKER_START(__func__);
...
+ LIKWID_MARKER_STOP(__func__);
}
"#;
    let src = "void f(int n, double *a) {\n#pragma omp parallel\n{\n    for (int i = 0; i < n; ++i) a[i] = 0;\n}\n}\n";
    let out = apply(patch, src).unwrap();
    let tu = parse_translation_unit(&out, ParseOptions::c(), &NoMeta).unwrap();
    let Item::Function(f) = &tu.items[0] else {
        panic!()
    };
    let cfg = build_cfg(f);
    // Instrumentation must not break structure: the loop is still there
    // and every node is reachable.
    assert_eq!(natural_loops(&cfg).len(), 1);
    let reach = reachable(&cfg);
    assert!(reach.iter().all(|&r| r));
}

// ---- whole-file shape preservation ----

#[test]
fn untouched_regions_are_byte_identical() {
    let patch = r#"
@@
expression e;
@@
- old_call(e);
+ new_call(e);
"#;
    let src = "/* header   comment\n   with  weird    spacing */\nvoid f(void) {\n\tint  x   =  1;\n\told_call(x);\n\t/* tail */\n}\n";
    let out = apply(patch, src).unwrap();
    assert!(out.contains("/* header   comment\n   with  weird    spacing */"));
    assert!(out.contains("\tint  x   =  1;"));
    assert!(out.contains("\t/* tail */"));
    assert!(out.contains("new_call(x);"));
}

// ---- when-constrained dots ----

#[test]
fn when_not_constrains_skipped_region() {
    // Lock/unlock pairing: insert a check only when the skipped region
    // does not already release the lock.
    let patch = r#"
@@
expression l;
@@
lock(l);
... when != unlock(l)
- finish();
+ unlock(l); finish();
"#;
    // Case 1: no unlock in between → rewrite fires.
    let src1 = "void f(void) { lock(m); work(); finish(); }\n";
    let out1 = apply(patch, src1).unwrap();
    assert!(out1.contains("unlock(m); finish();"), "{out1}");

    // Case 2: unlock already present in the skipped region → no match.
    let src2 = "void f(void) { lock(m); work(); unlock(m); finish(); }\n";
    assert!(apply(patch, src2).is_none());
}

#[test]
fn when_any_is_unconstrained() {
    let patch = r#"
@@
@@
start();
... when any
- stop();
+ halt();
"#;
    let src = "void f(void) { start(); anything(); stop(); }\n";
    assert!(apply(patch, src).unwrap().contains("halt();"));
}

#[test]
fn when_not_with_metavariable_consistency() {
    // The forbidden expression uses the same metavariable bound by the
    // anchor statement: only re-assignments of THAT variable block.
    let patch = r#"
@@
identifier v;
expression e;
@@
v = checked_init(e);
... when != v
- use_raw(v);
+ use_checked(v);
"#;
    // v untouched between init and use → fires.
    let ok = "void f(void) { x = checked_init(0); other = 3; use_raw(x); }\n";
    assert!(apply(patch, ok).unwrap().contains("use_checked(x);"));
    // v mentioned in between → blocked.
    let blocked = "void f(void) { x = checked_init(0); log(x); use_raw(x); }\n";
    assert!(apply(patch, blocked).is_none());
}
