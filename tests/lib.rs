//! Shared helpers for the integration-test crate, chiefly a minimal
//! in-house property-test harness.
//!
//! The environment builds offline with zero crates.io dependencies, so
//! `proptest` is replaced by this module: a [`Runner`] drives a property
//! closure over many cases fed from the workspace's own deterministic
//! [`SplitMix64`] PRNG, and a small library of generator functions
//! produces the structured inputs the properties need (identifiers,
//! bounded strings, well-formed C expression texts).
//!
//! Failures reproduce exactly: the runner derives its stream from the
//! property's name (or `COCCI_PROP_SEED`), and on panic reports the seed
//! and case index before propagating, so a failing case can be replayed
//! with `COCCI_PROP_SEED=<seed> cargo test <property>`.

pub use cocci_workloads::rng::SplitMix64;

/// Number of cases each property runs by default (proptest's default
/// config in the seed used 128 for the heavyweight parser properties).
pub const DEFAULT_CASES: usize = 128;

/// Drives one property over many PRNG-fed cases.
pub struct Runner {
    name: &'static str,
    cases: usize,
    seed: u64,
}

impl Runner {
    /// A runner for the property `name`, seeded from the name (stable
    /// across runs) unless `COCCI_PROP_SEED` overrides it.
    pub fn new(name: &'static str) -> Self {
        let seed = std::env::var("COCCI_PROP_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| fnv1a(name.as_bytes()));
        Runner {
            name,
            cases: DEFAULT_CASES,
            seed,
        }
    }

    /// Override the case count.
    pub fn cases(mut self, n: usize) -> Self {
        self.cases = n;
        self
    }

    /// Run `property` for every case. The closure draws its inputs from
    /// the provided PRNG and signals failure by panicking (use the std
    /// `assert!` family); the seed and case index are reported for
    /// replay before the panic propagates.
    pub fn run(self, property: impl Fn(&mut SplitMix64)) {
        for case in 0..self.cases {
            // One independent stream per case so a failure does not
            // depend on how many draws earlier cases made.
            let mut rng = SplitMix64::seed_from_u64(self.seed.wrapping_add(case as u64));
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
            if let Err(panic) = result {
                eprintln!(
                    "property {} failed at case {case}/{} (COCCI_PROP_SEED={})",
                    self.name, self.cases, self.seed
                );
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// FNV-1a, used to derive a stable per-property seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---- generator helpers ----

/// One element of `options`, uniformly.
pub fn pick<'a, T: ?Sized>(rng: &mut SplitMix64, options: &'a [&'a T]) -> &'a T {
    options[rng.gen_range(0..options.len())]
}

/// A string of `len` chars drawn from `alphabet`.
pub fn string_from(rng: &mut SplitMix64, alphabet: &str, len: usize) -> String {
    let chars: Vec<char> = alphabet.chars().collect();
    (0..len)
        .map(|_| chars[rng.gen_range(0..chars.len())])
        .collect()
}

/// A string whose length is uniform in `min..=max`, chars from `alphabet`.
pub fn string_of_len(rng: &mut SplitMix64, alphabet: &str, min: usize, max: usize) -> String {
    let len = rng.gen_range(min..max + 1);
    string_from(rng, alphabet, len)
}

/// A C identifier: `[a-z_][a-z0-9_]{0,6}`.
pub fn ident_soup_word(rng: &mut SplitMix64) -> String {
    let mut s = string_from(rng, "abcdefghijklmnopqrstuvwxyz_", 1);
    s.push_str(&string_of_len(
        rng,
        "abcdefghijklmnopqrstuvwxyz0123456789_",
        0,
        6,
    ));
    s
}

/// One of a fixed pool of plausible C identifiers (mirrors the seed's
/// `arb_ident` strategy).
pub fn arb_ident(rng: &mut SplitMix64) -> String {
    pick(rng, &["alpha", "beta", "buf", "n", "idx"]).to_string()
}

/// A well-formed C expression as text, by construction. `depth` bounds
/// the recursion (the seed's strategy used depth 4).
pub fn arb_expr_text(rng: &mut SplitMix64, depth: usize) -> String {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            arb_ident(rng)
        } else {
            rng.gen_range(0..1000).to_string()
        };
    }
    match rng.gen_range(0..7) {
        0 => format!(
            "{} + {}",
            arb_expr_text(rng, depth - 1),
            arb_expr_text(rng, depth - 1)
        ),
        1 => format!(
            "{} * {}",
            arb_expr_text(rng, depth - 1),
            arb_expr_text(rng, depth - 1)
        ),
        2 => format!(
            "{}[{}]",
            arb_expr_text(rng, depth - 1),
            arb_expr_text(rng, depth - 1)
        ),
        3 => format!(
            "f({}, {})",
            arb_expr_text(rng, depth - 1),
            arb_expr_text(rng, depth - 1)
        ),
        4 => format!("-{}", arb_expr_text(rng, depth - 1)),
        5 => format!("({})", arb_expr_text(rng, depth - 1)),
        _ => format!(
            "{} ? {} : {}",
            arb_expr_text(rng, depth - 1),
            arb_expr_text(rng, depth - 1),
            arb_expr_text(rng, depth - 1)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_reaches_every_case_with_fresh_stream() {
        let count = std::cell::Cell::new(0usize);
        Runner::new("runner_smoke").cases(16).run(|rng| {
            let _ = rng.next_u64();
            count.set(count.get() + 1);
        });
        assert_eq!(count.get(), 16);
    }

    #[test]
    fn generators_stay_in_spec() {
        let mut rng = SplitMix64::seed_from_u64(1);
        for _ in 0..200 {
            let w = ident_soup_word(&mut rng);
            assert!((1..=7).contains(&w.len()), "{w:?}");
            assert!(w.chars().next().unwrap().is_ascii_lowercase() || w.starts_with('_'));
            let s = string_of_len(&mut rng, "ab", 2, 5);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }
}
