//! shared helpers
