//! LIKWID marker-API instrumentation (UC1) over a generated OpenMP
//! codebase, applied with the parallel multi-file driver — the
//! "interfacing with an instrumentation API" use case the paper calls
//! one of the simplest and most useful.
//!
//! ```text
//! cargo run -p cocci-examples --bin instrument --release
//! ```

use cocci_core::apply_to_files;
use cocci_examples::{section, timed};
use cocci_smpl::parse_semantic_patch;
use cocci_workloads::gen::{omp_codebase, CodebaseSpec};

const PATCH: &str = r#"
@@ @@
#include <omp.h>
+ #include <likwid-marker.h>

@@ @@
#pragma omp ...
{
+ LIKWID_MARKER_START(__func__);
...
+ LIKWID_MARKER_STOP(__func__);
}
"#;

fn main() {
    let spec = CodebaseSpec {
        files: 24,
        functions_per_file: 20,
        seed: 99,
    };
    let files = omp_codebase(&spec);
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|f| (f.name.clone(), f.text.clone()))
        .collect();
    let regions: usize = inputs
        .iter()
        .map(|(_, t)| t.matches("#pragma omp parallel").count())
        .sum();

    section("workload");
    println!(
        "{} files, {regions} OpenMP parallel regions to instrument",
        files.len()
    );

    let patch = parse_semantic_patch(PATCH).expect("patch parses");

    for threads in [1usize, 2, 4] {
        let (outcomes, secs) = timed(|| apply_to_files(&patch, &inputs, threads).unwrap());
        let starts: usize = outcomes
            .iter()
            .filter_map(|o| o.output.as_deref())
            .map(|t| t.matches("LIKWID_MARKER_START").count())
            .sum();
        let headers: usize = outcomes
            .iter()
            .filter_map(|o| o.output.as_deref())
            .map(|t| t.matches("#include <likwid-marker.h>").count())
            .sum();
        println!(
            "threads={threads}: {starts} regions instrumented, {headers} headers added, {secs:.3}s"
        );
        assert_eq!(starts, regions);
    }

    section("sample");
    let out = outcomes_sample(&patch, &inputs);
    let snippet: String = out
        .lines()
        .skip_while(|l| !l.contains("#pragma omp parallel"))
        .take(7)
        .collect::<Vec<_>>()
        .join("\n");
    println!("{snippet}");
}

fn outcomes_sample(patch: &cocci_smpl::SemanticPatch, inputs: &[(String, String)]) -> String {
    apply_to_files(patch, &inputs[..1], 1).unwrap()[0]
        .output
        .clone()
        .unwrap_or_default()
}
