//! CI validator for `spatch --trace-out` profiles: checks that the
//! Chrome trace-event JSON is well-formed, that every engine phase
//! recorded at least one span, and that the per-phase duration totals
//! reconcile (within 5%) with the `metrics` block of the run's
//! `--report` JSON — the three telemetry surfaces must tell one story.
//!
//! ```text
//! cargo run -p cocci-examples --example trace_check -- TRACE.json REPORT.json
//! ```
//!
//! Exits non-zero with a diagnostic on the first violation.

use cocci_core::report::json;
use cocci_core::ApplyReport;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_check: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, report_path) = match (args.first(), args.get(1)) {
        (Some(t), Some(r)) => (t, r),
        _ => return fail("usage: trace_check <trace.json> <report.json>"),
    };

    let trace_text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("{trace_path}: {e}")),
    };
    let trace = match json::parse(&trace_text) {
        Ok(v) => v,
        Err(e) => return fail(&format!("{trace_path}: not valid JSON: {e}")),
    };
    let events = match trace
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(json::Value::as_array)
    {
        Some(evs) => evs,
        None => return fail(&format!("{trace_path}: no traceEvents array")),
    };

    // Sum complete-event ("X") durations per phase name; µs -> ns.
    let mut spans: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for ev in events {
        let Some(o) = ev.as_object() else {
            return fail(&format!("{trace_path}: non-object trace event"));
        };
        match o.get("ph").and_then(json::Value::as_str) {
            Some("X") => {
                for key in ["pid", "tid", "ts", "dur"] {
                    if o.get(key).and_then(json::Value::as_f64).is_none() {
                        return fail(&format!("{trace_path}: X event missing numeric {key}"));
                    }
                }
                let Some(name) = o.get("name").and_then(json::Value::as_str) else {
                    return fail(&format!("{trace_path}: X event missing name"));
                };
                let dur_us = o.get("dur").and_then(json::Value::as_f64).unwrap_or(0.0);
                let e = spans.entry(name.to_string()).or_insert((0, 0));
                e.0 += 1;
                e.1 += (dur_us * 1e3).round() as u64;
            }
            Some(_) => {} // "M" metadata and any future event kinds
            None => return fail(&format!("{trace_path}: event missing ph")),
        }
    }
    for phase in cocci_trace::Phase::ALL {
        match spans.get(phase.name()) {
            Some(&(count, _)) if count > 0 => {}
            _ => {
                return fail(&format!(
                    "{trace_path}: no spans for phase {}",
                    phase.name()
                ))
            }
        }
    }

    let report_text = match std::fs::read_to_string(report_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("{report_path}: {e}")),
    };
    let report = match ApplyReport::from_json(&report_text) {
        Ok(r) => r,
        Err(e) => return fail(&format!("{report_path}: {e}")),
    };
    let Some(metrics) = &report.metrics else {
        return fail(&format!("{report_path}: report has no metrics block"));
    };

    // Both surfaces snapshot the same rings after the workers join, so
    // span counts must agree exactly and durations within rounding; the
    // 5% budget is pure slack for the µs quantisation of the trace file.
    for phase in cocci_trace::Phase::ALL {
        let name = phase.name();
        let (trace_count, trace_ns) = spans.get(name).copied().unwrap_or((0, 0));
        let report_count = metrics.phase_counts.get(name).copied().unwrap_or(0);
        let report_ns = metrics.phase_total_ns(name);
        if trace_count != report_count {
            return fail(&format!(
                "phase {name}: {trace_count} trace spans vs {report_count} in the report metrics"
            ));
        }
        let drift = (trace_ns as f64 - report_ns as f64).abs();
        if drift > report_ns.max(1_000) as f64 * 0.05 {
            return fail(&format!(
                "phase {name}: trace total {trace_ns}ns vs report {report_ns}ns (>5% apart)"
            ));
        }
    }
    println!(
        "trace_check: ok — {} events, {} phases reconciled against {}",
        events.len(),
        cocci_trace::Phase::ALL.len(),
        report_path
    );
    ExitCode::SUCCESS
}
