//! Removal of explicit loop unrolling (UC5): the paper's scenario of an
//! inherited codebase full of script-generated 4×-unrolled loops whose
//! generator is lost. The safe `p1`/`r1` rule pair normalizes the body
//! statements and collapses them only when they were truly identical
//! modulo the index offset, replacing manual unrolling with
//! `#pragma omp unroll partial(4)`.
//!
//! ```text
//! cargo run -p cocci-examples --bin unroll --release
//! ```

use cocci_core::apply_to_files;
use cocci_examples::{section, timed};
use cocci_smpl::parse_semantic_patch;
use cocci_workloads::gen::{unrolled_codebase, CodebaseSpec};

const PATCH: &str = r#"
@p1@
type T;
identifier i,l;
constant k={4};
statement A,B,C,D;
@@
for (T i=0; i+k-1 < l; i+=k)
{
\( A \& i+0 \) \( B \&
- i+1
+ i+0
\) \( C \&
- i+2
+ i+0
\) \( D \&
- i+3
+ i+0
\)
}

@r1@
type T;
identifier i,l;
constant k={4};
statement p1.A;
@@
+ #pragma omp unroll partial(4)
for (T i=0; i
- +k-1
< l ;
- i+=k
+ ++i
)
{
A
- A A A
}
"#;

fn main() {
    let spec = CodebaseSpec {
        files: 12,
        functions_per_file: 10,
        seed: 7,
    };
    let files = unrolled_codebase(&spec, 4);
    let loops = spec.files * spec.functions_per_file;
    section("workload");
    println!(
        "{} files, {loops} hand-unrolled loops (factor 4)",
        files.len()
    );

    let patch = parse_semantic_patch(PATCH).expect("patch parses");
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|f| (f.name.clone(), f.text.clone()))
        .collect();

    let (outcomes, secs) = timed(|| apply_to_files(&patch, &inputs, 0).unwrap());
    let pragmas: usize = outcomes
        .iter()
        .filter_map(|o| o.output.as_deref())
        .map(|t| t.matches("#pragma omp unroll partial(4)").count())
        .sum();
    let leftovers: usize = outcomes
        .iter()
        .filter_map(|o| o.output.as_deref())
        .map(|t| t.matches("[i+1]").count())
        .sum();
    section("result");
    println!(
        "{pragmas}/{loops} loops re-rolled in {secs:.3}s; {leftovers} leftover unrolled statements"
    );
    assert_eq!(pragmas, loops, "every generated loop must re-roll");
    assert_eq!(leftovers, 0);

    section("before/after (first loop)");
    let before = &inputs[0].1;
    let after = outcomes[0].output.as_deref().unwrap();
    println!(
        "--- before ---\n{}\n--- after ---\n{}",
        &before[..before.find("}\n\n").map(|i| i + 2).unwrap_or(before.len())],
        &after[..after.find("}\n\n").map(|i| i + 2).unwrap_or(after.len())]
    );
}
