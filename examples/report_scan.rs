//! Report mode walkthrough: reporting-only rules, position
//! metavariables, and the findings pipeline.
//!
//! A rule whose body is pure context (no `-`/`+` lines) rewrites
//! nothing; every match witness becomes a *finding* — `file:line:col`
//! plus the rule name and bindings — resolved through the CFG route for
//! statement dots, so an `acquire`/`release` pair is only reported when
//! **every** path between the two reaches the release.
//!
//! The example materializes a generated `report_scan` corpus (plus the
//! scanning patch) under a directory and then runs the engine over it
//! in-process, printing the grep-style findings. CI reuses the
//! materialized tree to drive the `spatch --mode report` binary across
//! all three output formats.
//!
//! ```text
//! cargo run -p cocci-examples --example report_scan [-- OUTDIR]
//! ```

use cocci_core::corpus::{apply_to_corpus, CorpusOptions, WalkSource};
use cocci_examples::section;
use cocci_smpl::parse_semantic_patch;
use cocci_workloads::corpus::{write_corpus_tree, CorpusTreeSpec};
use std::path::PathBuf;

/// The scanning patch: pure context, position on the opening call.
pub const SCAN_PATCH: &str = r#"@scan@
expression r;
position p;
@@
acquire(r)@p;
...
release(r);
"#;

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/report-scan-demo"));

    section("materialize the corpus + patch");
    let spec = CorpusTreeSpec {
        files_per_family: 4,
        functions_per_file: 8,
        seed: 0x5CA7,
    };
    let stats = write_corpus_tree(&root, &spec).expect("write corpus tree");
    std::fs::write(root.join("scan.cocci"), SCAN_PATCH).expect("write patch");
    println!(
        "wrote {} files under {} ({} walkable)",
        stats.written,
        root.display(),
        stats.walkable
    );

    section("scan (report mode: findings, no rewrites)");
    let patch = parse_semantic_patch(SCAN_PATCH).expect("parse patch");
    assert!(patch.is_report_only(), "pure-context patch");
    let mut source = WalkSource::discover(std::slice::from_ref(&root), &[]);
    let report = apply_to_corpus(&patch, &mut source, &CorpusOptions::default(), |_, _, _| {})
        .expect("corpus run");
    let mut total = 0usize;
    for f in &report.files {
        for fd in &f.findings {
            println!("{}", fd.text_line());
            total += 1;
        }
    }
    println!("\n{total} finding(s); {}", report.summary());
    assert!(total > 0, "the scan family always contains clean pairs");
}
