//! Quickstart: parse a semantic patch, apply it to a C buffer, inspect
//! the result.
//!
//! ```text
//! cargo run -p cocci-examples --bin quickstart
//! ```

use cocci_core::Patcher;
use cocci_examples::section;
use cocci_smpl::parse_semantic_patch;

const PATCH: &str = r#"
@fix@
expression x;
@@
- deprecated_sum(x, x)
+ 2 * modern_scale(x)
"#;

const TARGET: &str = r#"#include <math.h>

double energy(double v) {
    double e = deprecated_sum(v, v);
    double f = deprecated_sum(v + 1.0, v + 1.0);
    double keep = deprecated_sum(v, 2.0);
    return e + f + keep;
}
"#;

fn main() {
    section("semantic patch");
    println!("{}", PATCH.trim());

    section("target");
    print!("{TARGET}");

    let patch = parse_semantic_patch(PATCH).expect("patch parses");
    let mut patcher = Patcher::new(&patch).expect("patch compiles");
    let out = patcher
        .apply("energy.c", TARGET)
        .expect("apply succeeds")
        .expect("the target contains two matches");

    section("result");
    print!("{out}");

    // The expression metavariable `x` forces both arguments to be the
    // SAME expression: `deprecated_sum(v, 2.0)` is untouched.
    assert!(out.contains("2 * modern_scale(v)"));
    assert!(out.contains("2 * modern_scale(v + 1.0)"));
    assert!(out.contains("deprecated_sum(v, 2.0)"));
    section("ok");
    println!("metavariable equality constraint respected; 2 of 3 call sites rewritten");
}
