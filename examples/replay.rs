//! Replayable refactorings (paper §4): keep the terse CPU reference code
//! as the single versioned source of truth, keep performance-oriented
//! changes as semantic patches, and *derive* specialized variants on
//! demand instead of maintaining parallel branches.
//!
//! This example maintains one base file and derives three build variants
//! by replaying different patch stacks:
//!
//! * `debug`       — base (no patches): maximum intelligibility;
//! * `profiled`    — base + LIKWID instrumentation (UC1);
//! * `hip`         — base + CUDA→HIP translation (UC7/UC8);
//! * `hip+profiled`— both stacks composed, in order.
//!
//! ```text
//! cargo run -p cocci-examples --bin replay
//! ```

use cocci_core::Patcher;
use cocci_examples::section;
use cocci_smpl::parse_semantic_patch;
use cocci_workloads::patches::{UC1_LIKWID, UC78_CUDA_HIP_FULL};

const BASE: &str = r#"#include <omp.h>

void accumulate(int n, double *acc, double *w) {
#pragma omp parallel
{
    for (int i = 0; i < n; ++i)
        acc[i] += 0.5 * w[i];
}
}

void gpu_stage(int n, double *buf) {
    double r;
    r = curand_uniform_double(rng_state);
    buf[0] = r;
    reduce_kernel<<<grid, block, 0, stream>>>(n, buf);
}
"#;

/// Replay a stack of semantic patches over a base text.
fn replay(base: &str, stack: &[(&str, &str)]) -> String {
    let mut text = base.to_string();
    for (name, patch_text) in stack {
        let patch = parse_semantic_patch(patch_text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut patcher = Patcher::new(&patch).unwrap();
        if let Some(next) = patcher
            .apply(name, &text)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
        {
            text = next;
        }
    }
    text
}

fn main() {
    section("versioned artifacts");
    println!(
        "base file: {} lines; patch stack: likwid.cocci ({} lines), cuda2hip.cocci ({} lines)",
        BASE.lines().count(),
        UC1_LIKWID.trim().lines().count(),
        UC78_CUDA_HIP_FULL.trim().lines().count(),
    );

    let variants: &[(&str, Vec<(&str, &str)>)] = &[
        ("debug", vec![]),
        ("profiled", vec![("likwid.cocci", UC1_LIKWID)]),
        ("hip", vec![("cuda2hip.cocci", UC78_CUDA_HIP_FULL)]),
        (
            "hip+profiled",
            vec![
                ("cuda2hip.cocci", UC78_CUDA_HIP_FULL),
                ("likwid.cocci", UC1_LIKWID),
            ],
        ),
    ];

    for (name, stack) in variants {
        let derived = replay(BASE, stack);
        section(&format!("variant `{name}`"));
        print!("{derived}");
        match *name {
            "debug" => assert_eq!(derived, BASE),
            "profiled" => {
                assert!(derived.contains("LIKWID_MARKER_START"));
                assert!(derived.contains("curand_uniform_double"));
            }
            "hip" => {
                assert!(derived.contains("hipLaunchKernelGGL"));
                assert!(derived.contains("rocrand_uniform_double"));
                assert!(!derived.contains("LIKWID"));
            }
            "hip+profiled" => {
                assert!(derived.contains("hipLaunchKernelGGL"));
                assert!(derived.contains("LIKWID_MARKER_START"));
            }
            _ => unreachable!(),
        }
    }

    section("summary");
    println!(
        "one base + two patches replayed into 4 build variants;\n\
         no long-lived branches, every variant regenerable on demand."
    );
}
