//! CI validator for `spatch --explain` runs: checks that the report's
//! funnel counters, its embedded `explain` block, and the per-outcome
//! `kill_stage` fields all tell one story — **exactly**, no tolerance.
//! The three surfaces are written from the same `record_attempt` call
//! per attempt, so any drift between them is a bug, not noise.
//!
//! ```text
//! cargo run -p cocci-examples --example explain_check -- REPORT.json
//! ```
//!
//! Exits non-zero with a diagnostic on the first violation.

use cocci_core::explain::{funnel_rows, KillStage};
use cocci_core::ApplyReport;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("explain_check: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let Some(report_path) = std::env::args().nth(1) else {
        return fail("usage: explain_check <report.json>");
    };
    let report_text = match std::fs::read_to_string(&report_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("{report_path}: {e}")),
    };
    let report = match ApplyReport::from_json(&report_text) {
        Ok(r) => r,
        Err(e) => return fail(&format!("{report_path}: {e}")),
    };
    let Some(block) = &report.explain else {
        return fail(&format!(
            "{report_path}: no explain block — was the run made with --explain?"
        ));
    };
    let Some(metrics) = &report.metrics else {
        return fail(&format!("{report_path}: report has no metrics block"));
    };
    if block.dropped > 0 {
        // Over the attempt cap the block is a sample, not a census, and
        // exact reconciliation is off the table; CI fixtures must stay
        // well under it.
        return fail(&format!(
            "{report_path}: explain block dropped {} attempt(s); cannot reconcile exactly",
            block.dropped
        ));
    }

    // Counters vs the block: the attempts counter and every per-stage
    // kill counter must equal the block's census of the same thing.
    let attempts = metrics.counter("attempts");
    if attempts != block.attempts.len() as u64 {
        return fail(&format!(
            "attempts counter {attempts} vs {} traced attempts in the explain block",
            block.attempts.len()
        ));
    }
    for stage in KillStage::ALL {
        let Some(counter) = stage.counter() else {
            continue;
        };
        let counted = metrics.counter(counter.name());
        let traced = block.attempts.iter().filter(|a| a.stage == stage).count() as u64;
        if counted != traced {
            return fail(&format!(
                "counter {} is {counted} but the explain block holds {traced} {} attempt(s)",
                counter.name(),
                stage
            ));
        }
    }

    // The funnel derived from those counters must be monotone and land
    // exactly on the completed-attempt count.
    let rows = funnel_rows(|name| metrics.counter(name));
    if rows.windows(2).any(|w| w[0].1 < w[1].1) {
        return fail(&format!("funnel is not monotone: {rows:?}"));
    }
    let completed = block
        .attempts
        .iter()
        .filter(|a| a.stage == KillStage::Completed)
        .count() as u64;
    match rows.last() {
        Some(&("completed", v)) if v == completed => {}
        other => {
            return fail(&format!(
                "funnel bottom row {other:?} vs {completed} completed attempts"
            ))
        }
    }

    // Per-outcome attribution: each file's kill_stage is the deepest
    // stage of its traced attempts, and every per-rule kill_stage row
    // has a block attempt agreeing with it.
    for f in &report.files {
        let deepest = block
            .attempts
            .iter()
            .filter(|a| a.file == f.name)
            .map(|a| a.stage)
            .max();
        if deepest.is_some() && f.kill_stage != deepest {
            return fail(&format!(
                "{}: kill_stage {:?} vs deepest traced stage {:?}",
                f.name, f.kill_stage, deepest
            ));
        }
        for r in &f.rules {
            let Some(stage) = r.kill_stage else {
                return fail(&format!("{}: rule {} has no kill_stage", f.name, r.id));
            };
            if !block
                .attempts
                .iter()
                .any(|a| a.file == f.name && a.rule == r.id && a.stage == stage)
            {
                return fail(&format!(
                    "{}: rule {} records kill_stage {stage} but no traced attempt agrees",
                    f.name, r.id
                ));
            }
        }
    }

    println!(
        "explain_check: ok — {} attempts across {} file(s) reconcile exactly with the funnel counters of {}",
        block.attempts.len(),
        report.files.len(),
        report_path
    );
    ExitCode::SUCCESS
}
