//! CUDA→HIP migration of a generated miniapp codebase — the paper's
//! "Translation of very similar APIs" use case (UC7/UC8) at scale, with
//! a side-by-side comparison against the hipify-perl-style textual
//! rewriter.
//!
//! ```text
//! cargo run -p cocci-examples --bin cuda2hip --release
//! ```

use cocci_core::apply_to_files;
use cocci_examples::{section, timed};
use cocci_smpl::parse_semantic_patch;
use cocci_textpatch::{TextPatcher, CUDA_HIP_DICT};
use cocci_workloads::gen::{cuda_codebase, CodebaseSpec};

const PATCH: &str = r#"
#spatch --c++
@initialize:python@ @@
C2HF = { "curand_uniform_double": "rocrand_uniform_double" }
C2HT = { "__half": "rocblas_half" }

@cfe@
identifier fn;
expression list el;
position p;
@@
fn@p(el)

@script:python cf2hf@
fn << cfe.fn;
nf;
@@
coccinelle.nf = cocci.make_ident(C2HF[fn]);

@hfe@
identifier cfe.fn;
identifier cf2hf.nf;
position cfe.p;
@@
- fn@p
+ nf
(...)

@cte@
type c_t;
identifier i;
@@
c_t i;

@script:python ct2hf@
c_t << cte.c_t;
h_t;
@@
coccinelle.h_t = cocci.make_type(C2HT[c_t]);

@hte@
type ct2hf.h_t;
type cte.c_t;
identifier cte.i;
@@
- c_t i;
+ h_t i;

@chevron@
identifier k;
expression b,t,x,y;
expression list el;
@@
- k<<<b,t,x,y>>>(el)
+ hipLaunchKernelGGL(k,b,t,x,y,el)
"#;

fn main() {
    let spec = CodebaseSpec {
        files: 16,
        functions_per_file: 12,
        seed: 2024,
    };
    let files = cuda_codebase(&spec);
    let total_loc: usize = files.iter().map(|f| f.text.lines().count()).sum();
    section("workload");
    println!("{} CUDA files, {total_loc} LoC", files.len());

    let patch = parse_semantic_patch(PATCH).expect("patch parses");
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|f| (f.name.clone(), f.text.clone()))
        .collect();

    section("semantic engine");
    let (outcomes, secs) = timed(|| apply_to_files(&patch, &inputs, 0).unwrap());
    let changed = outcomes.iter().filter(|o| o.output.is_some()).count();
    let launches: usize = outcomes
        .iter()
        .filter_map(|o| o.output.as_deref())
        .map(|t| t.matches("hipLaunchKernelGGL").count())
        .sum();
    let rands: usize = outcomes
        .iter()
        .filter_map(|o| o.output.as_deref())
        .map(|t| t.matches("rocrand_uniform_double").count())
        .sum();
    println!(
        "{changed}/{} files transformed in {:.3}s: {launches} kernel launches, {rands} cuRAND calls, all __half decls retyped",
        outcomes.len(),
        secs
    );
    for o in &outcomes {
        if let Some(e) = &o.error {
            eprintln!("  ERROR {}: {e}", o.name);
        }
    }

    section("textual baseline (hipify-perl fidelity)");
    let tp = TextPatcher::word_boundary(CUDA_HIP_DICT);
    let (n_replacements, tsecs) = timed(|| {
        inputs
            .iter()
            .map(|(_, text)| tp.apply(text).1)
            .sum::<usize>()
    });
    println!("{n_replacements} text replacements in {tsecs:.3}s (no AST: strings/comments are fair game)");

    section("sample diff (first transformed file)");
    if let Some(o) = outcomes.iter().find(|o| o.output.is_some()) {
        let new_text = o.output.as_deref().unwrap();
        for (a, b) in inputs
            .iter()
            .find(|(n, _)| *n == o.name)
            .map(|(_, t)| t)
            .unwrap()
            .lines()
            .zip(new_text.lines())
        {
            if a != b {
                println!("- {a}\n+ {b}");
            }
        }
    }
}
