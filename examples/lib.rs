//! Shared helpers for the example binaries.

use std::time::Instant;

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Print a boxed section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}
