//! The AoS→SoA motivation (experiment E4): why the paper's flagship
//! semantic-patch campaign ([ML21] on the GADGET code) is worth doing at
//! all. Runs the same particle kick-drift update in array-of-structures
//! and structure-of-arrays layouts and reports throughput.
//!
//! Run with `--release`, otherwise the layout effect is buried in
//! unoptimized code:
//!
//! ```text
//! cargo run -p cocci-examples --bin aos2soa --release
//! ```

use cocci_examples::section;
use cocci_workloads::kernels::{
    checksum_aos, checksum_soa, init_aos, init_soa, update_aos, update_soa,
};
use std::time::Instant;

fn main() {
    section("AoS vs SoA particle update (3 of 10 fields touched)");
    println!(
        "{:>12} {:>14} {:>14} {:>9}",
        "particles", "AoS Mupd/s", "SoA Mupd/s", "SoA/AoS"
    );
    for exp in [10u32, 12, 14, 16, 18, 20] {
        let n = 1usize << exp;
        let iters = (1usize << 24) / n.max(1);
        let iters = iters.max(4);

        let mut aos = init_aos(n);
        let t0 = Instant::now();
        for _ in 0..iters {
            update_aos(&mut aos, 1e-6);
        }
        let aos_s = t0.elapsed().as_secs_f64();

        let mut soa = init_soa(n);
        let t1 = Instant::now();
        for _ in 0..iters {
            update_soa(&mut soa, 1e-6);
        }
        let soa_s = t1.elapsed().as_secs_f64();

        // Keep the optimizer honest and check both computed the same.
        let (ca, cs) = (checksum_aos(&aos), checksum_soa(&soa));
        assert!(
            (ca - cs).abs() <= 1e-6 * ca.abs().max(1.0),
            "layouts diverged: {ca} vs {cs}"
        );

        let updates = (n * iters) as f64;
        let aos_thru = updates / aos_s / 1e6;
        let soa_thru = updates / soa_s / 1e6;
        println!(
            "{:>12} {:>14.1} {:>14.1} {:>8.2}x",
            n,
            aos_thru,
            soa_thru,
            soa_thru / aos_thru
        );
    }
    println!(
        "\nExpected shape (paper/[BIHK16]): SoA >= AoS everywhere the\n\
         working set leaves cache, because AoS drags 10 doubles per\n\
         particle through memory to update 3."
    );
}
