//! Scan-mode walkthrough: one parse serving a whole directory of rules.
//!
//! `spatch scan --rules <dir>` compiles every `.cocci` file in a
//! directory into one [`CompiledRuleSet`], prefilters all rules with a
//! single merged literal automaton per file, and parses each surviving
//! file exactly once into a `FileContext` shared by every rule.
//!
//! The example materializes a `rule_matrix` workload — 10 report-only
//! rules (prefilter-atom groups of 2) and a mixed corpus — under a
//! directory, then runs the scan in-process and prints the per-rule
//! finding counts plus the parse-count probe. CI reuses the
//! materialized tree to drive the `spatch scan` binary across output
//! formats and to diff the N-rule scan against N single-rule runs.
//!
//! ```text
//! cargo run -p cocci-examples --example scan_matrix [-- OUTDIR]
//! ```

use cocci_core::corpus::{CorpusOptions, WalkSource};
use cocci_core::{scan_corpus, CompiledRuleSet, ScanOutcome};
use cocci_examples::section;
use cocci_workloads::rule_matrix::{rule_matrix_codebase, rule_matrix_rules, RuleMatrixSpec};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/scan-matrix-demo"));

    section("materialize the rule matrix (rules/ + corpus/)");
    let spec = RuleMatrixSpec {
        rules: 10,
        files: 12,
        functions_per_file: 8,
        overlap: 2,
        seed: 0x5CA2,
    };
    let rules_dir = root.join("rules");
    let corpus_dir = root.join("corpus");
    std::fs::create_dir_all(&rules_dir).expect("mkdir rules");
    std::fs::create_dir_all(&corpus_dir).expect("mkdir corpus");
    for f in rule_matrix_rules(&spec) {
        std::fs::write(rules_dir.join(&f.name), &f.text).expect("write rule");
    }
    for f in rule_matrix_codebase(&spec) {
        std::fs::write(corpus_dir.join(&f.name), &f.text).expect("write corpus file");
    }
    println!(
        "wrote {} rules + {} corpus files under {}",
        spec.rules,
        spec.files,
        root.display()
    );

    section("scan (all rules, one parse per file)");
    let set = CompiledRuleSet::load_dir(&rules_dir).expect("load rules dir");
    let mut source = WalkSource::discover(std::slice::from_ref(&corpus_dir), &[]);
    let mut outcomes: Vec<ScanOutcome> = Vec::new();
    let report = scan_corpus(
        &set,
        &mut source,
        &CorpusOptions::default(),
        None,
        |_, _, o| outcomes.push(o.clone()),
    )
    .expect("scan corpus");

    let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
    let mut parses = 0usize;
    let mut pruned_files = 0usize;
    for o in &outcomes {
        parses += o.parses;
        if o.rules.is_empty() {
            pruned_files += 1;
        }
        for f in &o.findings {
            *per_rule.entry(f.rule.as_str()).or_default() += 1;
        }
    }
    for r in &set.rules {
        println!(
            "{:<12} [{}] {:>3} finding(s)",
            r.meta.id,
            r.meta.severity.as_str(),
            per_rule.get(r.meta.id.as_str()).copied().unwrap_or(0)
        );
    }
    println!(
        "\n{} finding(s); {} parse(s) over {} file(s), {} pruned outright; {}",
        outcomes.iter().map(|o| o.findings.len()).sum::<usize>(),
        parses,
        outcomes.len(),
        pruned_files,
        report.summary()
    );
    assert!(
        parses <= outcomes.len(),
        "one parse per surviving file, at most"
    );
    assert!(
        per_rule.values().sum::<usize>() > 0,
        "the matrix corpus always contains matching arms"
    );
}
