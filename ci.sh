#!/usr/bin/env bash
# CI entry point — everything runs offline; the workspace has zero
# crates.io dependencies by design (see Cargo.toml), so a network-less
# builder is the *supported* configuration, not a degraded one.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== tier-1: release build =="
cargo build --release --workspace --locked

echo "== tier-1: test suite =="
cargo test -q --workspace --locked

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --locked -- -D warnings

echo "== E1 bench smoke (short samples, JSON to target/) =="
BENCH_SAMPLES="${BENCH_SAMPLES:-3}" cargo bench --bench uc_matrix --locked
test -s target/BENCH_uc_matrix.json
echo "ok: target/BENCH_uc_matrix.json written"

echo "== prefilter bench smoke (hit-rate trend, JSON to target/) =="
BENCH_SAMPLES="${BENCH_SAMPLES:-3}" cargo bench --bench prefilter --locked
test -s target/BENCH_prefilter.json
grep -q prefilter_hit_rate target/BENCH_prefilter.json
echo "ok: target/BENCH_prefilter.json written (hit rates recorded)"

echo "== cfg_match bench smoke (tree vs CFG dots, JSON to target/) =="
BENCH_SAMPLES="${BENCH_SAMPLES:-3}" cargo bench --bench cfg_match --locked
test -s target/BENCH_cfg_match.json
grep -q cfg_overhead target/BENCH_cfg_match.json
echo "ok: target/BENCH_cfg_match.json written (overhead metric recorded)"

echo "CI green."
