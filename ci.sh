#!/usr/bin/env bash
# CI entry point — everything runs offline; the workspace has zero
# crates.io dependencies by design (see Cargo.toml), so a network-less
# builder is the *supported* configuration, not a degraded one.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

# Created up front so the CI workflow's always-run baseline-save step has
# a path to save even when an early phase (build/tests/clippy) fails.
BENCH_BASELINE_DIR="${BENCH_BASELINE_DIR:-target/bench-baseline}"
mkdir -p "$BENCH_BASELINE_DIR"

echo "== tier-1: release build =="
cargo build --release --workspace --locked

echo "== tier-1: test suite =="
cargo test -q --workspace --locked

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --locked -- -D warnings

# Bench trend tracking: each fresh BENCH_*.json is compared against the
# previous run's artifact (kept under $BENCH_BASELINE_DIR) and the build
# fails on a wall-clock regression beyond the budget (min AND median of
# the samples both over); the fresh artifact then becomes the next
# baseline. First runs just seed it.
BENCH_TREND_MAX_PCT="${BENCH_TREND_MAX_PCT:-25}"
BENCH_SAMPLES="${BENCH_SAMPLES:-10}"
export BENCH_SAMPLES
# Trend failures are collected and reported once at the end (instead of
# letting set -e abort on the first one) so every bench still runs and
# reseeds its baseline; the fresh artifact always becomes the next
# baseline — even on a regression — so a spurious (noise/codegen-drift)
# red run self-heals on the next push instead of wedging CI. An
# over-budget first reading gets one confirmation re-run before it
# counts: a genuine regression reproduces, a scheduler burst does not.
TREND_FAILURES=""
trend_check() {
  # bench_trend exits 1 on a confirmed regression, 3 on an unreadable
  # *baseline* (e.g. truncated by a cancelled run; just reseeds), and
  # 2/4 on a bad threshold or fresh artifact (a real failure).
  local name="$1" fresh="target/BENCH_$1.json" rc=0
  if [ -s "$BENCH_BASELINE_DIR/BENCH_$name.json" ]; then
    cargo run --release -q -p cocci-bench --bin bench_trend --locked -- \
      "$BENCH_BASELINE_DIR/BENCH_$name.json" "$fresh" "$BENCH_TREND_MAX_PCT" || rc=$?
    if [ "$rc" -eq 1 ]; then
      echo "trend: $name over budget; re-running once to confirm"
      cargo bench --bench "$name" --locked
      rc=0
      cargo run --release -q -p cocci-bench --bin bench_trend --locked -- \
        "$BENCH_BASELINE_DIR/BENCH_$name.json" "$fresh" "$BENCH_TREND_MAX_PCT" || rc=$?
      if [ "$rc" -eq 1 ]; then
        TREND_FAILURES="$TREND_FAILURES $name"
      fi
    fi
    if [ "$rc" -eq 3 ]; then
      # Only a *baseline*-side failure (e.g. truncated by a cancelled
      # run) reseeds quietly; a bad fresh artifact, bad threshold, or
      # infrastructure failure (cargo 101, OOM 137, …) must not pass
      # silently as a reseed.
      echo "trend: baseline for $name unusable (bench_trend exit 3); reseeding"
    elif [ "$rc" -ne 0 ] && [ "$rc" -ne 1 ]; then
      echo "trend: bench_trend failed for $name (exit $rc)"
      TREND_FAILURES="$TREND_FAILURES $name"
    fi
  else
    echo "trend: no baseline for $name yet; seeding from this run"
  fi
  cp "$fresh" "$BENCH_BASELINE_DIR/"
}

echo "== E1 bench smoke (short samples, JSON to target/) =="
cargo bench --bench uc_matrix --locked
test -s target/BENCH_uc_matrix.json
trend_check uc_matrix
echo "ok: target/BENCH_uc_matrix.json written"

echo "== prefilter bench smoke (hit-rate trend, JSON to target/) =="
cargo bench --bench prefilter --locked
test -s target/BENCH_prefilter.json
grep -q prefilter_hit_rate target/BENCH_prefilter.json
trend_check prefilter
echo "ok: target/BENCH_prefilter.json written (hit rates recorded)"

echo "== cfg_match bench smoke (tree vs CFG dots, JSON to target/) =="
cargo bench --bench cfg_match --locked
test -s target/BENCH_cfg_match.json
grep -q cfg_overhead target/BENCH_cfg_match.json
grep -q witnesses target/BENCH_cfg_match.json
grep -q findings target/BENCH_cfg_match.json
trend_check cfg_match
echo "ok: target/BENCH_cfg_match.json written (overhead + witness + findings metrics recorded)"

echo "== scaling bench smoke (corpus thread sweep + alloc probe; JSON to target/) =="
cargo bench --bench scaling --locked
test -s target/BENCH_scaling.json
grep -q speedup_max target/BENCH_scaling.json
grep -q allocs_per_parsed_file target/BENCH_scaling.json
grep -q peak_rss_bytes target/BENCH_scaling.json
grep -q pool_steals target/BENCH_scaling.json
grep -q pool_idle_frac target/BENCH_scaling.json
grep -q queue_depth_max target/BENCH_scaling.json
# Telemetry must be effectively free: the bench times the corpus driver
# with tracing enabled vs disabled (best-of-samples on both sides) and
# the enabled run — a strict upper bound on the disabled probes' cost —
# may exceed the untraced run by at most 2%.
OVERHEAD=$(grep -o '"id": "trace_overhead_frac", "value": [0-9.eE+-]*' target/BENCH_scaling.json | awk '{print $NF}')
test -n "$OVERHEAD"
awk -v o="$OVERHEAD" 'BEGIN { exit !(o + 0 < 0.02) }' \
  || { echo "tracing overhead ${OVERHEAD} >= 2% budget"; exit 1; }
# Explain's always-on half must be even cheaper: with --explain off,
# record_attempt is one relaxed load per (file x rule) attempt, and the
# projected cost over a corpus run may be at most 1% of its wall clock.
EXPLAIN_FRAC=$(grep -o '"id": "explain_overhead_frac", "value": [0-9.eE+-]*' target/BENCH_scaling.json | awk '{print $NF}')
test -n "$EXPLAIN_FRAC"
awk -v o="$EXPLAIN_FRAC" 'BEGIN { exit !(o + 0 < 0.01) }' \
  || { echo "explain overhead ${EXPLAIN_FRAC} >= 1% budget"; exit 1; }
# trend_check also gates the parallel-scaling ratio: bench_trend fails
# when speedup_max keeps less than 70% of the previous run's ratio.
trend_check scaling
echo "ok: target/BENCH_scaling.json written (speedups + alloc/file + pool counters + trace overhead ${OVERHEAD} + explain overhead ${EXPLAIN_FRAC} recorded)"

echo "== report-mode e2e (findings over a generated corpus; format agreement + SARIF shape) =="
RPT_ROOT="target/report-e2e"
rm -rf "$RPT_ROOT"
# The example materializes the report_scan corpus family and the
# reporting-only patch (pure context + position metavariable).
cargo run --release -q -p cocci-examples --example report_scan --locked -- "$RPT_ROOT/corpus"
SPATCH=target/release/spatch
for fmt in text json sarif; do
  "$SPATCH" --sp-file "$RPT_ROOT/corpus/scan.cocci" --mode report --format "$fmt" \
    --quiet "$RPT_ROOT/corpus" > "$RPT_ROOT/findings.$fmt"
  test -s "$RPT_ROOT/findings.$fmt"
done
# All three formats must agree on the (file,line,col) finding set.
cut -d: -f1-3 "$RPT_ROOT/findings.text" | sort > "$RPT_ROOT/set.text"
test -s "$RPT_ROOT/set.text"
grep -o '"path": "[^"]*", "line": [0-9]*, "col": [0-9]*' "$RPT_ROOT/findings.json" \
  | sed 's/"path": "\([^"]*\)", "line": \([0-9]*\), "col": \([0-9]*\)/\1:\2:\3/' \
  | sort > "$RPT_ROOT/set.json"
grep -o '"uri": "[^"]*"}, "region": {"startLine": [0-9]*, "startColumn": [0-9]*' "$RPT_ROOT/findings.sarif" \
  | sed 's/"uri": "\([^"]*\)"}, "region": {"startLine": \([0-9]*\), "startColumn": \([0-9]*\)/\1:\2:\3/' \
  | sort > "$RPT_ROOT/set.sarif"
diff "$RPT_ROOT/set.text" "$RPT_ROOT/set.json"
diff "$RPT_ROOT/set.text" "$RPT_ROOT/set.sarif"
# SARIF sanity: the required 2.1.0 keys must be present before the
# document is published as a CI artifact.
for key in '"version": "2.1.0"' '"$schema"' '"runs"' '"results"' '"ruleId"' '"physicalLocation"' '"artifactLocation"'; do
  grep -qF "$key" "$RPT_ROOT/findings.sarif" || { echo "SARIF missing $key"; exit 1; }
done
cp "$RPT_ROOT/findings.sarif" target/REPORT_scan.sarif
echo "ok: $(wc -l < "$RPT_ROOT/set.text") findings agree across text/json/sarif (SARIF at target/REPORT_scan.sarif)"

echo "== scan_rules bench smoke (N rules, one parse; JSON to target/) =="
cargo bench --bench scan_rules --locked
test -s target/BENCH_scan_rules.json
grep -q scan_per_rule_ratio target/BENCH_scan_rules.json
grep -q sieve_survivors target/BENCH_scan_rules.json
grep -q lint_seconds target/BENCH_scan_rules.json
# Lint-at-load must be noise: statically analysing all 50 rules may cost
# at most 1% of actually scanning the corpus with them.
LINT_FRAC=$(grep -o '"group": "lint_overhead_frac", "id": "50_vs_scan", "value": [0-9.eE+-]*' target/BENCH_scan_rules.json | awk '{print $NF}')
test -n "$LINT_FRAC"
awk -v o="$LINT_FRAC" 'BEGIN { exit !(o + 0 < 0.01) }' \
  || { echo "lint overhead ${LINT_FRAC} >= 1% budget"; exit 1; }
trend_check scan_rules
echo "ok: target/BENCH_scan_rules.json written (per-rule scaling + survivor metrics + lint overhead ${LINT_FRAC} recorded)"

echo "== scan-mode e2e (rule matrix: N-rule scan vs N single-rule runs) =="
SCAN_ROOT="target/scan-e2e"
rm -rf "$SCAN_ROOT"
# The example materializes the rule_matrix rules/ + corpus/ trees.
cargo run --release -q -p cocci-examples --example scan_matrix --locked -- "$SCAN_ROOT"
for fmt in text json sarif; do
  "$SPATCH" scan --rules "$SCAN_ROOT/rules" --format "$fmt" \
    --quiet "$SCAN_ROOT/corpus" > "$SCAN_ROOT/scan.$fmt"
  test -s "$SCAN_ROOT/scan.$fmt"
done
# Ground truth: run every rule on its own (each in a one-rule dir) and
# collect the union of the per-rule finding sets. The N-rule scan must
# produce exactly the same set — the shared parse and merged prefilter
# are pure optimizations.
rm -rf "$SCAN_ROOT/solo" && mkdir -p "$SCAN_ROOT/solo"
: > "$SCAN_ROOT/set.solo"
for rule in "$SCAN_ROOT"/rules/*.cocci; do
  solo_dir="$SCAN_ROOT/solo/$(basename "$rule" .cocci)"
  mkdir -p "$solo_dir"
  cp "$rule" "$solo_dir/"
  "$SPATCH" scan --rules "$solo_dir" --format text --quiet "$SCAN_ROOT/corpus" \
    >> "$SCAN_ROOT/set.solo"
done
sort "$SCAN_ROOT/set.solo" -o "$SCAN_ROOT/set.solo"
sort "$SCAN_ROOT/scan.text" > "$SCAN_ROOT/set.scan"
test -s "$SCAN_ROOT/set.scan"
diff "$SCAN_ROOT/set.solo" "$SCAN_ROOT/set.scan"
# SARIF sanity on the merged run: one run, required keys, per-rule ids.
for key in '"version": "2.1.0"' '"$schema"' '"runs"' '"results"' '"ruleId"' '"defaultConfiguration"' '"artifactLocation"'; do
  grep -qF "$key" "$SCAN_ROOT/scan.sarif" || { echo "scan SARIF missing $key"; exit 1; }
done
cp "$SCAN_ROOT/scan.sarif" target/SCAN_matrix.sarif
echo "ok: $(wc -l < "$SCAN_ROOT/set.scan") findings agree between the merged scan and per-rule runs (SARIF at target/SCAN_matrix.sarif)"

echo "== traced scan e2e (Chrome trace + stats + metrics reconcile) =="
TRACE_ROOT="target/trace-e2e"
rm -rf "$TRACE_ROOT"
mkdir -p "$TRACE_ROOT/rules"
# The rule-matrix rules are all report-only tree rules; one extra flow
# transform rule (statement dots) makes the traced run exercise every
# phase — cfg_build, flow_match, rewrite, and render included.
cp "$SCAN_ROOT"/rules/*.cocci "$TRACE_ROOT/rules/"
cat > "$TRACE_ROOT/rules/flow_pair.cocci" <<'EOF'
// spatch-rule: flow-pair
@pair@
expression b;
@@
- probe_begin(b);
+ probe_enter(b);
...
probe_end(b);
EOF
cp -r "$SCAN_ROOT/corpus" "$TRACE_ROOT/corpus"
cat > "$TRACE_ROOT/corpus/pair.c" <<'EOF'
void pair(int x) {
    probe_begin(x);
    work(x);
    probe_end(x);
}
EOF
"$SPATCH" scan --rules "$TRACE_ROOT/rules" --trace-out target/TRACE_scan.json \
  --report "$TRACE_ROOT/report.json" --stats --quiet "$TRACE_ROOT/corpus" \
  > /dev/null 2> "$TRACE_ROOT/stats.txt"
test -s target/TRACE_scan.json
# Well-formed trace JSON, at least one span for every phase, per-phase
# totals within 5% of the report's metrics block (the --stats table is
# printed *from* that block, so this ties all three surfaces together).
cargo run --release -q -p cocci-examples --example trace_check --locked -- \
  target/TRACE_scan.json "$TRACE_ROOT/report.json"
grep -q '^  phase parse: spans=[1-9]' "$TRACE_ROOT/stats.txt"
grep -q '^  counter files_parsed: [1-9]' "$TRACE_ROOT/stats.txt"
grep -q '^  pool: workers=' "$TRACE_ROOT/stats.txt"
echo "ok: traced scan reconciles across trace/stats/report (trace at target/TRACE_scan.json)"

echo "== explain e2e (kill-stage funnel reconciles exactly with the report) =="
EXPLAIN_ROOT="target/explain-e2e"
rm -rf "$EXPLAIN_ROOT"
mkdir -p "$EXPLAIN_ROOT"
# The rule-matrix scan again, now with --explain: every attempt is
# traced into the report's explain block and the funnel counters.
"$SPATCH" scan --rules "$SCAN_ROOT/rules" --explain --stats \
  --report target/EXPLAIN_scan.json --quiet "$SCAN_ROOT/corpus" \
  > /dev/null 2> "$EXPLAIN_ROOT/stats.txt"
test -s target/EXPLAIN_scan.json
grep -q '"explain"' target/EXPLAIN_scan.json
grep -q '"kill_stage"' target/EXPLAIN_scan.json
# Funnel counters vs the explain block vs per-outcome kill stages: the
# validator demands exact agreement (same record point per attempt).
cargo run --release -q -p cocci-examples --example explain_check --locked -- \
  target/EXPLAIN_scan.json
# The --stats table renders the same counters as a funnel.
grep -q '^  funnel:' "$EXPLAIN_ROOT/stats.txt"
grep -q '^    attempts: [1-9]' "$EXPLAIN_ROOT/stats.txt"
grep -q '^    completed: [0-9]' "$EXPLAIN_ROOT/stats.txt"
echo "ok: explain funnel reconciles exactly (report at target/EXPLAIN_scan.json)"

echo "== rule lint (every CI rule set must be deny-clean) =="
# The rule_matrix rules are property-tested lint-clean, so the merged
# scan set must produce zero findings of any level; the trace rules add
# the hand-written flow transform, which must at least be deny-clean
# (exit 0 = no deny findings; exit 1 would mean a broken CI fixture).
"$SPATCH" lint "$SCAN_ROOT/rules" > "$SCAN_ROOT/lint.txt" 2> /dev/null
if [ -s "$SCAN_ROOT/lint.txt" ]; then
  echo "rule_matrix rules are not lint-clean:"; cat "$SCAN_ROOT/lint.txt"; exit 1
fi
"$SPATCH" lint "$TRACE_ROOT/rules" > /dev/null
# SARIF shape for the lint surface: rule metadata plus required keys.
"$SPATCH" lint --format sarif "$TRACE_ROOT/rules" > target/LINT_rules.sarif
for key in '"version": "2.1.0"' '"results"' '"rules"' '"defaultConfiguration"'; do
  grep -qF "$key" target/LINT_rules.sarif || { echo "lint SARIF missing $key"; exit 1; }
done
echo "ok: CI rule sets lint deny-clean (SARIF at target/LINT_rules.sarif)"

if [ -n "$TREND_FAILURES" ]; then
  echo "bench trend: wall-clock regressions in:$TREND_FAILURES (budget ${BENCH_TREND_MAX_PCT}%)"
  exit 1
fi
echo "CI green."
