//! AoS vs. SoA particle-update micro-kernels (experiment E4).
//!
//! The paper's flagship application of semantic patching is the
//! AoS→SoA transformation of the GADGET cosmological code ([ML21],
//! recommended by the [BIHK16] pilot study to improve auto-vectorization).
//! We cannot run GADGET, but the *performance phenomenon that motivates
//! the refactoring* — structure-of-arrays layout turning strided memory
//! access into unit-stride, vectorizable access — is reproducible with a
//! small particle kernel. These Rust kernels compute the same update in
//! both layouts; the Criterion bench `aos_soa` sweeps the particle count
//! and reports the throughput ratio.
//!
//! The kernel touches only 3 of the 10 fields per particle, mirroring
//! the partial-access pattern of real SPH loops where AoS wastes memory
//! bandwidth on unused struct fields.

/// One particle in array-of-structures layout. The padding fields mirror
/// GADGET's many per-particle quantities; the update touches only
/// `pos`/`vel` components, so most of each cache line is wasted traffic.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
pub struct Particle {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Mass (unused by the kick-drift update).
    pub mass: f64,
    /// Density (unused).
    pub rho: f64,
    /// Internal energy (unused).
    pub u: f64,
    /// Smoothing length (unused).
    pub hsml: f64,
}

/// Particles in structure-of-arrays layout.
#[derive(Debug, Clone, Default)]
pub struct ParticlesSoA {
    /// x positions.
    pub pos_x: Vec<f64>,
    /// y positions.
    pub pos_y: Vec<f64>,
    /// z positions.
    pub pos_z: Vec<f64>,
    /// x velocities.
    pub vel_x: Vec<f64>,
    /// y velocities.
    pub vel_y: Vec<f64>,
    /// z velocities.
    pub vel_z: Vec<f64>,
    /// Masses (unused by the update).
    pub mass: Vec<f64>,
    /// Densities (unused).
    pub rho: Vec<f64>,
    /// Internal energies (unused).
    pub u: Vec<f64>,
    /// Smoothing lengths (unused).
    pub hsml: Vec<f64>,
}

/// Deterministically initialize `n` AoS particles.
pub fn init_aos(n: usize) -> Vec<Particle> {
    (0..n)
        .map(|i| {
            let f = i as f64;
            Particle {
                pos: [f * 0.25, f * 0.5, f * 0.75],
                vel: [1.0 / (f + 1.0), 0.5, -0.25],
                mass: 1.0,
                rho: 0.0,
                u: 0.0,
                hsml: 0.1,
            }
        })
        .collect()
}

/// Deterministically initialize `n` SoA particles (same values as
/// [`init_aos`]).
pub fn init_soa(n: usize) -> ParticlesSoA {
    let mut p = ParticlesSoA::default();
    for i in 0..n {
        let f = i as f64;
        p.pos_x.push(f * 0.25);
        p.pos_y.push(f * 0.5);
        p.pos_z.push(f * 0.75);
        p.vel_x.push(1.0 / (f + 1.0));
        p.vel_y.push(0.5);
        p.vel_z.push(-0.25);
        p.mass.push(1.0);
        p.rho.push(0.0);
        p.u.push(0.0);
        p.hsml.push(0.1);
    }
    p
}

/// Kick-drift update, AoS layout: strided access, each particle pulls a
/// full struct through the cache to touch 6 of its 10 doubles.
pub fn update_aos(particles: &mut [Particle], dt: f64) {
    for p in particles.iter_mut() {
        p.pos[0] += dt * p.vel[0];
        p.pos[1] += dt * p.vel[1];
        p.pos[2] += dt * p.vel[2];
    }
}

/// Kick-drift update, SoA layout: six unit-stride streams the compiler
/// auto-vectorizes.
pub fn update_soa(p: &mut ParticlesSoA, dt: f64) {
    let n = p.pos_x.len();
    // Slice re-borrows let the optimizer prove disjointness.
    let (px, py, pz) = (&mut p.pos_x[..n], &mut p.pos_y[..n], &mut p.pos_z[..n]);
    let (vx, vy, vz) = (&p.vel_x[..n], &p.vel_y[..n], &p.vel_z[..n]);
    for i in 0..n {
        px[i] += dt * vx[i];
    }
    for i in 0..n {
        py[i] += dt * vy[i];
    }
    for i in 0..n {
        pz[i] += dt * vz[i];
    }
}

/// Checksum over positions, layout-independent (used to verify the two
/// kernels compute the same thing).
pub fn checksum_aos(particles: &[Particle]) -> f64 {
    particles
        .iter()
        .map(|p| p.pos[0] + p.pos[1] + p.pos[2])
        .sum()
}

/// Checksum over positions (SoA).
pub fn checksum_soa(p: &ParticlesSoA) -> f64 {
    p.pos_x
        .iter()
        .zip(&p.pos_y)
        .zip(&p.pos_z)
        .map(|((x, y), z)| x + y + z)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aos_and_soa_compute_identical_results() {
        let n = 1000;
        let mut aos = init_aos(n);
        let mut soa = init_soa(n);
        for _ in 0..10 {
            update_aos(&mut aos, 0.01);
            update_soa(&mut soa, 0.01);
        }
        let ca = checksum_aos(&aos);
        let cs = checksum_soa(&soa);
        assert!((ca - cs).abs() < 1e-9 * ca.abs().max(1.0), "{ca} vs {cs}");
    }

    #[test]
    fn update_moves_particles() {
        let mut aos = init_aos(10);
        let before = checksum_aos(&aos);
        update_aos(&mut aos, 0.5);
        assert_ne!(before, checksum_aos(&aos));
    }

    #[test]
    fn initializers_agree() {
        let aos = init_aos(64);
        let soa = init_soa(64);
        assert!((checksum_aos(&aos) - checksum_soa(&soa)).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut aos = init_aos(0);
        update_aos(&mut aos, 0.1);
        let mut soa = init_soa(0);
        update_soa(&mut soa, 0.1);
        assert_eq!(checksum_aos(&aos), 0.0);
        assert_eq!(checksum_soa(&soa), 0.0);
    }
}
