//! `cocci-workloads`: synthetic codebases and micro-kernels for the
//! experiment harness.
//!
//! The paper evaluates Coccinelle on real HPC codes (GADGET, LIBRSB,
//! CUDA applications) that are not redistributable here. Per DESIGN.md's
//! substitution table, this crate generates *parameterized synthetic
//! equivalents* that exercise the same code paths:
//!
//! * [`gen`] — one generator per use case (OpenMP regions, kernel
//!   functions, multiversioned functions, unrolled loops, 3-D stencils,
//!   CUDA miniapps, OpenACC kernels, raw search loops, LIBRSB-style
//!   naming), plus size-swept codebases for the scaling experiment;
//! * [`adversarial`] — code in which API names appear inside strings,
//!   comments, and as identifier substrings: the corpus on which textual
//!   rewriting (hipify-perl-style) produces false positives and a
//!   semantic engine must not;
//! * [`kernels`] — the AoS vs. SoA particle-update kernels motivating the
//!   paper's flagship refactoring ([ML21]), runnable in Rust so the
//!   memory-layout effect itself is measurable;
//! * [`corpus`] — mixed on-disk corpus *trees* (nested directories, noise
//!   files, `.gitignore`d artifacts) for directory-mode driver runs and
//!   the prefilter bench;
//! * [`rule_matrix`] — N report-only rules with controllable
//!   prefilter-atom overlap plus a matching corpus, driving the
//!   `spatch scan` bench and CI's N-rules-vs-1-rule agreement check.

pub mod adversarial;
pub mod corpus;
pub mod gen;
pub mod kernels;
pub mod patches;
pub mod rng;
pub mod rule_matrix;

pub use corpus::{corpus_tree, write_corpus_tree, CorpusTreeSpec};
pub use gen::{CodebaseSpec, GeneratedFile};
pub use rule_matrix::{rule_matrix_codebase, rule_matrix_id, rule_matrix_rules, RuleMatrixSpec};

#[cfg(test)]
mod tests {
    use crate::gen;

    #[test]
    fn generators_are_deterministic() {
        let a = gen::omp_codebase(&gen::CodebaseSpec {
            files: 3,
            functions_per_file: 4,
            seed: 42,
        });
        let b = gen::omp_codebase(&gen::CodebaseSpec {
            files: 3,
            functions_per_file: 4,
            seed: 42,
        });
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
        }
        let c = gen::omp_codebase(&gen::CodebaseSpec {
            files: 3,
            functions_per_file: 4,
            seed: 43,
        });
        assert_ne!(a[0].text, c[0].text);
    }
}
