//! Rule-matrix workload: many report-only rules over a mixed corpus,
//! with controllable prefilter-atom overlap.
//!
//! `spatch scan` compiles a whole directory of rules and prefilters
//! them with one merged literal automaton per file. Measuring that
//! requires a workload where *how many rules share a prefilter atom*
//! is a parameter: when every rule has a distinct atom the automaton
//! prunes almost everything, and when `overlap` rules share an atom a
//! single occurrence wakes the whole group even though only one member
//! can match.
//!
//! The generator exploits a deliberate property of atom extraction
//! (`cocci-smpl`'s prefilter): **integer literals contribute no
//! atoms** (the const-fold isomorphism compares values, not text), so
//! the rule `api_3(e, 1);` prefilters on `api_3` alone. Rule `i` of a
//! matrix is therefore
//!
//! ```text
//! group  g = i / overlap     -> callee name   api_g   (the shared atom)
//! member j = i % overlap     -> second arg    j       (invisible to the prefilter)
//! ```
//!
//! so all `overlap` members of a group survive the same files, but
//! each matches only its own `api_g(_, j)` call sites: finding sets
//! stay disjoint per rule, which is what lets CI diff an N-rule scan
//! against N single-rule runs.

use crate::gen::GeneratedFile;
use crate::rng::SplitMix64;

/// Shape of a rule-matrix workload: a directory of `rules` scanning
/// rules (grouped `overlap` to a prefilter atom) plus a corpus of
/// `files` C files with `functions_per_file` functions each.
#[derive(Debug, Clone)]
pub struct RuleMatrixSpec {
    /// How many `.cocci` rules to generate.
    pub rules: usize,
    /// How many corpus files to generate.
    pub files: usize,
    /// Functions per corpus file.
    pub functions_per_file: usize,
    /// Rules per prefilter-atom group (clamped to at least 1). With
    /// `overlap == 1` every rule has its own atom; with `overlap == n`
    /// each atom hit wakes `n` rules of which at most one matches a
    /// given call.
    pub overlap: usize,
    /// PRNG seed; equal specs generate byte-identical output.
    pub seed: u64,
}

impl Default for RuleMatrixSpec {
    fn default() -> Self {
        RuleMatrixSpec {
            rules: 10,
            files: 8,
            functions_per_file: 8,
            overlap: 2,
            seed: 0xC0CC1,
        }
    }
}

/// Severity rotation for generated rules, exercising the per-rule
/// SARIF level plumbing.
const SEVERITIES: [&str; 3] = ["error", "warning", "note"];

/// Rule id for matrix index `i`: zero-padded so the filesystem sort of
/// the generated directory equals the id sort the scan engine uses.
pub fn rule_matrix_id(i: usize, overlap: usize) -> String {
    format!("r{:03}-g{}", i, i / overlap.max(1))
}

/// Generate the `.cocci` rule files of the matrix. Rule `i` scans for
/// `api_{g}(e, {j});` with `g = i / overlap`, `j = i % overlap`; its
/// metadata header carries a stable id ([`rule_matrix_id`]), a rotating
/// severity, and a message naming the deprecated arm.
pub fn rule_matrix_rules(spec: &RuleMatrixSpec) -> Vec<GeneratedFile> {
    let overlap = spec.overlap.max(1);
    (0..spec.rules)
        .map(|i| {
            let g = i / overlap;
            let j = i % overlap;
            let id = rule_matrix_id(i, overlap);
            let text = format!(
                "// spatch-rule: {id}\n\
                 // spatch-severity: {}\n\
                 // spatch-message: api_{g} arm {j} is deprecated\n\
                 @scan@\n\
                 expression e;\n\
                 position p;\n\
                 @@\n\
                 api_{g}(e, {j})@p;\n",
                SEVERITIES[i % SEVERITIES.len()],
            );
            GeneratedFile {
                name: format!("r{i:03}.cocci"),
                text,
            }
        })
        .collect()
}

/// Generate the corpus the matrix scans. Per function one of:
///
/// * a **matching** call `api_{g}(buf[k], {j})` for a seeded rule
///   `(g, j)` — exactly one rule's finding;
/// * a **decoy** call `api_{g}(buf[k], {overlap + d})` — contains the
///   group's prefilter atom (the whole group survives the sieve) but
///   its arm number is past every member's, so no rule matches;
/// * **quiet** arithmetic with no `api_` call at all.
///
/// Every fourth file is entirely quiet, so a scan always has files the
/// merged automaton prunes outright (`parses == 0` for them).
pub fn rule_matrix_codebase(spec: &RuleMatrixSpec) -> Vec<GeneratedFile> {
    let overlap = spec.overlap.max(1);
    let rules = spec.rules.max(1);
    let mut rng = SplitMix64::seed_from_u64(spec.seed);
    (0..spec.files)
        .map(|fi| {
            let quiet_file = fi % 4 == 3;
            let mut text = String::new();
            for fj in 0..spec.functions_per_file {
                text.push_str(&format!("void m_{fi}_{fj}(int n, double *buf) {{\n"));
                let roll = rng.gen_range(0..4);
                let k = rng.gen_range(0..8);
                if quiet_file || roll == 3 {
                    text.push_str(&format!("    buf[{k}] = buf[{k}] * 2.0;\n"));
                } else if roll == 2 {
                    let g = rng.gen_range(0..rules) / overlap;
                    let d = rng.gen_range(0..3);
                    text.push_str(&format!("    api_{g}(buf[{k}], {});\n", overlap + d));
                } else {
                    let i = rng.gen_range(0..rules);
                    text.push_str(&format!(
                        "    api_{}(buf[{k}], {});\n",
                        i / overlap,
                        i % overlap
                    ));
                }
                text.push_str("}\n\n");
            }
            GeneratedFile {
                name: format!("matrix_{fi}.c"),
                text,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_deterministic() {
        let spec = RuleMatrixSpec {
            rules: 12,
            files: 6,
            functions_per_file: 5,
            overlap: 3,
            seed: 7,
        };
        let (r1, c1) = (rule_matrix_rules(&spec), rule_matrix_codebase(&spec));
        let (r2, c2) = (rule_matrix_rules(&spec), rule_matrix_codebase(&spec));
        assert_eq!(r1, r2);
        assert_eq!(c1, c2);
        let other = rule_matrix_codebase(&RuleMatrixSpec { seed: 8, ..spec });
        assert_ne!(c1, other);
    }

    #[test]
    fn rule_ids_are_unique_and_sorted_like_filenames() {
        let spec = RuleMatrixSpec {
            rules: 50,
            overlap: 5,
            ..RuleMatrixSpec::default()
        };
        let rules = rule_matrix_rules(&spec);
        assert_eq!(rules.len(), 50);
        let ids: Vec<String> = rules
            .iter()
            .map(|r| {
                r.text
                    .lines()
                    .next()
                    .unwrap()
                    .trim_start_matches("// spatch-rule: ")
                    .to_string()
            })
            .collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, ids, "ids unique and already in sorted order");
        let mut names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        let orig = names.clone();
        names.sort();
        assert_eq!(names, orig, "filesystem sort preserves rule order");
    }

    #[test]
    fn groups_share_callee_and_members_differ_by_arm() {
        let spec = RuleMatrixSpec {
            rules: 6,
            overlap: 3,
            ..RuleMatrixSpec::default()
        };
        let rules = rule_matrix_rules(&spec);
        for (i, r) in rules.iter().enumerate() {
            let pat = format!("api_{}(e, {})@p;", i / 3, i % 3);
            assert!(r.text.contains(&pat), "{}: missing {pat}", r.name);
        }
    }

    #[test]
    fn corpus_mixes_matching_decoy_and_quiet_files() {
        let spec = RuleMatrixSpec {
            rules: 8,
            files: 8,
            functions_per_file: 16,
            overlap: 2,
            seed: 1,
        };
        let files = rule_matrix_codebase(&spec);
        assert_eq!(files.len(), 8);
        // Every fourth file carries no api_ calls at all.
        for (fi, f) in files.iter().enumerate() {
            if fi % 4 == 3 {
                assert!(!f.text.contains("api_"), "{} should be quiet", f.name);
            }
        }
        let joined: String = files.iter().map(|f| f.text.as_str()).collect();
        assert!(joined.contains("api_0(buf["));
        // Decoy arms sit past the overlap, so they match no rule.
        assert!(joined.contains(", 2);") || joined.contains(", 3);") || joined.contains(", 4);"));
    }
}
