//! The paper's Section-3 semantic patches, in this workspace's SMPL
//! dialect — shared by the integration tests, the example binaries, and
//! the benchmark harness so that every consumer exercises the exact same
//! patch text.
//!
//! Indexed as UC1–UC11 per DESIGN.md's experiment table.

/// UC1 — LIKWID marker-API instrumentation.
pub const UC1_LIKWID: &str = r#"
@@ @@
#include <omp.h>
+ #include <likwid-marker.h>

@@ @@
#pragma omp ...
{
+ LIKWID_MARKER_START(__func__);
...
+ LIKWID_MARKER_STOP(__func__);
}
"#;

/// UC2 — `#pragma omp declare variant` function cloning.
pub const UC2_VARIANT: &str = r#"
@@
type T;
identifier f =~ "kernel";
parameter list PL;
statement list SL;
fresh identifier f512 = "avx512_" ## f;
fresh identifier f10 = "avx10_" ## f;
@@
+ T f512 (PL) { SL }
+ T f10 (PL) { SL }
+ #pragma omp declare variant(f512) match(device={isa("core-avx512")})
+ #pragma omp declare variant(f10) match(device={isa("core-avx10")})
T f (PL) { SL }
"#;

/// UC3 — editing an existing `target("avx512")` multiversion body.
pub const UC3_MULTIVERSION: &str = r#"
@@
identifier f;
type T;
@@
__attribute__((target(...,"avx512",...)))
T f(...)
{
+ avx512_specific_setup();
...
}
"#;

/// UC4 — bloat/clone removal of avx512/avx2 specializations plus the
/// now-redundant default attribute.
pub const UC4_BLOAT: &str = r#"
@c@
type T;
function f;
parameter list PL;
@@
- __attribute__((target( \( "avx512" \| "avx2" \) )))
- T f(PL) { ... }

@d depends on c@
type c.T;
function c.f;
parameter list c.PL;
@@
- __attribute__((target("default")))
T f(PL) { ... }
"#;

/// UC5 — one-rule unroll removal (`p0`).
pub const UC5_UNROLL_P0: &str = r#"
@p0@
type T;
identifier i,l;
constant k={4};
statement A,B,C,D;
@@
+ #pragma omp unroll partial(4)
for (T i=0; i
- +k-1
< l ;
- i+=k
+ ++i
)
{
\( A \& i+0 \) \(
- B \& i+1
\) \(
- C \& i+2
\) \(
- D \& i+3
\)
}
"#;

/// UC5 — safe two-rule unroll removal (`p1` + `r1`).
pub const UC5_UNROLL_P1_R1: &str = r#"
@p1@
type T;
identifier i,l;
constant k={4};
statement A,B,C,D;
@@
for (T i=0; i+k-1 < l; i+=k)
{
\( A \& i+0 \) \( B \&
- i+1
+ i+0
\) \( C \&
- i+2
+ i+0
\) \( D \&
- i+3
+ i+0
\)
}

@r1@
type T;
identifier i,l;
constant k={4};
statement p1.A;
@@
+ #pragma omp unroll partial(4)
for (T i=0; i
- +k-1
< l ;
- i+=k
+ ++i
)
{
A
- A A A
}
"#;

/// UC6 — C++23 multi-index subscript rewrite.
pub const UC6_MDSPAN: &str = r#"
#spatch --c++=23
@tomultiindex@
symbol a;
expression x,y,z;
@@
- a[x][y][z]
+ a[x, y, z]
"#;

/// UC7 — CUDA→HIP function and type dictionaries via script rules.
pub const UC7_CUDA_HIP: &str = r#"
@initialize:python@ @@
C2HF = { "curand_uniform_double": "rocrand_uniform_double" }
C2HT = { "__half": "rocblas_half" }

@cfe@
identifier fn;
expression list el;
position p;
@@
fn@p(el)

@script:python cf2hf@
fn << cfe.fn;
nf;
@@
coccinelle.nf = cocci.make_ident(C2HF[fn]);

@hfe@
identifier cfe.fn;
identifier cf2hf.nf;
position cfe.p;
@@
- fn@p
+ nf
(...)

@cte@
type c_t;
identifier i;
@@
c_t i;

@script:python ct2hf@
c_t << cte.c_t;
h_t;
@@
coccinelle.h_t = cocci.make_type(C2HT[c_t]);

@hte@
type ct2hf.h_t;
type cte.c_t;
identifier cte.i;
@@
- c_t i;
+ h_t i;
"#;

/// UC8 — CUDA triple-chevron launch → `hipLaunchKernelGGL`.
pub const UC8_CHEVRON: &str = r#"
#spatch --c++
@@
identifier k;
expression b,t,x,y;
expression list el;
@@
- k<<<b,t,x,y>>>(el)
+ hipLaunchKernelGGL(k,b,t,x,y,el)
"#;

/// UC7+UC8 combined (the full CUDA→HIP migration used by the example
/// binary and the precision experiment).
pub const UC78_CUDA_HIP_FULL: &str = r#"
#spatch --c++
@initialize:python@ @@
C2HF = { "curand_uniform_double": "rocrand_uniform_double" }
C2HT = { "__half": "rocblas_half" }

@cfe@
identifier fn;
expression list el;
position p;
@@
fn@p(el)

@script:python cf2hf@
fn << cfe.fn;
nf;
@@
coccinelle.nf = cocci.make_ident(C2HF[fn]);

@hfe@
identifier cfe.fn;
identifier cf2hf.nf;
position cfe.p;
@@
- fn@p
+ nf
(...)

@cte@
type c_t;
identifier i;
@@
c_t i;

@script:python ct2hf@
c_t << cte.c_t;
h_t;
@@
coccinelle.h_t = cocci.make_type(C2HT[c_t]);

@hte@
type ct2hf.h_t;
type cte.c_t;
identifier cte.i;
@@
- c_t i;
+ h_t i;

@chevron@
identifier kk;
expression b,t,x,y;
expression list el;
@@
- kk<<<b,t,x,y>>>(el)
+ hipLaunchKernelGGL(kk,b,t,x,y,el)
"#;

/// UC9 — OpenACC→OpenMP pragma translation via a script rule.
pub const UC9_ACC_OMP: &str = r#"
@moa@
pragmainfo pi;
@@
#pragma acc pi

@script:python o2o@
pi << moa.pi;
po;
@@
coccinelle.po = cocci.make_pragmainfo("target teams " + pi);

@depends on o2o@
pragmainfo moa.pi;
pragmainfo o2o.po;
@@
- #pragma acc pi
+ #pragma omp po
"#;

/// UC10 — raw search loop → `std::find`.
pub const UC10_STL_FIND: &str = r#"
#spatch --c++
@rl@
type T;
constant kc;
identifier elem,result,arrid;
@@
- bool result = false;
...
- for ( T &elem : arrid )
- if ( \( elem == kc \| kc == elem \) )
- {
- ...
- result = true;
- break;
- }
+ const bool result = (find(begin(arrid),end(arrid),kc) != end(arrid));

@ah depends on rl@
@@
#include <iostream>
+ #include <algorithm>
+ #include <functional>
"#;

/// UC11 — GCC pragma injection around compiler-bug-affected functions.
pub const UC11_PRAGMA_INJECT: &str = r#"
@pragma_inject@
identifier i =~ "rsb__BCSR_spmv_sasa_double_complex_[CH]__t[NTC]_r1_c1_uu_s[HS]_dE_uG";
type T;
@@
+ #pragma GCC push_options
+ #pragma GCC optimize "-O3", "-fno-tree-loop-vectorize"
T i(...)
{
...
}
+ #pragma GCC pop_options
"#;

/// All use-case patches with their ids, for table-driven harnesses.
pub const ALL: &[(&str, &str)] = &[
    ("UC1", UC1_LIKWID),
    ("UC2", UC2_VARIANT),
    ("UC3", UC3_MULTIVERSION),
    ("UC4", UC4_BLOAT),
    ("UC5-p0", UC5_UNROLL_P0),
    ("UC5-p1r1", UC5_UNROLL_P1_R1),
    ("UC6", UC6_MDSPAN),
    ("UC7", UC7_CUDA_HIP),
    ("UC8", UC8_CHEVRON),
    ("UC9", UC9_ACC_OMP),
    ("UC10", UC10_STL_FIND),
    ("UC11", UC11_PRAGMA_INJECT),
];

#[cfg(test)]
mod tests {
    #[test]
    fn all_table_is_complete() {
        assert_eq!(super::ALL.len(), 12);
        let ids: Vec<&str> = super::ALL.iter().map(|(id, _)| *id).collect();
        assert!(ids.contains(&"UC5-p0"));
        assert!(ids.contains(&"UC11"));
    }
}
