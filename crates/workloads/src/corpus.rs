//! On-disk corpus trees for codebase-scale driver runs.
//!
//! [`corpus_tree`] assembles a *mixed* synthetic codebase — nested
//! directories of OpenMP, CUDA, kernel and raw-loop files, plus
//! non-source noise, ignored build artifacts, and a `.gitignore` — and
//! [`write_corpus_tree`] materializes it under a root directory. This is
//! what `spatch <dir>` end-to-end tests and the prefilter bench walk:
//! only a subset of the tree matches any given use-case patch, so
//! directory filtering, ignore handling, and prefilter pruning all have
//! something to do.

use crate::gen::{self, CodebaseSpec, GeneratedFile};
use std::io;
use std::path::Path;

/// Size parameters for a generated corpus tree.
#[derive(Debug, Clone, Copy)]
pub struct CorpusTreeSpec {
    /// Files per generator family (each family lives in its own subtree).
    pub files_per_family: usize,
    /// Functions per file.
    pub functions_per_file: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusTreeSpec {
    fn default() -> Self {
        CorpusTreeSpec {
            files_per_family: 8,
            functions_per_file: 8,
            seed: 0xC0DE,
        }
    }
}

/// The `.gitignore` a generated tree carries at its root.
pub const TREE_GITIGNORE: &str = "build/\n*.tmp\n";

/// Generate the corpus tree in memory. File names are root-relative
/// paths with `/` separators; the list includes the `.gitignore`, noise
/// files, and build artifacts that a well-behaved walker must skip.
pub fn corpus_tree(spec: &CorpusTreeSpec) -> Vec<GeneratedFile> {
    let base = CodebaseSpec {
        files: spec.files_per_family,
        functions_per_file: spec.functions_per_file,
        seed: spec.seed,
    };
    let mut out = Vec::new();
    let mut add = |dir: &str, files: Vec<GeneratedFile>| {
        out.extend(files.into_iter().map(|f| GeneratedFile {
            name: format!("{dir}/{}", f.name),
            text: f.text,
        }));
    };
    // Source families, each in its own subtree (two of them nested two
    // levels deep so the walk is not flat).
    add("omp", gen::omp_codebase(&base));
    add("gpu/cuda", gen::cuda_codebase(&base));
    add("kernels", gen::kernel_codebase(&base));
    add("cpp/search", gen::raw_loop_codebase(&base));
    add("librsb", gen::librsb_codebase(&base));
    add("scan", gen::report_scan_codebase(&base));

    // Root metadata and noise a walker must tolerate / skip.
    out.push(GeneratedFile {
        name: ".gitignore".into(),
        text: TREE_GITIGNORE.into(),
    });
    out.push(GeneratedFile {
        name: "docs/NOTES.md".into(),
        text: "# synthetic corpus\nnot C at all {{{\n".into(),
    });
    out.push(GeneratedFile {
        name: "build/generated.c".into(),
        text: "void generated(void) { old_api(0); }\n".into(),
    });
    out.push(GeneratedFile {
        name: "scratch.c.tmp".into(),
        text: "void scratch(void) {\n".into(),
    });
    out
}

/// Statistics of a materialized tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusTreeStats {
    /// Files written in total (noise and ignored files included).
    pub written: usize,
    /// Files a compliant walker should visit (C-family extension, not
    /// under an ignored pattern, not a dotfile).
    pub walkable: usize,
}

/// Write the tree under `root` (created if needed). Returns what was
/// written and how much of it a compliant walker should pick up.
pub fn write_corpus_tree(root: &Path, spec: &CorpusTreeSpec) -> io::Result<CorpusTreeStats> {
    let files = corpus_tree(spec);
    let mut stats = CorpusTreeStats {
        written: 0,
        walkable: 0,
    };
    for f in &files {
        let path = root.join(&f.name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, &f.text)?;
        stats.written += 1;
        if is_walkable(&f.name) {
            stats.walkable += 1;
        }
    }
    Ok(stats)
}

/// Whether a generated root-relative path should be visited by a walker
/// honouring [`TREE_GITIGNORE`] and the C-family extension filter.
///
/// Deliberately an *independent* re-statement of the walk rules (this
/// crate cannot depend on `cocci-core`): tests compare walker results
/// against it, so a behavior change on either side fails loudly. It only
/// needs to be correct for the paths [`corpus_tree`] actually generates.
pub fn is_walkable(name: &str) -> bool {
    if name.starts_with('.') || name.starts_with("build/") || name.ends_with(".tmp") {
        return false;
    }
    matches!(
        name.rsplit('.').next(),
        Some("c" | "h" | "cc" | "cpp" | "cxx" | "hpp" | "hh" | "cu" | "cuh" | "inl")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_is_mixed_and_deterministic() {
        let spec = CorpusTreeSpec::default();
        let a = corpus_tree(&spec);
        let b = corpus_tree(&spec);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.text, y.text);
        }
        assert!(a.iter().any(|f| f.name.starts_with("omp/")));
        assert!(a.iter().any(|f| f.name.starts_with("gpu/cuda/")));
        assert!(a.iter().any(|f| f.name == ".gitignore"));
        assert!(a.iter().any(|f| f.name.starts_with("build/")));
    }

    #[test]
    fn walkable_classification() {
        assert!(is_walkable("omp/omp_0.c"));
        assert!(is_walkable("gpu/cuda/cuda_1.cu"));
        assert!(!is_walkable(".gitignore"));
        assert!(!is_walkable("docs/NOTES.md"));
        assert!(!is_walkable("build/generated.c"));
        assert!(!is_walkable("scratch.c.tmp"));
    }

    #[test]
    fn write_and_count() {
        let root = std::env::temp_dir().join(format!("cocci-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let spec = CorpusTreeSpec {
            files_per_family: 2,
            functions_per_file: 2,
            seed: 1,
        };
        let stats = write_corpus_tree(&root, &spec).unwrap();
        assert_eq!(stats.written, 6 * 2 + 4);
        assert_eq!(stats.walkable, 6 * 2);
        assert!(root.join("omp/omp_0.c").is_file());
        assert!(root.join("scan/scan_0.c").is_file());
        assert!(root.join(".gitignore").is_file());
        let _ = std::fs::remove_dir_all(&root);
    }
}
