//! In-house seeded PRNG so the workload generators need no external
//! dependency.
//!
//! [`SplitMix64`] (Steele/Lea/Flood, used as the seeding PRNG of the
//! xoshiro family) passes BigCrush, has a full 2^64 period, and is a
//! handful of arithmetic instructions — more than enough statistical
//! quality for generating synthetic codebases, and trivially
//! reproducible: every generator in this crate is deterministic in its
//! seed, so experiments replay bit-for-bit run-to-run.
//!
//! The API mirrors the subset of `rand::Rng` the generators actually
//! use (`gen_range`, `gen_bool`) so call sites read identically.

use std::ops::Range;

/// A SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `range` (half-open). Panics on an empty range.
    ///
    /// Uses Lemire's multiply-shift reduction without the rejection
    /// step; for the tiny ranges the generators draw (< 100) the bias is
    /// on the order of 2^-57 — irrelevant for synthetic-code generation,
    /// and the draw count per seed stays fixed, preserving determinism.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let width = (range.end - range.start) as u64;
        let hi = ((u128::from(self.next_u64()) * u128::from(width)) >> 64) as u64;
        range.start + hi as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream() {
        // First outputs for seed 0, per the published SplitMix64
        // reference implementation.
        let mut rng = SplitMix64::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(2..8);
            assert!((2..8).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits} of 10000");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
