//! The adversarial corpus for experiment E2 (semantic vs. textual
//! precision).
//!
//! The paper contrasts Coccinelle's AST-level CUDA→HIP translation with
//! `hipify-perl`, which rewrites text. Text-level rewriting goes wrong in
//! exactly three ways, all of which this corpus exhibits *with known
//! ground truth*:
//!
//! 1. API names inside **string literals** (log messages, option tables);
//! 2. API names inside **comments**;
//! 3. API names as **substrings of longer identifiers**
//!    (`my_curand_uniform_double_wrapper`), which naive non-boundary
//!    matching corrupts — and which even word-boundary matching corrupts
//!    when the full word coincides (`curand_uniform_double_t` typedef
//!    names are *not* generated here; substring cases use prefixes).
//!
//! Every file records how many *true* call sites it contains, so the
//! harness can count false positives/negatives for both engines.

/// One adversarial file with ground truth.
#[derive(Debug, Clone)]
pub struct AdversarialFile {
    /// File name.
    pub name: String,
    /// Contents.
    pub text: String,
    /// Number of genuine `curand_uniform_double` call sites (the only
    /// occurrences a correct translator may rewrite).
    pub true_call_sites: usize,
    /// Number of occurrences of the API name in non-call contexts
    /// (strings, comments, substrings) that must stay untouched.
    pub trap_occurrences: usize,
}

/// Build the adversarial corpus: `n` files, each mixing true call sites
/// with traps.
pub fn corpus(n: usize) -> Vec<AdversarialFile> {
    (0..n)
        .map(|i| {
            let text = format!(
                r#"// This comment mentions curand_uniform_double twice: curand_uniform_double.
void stage_{i}(double *buf, int tid) {{
    double r;
    r = curand_uniform_double(state_{i});
    log_msg("calling curand_uniform_double now");
    buf[tid] = r;
    my_curand_uniform_double_wrapper(state_{i});
    r = curand_uniform_double(other_state_{i});
    printf("%s", "curand_uniform_double failed");
    buf[tid] += r;
}}
"#
            );
            AdversarialFile {
                name: format!("adv_{i}.c"),
                text,
                true_call_sites: 2,
                trap_occurrences: 5, // 2 comment + 2 string + 1 substring
            }
        })
        .collect()
}

/// Count occurrences of `needle` in `text` (overlap-free).
pub fn count_occurrences(text: &str, needle: &str) -> usize {
    text.matches(needle).count()
}

/// Evaluate a translated file against ground truth. Returns
/// `(rewritten_calls, false_positives)`:
/// `rewritten_calls` — how many of the true call sites were translated
/// (the new name appears as a call);
/// `false_positives` — how many trap occurrences were (incorrectly)
/// rewritten.
pub fn score(original: &AdversarialFile, translated: &str, old: &str, new: &str) -> (usize, usize) {
    // True positives: calls of the new name.
    let rewritten_calls = translated.matches(&format!("{new}(state")).count()
        + translated.matches(&format!("{new}(other_state")).count();
    // Count how many *trap* occurrences changed: total `new` occurrences
    // minus the legitimate rewrites (substring traps count when the new
    // name appears inside the wrapper identifier, etc.).
    let total_new = count_occurrences(translated, new);
    let false_positives = total_new.saturating_sub(rewritten_calls);
    let _ = (original, old);
    (rewritten_calls, false_positives)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_ground_truth_is_consistent() {
        for f in corpus(3) {
            assert_eq!(
                count_occurrences(&f.text, "curand_uniform_double"),
                f.true_call_sites + f.trap_occurrences,
                "{}",
                f.text
            );
        }
    }

    #[test]
    fn corpus_parses_as_c() {
        // The adversarial files must still be valid C for the semantic
        // engine — traps live in comments/strings, not syntax.
        for f in corpus(2) {
            cocci_cast::parser::parse_translation_unit(
                &f.text,
                cocci_cast::ParseOptions::c(),
                &cocci_cast::NoMeta,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", f.name));
        }
    }

    #[test]
    fn score_counts_perfect_translation() {
        let f = &corpus(1)[0];
        // A perfect translator rewrites only the two calls.
        let perfect = f
            .text
            .replace(
                "curand_uniform_double(state",
                "rocrand_uniform_double(state",
            )
            .replace(
                "curand_uniform_double(other_state",
                "rocrand_uniform_double(other_state",
            );
        let (tp, fp) = score(
            f,
            &perfect,
            "curand_uniform_double",
            "rocrand_uniform_double",
        );
        assert_eq!(tp, 2);
        assert_eq!(fp, 0);
    }

    #[test]
    fn score_counts_naive_translation() {
        let f = &corpus(1)[0];
        // A naive textual translator rewrites everything.
        let naive = f
            .text
            .replace("curand_uniform_double", "rocrand_uniform_double");
        let (tp, fp) = score(f, &naive, "curand_uniform_double", "rocrand_uniform_double");
        assert_eq!(tp, 2);
        assert_eq!(fp, f.trap_occurrences);
    }
}
