//! Corpus-level renderer stability: the canonical renderer's output over
//! the generated workload trees is pinned by FNV fingerprint.
//!
//! The fixture hashes below were captured from the renderer *before*
//! identifiers/literals moved into the interner (`cocci_source::intern`),
//! so a green run proves that rendering an interned parse is
//! byte-identical to the pre-interning renderer on the `rule_matrix`
//! and mixed `corpus_tree` (which includes the `report_scan` family)
//! workload trees. If a deliberate renderer change moves these values,
//! re-capture them with `RENDER_STABILITY_PRINT=1 cargo test -p
//! cocci-workloads --test render_stability -- --nocapture`.

use cocci_cast::ast::{Block, Item, TranslationUnit};
use cocci_cast::parser::{parse_translation_unit, NoMeta, ParseOptions};
use cocci_cast::render;
use cocci_workloads::corpus::{corpus_tree, CorpusTreeSpec};
use cocci_workloads::rule_matrix::{rule_matrix_codebase, RuleMatrixSpec};
use cocci_workloads::GeneratedFile;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn render_block(b: &Block) -> String {
    let mut s = String::from("{\n");
    for st in &b.stmts {
        s.push_str(&render::render_stmt(st));
        s.push('\n');
    }
    s.push('}');
    s
}

/// Render a whole translation unit canonically — every identifier, type
/// name, qualifier, and literal goes through the renderer's resolution
/// path, which is exactly what interning must not change.
fn render_tu(tu: &TranslationUnit) -> String {
    let mut s = String::new();
    fn item(s: &mut String, it: &Item) {
        match it {
            Item::Directive(d) => {
                s.push_str(&d.raw);
                s.push('\n');
            }
            Item::Function(f) => {
                for sp in &f.specifiers {
                    s.push_str(sp.name.as_str());
                    s.push(' ');
                }
                s.push_str(&render::render_type(&f.ret));
                s.push(' ');
                s.push_str(f.name.name.as_str());
                s.push('(');
                for (i, p) in f.params.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&render::render_param(p));
                }
                if f.varargs {
                    s.push_str(", ...");
                }
                s.push_str(") ");
                s.push_str(&render_block(&f.body));
                s.push('\n');
            }
            Item::Decl(d) => {
                s.push_str(&render::render_decl(d));
                s.push('\n');
            }
            Item::Namespace { name, items, .. } => {
                s.push_str("namespace");
                if let Some(n) = name {
                    s.push(' ');
                    s.push_str(n.name.as_str());
                }
                s.push_str(" {\n");
                for it2 in items {
                    item(s, it2);
                }
                s.push_str("}\n");
            }
            Item::ExternBlock { items, .. } => {
                s.push_str("extern \"C\" {\n");
                for it2 in items {
                    item(s, it2);
                }
                s.push_str("}\n");
            }
        }
    }
    for it in &tu.items {
        item(&mut s, it);
    }
    s
}

/// Parse and render every C-family file of `files`; returns
/// `(files_rendered, fingerprint)`. Non-source noise files and the
/// deliberately broken ones are skipped by parse failure, which is part
/// of the pinned behaviour (the counts are asserted too).
fn fingerprint(files: &[GeneratedFile]) -> (usize, u64) {
    let mut h = 0xcbf29ce484222325u64;
    let mut rendered = 0usize;
    for f in files {
        let opts = if f.name.ends_with(".cpp") || f.name.ends_with(".cu") {
            ParseOptions::cpp()
        } else {
            ParseOptions::c()
        };
        if let Ok(tu) = parse_translation_unit(&f.text, opts, &NoMeta) {
            h = fnv1a(f.name.as_bytes(), h);
            h = fnv1a(render_tu(&tu).as_bytes(), h);
            rendered += 1;
        }
    }
    (rendered, h)
}

#[test]
fn corpus_tree_render_is_byte_identical_to_pre_interning_renderer() {
    let files = corpus_tree(&CorpusTreeSpec::default());
    let (rendered, hash) = fingerprint(&files);
    if std::env::var_os("RENDER_STABILITY_PRINT").is_some() {
        eprintln!("corpus_tree: rendered={rendered} hash={hash:#018x}");
    }
    assert_eq!(rendered, CORPUS_TREE_RENDERED);
    assert_eq!(hash, CORPUS_TREE_HASH, "renderer output drifted");
}

#[test]
fn rule_matrix_render_is_byte_identical_to_pre_interning_renderer() {
    let files = rule_matrix_codebase(&RuleMatrixSpec::default());
    let (rendered, hash) = fingerprint(&files);
    if std::env::var_os("RENDER_STABILITY_PRINT").is_some() {
        eprintln!("rule_matrix: rendered={rendered} hash={hash:#018x}");
    }
    assert_eq!(rendered, RULE_MATRIX_RENDERED);
    assert_eq!(hash, RULE_MATRIX_HASH, "renderer output drifted");
}

#[test]
fn render_is_deterministic_across_repeat_parses() {
    // Same tree, two independent parse+render passes: the fingerprint
    // must not depend on interner population order.
    let files = rule_matrix_codebase(&RuleMatrixSpec::default());
    assert_eq!(fingerprint(&files), fingerprint(&files));
}

// Captured from the pre-interning renderer (see module docs).
const CORPUS_TREE_RENDERED: usize = 49;
const CORPUS_TREE_HASH: u64 = 0xbcf9d4ca7d5d4ff4;
const RULE_MATRIX_RENDERED: usize = 8;
const RULE_MATRIX_HASH: u64 = 0x44749c94a4bb8bd8;
