//! `cocci-textpatch`: a text-level API rewriter — the baseline the paper
//! contrasts semantic patching against.
//!
//! The paper (§3, "Translation of very similar APIs") notes that
//! `hipify-perl` performs CUDA→HIP translation with token dictionaries
//! "albeit without using an AST". This crate reimplements that class of
//! tool so experiment E2 can measure the difference: a dictionary of
//! name→name rewrites applied directly to text.
//!
//! Two fidelity levels are provided, bracketing real text-based tools:
//!
//! * [`TextPatcher::naive`] — plain substring replacement (what a sed
//!   one-liner does): corrupts substrings of longer identifiers as well
//!   as strings and comments;
//! * [`TextPatcher::word_boundary`] — identifier-boundary-aware
//!   replacement (what hipify-perl's regexes do): spares substrings but
//!   still rewrites names inside string literals and comments, because
//!   text-level tools do not tokenize.
//!
//! Neither consults an AST; both are fast. The semantic engine
//! (`cocci-core`) is the third point of the comparison.

/// Replacement fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Substring replacement.
    Naive,
    /// Identifier-boundary-aware replacement.
    WordBoundary,
}

/// A dictionary-driven text rewriter.
#[derive(Debug, Clone)]
pub struct TextPatcher {
    dict: Vec<(String, String)>,
    mode: Mode,
}

impl TextPatcher {
    /// Naive substring rewriter.
    pub fn naive(dict: &[(&str, &str)]) -> Self {
        Self::with_mode(dict, Mode::Naive)
    }

    /// Word-boundary rewriter (hipify-perl fidelity).
    pub fn word_boundary(dict: &[(&str, &str)]) -> Self {
        Self::with_mode(dict, Mode::WordBoundary)
    }

    /// Build with an explicit mode.
    pub fn with_mode(dict: &[(&str, &str)], mode: Mode) -> Self {
        TextPatcher {
            dict: dict
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            mode,
        }
    }

    /// Rewrite `text`, returning the result and the number of
    /// replacements made.
    pub fn apply(&self, text: &str) -> (String, usize) {
        let mut out = text.to_string();
        let mut count = 0usize;
        for (old, new) in &self.dict {
            let (next, n) = match self.mode {
                Mode::Naive => replace_all(&out, old, new),
                Mode::WordBoundary => replace_word(&out, old, new),
            };
            out = next;
            count += n;
        }
        (out, count)
    }
}

fn replace_all(text: &str, old: &str, new: &str) -> (String, usize) {
    let count = text.matches(old).count();
    (text.replace(old, new), count)
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

fn replace_word(text: &str, old: &str, new: &str) -> (String, usize) {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut i = 0usize;
    let mut count = 0usize;
    while i < bytes.len() {
        if text[i..].starts_with(old) {
            let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
            let after = i + old.len();
            let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
            if before_ok && after_ok {
                out.push_str(new);
                i = after;
                count += 1;
                continue;
            }
        }
        // Advance one UTF-8 scalar.
        let ch = text[i..].chars().next().unwrap();
        out.push(ch);
        i += ch.len_utf8();
    }
    (out, count)
}

/// The CUDA→HIP dictionary shared by the E2 experiment (a small excerpt
/// of the hipify tables — enough to exercise the comparison).
pub const CUDA_HIP_DICT: &[(&str, &str)] = &[
    ("curand_uniform_double", "rocrand_uniform_double"),
    ("cudaMalloc", "hipMalloc"),
    ("cudaFree", "hipFree"),
    ("cudaMemcpy", "hipMemcpy"),
    ("cudaDeviceSynchronize", "hipDeviceSynchronize"),
    ("cudaStream_t", "hipStream_t"),
    ("__half", "rocblas_half"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_rewrites_everything_including_traps() {
        let p = TextPatcher::naive(&[("cudaFree", "hipFree")]);
        let src = "cudaFree(p); // cudaFree docs\nlog(\"cudaFree\"); my_cudaFree_wrapper(p);";
        let (out, n) = p.apply(src);
        assert_eq!(n, 4);
        assert!(out.contains("hipFree(p);"));
        assert!(out.contains("// hipFree docs"));
        assert!(out.contains("\"hipFree\""));
        assert!(out.contains("my_hipFree_wrapper"));
    }

    #[test]
    fn word_boundary_spares_substrings_but_not_strings() {
        let p = TextPatcher::word_boundary(&[("cudaFree", "hipFree")]);
        let src = "cudaFree(p); log(\"cudaFree\"); my_cudaFree_wrapper(p); cudaFreeHost(q);";
        let (out, n) = p.apply(src);
        assert_eq!(n, 2); // call + string literal
        assert!(out.contains("hipFree(p);"));
        assert!(out.contains("\"hipFree\"")); // string still rewritten!
        assert!(out.contains("my_cudaFree_wrapper")); // substring spared
        assert!(out.contains("cudaFreeHost")); // longer identifier spared
    }

    #[test]
    fn multiple_dictionary_entries() {
        let p = TextPatcher::word_boundary(CUDA_HIP_DICT);
        let src = "cudaMalloc(&p, n); cudaMemcpy(d, s, n); cudaFree(p);";
        let (out, n) = p.apply(src);
        assert_eq!(n, 3);
        assert!(out.contains("hipMalloc"));
        assert!(out.contains("hipMemcpy"));
        assert!(out.contains("hipFree"));
    }

    #[test]
    fn word_boundary_at_text_edges() {
        let p = TextPatcher::word_boundary(&[("abc", "xyz")]);
        assert_eq!(p.apply("abc").0, "xyz");
        assert_eq!(p.apply("abc def abc").0, "xyz def xyz");
        assert_eq!(p.apply("abcd").0, "abcd");
        assert_eq!(p.apply("dabc").0, "dabc");
    }

    #[test]
    fn empty_input() {
        let p = TextPatcher::word_boundary(&[("a", "b")]);
        assert_eq!(p.apply("").0, "");
    }
}
