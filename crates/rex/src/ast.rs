//! Regex syntax tree.

/// One element of a character class `[...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassItem {
    /// A single byte.
    Byte(u8),
    /// An inclusive byte range `lo-hi`.
    Range(u8, u8),
}

impl ClassItem {
    /// Whether `b` is covered by this item.
    pub fn matches(&self, b: u8) -> bool {
        match *self {
            ClassItem::Byte(c) => b == c,
            ClassItem::Range(lo, hi) => lo <= b && b <= hi,
        }
    }
}

/// Regex AST node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Matches the empty string.
    Empty,
    /// A literal byte.
    Byte(u8),
    /// `.` — any byte except `\n`.
    AnyByte,
    /// `[...]` or a Perl class; `negated` flips the set.
    Class {
        /// Set members.
        items: Vec<ClassItem>,
        /// `[^...]` when true.
        negated: bool,
    },
    /// Concatenation of sub-patterns.
    Concat(Vec<Node>),
    /// Alternation `a|b|...`.
    Alt(Vec<Node>),
    /// `a*` / `a+` / `a?` / `a{m,n}` normalized to (min, max).
    Repeat {
        /// Repeated sub-pattern.
        node: Box<Node>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions; `None` = unbounded.
        max: Option<u32>,
    },
    /// `^` — start of text.
    StartAnchor,
    /// `$` — end of text.
    EndAnchor,
}

impl Node {
    /// Convenience constructor for the `\d` class.
    pub fn digit(negated: bool) -> Node {
        Node::Class {
            items: vec![ClassItem::Range(b'0', b'9')],
            negated,
        }
    }

    /// Convenience constructor for the `\w` class.
    pub fn word(negated: bool) -> Node {
        Node::Class {
            items: vec![
                ClassItem::Range(b'a', b'z'),
                ClassItem::Range(b'A', b'Z'),
                ClassItem::Range(b'0', b'9'),
                ClassItem::Byte(b'_'),
            ],
            negated,
        }
    }

    /// Convenience constructor for the `\s` class.
    pub fn space(negated: bool) -> Node {
        Node::Class {
            items: vec![
                ClassItem::Byte(b' '),
                ClassItem::Byte(b'\t'),
                ClassItem::Byte(b'\n'),
                ClassItem::Byte(b'\r'),
                ClassItem::Byte(0x0b),
                ClassItem::Byte(0x0c),
            ],
            negated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_item_matching() {
        assert!(ClassItem::Byte(b'x').matches(b'x'));
        assert!(!ClassItem::Byte(b'x').matches(b'y'));
        assert!(ClassItem::Range(b'a', b'f').matches(b'c'));
        assert!(!ClassItem::Range(b'a', b'f').matches(b'g'));
    }

    #[test]
    fn word_class_contents() {
        if let Node::Class { items, negated } = Node::word(false) {
            assert!(!negated);
            assert!(items.iter().any(|i| i.matches(b'_')));
            assert!(items.iter().any(|i| i.matches(b'Q')));
            assert!(!items.iter().any(|i| i.matches(b'-')));
        } else {
            panic!("expected class");
        }
    }
}
