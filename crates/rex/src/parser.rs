//! Recursive-descent regex parser.

use crate::ast::{ClassItem, Node};
use std::fmt;

/// Regex syntax error with a byte offset into the pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position of the problem in the pattern.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse `pattern` into a [`Node`].
pub fn parse(pattern: &str) -> Result<Node, ParseError> {
    let mut p = Parser {
        bytes: pattern.as_bytes(),
        pos: 0,
    };
    let node = p.alternation()?;
    if p.pos != p.bytes.len() {
        return Err(p.err("unexpected character (unbalanced ')'?)"));
    }
    Ok(node)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// alternation := concat ('|' concat)*
    fn alternation(&mut self) -> Result<Node, ParseError> {
        let mut alts = vec![self.concat()?];
        while self.eat(b'|') {
            alts.push(self.concat()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().unwrap()
        } else {
            Node::Alt(alts)
        })
    }

    /// concat := repeat*
    fn concat(&mut self) -> Result<Node, ParseError> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.len() {
            0 => Node::Empty,
            1 => items.pop().unwrap(),
            _ => Node::Concat(items),
        })
    }

    /// repeat := atom ('*' | '+' | '?' | '{m,n}')*
    fn repeat(&mut self) -> Result<Node, ParseError> {
        let mut node = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.check_repeatable(&node)?;
                    self.bump();
                    node = Node::Repeat {
                        node: Box::new(node),
                        min: 0,
                        max: None,
                    };
                }
                Some(b'+') => {
                    self.check_repeatable(&node)?;
                    self.bump();
                    node = Node::Repeat {
                        node: Box::new(node),
                        min: 1,
                        max: None,
                    };
                }
                Some(b'?') => {
                    self.check_repeatable(&node)?;
                    self.bump();
                    node = Node::Repeat {
                        node: Box::new(node),
                        min: 0,
                        max: Some(1),
                    };
                }
                Some(b'{') => {
                    // Only treat as a bound if it looks like {digits...};
                    // otherwise '{' is a literal (PCRE behaviour).
                    if let Some((min, max, consumed)) = self.try_bound()? {
                        self.check_repeatable(&node)?;
                        self.pos += consumed;
                        if let Some(m) = max {
                            if m < min {
                                return Err(self.err("bound {m,n} with n < m"));
                            }
                        }
                        node = Node::Repeat {
                            node: Box::new(node),
                            min,
                            max,
                        };
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        Ok(node)
    }

    fn check_repeatable(&self, node: &Node) -> Result<(), ParseError> {
        match node {
            Node::Empty | Node::StartAnchor | Node::EndAnchor => Err(self.err("nothing to repeat")),
            _ => Ok(()),
        }
    }

    /// Attempt to read `{m}`, `{m,}` or `{m,n}` starting at the current
    /// `{`. Returns (min, max, bytes consumed) without consuming on
    /// failure (literal `{`).
    fn try_bound(&self) -> Result<Option<(u32, Option<u32>, usize)>, ParseError> {
        let rest = &self.bytes[self.pos..];
        debug_assert_eq!(rest.first(), Some(&b'{'));
        let mut i = 1;
        let mut min = String::new();
        while i < rest.len() && rest[i].is_ascii_digit() {
            min.push(rest[i] as char);
            i += 1;
        }
        if min.is_empty() {
            return Ok(None);
        }
        let min_v: u32 = min.parse().map_err(|_| self.err("bound too large"))?;
        match rest.get(i) {
            Some(b'}') => Ok(Some((min_v, Some(min_v), i + 1))),
            Some(b',') => {
                i += 1;
                let mut max = String::new();
                while i < rest.len() && rest[i].is_ascii_digit() {
                    max.push(rest[i] as char);
                    i += 1;
                }
                if rest.get(i) != Some(&b'}') {
                    return Ok(None);
                }
                let max_v = if max.is_empty() {
                    None
                } else {
                    Some(max.parse().map_err(|_| self.err("bound too large"))?)
                };
                Ok(Some((min_v, max_v, i + 1)))
            }
            _ => Ok(None),
        }
    }

    /// atom := literal | '.' | class | group | anchor | escape
    fn atom(&mut self) -> Result<Node, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of pattern")),
            Some(b'(') => {
                self.bump();
                let inner = self.alternation()?;
                if !self.eat(b')') {
                    return Err(self.err("missing ')'"));
                }
                Ok(inner)
            }
            Some(b')') => Err(self.err("unmatched ')'")),
            Some(b'[') => self.class(),
            Some(b'.') => {
                self.bump();
                Ok(Node::AnyByte)
            }
            Some(b'^') => {
                self.bump();
                Ok(Node::StartAnchor)
            }
            Some(b'$') => {
                self.bump();
                Ok(Node::EndAnchor)
            }
            Some(b'*') | Some(b'+') | Some(b'?') => Err(self.err("nothing to repeat")),
            Some(b'\\') => {
                self.bump();
                self.escape()
            }
            Some(b) => {
                self.bump();
                Ok(Node::Byte(b))
            }
        }
    }

    fn escape(&mut self) -> Result<Node, ParseError> {
        match self.bump() {
            None => Err(self.err("trailing backslash")),
            Some(b'd') => Ok(Node::digit(false)),
            Some(b'D') => Ok(Node::digit(true)),
            Some(b'w') => Ok(Node::word(false)),
            Some(b'W') => Ok(Node::word(true)),
            Some(b's') => Ok(Node::space(false)),
            Some(b'S') => Ok(Node::space(true)),
            Some(b'n') => Ok(Node::Byte(b'\n')),
            Some(b't') => Ok(Node::Byte(b'\t')),
            Some(b'r') => Ok(Node::Byte(b'\r')),
            // Any other escaped byte matches itself: \. \* \[ \\ etc.
            Some(b) => Ok(Node::Byte(b)),
        }
    }

    /// class := '[' '^'? item+ ']'
    fn class(&mut self) -> Result<Node, ParseError> {
        debug_assert!(self.eat(b'['));
        let negated = self.eat(b'^');
        let mut items = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated character class")),
                Some(b']') if !items.is_empty() => {
                    self.bump();
                    break;
                }
                _ => {
                    let lo = self.class_byte()?;
                    // Range only when a '-' is followed by something other
                    // than the closing bracket.
                    if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1) != Some(&b']') {
                        self.bump(); // '-'
                        let hi = self.class_byte()?;
                        if hi < lo {
                            return Err(self.err("invalid range in character class"));
                        }
                        items.push(ClassItem::Range(lo, hi));
                    } else {
                        items.push(ClassItem::Byte(lo));
                    }
                }
            }
        }
        Ok(Node::Class { items, negated })
    }

    fn class_byte(&mut self) -> Result<u8, ParseError> {
        match self.bump() {
            None => Err(self.err("unterminated character class")),
            Some(b'\\') => match self.bump() {
                None => Err(self.err("trailing backslash in class")),
                Some(b'n') => Ok(b'\n'),
                Some(b't') => Ok(b'\t'),
                Some(b'r') => Ok(b'\r'),
                Some(b) => Ok(b),
            },
            Some(b) => Ok(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literal_concat() {
        assert_eq!(
            parse("ab").unwrap(),
            Node::Concat(vec![Node::Byte(b'a'), Node::Byte(b'b')])
        );
    }

    #[test]
    fn parses_alternation_flat() {
        match parse("a|b|c").unwrap() {
            Node::Alt(v) => assert_eq!(v.len(), 3),
            other => panic!("expected alt, got {other:?}"),
        }
    }

    #[test]
    fn literal_brace_when_not_a_bound() {
        // "{a}" has no digits => literal braces.
        let n = parse("x{a}").unwrap();
        match n {
            Node::Concat(v) => assert_eq!(v.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exact_bound() {
        match parse("a{3}").unwrap() {
            Node::Repeat { min, max, .. } => {
                assert_eq!(min, 3);
                assert_eq!(max, Some(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn open_bound() {
        match parse("a{2,}").unwrap() {
            Node::Repeat { min, max, .. } => {
                assert_eq!(min, 2);
                assert_eq!(max, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_inverted_bound() {
        assert!(parse("a{3,2}").is_err());
    }

    #[test]
    fn class_negation_and_ranges() {
        match parse("[^a-z_]").unwrap() {
            Node::Class { items, negated } => {
                assert!(negated);
                assert_eq!(items.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dash_at_class_end_is_literal() {
        match parse("[a-]").unwrap() {
            Node::Class { items, .. } => {
                assert_eq!(items, vec![ClassItem::Byte(b'a'), ClassItem::Byte(b'-')]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
