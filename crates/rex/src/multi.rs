//! Multi-pattern literal search: an Aho–Corasick automaton over a fixed
//! set of literal strings.
//!
//! The prefilter layer extracts *required literal atoms* from compiled
//! patches; deciding which of N rules may match a file used to take N
//! independent `str::contains` sweeps over the file text. [`MultiLiteral`]
//! answers "which of these literals occur in this text?" in a single pass:
//! the classic trie + BFS failure links, with the failure function folded
//! into a dense byte-indexed transition table so the scan inner loop is
//! one table load per input byte.
//!
//! ```
//! use cocci_rex::MultiLiteral;
//! let m = MultiLiteral::new(&["he", "she", "hers"]);
//! let found = m.find_all("ushers");
//! assert_eq!(found, vec![true, true, true]);
//! ```

/// A compiled multi-literal matcher. Immutable after construction, cheap
/// to share across threads.
#[derive(Debug, Clone)]
pub struct MultiLiteral {
    /// Dense DFA: `next[state * 256 + byte]` is the successor state.
    next: Vec<u32>,
    /// Pattern ids that end at each state (own matches plus matches
    /// inherited through failure links).
    outputs: Vec<Vec<u32>>,
    /// Number of patterns the automaton was built from.
    patterns: usize,
    /// Ids of zero-length patterns: they occur in every text.
    empty: Vec<u32>,
}

impl MultiLiteral {
    /// Build the automaton. Duplicate patterns are allowed (each id is
    /// reported independently); empty patterns match every text.
    pub fn new<S: AsRef<str>>(patterns: &[S]) -> MultiLiteral {
        // ---- trie ----
        // goto[state][byte] = child, 0 = absent (state 0 is the root and
        // never a child).
        let mut goto: Vec<[u32; 256]> = vec![[0u32; 256]];
        let mut out: Vec<Vec<u32>> = vec![Vec::new()];
        let mut empty = Vec::new();
        for (id, pat) in patterns.iter().enumerate() {
            let bytes = pat.as_ref().as_bytes();
            if bytes.is_empty() {
                empty.push(id as u32);
                continue;
            }
            let mut s = 0usize;
            for &b in bytes {
                let t = goto[s][b as usize];
                if t != 0 {
                    s = t as usize;
                } else {
                    goto.push([0u32; 256]);
                    out.push(Vec::new());
                    let new = (goto.len() - 1) as u32;
                    goto[s][b as usize] = new;
                    s = new as usize;
                }
            }
            out[s].push(id as u32);
        }

        // ---- BFS failure links, folded into a dense DFA ----
        let n = goto.len();
        let mut fail = vec![0u32; n];
        let mut next = vec![0u32; n * 256];
        let mut queue = std::collections::VecDeque::new();
        for b in 0..256 {
            let t = goto[0][b];
            next[b] = t;
            if t != 0 {
                fail[t as usize] = 0;
                queue.push_back(t);
            }
        }
        while let Some(s) = queue.pop_front() {
            let f = fail[s as usize] as usize;
            // Inherit the failure state's outputs so a match ending at a
            // proper suffix is still reported.
            let inherited = out[f].clone();
            out[s as usize].extend(inherited);
            for b in 0..256 {
                let t = goto[s as usize][b];
                if t != 0 {
                    fail[t as usize] = next[f * 256 + b];
                    queue.push_back(t);
                    next[s as usize * 256 + b] = t;
                } else {
                    next[s as usize * 256 + b] = next[f * 256 + b];
                }
            }
        }

        MultiLiteral {
            next,
            outputs: out,
            patterns: patterns.len(),
            empty,
        }
    }

    /// Number of patterns this automaton was built from.
    pub fn len(&self) -> usize {
        self.patterns
    }

    /// True if the automaton was built from zero patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns == 0
    }

    /// One pass over `text`: `found[i]` is true iff pattern `i` occurs as
    /// a substring. Stops early once every pattern has been seen.
    pub fn find_all(&self, text: &str) -> Vec<bool> {
        let mut found = vec![false; self.patterns];
        let mut remaining = self.patterns;
        for &id in &self.empty {
            if !found[id as usize] {
                found[id as usize] = true;
                remaining -= 1;
            }
        }
        if remaining == 0 || self.next.is_empty() {
            return found;
        }
        let mut state = 0usize;
        for &b in text.as_bytes() {
            state = self.next[state * 256 + b as usize] as usize;
            if !self.outputs[state].is_empty() {
                for &id in &self.outputs[state] {
                    if !found[id as usize] {
                        found[id as usize] = true;
                        remaining -= 1;
                    }
                }
                if remaining == 0 {
                    break;
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn classic_suffix_outputs() {
        let m = MultiLiteral::new(&strs(&["he", "she", "his", "hers"]));
        assert_eq!(m.find_all("ushers"), vec![true, true, false, true]);
        assert_eq!(m.find_all("his"), vec![false, false, true, false]);
        assert_eq!(m.find_all(""), vec![false; 4]);
    }

    #[test]
    fn agrees_with_contains() {
        let pats = strs(&[
            "old_api",
            "cudaMalloc",
            "api_3_",
            "loc",
            "rsb__BCSR",
            "xyzzy",
        ]);
        let m = MultiLiteral::new(&pats);
        let texts = [
            "void f(void) { old_api(1); cudaMallocManaged(p); }",
            "int rsb__BCSR_spmv(void);",
            "no hits at all",
            "api_3_ api_3_ loc loc loc",
        ];
        for t in texts {
            let got = m.find_all(t);
            for (i, p) in pats.iter().enumerate() {
                assert_eq!(got[i], t.contains(p.as_str()), "{p:?} in {t:?}");
            }
        }
    }

    #[test]
    fn duplicates_and_empty_patterns() {
        let m = MultiLiteral::new(&strs(&["ab", "ab", "", "b"]));
        assert_eq!(m.find_all("xaby"), vec![true, true, true, true]);
        assert_eq!(m.find_all("zzz"), vec![false, false, true, false]);
    }

    #[test]
    fn overlapping_matches_in_one_pass() {
        let m = MultiLiteral::new(&strs(&["aa", "aaa", "baa"]));
        assert_eq!(m.find_all("baaa"), vec![true, true, true]);
    }

    #[test]
    fn non_ascii_bytes() {
        let m = MultiLiteral::new(&strs(&["é", "日本"]));
        assert_eq!(m.find_all("café 日本語"), vec![true, true]);
        assert_eq!(m.find_all("plain"), vec![false, false]);
    }

    #[test]
    fn zero_patterns() {
        let m = MultiLiteral::new::<String>(&[]);
        assert!(m.is_empty());
        assert_eq!(m.find_all("anything"), Vec::<bool>::new());
    }

    #[test]
    fn early_exit_is_not_observable() {
        // All patterns found early; the tail of the text must not matter.
        let m = MultiLiteral::new(&strs(&["a", "b"]));
        let long = format!("ab{}", "x".repeat(10_000));
        assert_eq!(m.find_all(&long), vec![true, true]);
    }
}
