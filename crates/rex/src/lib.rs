//! `cocci-rex`: a small, self-contained regular-expression engine.
//!
//! SMPL metavariable declarations may constrain identifiers with
//! `identifier f =~ "kernel";` — Coccinelle delegates these to PCRE. This
//! workspace has no third-party regex dependency, so we implement the
//! fragment of regex syntax actually needed for semantic patching (and a
//! little more):
//!
//! * literals, `.`, escaped metacharacters (`\.`, `\*`, …) and the classes
//!   `\d \w \s` (plus negations `\D \W \S`)
//! * character classes `[abc]`, ranges `[a-z]`, negation `[^...]`
//! * grouping `( ... )` and alternation `a|b`
//! * quantifiers `*`, `+`, `?` and bounded `{m}`, `{m,}`, `{m,n}`
//! * anchors `^` and `$`
//!
//! The implementation is the classic two-stage pipeline: a recursive-descent
//! parser producing a small AST ([`ast::Node`]), compiled to a Thompson NFA
//! ([`nfa::Program`]) executed by a Pike-style virtual machine. Matching is
//! therefore linear in `text.len() * program.len()` with no exponential
//! blow-up, which matters because semantic patches are applied to thousands
//! of identifiers in large codebases.
//!
//! Matching semantics follow Coccinelle/PCRE convention for `=~`:
//! **unanchored search** — the pattern may match anywhere in the identifier
//! unless `^`/`$` anchors say otherwise.
//!
//! ```
//! use cocci_rex::Regex;
//! let re = Regex::new("rsb__BCSR_spmv_[sd]asa").unwrap();
//! assert!(re.is_match("rsb__BCSR_spmv_dasa_double"));
//! assert!(!re.is_match("rsb__BCSR_spmv_xasa"));
//! ```

mod ast;
mod nfa;
mod parser;

pub use ast::{ClassItem, Node};
pub use parser::ParseError;

use nfa::Program;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    prog: Program,
}

impl Regex {
    /// Compile `pattern`. Returns a [`ParseError`] describing the first
    /// syntax problem encountered.
    pub fn new(pattern: &str) -> Result<Self, ParseError> {
        let node = parser::parse(pattern)?;
        let prog = Program::compile(&node);
        Ok(Regex {
            pattern: pattern.to_string(),
            prog,
        })
    }

    /// The original pattern text.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Unanchored search: does the pattern match anywhere in `text`?
    pub fn is_match(&self, text: &str) -> bool {
        self.prog.search(text.as_bytes()).is_some()
    }

    /// Unanchored search returning the byte range of the leftmost match.
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        self.prog.search(text.as_bytes())
    }

    /// Anchored match: does the pattern match the *entire* `text`?
    pub fn is_full_match(&self, text: &str) -> bool {
        self.prog
            .search(text.as_bytes())
            .map(|(s, e)| s == 0 && e == text.len())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap()
    }

    #[test]
    fn literal_substring_search() {
        let r = re("kernel");
        assert!(r.is_match("kernel"));
        assert!(r.is_match("my_kernel_fn"));
        assert!(!r.is_match("kern"));
    }

    #[test]
    fn dot_matches_any_but_newline() {
        let r = re("a.c");
        assert!(r.is_match("abc"));
        assert!(r.is_match("a-c"));
        assert!(!r.is_match("a\nc"));
        assert!(!r.is_match("ac"));
    }

    #[test]
    fn star_plus_question() {
        assert!(re("ab*c").is_match("ac"));
        assert!(re("ab*c").is_match("abbbc"));
        assert!(re("ab+c").is_match("abc"));
        assert!(!re("ab+c").is_match("ac"));
        assert!(re("ab?c").is_match("ac"));
        assert!(re("ab?c").is_match("abc"));
        assert!(!re("ab?c").is_match("abbc"));
    }

    #[test]
    fn alternation_and_groups() {
        let r = re("foo(bar|baz)+");
        assert!(r.is_match("foobar"));
        assert!(r.is_match("foobazbar"));
        assert!(!r.is_match("foo"));
    }

    #[test]
    fn classes_and_ranges() {
        let r = re("[a-f0-9]+");
        assert!(r.is_match("deadbeef42"));
        let neg = re("^[^x]+$");
        assert!(neg.is_match("abc"));
        assert!(!neg.is_match("axc"));
    }

    #[test]
    fn class_with_literal_dash_and_bracket() {
        let r = re("[a\\-b]");
        assert!(r.is_match("-"));
        let r2 = re("[\\]]");
        assert!(r2.is_match("]"));
    }

    #[test]
    fn anchors() {
        assert!(re("^abc$").is_full_match("abc"));
        assert!(!re("^abc$").is_match("xabc"));
        assert!(re("abc$").is_match("xabc"));
        assert!(re("^abc").is_match("abcx"));
        assert!(!re("^abc").is_match("xabc"));
    }

    #[test]
    fn bounded_repetition() {
        let r = re("^a{2,3}$");
        assert!(!r.is_match("a"));
        assert!(r.is_match("aa"));
        assert!(r.is_match("aaa"));
        assert!(!r.is_match("aaaa"));
        let exact = re("^x{3}$");
        assert!(exact.is_match("xxx"));
        assert!(!exact.is_match("xx"));
        let open = re("^y{2,}$");
        assert!(open.is_match("yyyy"));
        assert!(!open.is_match("y"));
    }

    #[test]
    fn escapes_and_perl_classes() {
        assert!(re("a\\.b").is_match("a.b"));
        assert!(!re("a\\.b").is_match("axb"));
        assert!(re("\\d+").is_match("var123"));
        assert!(!re("^\\d+$").is_match("12a"));
        assert!(re("\\w+").is_match("under_score9"));
        assert!(re("\\s").is_match("a b"));
        assert!(re("^\\S+$").is_match("dense"));
    }

    #[test]
    fn paper_librsb_pattern() {
        // The regex from the paper's compiler-bug workaround use case.
        let r = re("rsb__BCSR_spmv_sasa_double_complex_[CH]__t[NTC]_r1_c1_uu_s[HS]_dE_uG");
        assert!(r.is_match("rsb__BCSR_spmv_sasa_double_complex_C__tN_r1_c1_uu_sH_dE_uG"));
        assert!(r.is_match("rsb__BCSR_spmv_sasa_double_complex_H__tC_r1_c1_uu_sS_dE_uG"));
        assert!(!r.is_match("rsb__BCSR_spmv_sasa_double_complex_X__tN_r1_c1_uu_sH_dE_uG"));
    }

    #[test]
    fn leftmost_match_position() {
        let r = re("b+");
        assert_eq!(r.find("aabbbcc"), Some((2, 5)));
        assert_eq!(r.find("nope"), None);
    }

    #[test]
    fn empty_pattern_matches_empty() {
        let r = re("");
        assert!(r.is_match(""));
        assert!(r.is_match("anything"));
        assert_eq!(r.find("xy"), Some((0, 0)));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("a(b").is_err());
        assert!(Regex::new("a)b").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a{2,1}").is_err());
        assert!(Regex::new("a\\").is_err());
    }

    #[test]
    fn no_exponential_blowup() {
        // Classic pathological case for backtracking engines.
        let r = re("^(a*)*b$");
        let text = "a".repeat(200);
        assert!(!r.is_match(&text));
        let ok = format!("{}b", "a".repeat(200));
        assert!(r.is_match(&ok));
    }
}
