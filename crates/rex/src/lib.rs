//! `cocci-rex`: a small, self-contained regular-expression engine.
//!
//! SMPL metavariable declarations may constrain identifiers with
//! `identifier f =~ "kernel";` — Coccinelle delegates these to PCRE. This
//! workspace has no third-party regex dependency, so we implement the
//! fragment of regex syntax actually needed for semantic patching (and a
//! little more):
//!
//! * literals, `.`, escaped metacharacters (`\.`, `\*`, …) and the classes
//!   `\d \w \s` (plus negations `\D \W \S`)
//! * character classes `[abc]`, ranges `[a-z]`, negation `[^...]`
//! * grouping `( ... )` and alternation `a|b`
//! * quantifiers `*`, `+`, `?` and bounded `{m}`, `{m,}`, `{m,n}`
//! * anchors `^` and `$`
//!
//! The implementation is the classic two-stage pipeline: a recursive-descent
//! parser producing a small AST ([`ast::Node`]), compiled to a Thompson NFA
//! ([`nfa::Program`]) executed by a Pike-style virtual machine. Matching is
//! therefore linear in `text.len() * program.len()` with no exponential
//! blow-up, which matters because semantic patches are applied to thousands
//! of identifiers in large codebases.
//!
//! Matching semantics follow Coccinelle/PCRE convention for `=~`:
//! **unanchored search** — the pattern may match anywhere in the identifier
//! unless `^`/`$` anchors say otherwise.
//!
//! ```
//! use cocci_rex::Regex;
//! let re = Regex::new("rsb__BCSR_spmv_[sd]asa").unwrap();
//! assert!(re.is_match("rsb__BCSR_spmv_dasa_double"));
//! assert!(!re.is_match("rsb__BCSR_spmv_xasa"));
//! ```

mod ast;
mod multi;
mod nfa;
mod parser;

pub use ast::{ClassItem, Node};
pub use multi::MultiLiteral;
pub use parser::ParseError;

use nfa::Program;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    prog: Program,
    required: Vec<String>,
}

impl Regex {
    /// Compile `pattern`. Returns a [`ParseError`] describing the first
    /// syntax problem encountered.
    pub fn new(pattern: &str) -> Result<Self, ParseError> {
        let node = parser::parse(pattern)?;
        let prog = Program::compile(&node);
        let mut required = Vec::new();
        let mut run = Vec::new();
        collect_factors(&node, &mut run, &mut required);
        flush_run(&mut run, &mut required);
        required.sort();
        required.dedup();
        Ok(Regex {
            pattern: pattern.to_string(),
            prog,
            required,
        })
    }

    /// The original pattern text.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Literal factors every match necessarily contains, derived from the
    /// AST (maximal literal runs outside alternations and `min = 0`
    /// repeats). Any text matched by the pattern — and therefore any text
    /// *containing* a match — contains each factor as a substring, which
    /// makes these usable as a cheap pre-scan before running the NFA, or
    /// as file-level prefilter atoms for `=~`-constrained metavariables.
    pub fn required_literals(&self) -> &[String] {
        &self.required
    }

    /// Unanchored search: does the pattern match anywhere in `text`?
    pub fn is_match(&self, text: &str) -> bool {
        self.prog.search(text.as_bytes()).is_some()
    }

    /// Unanchored search returning the byte range of the leftmost match.
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        self.prog.search(text.as_bytes())
    }

    /// Anchored match: does the pattern match the *entire* `text`?
    pub fn is_full_match(&self, text: &str) -> bool {
        self.prog
            .search(text.as_bytes())
            .map(|(s, e)| s == 0 && e == text.len())
            .unwrap_or(false)
    }

    /// Can the pattern match *some* string built only from bytes
    /// satisfying `allowed`? Computed by NFA reachability with anchors
    /// treated as passable, so `false` is definitive ("no string over
    /// this alphabet matches") while `true` may over-approximate —
    /// exactly the direction an emptiness lint needs to stay sound.
    pub fn matchable_over(&self, allowed: impl Fn(u8) -> bool) -> bool {
        self.prog.reachable_match(&allowed)
    }

    /// Can the pattern match anywhere in *some* C identifier? Identifiers
    /// draw on `[A-Za-z0-9_]` only, so an `=~` constraint failing this
    /// check can never accept any bound identifier — the rule it guards
    /// is unsatisfiable.
    pub fn can_match_identifier(&self) -> bool {
        self.matchable_over(|b| b.is_ascii_alphanumeric() || b == b'_')
    }
}

/// Append the pending literal run to `out` (if non-empty and valid UTF-8).
fn flush_run(run: &mut Vec<u8>, out: &mut Vec<String>) {
    if run.is_empty() {
        return;
    }
    if let Ok(s) = String::from_utf8(std::mem::take(run)) {
        out.push(s);
    } else {
        run.clear();
    }
}

/// Walk `node` in sequence context, growing the current literal run with
/// guaranteed bytes and flushing it whenever contiguity can no longer be
/// proven. Alternation contributes nothing (no single branch is
/// guaranteed); a repeat with `min >= 1` contributes its body's factors.
fn collect_factors(node: &Node, run: &mut Vec<u8>, out: &mut Vec<String>) {
    match node {
        Node::Byte(b) => run.push(*b),
        Node::Class { items, negated } if !negated && items.len() == 1 => match items[0] {
            // A one-byte class is as good as a literal.
            ClassItem::Byte(b) => run.push(b),
            ClassItem::Range(lo, hi) if lo == hi => run.push(lo),
            _ => flush_run(run, out),
        },
        Node::Concat(children) => {
            for c in children {
                collect_factors(c, run, out);
            }
        }
        Node::Repeat { node, min, .. } => {
            flush_run(run, out);
            if *min >= 1 {
                let mut inner = Vec::new();
                collect_factors(node, &mut inner, out);
                flush_run(&mut inner, out);
            }
        }
        // Anchors are zero-width but flushing around them is still sound
        // (it only shortens factors, never invents them).
        Node::Empty
        | Node::AnyByte
        | Node::Class { .. }
        | Node::Alt(_)
        | Node::StartAnchor
        | Node::EndAnchor => flush_run(run, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap()
    }

    #[test]
    fn literal_substring_search() {
        let r = re("kernel");
        assert!(r.is_match("kernel"));
        assert!(r.is_match("my_kernel_fn"));
        assert!(!r.is_match("kern"));
    }

    #[test]
    fn dot_matches_any_but_newline() {
        let r = re("a.c");
        assert!(r.is_match("abc"));
        assert!(r.is_match("a-c"));
        assert!(!r.is_match("a\nc"));
        assert!(!r.is_match("ac"));
    }

    #[test]
    fn star_plus_question() {
        assert!(re("ab*c").is_match("ac"));
        assert!(re("ab*c").is_match("abbbc"));
        assert!(re("ab+c").is_match("abc"));
        assert!(!re("ab+c").is_match("ac"));
        assert!(re("ab?c").is_match("ac"));
        assert!(re("ab?c").is_match("abc"));
        assert!(!re("ab?c").is_match("abbc"));
    }

    #[test]
    fn alternation_and_groups() {
        let r = re("foo(bar|baz)+");
        assert!(r.is_match("foobar"));
        assert!(r.is_match("foobazbar"));
        assert!(!r.is_match("foo"));
    }

    #[test]
    fn classes_and_ranges() {
        let r = re("[a-f0-9]+");
        assert!(r.is_match("deadbeef42"));
        let neg = re("^[^x]+$");
        assert!(neg.is_match("abc"));
        assert!(!neg.is_match("axc"));
    }

    #[test]
    fn class_with_literal_dash_and_bracket() {
        let r = re("[a\\-b]");
        assert!(r.is_match("-"));
        let r2 = re("[\\]]");
        assert!(r2.is_match("]"));
    }

    #[test]
    fn anchors() {
        assert!(re("^abc$").is_full_match("abc"));
        assert!(!re("^abc$").is_match("xabc"));
        assert!(re("abc$").is_match("xabc"));
        assert!(re("^abc").is_match("abcx"));
        assert!(!re("^abc").is_match("xabc"));
    }

    #[test]
    fn bounded_repetition() {
        let r = re("^a{2,3}$");
        assert!(!r.is_match("a"));
        assert!(r.is_match("aa"));
        assert!(r.is_match("aaa"));
        assert!(!r.is_match("aaaa"));
        let exact = re("^x{3}$");
        assert!(exact.is_match("xxx"));
        assert!(!exact.is_match("xx"));
        let open = re("^y{2,}$");
        assert!(open.is_match("yyyy"));
        assert!(!open.is_match("y"));
    }

    #[test]
    fn escapes_and_perl_classes() {
        assert!(re("a\\.b").is_match("a.b"));
        assert!(!re("a\\.b").is_match("axb"));
        assert!(re("\\d+").is_match("var123"));
        assert!(!re("^\\d+$").is_match("12a"));
        assert!(re("\\w+").is_match("under_score9"));
        assert!(re("\\s").is_match("a b"));
        assert!(re("^\\S+$").is_match("dense"));
    }

    #[test]
    fn paper_librsb_pattern() {
        // The regex from the paper's compiler-bug workaround use case.
        let r = re("rsb__BCSR_spmv_sasa_double_complex_[CH]__t[NTC]_r1_c1_uu_s[HS]_dE_uG");
        assert!(r.is_match("rsb__BCSR_spmv_sasa_double_complex_C__tN_r1_c1_uu_sH_dE_uG"));
        assert!(r.is_match("rsb__BCSR_spmv_sasa_double_complex_H__tC_r1_c1_uu_sS_dE_uG"));
        assert!(!r.is_match("rsb__BCSR_spmv_sasa_double_complex_X__tN_r1_c1_uu_sH_dE_uG"));
    }

    #[test]
    fn leftmost_match_position() {
        let r = re("b+");
        assert_eq!(r.find("aabbbcc"), Some((2, 5)));
        assert_eq!(r.find("nope"), None);
    }

    #[test]
    fn empty_pattern_matches_empty() {
        let r = re("");
        assert!(r.is_match(""));
        assert!(r.is_match("anything"));
        assert_eq!(r.find("xy"), Some((0, 0)));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("a(b").is_err());
        assert!(Regex::new("a)b").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a{2,1}").is_err());
        assert!(Regex::new("a\\").is_err());
    }

    #[test]
    fn required_literals_plain_word() {
        assert_eq!(re("kernel").required_literals(), ["kernel"]);
        assert_eq!(
            re("^rsb__BCSR_spmv_").required_literals(),
            ["rsb__BCSR_spmv_"]
        );
    }

    #[test]
    fn required_literals_split_by_classes_and_repeats() {
        let r = re("foo[0-9]+bar");
        assert_eq!(r.required_literals(), ["bar", "foo"]);
        // `min = 0` repeats guarantee nothing, `min >= 1` guarantee the body.
        assert_eq!(re("a(xyz)*b").required_literals(), ["a", "b"]);
        let plus = re("(xyz)+");
        assert_eq!(plus.required_literals(), ["xyz"]);
    }

    #[test]
    fn required_literals_skip_alternation() {
        assert_eq!(re("pre(foo|bar)post").required_literals(), ["post", "pre"]);
        assert!(re("foo|bar").required_literals().is_empty());
    }

    #[test]
    fn required_literals_are_sound_on_matches() {
        let r = re("rsb__BCSR_spmv_sasa_double_complex_[CH]__t[NTC]_r1_c1_uu_s[HS]_dE_uG");
        let hay = "rsb__BCSR_spmv_sasa_double_complex_C__tN_r1_c1_uu_sH_dE_uG";
        assert!(r.is_match(hay));
        for lit in r.required_literals() {
            assert!(hay.contains(lit.as_str()), "{lit:?} missing from match");
        }
        // One-byte classes count as literals.
        assert_eq!(re("a[x]b").required_literals(), ["axb"]);
    }

    #[test]
    fn identifier_matchability() {
        // Satisfiable over [A-Za-z0-9_]: plain words, classes, digits.
        for p in ["kernel", "^[0-9]+$", "\\w+", "a.c", "x|y-z", "foo_[0-9]"] {
            assert!(re(p).can_match_identifier(), "{p}");
        }
        // Definitely unsatisfiable: every accepting path needs a byte
        // outside the identifier alphabet.
        for p in ["foo-bar", "[^a-zA-Z0-9_]", "a\\.b", "\\s", "a б"] {
            assert!(!re(p).can_match_identifier(), "{p}");
        }
        // Anchors are passable (sound under-approximation of emptiness):
        // `^foo$` stays "satisfiable".
        assert!(re("^foo$").can_match_identifier());
        // General alphabets work too.
        assert!(re("[0-9]+").matchable_over(|b| b.is_ascii_digit()));
        assert!(!re("[a-z]").matchable_over(|b| b.is_ascii_digit()));
    }

    #[test]
    fn no_exponential_blowup() {
        // Classic pathological case for backtracking engines.
        let r = re("^(a*)*b$");
        let text = "a".repeat(200);
        assert!(!r.is_match(&text));
        let ok = format!("{}b", "a".repeat(200));
        assert!(r.is_match(&ok));
    }
}
