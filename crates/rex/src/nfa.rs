//! Thompson NFA compilation and Pike-VM execution.
//!
//! The program is a flat instruction array; `search` runs all NFA threads
//! in lockstep over the input, giving worst-case `O(len(text) * len(prog))`
//! time — no backtracking, no pathological patterns.

use crate::ast::{ClassItem, Node};

/// One NFA instruction.
#[derive(Debug, Clone)]
pub(crate) enum Inst {
    /// Match a single byte satisfying the predicate.
    Byte(u8),
    /// Any byte except newline.
    Any,
    /// Character class.
    Class {
        items: Vec<ClassItem>,
        negated: bool,
    },
    /// Unconditional jump.
    Jmp(usize),
    /// Fork execution: try `a` first (priority), then `b`.
    Split(usize, usize),
    /// Assert start of text.
    AssertStart,
    /// Assert end of text.
    AssertEnd,
    /// Accept.
    Match,
}

/// Compiled NFA program.
#[derive(Debug, Clone)]
pub(crate) struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Compile an AST into a program ending in `Match`.
    pub(crate) fn compile(node: &Node) -> Program {
        let mut insts = Vec::new();
        emit(node, &mut insts);
        insts.push(Inst::Match);
        Program { insts }
    }

    /// Leftmost unanchored search. Returns the byte range of the first
    /// (leftmost, then longest-preferred by thread priority) match.
    pub(crate) fn search(&self, text: &[u8]) -> Option<(usize, usize)> {
        // Try anchored execution from each starting offset; the VM itself
        // is linear, and starts are attempted leftmost-first. For the
        // pattern sizes used by SMPL constraints this is plenty fast; a
        // production engine would add a literal prefilter here.
        for start in 0..=text.len() {
            if let Some(end) = self.run_from(text, start) {
                return Some((start, end));
            }
            // A leading AssertStart can only match at 0.
            if matches!(self.insts.first(), Some(Inst::AssertStart)) {
                break;
            }
        }
        None
    }

    /// Run the VM anchored at `start`; returns the furthest accepting end
    /// offset reached by any thread (longest match from this start).
    fn run_from(&self, text: &[u8], start: usize) -> Option<usize> {
        let n = self.insts.len();
        let mut clist: Vec<usize> = Vec::with_capacity(n);
        let mut nlist: Vec<usize> = Vec::with_capacity(n);
        let mut on_c = vec![false; n];
        let mut on_n = vec![false; n];
        let mut best: Option<usize> = None;

        self.add_thread(0, start, text, &mut clist, &mut on_c, &mut best);

        let mut pos = start;
        while pos < text.len() && !clist.is_empty() {
            let b = text[pos];
            nlist.clear();
            on_n.iter_mut().for_each(|f| *f = false);
            for &pc in &clist {
                let advance = match &self.insts[pc] {
                    Inst::Byte(c) => b == *c,
                    Inst::Any => b != b'\n',
                    Inst::Class { items, negated } => {
                        let hit = items.iter().any(|i| i.matches(b));
                        hit != *negated
                    }
                    _ => false,
                };
                if advance {
                    self.add_thread(pc + 1, pos + 1, text, &mut nlist, &mut on_n, &mut best);
                }
            }
            std::mem::swap(&mut clist, &mut nlist);
            std::mem::swap(&mut on_c, &mut on_n);
            pos += 1;
        }
        best
    }

    /// Can the program accept *some* string drawn solely from the bytes
    /// satisfying `allowed`? Plain graph reachability from pc 0 to
    /// `Match`: consuming instructions are traversable when at least one
    /// allowed byte satisfies them, epsilon instructions always are, and
    /// anchors are treated as passable (a sound over-approximation of
    /// satisfiability — `false` therefore means *definitely* no match
    /// over this alphabet, which is what emptiness lints need).
    pub(crate) fn reachable_match(&self, allowed: &dyn Fn(u8) -> bool) -> bool {
        let allowed_bytes: Vec<u8> = (0..=255u8).filter(|&b| allowed(b)).collect();
        let mut seen = vec![false; self.insts.len()];
        let mut stack = vec![0usize];
        while let Some(pc) = stack.pop() {
            if seen[pc] {
                continue;
            }
            seen[pc] = true;
            match &self.insts[pc] {
                Inst::Match => return true,
                Inst::Jmp(t) => stack.push(*t),
                Inst::Split(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                // Zero-width: anchors consume nothing and are assumed
                // satisfiable at whatever position the walk reaches.
                Inst::AssertStart | Inst::AssertEnd => stack.push(pc + 1),
                Inst::Byte(c) => {
                    if allowed(*c) {
                        stack.push(pc + 1);
                    }
                }
                Inst::Any => {
                    if allowed_bytes.iter().any(|&b| b != b'\n') {
                        stack.push(pc + 1);
                    }
                }
                Inst::Class { items, negated } => {
                    if allowed_bytes
                        .iter()
                        .any(|&b| items.iter().any(|i| i.matches(b)) != *negated)
                    {
                        stack.push(pc + 1);
                    }
                }
            }
        }
        false
    }

    /// Follow epsilon transitions from `pc`, recording match states.
    fn add_thread(
        &self,
        pc: usize,
        pos: usize,
        text: &[u8],
        list: &mut Vec<usize>,
        on: &mut [bool],
        best: &mut Option<usize>,
    ) {
        if on[pc] {
            return;
        }
        on[pc] = true;
        match &self.insts[pc] {
            Inst::Jmp(t) => self.add_thread(*t, pos, text, list, on, best),
            Inst::Split(a, b) => {
                self.add_thread(*a, pos, text, list, on, best);
                self.add_thread(*b, pos, text, list, on, best);
            }
            Inst::AssertStart => {
                if pos == 0 {
                    self.add_thread(pc + 1, pos, text, list, on, best);
                }
            }
            Inst::AssertEnd => {
                if pos == text.len() {
                    self.add_thread(pc + 1, pos, text, list, on, best);
                }
            }
            Inst::Match => {
                // Prefer the longest end for this start offset.
                if best.map(|e| pos > e).unwrap_or(true) {
                    *best = Some(pos);
                }
            }
            _ => list.push(pc),
        }
    }
}

/// Emit instructions for `node` onto `out`.
fn emit(node: &Node, out: &mut Vec<Inst>) {
    match node {
        Node::Empty => {}
        Node::Byte(b) => out.push(Inst::Byte(*b)),
        Node::AnyByte => out.push(Inst::Any),
        Node::Class { items, negated } => out.push(Inst::Class {
            items: items.clone(),
            negated: *negated,
        }),
        Node::StartAnchor => out.push(Inst::AssertStart),
        Node::EndAnchor => out.push(Inst::AssertEnd),
        Node::Concat(parts) => {
            for p in parts {
                emit(p, out);
            }
        }
        Node::Alt(alts) => {
            // Chain of splits; each branch jumps to the common end.
            let mut jmp_slots = Vec::new();
            for (i, alt) in alts.iter().enumerate() {
                if i + 1 < alts.len() {
                    let split_at = out.len();
                    out.push(Inst::Split(0, 0)); // patched below
                    let branch_start = out.len();
                    emit(alt, out);
                    jmp_slots.push(out.len());
                    out.push(Inst::Jmp(0)); // patched below
                    let next_branch = out.len();
                    out[split_at] = Inst::Split(branch_start, next_branch);
                } else {
                    emit(alt, out);
                }
            }
            let end = out.len();
            for slot in jmp_slots {
                out[slot] = Inst::Jmp(end);
            }
        }
        Node::Repeat { node, min, max } => emit_repeat(node, *min, *max, out),
    }
}

fn emit_repeat(node: &Node, min: u32, max: Option<u32>, out: &mut Vec<Inst>) {
    // Mandatory copies.
    for _ in 0..min {
        emit(node, out);
    }
    match max {
        None => {
            // Kleene tail: L: split(body, end); body; jmp L; end:
            let l = out.len();
            out.push(Inst::Split(0, 0));
            let body = out.len();
            emit(node, out);
            out.push(Inst::Jmp(l));
            let end = out.len();
            out[l] = Inst::Split(body, end);
        }
        Some(m) => {
            // (max - min) optional copies.
            let mut split_slots = Vec::new();
            for _ in min..m {
                let s = out.len();
                out.push(Inst::Split(0, 0));
                let body = out.len();
                emit(node, out);
                split_slots.push((s, body));
            }
            let end = out.len();
            for (s, body) in split_slots {
                out[s] = Inst::Split(body, end);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn search(pat: &str, text: &str) -> Option<(usize, usize)> {
        Program::compile(&parse(pat).unwrap()).search(text.as_bytes())
    }

    #[test]
    fn longest_match_from_start() {
        assert_eq!(search("a+", "aaab"), Some((0, 3)));
    }

    #[test]
    fn leftmost_preferred_over_longer_later() {
        assert_eq!(search("a|bb", "cbba"), Some((1, 3)));
    }

    #[test]
    fn anchored_start_only_tries_zero() {
        assert_eq!(search("^b", "ab"), None);
        assert_eq!(search("^a", "ab"), Some((0, 1)));
    }

    #[test]
    fn nested_repeat_linear() {
        // Would hang a naive backtracker at this size.
        let text = "a".repeat(500);
        assert_eq!(search("(a|aa)*$", &text), Some((0, 500)));
    }
}
