//! Bench trend comparison: detect wall-clock regressions between two
//! `BENCH_*.json` artifacts (the previous run's baseline and the fresh
//! run), so CI can fail instead of letting a hot path quietly rot.
//!
//! Only *timed* records are compared; scalar metrics (hit rates, match
//! counts) are informational trend data, not budgets. To keep the gate
//! honest on short-sample CI smoke runs (where any single statistic of
//! 3 samples can swing past 25% on scheduler noise alone), a benchmark
//! is flagged only when **both** its best-of-samples ("how fast can
//! this go" — the floor a genuine regression moves) *and* its median
//! exceed the budget. Benchmarks present in only one of the two files
//! are skipped — adding or retiring a benchmark is not a regression.

use cocci_core::report::json;

/// The compared wall-clock statistic of one timed benchmark record.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendEntry {
    /// Benchmark group (e.g. `flow_dots`).
    pub group: String,
    /// Benchmark id within the group (e.g. `linear`).
    pub id: String,
    /// Best (minimum) seconds over the run's samples — the
    /// noise-robust statistic the regression gate compares. Falls back
    /// to the median for artifacts without a `min_s` field.
    pub best_s: f64,
    /// Median seconds over the run's samples (equals `best_s` for
    /// artifacts without a `median_s` field).
    pub median_s: f64,
}

/// One benchmark whose fresh best-of-samples exceeded the allowed
/// regression.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Benchmark group.
    pub group: String,
    /// Benchmark id.
    pub id: String,
    /// Baseline best-of-samples seconds.
    pub baseline_s: f64,
    /// Fresh best-of-samples seconds.
    pub current_s: f64,
}

impl Regression {
    /// Slowdown as a percentage over baseline (e.g. `31.2`).
    pub fn slowdown_pct(&self) -> f64 {
        (self.current_s / self.baseline_s - 1.0) * 100.0
    }
}

/// A scalar metric record of a `BENCH_*.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Metric group (e.g. `scaling_corpus`).
    pub group: String,
    /// Metric id (e.g. `speedup_max`).
    pub id: String,
    /// Recorded value.
    pub value: f64,
}

/// A higher-is-better metric that decayed below the allowed fraction of
/// its baseline (the parallel-scaling gate).
#[derive(Debug, Clone)]
pub struct SpeedupDrop {
    /// Metric group.
    pub group: String,
    /// Metric id.
    pub id: String,
    /// Baseline speedup ratio.
    pub baseline: f64,
    /// Fresh speedup ratio.
    pub current: f64,
}

impl SpeedupDrop {
    /// Fraction of the baseline ratio retained (e.g. `0.62`).
    pub fn kept_ratio(&self) -> f64 {
        self.current / self.baseline
    }
}

/// Parse the scalar metrics of a `BENCH_*.json` artifact. Artifacts
/// without a `metrics` array yield an empty list.
pub fn read_metrics(text: &str) -> Result<Vec<MetricEntry>, String> {
    let v = json::parse(text)?;
    let obj = v.as_object().ok_or("bench json: expected an object")?;
    let mut out = Vec::new();
    let Some(metrics) = obj.get("metrics").and_then(json::Value::as_array) else {
        return Ok(out);
    };
    for m in metrics {
        let mo = m.as_object().ok_or("bench json: metric not an object")?;
        let get = |k: &str| mo.get(k).and_then(json::Value::as_str);
        out.push(MetricEntry {
            group: get("group")
                .ok_or("bench json: metric missing \"group\"")?
                .to_string(),
            id: get("id")
                .ok_or("bench json: metric missing \"id\"")?
                .to_string(),
            value: mo
                .get("value")
                .and_then(json::Value::as_f64)
                .ok_or("bench json: metric missing \"value\"")?,
        });
    }
    Ok(out)
}

/// Gate the parallel-scaling ratio: a `speedup_max` metric present in
/// both artifacts regresses when the fresh ratio drops below
/// `min_keep_ratio` (CI default 0.70 — keep at least 70%) of the
/// baseline ratio. Other metrics, metrics on one side only, and
/// degenerate non-positive baselines are skipped.
pub fn compare_speedups(
    baseline: &[MetricEntry],
    current: &[MetricEntry],
    min_keep_ratio: f64,
) -> Vec<SpeedupDrop> {
    let mut out = Vec::new();
    for cur in current.iter().filter(|m| m.id == "speedup_max") {
        let Some(base) = baseline
            .iter()
            .find(|b| b.group == cur.group && b.id == cur.id)
        else {
            continue;
        };
        if base.value <= 0.0 {
            continue;
        }
        if cur.value < base.value * min_keep_ratio {
            out.push(SpeedupDrop {
                group: cur.group.clone(),
                id: cur.id.clone(),
                baseline: base.value,
                current: cur.value,
            });
        }
    }
    out
}

/// Parse the timed records of a `BENCH_*.json` artifact.
pub fn read_timings(text: &str) -> Result<Vec<TrendEntry>, String> {
    let v = json::parse(text)?;
    let obj = v.as_object().ok_or("bench json: expected an object")?;
    let mut out = Vec::new();
    for r in obj
        .get("results")
        .and_then(json::Value::as_array)
        .ok_or("bench json: missing \"results\"")?
    {
        let ro = r.as_object().ok_or("bench json: result not an object")?;
        let group = ro
            .get("group")
            .and_then(json::Value::as_str)
            .ok_or("bench json: result missing \"group\"")?
            .to_string();
        let id = ro
            .get("id")
            .and_then(json::Value::as_str)
            .ok_or("bench json: result missing \"id\"")?
            .to_string();
        let min_s = ro.get("min_s").and_then(json::Value::as_f64);
        let median_s = ro.get("median_s").and_then(json::Value::as_f64);
        let (best_s, median_s) = match (min_s, median_s) {
            (Some(b), Some(m)) => (b, m),
            (Some(b), None) => (b, b),
            (None, Some(m)) => (m, m),
            (None, None) => return Err("bench json: result missing \"min_s\"/\"median_s\"".into()),
        };
        out.push(TrendEntry {
            group,
            id,
            best_s,
            median_s,
        });
    }
    Ok(out)
}

/// Compare fresh timings against a baseline. A benchmark regresses when
/// both its fresh best-of-samples *and* its fresh median exceed
/// `(1 + max_regression)` times their baseline counterparts
/// (`max_regression = 0.25` is the CI default: fail on >25%).
/// Benchmarks missing from either side, and degenerate non-positive
/// baselines, are skipped.
pub fn compare(
    baseline: &[TrendEntry],
    current: &[TrendEntry],
    max_regression: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for cur in current {
        let Some(base) = baseline
            .iter()
            .find(|b| b.group == cur.group && b.id == cur.id)
        else {
            continue;
        };
        if base.best_s <= 0.0 || base.median_s <= 0.0 {
            continue;
        }
        if cur.best_s > base.best_s * (1.0 + max_regression)
            && cur.median_s > base.median_s * (1.0 + max_regression)
        {
            out.push(Regression {
                group: cur.group.clone(),
                id: cur.id.clone(),
                baseline_s: base.best_s,
                current_s: cur.best_s,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(entries: &[(&str, &str, f64)]) -> String {
        let mut out = String::from("{\"experiment\": \"t\", \"sample_size\": 3, \"results\": [");
        for (i, (g, id, m)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"group\": \"{g}\", \"id\": \"{id}\", \"min_s\": {m:e}, \"median_s\": {m:e}, \"mean_s\": {m:e}, \"samples_s\": [{m:e}]}}"
            ));
        }
        out.push_str("], \"metrics\": [{\"group\": \"m\", \"id\": \"x\", \"value\": 1e0}]}");
        out
    }

    #[test]
    fn reads_timings_from_harness_json() {
        let entries = read_timings(&bench_json(&[("g", "a", 0.5), ("g", "b", 1.0)])).unwrap();
        assert_eq!(entries.len(), 2, "metrics are not timed records");
        assert_eq!(entries[0].group, "g");
        assert_eq!(entries[0].id, "a");
        assert!((entries[0].best_s - 0.5).abs() < 1e-12);
        assert!(read_timings("{}").is_err());
        // Artifacts predating `min_s` fall back to the median.
        let legacy = r#"{"results": [{"group": "g", "id": "a", "median_s": 2e0}]}"#;
        assert!((read_timings(legacy).unwrap()[0].best_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flags_only_regressions_beyond_threshold() {
        let base = read_timings(&bench_json(&[("g", "a", 1.0), ("g", "b", 1.0)])).unwrap();
        // `a` regresses 50%, `b` improves; only `a` is flagged at 25%.
        let cur = read_timings(&bench_json(&[("g", "a", 1.5), ("g", "b", 0.8)])).unwrap();
        let regs = compare(&base, &cur, 0.25);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].id, "a");
        assert!((regs[0].slowdown_pct() - 50.0).abs() < 1e-9);
        // A 20% slip stays under the 25% budget.
        let cur = read_timings(&bench_json(&[("g", "a", 1.2)])).unwrap();
        assert!(compare(&base, &cur, 0.25).is_empty());
    }

    #[test]
    fn single_statistic_spikes_are_not_regressions() {
        // Noise that lifts the floor but not the median (or vice versa)
        // must not trip the gate — only a shift of both statistics is a
        // regression.
        let base = vec![TrendEntry {
            group: "g".into(),
            id: "a".into(),
            best_s: 1.0,
            median_s: 2.0,
        }];
        let min_spike = vec![TrendEntry {
            group: "g".into(),
            id: "a".into(),
            best_s: 1.5,
            median_s: 2.1,
        }];
        assert!(compare(&base, &min_spike, 0.25).is_empty());
        let median_spike = vec![TrendEntry {
            group: "g".into(),
            id: "a".into(),
            best_s: 1.1,
            median_s: 3.0,
        }];
        assert!(compare(&base, &median_spike, 0.25).is_empty());
        let both = vec![TrendEntry {
            group: "g".into(),
            id: "a".into(),
            best_s: 1.5,
            median_s: 3.0,
        }];
        assert_eq!(compare(&base, &both, 0.25).len(), 1);
    }

    #[test]
    fn new_and_retired_benchmarks_are_not_regressions() {
        let base = read_timings(&bench_json(&[("g", "old", 1.0)])).unwrap();
        let cur = read_timings(&bench_json(&[("g", "new", 9.0)])).unwrap();
        assert!(compare(&base, &cur, 0.25).is_empty());
    }

    fn metrics_json(entries: &[(&str, &str, f64)]) -> String {
        let mut out = String::from("{\"experiment\": \"t\", \"results\": [], \"metrics\": [");
        for (i, (g, id, v)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"group\": \"{g}\", \"id\": \"{id}\", \"value\": {v:e}}}"
            ));
        }
        out.push_str("]}");
        out
    }

    #[test]
    fn reads_metrics_and_tolerates_their_absence() {
        let ms = read_metrics(&metrics_json(&[("sc", "speedup_max", 3.4)])).unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].group, "sc");
        assert!((ms[0].value - 3.4).abs() < 1e-12);
        // Pre-metrics artifacts parse to an empty list, not an error.
        assert!(read_metrics(r#"{"results": []}"#).unwrap().is_empty());
    }

    #[test]
    fn speedup_gate_fires_below_seventy_percent() {
        let base = read_metrics(&metrics_json(&[
            ("sc", "speedup_max", 4.0),
            ("sc", "speedup_2", 1.9),
        ]))
        .unwrap();
        // 4.0 → 3.0 keeps 75%: fine.
        let ok = read_metrics(&metrics_json(&[("sc", "speedup_max", 3.0)])).unwrap();
        assert!(compare_speedups(&base, &ok, 0.70).is_empty());
        // 4.0 → 2.0 keeps 50%: regression.
        let bad = read_metrics(&metrics_json(&[("sc", "speedup_max", 2.0)])).unwrap();
        let drops = compare_speedups(&base, &bad, 0.70);
        assert_eq!(drops.len(), 1);
        assert!((drops[0].kept_ratio() - 0.5).abs() < 1e-9);
        // Only speedup_max is a budget; other metrics are informational.
        let other = read_metrics(&metrics_json(&[("sc", "speedup_2", 0.1)])).unwrap();
        assert!(compare_speedups(&base, &other, 0.70).is_empty());
        // A metric new to this run has no baseline to decay from.
        let fresh = read_metrics(&metrics_json(&[("new", "speedup_max", 1.0)])).unwrap();
        assert!(compare_speedups(&base, &fresh, 0.70).is_empty());
    }
}
