//! Minimal timing harness replacing Criterion for the `harness = false`
//! bench targets.
//!
//! Each experiment binary builds a [`Harness`], registers benchmarks
//! with [`Harness::bench`], and calls [`Harness::finish`], which prints
//! a human-readable table to stderr and writes machine-readable timings
//! to `BENCH_<experiment>.json` (under `target/` by default, or
//! `$BENCH_OUT_DIR`). Sample counts can be overridden globally with
//! `$BENCH_SAMPLES`, which CI uses to keep bench runs short.
//!
//! Methodology: per benchmark, a few warm-up iterations followed by
//! `sample_size` timed iterations; the table reports min / median /
//! mean seconds and derived throughput. `std::hint::black_box` guards
//! the closure result so the optimizer cannot elide the measured work.

use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// No throughput line, only times.
    None,
    /// Input size in bytes per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

struct Record {
    group: String,
    id: String,
    throughput: Throughput,
    samples_s: Vec<f64>,
}

struct Metric {
    group: String,
    id: String,
    value: f64,
}

impl Record {
    fn min(&self) -> f64 {
        self.samples_s.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn mean(&self) -> f64 {
        self.samples_s.iter().sum::<f64>() / self.samples_s.len() as f64
    }

    fn median(&self) -> f64 {
        let mut s = self.samples_s.clone();
        s.sort_by(f64::total_cmp);
        let n = s.len();
        if n % 2 == 1 {
            s[n / 2]
        } else {
            (s[n / 2 - 1] + s[n / 2]) / 2.0
        }
    }
}

/// Collects timed benchmarks for one experiment and emits the report.
pub struct Harness {
    experiment: String,
    sample_size: usize,
    warmup: usize,
    out_dir: PathBuf,
    records: Vec<Record>,
    metrics: Vec<Metric>,
}

impl Harness {
    /// A harness for `experiment` (names the output file). Sample size
    /// defaults to 10, overridable per-experiment with
    /// [`Harness::sample_size`] and globally with `$BENCH_SAMPLES`.
    pub fn new(experiment: &str) -> Self {
        // `cargo bench` runs the binary with cwd = the package root, so
        // a relative "target" would land in crates/bench/. The workspace
        // target dir is where the bench executable itself lives
        // (target/release/deps/<bench>), so derive it from there unless
        // `$BENCH_OUT_DIR` overrides.
        let out_dir = std::env::var_os("BENCH_OUT_DIR")
            .map(PathBuf::from)
            .or_else(|| {
                std::env::current_exe()
                    .ok()?
                    .ancestors()
                    .nth(3)
                    .map(PathBuf::from)
            })
            .unwrap_or_else(|| PathBuf::from("target"));
        Harness {
            experiment: experiment.to_string(),
            sample_size: 10,
            warmup: 2,
            out_dir,
            records: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Record a scalar, non-timed metric under `group/id` (a hit rate, a
    /// count, a ratio). Metrics land in the JSON next to the timing
    /// records so trend tracking sees them too.
    pub fn metric(&mut self, group: &str, id: &str, value: f64) {
        self.metrics.push(Metric {
            group: group.to_string(),
            id: id.to_string(),
            value,
        });
    }

    /// Median seconds of an already-recorded benchmark, for deriving
    /// metrics from timings (e.g. a thread-sweep's speedup ratios).
    pub fn median_s(&self, group: &str, id: &str) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.group == group && r.id == id)
            .map(Record::median)
    }

    /// Best-of-samples seconds of an already-recorded benchmark. Noise
    /// on a loaded builder is one-sided (interference only ever slows a
    /// sample down), so the minimum is the steadiest basis for tight
    /// ratio gates like the tracing-overhead budget.
    pub fn min_s(&self, group: &str, id: &str) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.group == group && r.id == id)
            .map(Record::min)
    }

    /// Set the per-benchmark sample count (unless `$BENCH_SAMPLES`
    /// overrides it at run time).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Redirect the JSON report (used by tests; production runs use
    /// `$BENCH_OUT_DIR` or `target/`).
    pub fn out_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.out_dir = dir.into();
        self
    }

    fn effective_samples(&self) -> usize {
        std::env::var("BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.sample_size)
    }

    /// Time `f` and record it under `group/id`.
    pub fn bench<R>(
        &mut self,
        group: &str,
        id: &str,
        throughput: Throughput,
        mut f: impl FnMut() -> R,
    ) {
        let samples = self.effective_samples();
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples_s = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            black_box(f());
            samples_s.push(t0.elapsed().as_secs_f64());
        }
        self.records.push(Record {
            group: group.to_string(),
            id: id.to_string(),
            throughput,
            samples_s,
        });
    }

    /// Print the table and write `BENCH_<experiment>.json`. Returns the
    /// JSON path.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        // Every experiment records its memory high-water mark alongside
        // the timings (0 on platforms without /proc).
        self.metrics.push(Metric {
            group: "process".to_string(),
            id: "peak_rss_bytes".to_string(),
            value: peak_rss_bytes() as f64,
        });
        eprintln!(
            "\n{} ({} samples/benchmark):",
            self.experiment,
            self.effective_samples()
        );
        eprintln!(
            "{:<18} {:<12} {:>12} {:>12} {:>12}  throughput",
            "group", "id", "min", "median", "mean"
        );
        for r in &self.records {
            let tp = match r.throughput {
                Throughput::None => String::new(),
                Throughput::Bytes(b) => {
                    format!("{:.1} MiB/s", b as f64 / r.median() / (1024.0 * 1024.0))
                }
                Throughput::Elements(n) => format!("{:.3e} elem/s", n as f64 / r.median()),
            };
            eprintln!(
                "{:<18} {:<12} {:>12} {:>12} {:>12}  {}",
                r.group,
                r.id,
                fmt_secs(r.min()),
                fmt_secs(r.median()),
                fmt_secs(r.mean()),
                tp
            );
        }

        for m in &self.metrics {
            eprintln!("{:<18} {:<12} {:>38.4}  (metric)", m.group, m.id, m.value);
        }

        let path = self.out_dir.join(format!("BENCH_{}.json", self.experiment));
        std::fs::create_dir_all(&self.out_dir)?;
        std::fs::write(&path, self.to_json())?;
        eprintln!("wrote {}", path.display());
        Ok(path)
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"experiment\": {},\n  \"sample_size\": {},\n  \"results\": [",
            json_str(&self.experiment),
            self.effective_samples()
        );
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"group\": {}, \"id\": {}, ",
                json_str(&r.group),
                json_str(&r.id)
            );
            match r.throughput {
                Throughput::None => {}
                Throughput::Bytes(b) => {
                    let _ = write!(out, "\"bytes\": {b}, ");
                }
                Throughput::Elements(n) => {
                    let _ = write!(out, "\"elements\": {n}, ");
                }
            }
            let _ = write!(
                out,
                "\"min_s\": {:e}, \"median_s\": {:e}, \"mean_s\": {:e}, \"samples_s\": [",
                r.min(),
                r.median(),
                r.mean()
            );
            for (j, s) in r.samples_s.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{s:e}");
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"group\": {}, \"id\": {}, \"value\": {:e}}}",
                json_str(&m.group),
                json_str(&m.id),
                m.value
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where the proc filesystem is unavailable.
/// A high-water mark, not a point sample: it covers everything the
/// process has done so far, which for a bench binary is exactly the
/// "how much memory did this experiment need" question.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_samples_and_writes_json() {
        let dir = std::env::temp_dir().join(format!("cocci-bench-{}", std::process::id()));
        let mut h = Harness::new("selftest").sample_size(3).out_dir(&dir);
        let mut runs = 0u64;
        h.bench("g", "work", Throughput::Bytes(1024), || {
            runs += 1;
            runs
        });
        h.metric("g", "hit_rate", 0.75);
        assert!(runs >= 3, "warmup + samples ran");
        let path = h.finish().unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"experiment\": \"selftest\""));
        assert!(json.contains("\"group\": \"g\""));
        assert!(json.contains("\"bytes\": 1024"));
        assert!(json.contains("\"median_s\""));
        assert!(json.contains("\"id\": \"hit_rate\""));
        assert!(json.contains("\"value\": 7.5e-1"));
        assert!(json.contains("\"id\": \"peak_rss_bytes\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peak_rss_is_sane() {
        let rss = peak_rss_bytes();
        // On Linux this is at least a few pages; elsewhere it is 0.
        if cfg!(target_os = "linux") {
            assert!(rss > 4096, "VmHWM should exceed a page, got {rss}");
        }
    }

    #[test]
    fn median_of_even_and_odd() {
        let r = Record {
            group: String::new(),
            id: String::new(),
            throughput: Throughput::None,
            samples_s: vec![3.0, 1.0, 2.0],
        };
        assert_eq!(r.median(), 2.0);
        let r2 = Record {
            samples_s: vec![4.0, 1.0, 2.0, 3.0],
            ..r
        };
        assert_eq!(r2.median(), 2.5);
        assert_eq!(r2.min(), 1.0);
        assert_eq!(r2.mean(), 2.5);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
