//! `bench_trend` — compare a fresh `BENCH_*.json` against the previous
//! run's artifact and fail (exit 1) when any benchmark's best-of-samples
//! wall-clock regressed beyond the threshold.
//!
//! ```text
//! bench_trend <baseline.json> <current.json> [max-regression-pct]
//! ```
//!
//! The default threshold is 25%. Exit codes: 0 = within budget,
//! 1 = confirmed regression, 2 = usage/threshold error, 3 = baseline
//! unreadable (ci.sh reseeds), 4 = fresh artifact unreadable. `ci.sh`
//! runs this after every bench smoke, keeping the last artifact as the
//! rolling baseline.
//!
//! Besides wall-clock, a `speedup_max` metric (the scaling bench's
//! max-thread parallel speedup) is gated in the opposite direction: the
//! fresh ratio must keep at least 70% of the baseline ratio
//! (`$BENCH_TREND_MIN_SPEEDUP_KEEP`, a fraction, overrides).

use cocci_bench::trend;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path) = match (args.first(), args.get(1)) {
        (Some(b), Some(c)) => (b, c),
        _ => {
            eprintln!("usage: bench_trend <baseline.json> <current.json> [max-regression-pct]");
            return ExitCode::from(2);
        }
    };
    let max_pct: f64 = match args.get(2).map(|s| s.parse()) {
        None => 25.0,
        Some(Ok(p)) => p,
        Some(Err(_)) => {
            eprintln!("bench_trend: bad threshold {:?}", args[2]);
            return ExitCode::from(2);
        }
    };

    let min_keep: f64 = match std::env::var("BENCH_TREND_MIN_SPEEDUP_KEEP") {
        Err(_) => 0.70,
        Ok(s) => match s.parse() {
            Ok(k) => k,
            Err(_) => {
                eprintln!("bench_trend: bad $BENCH_TREND_MIN_SPEEDUP_KEEP {s:?}");
                return ExitCode::from(2);
            }
        },
    };

    type Artifact = (Vec<trend::TrendEntry>, Vec<trend::MetricEntry>);
    let read = |path: &str| -> Result<Artifact, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Ok((
            trend::read_timings(&text).map_err(|e| format!("{path}: {e}"))?,
            trend::read_metrics(&text).map_err(|e| format!("{path}: {e}"))?,
        ))
    };
    // Distinct exit codes so callers can tell "bad baseline — reseed"
    // (3) from "bad fresh artifact or configuration — fail" (2/4).
    let (baseline, base_metrics) = match read(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_trend: {e}");
            return ExitCode::from(3);
        }
    };
    let (current, cur_metrics) = match read(current_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_trend: {e}");
            return ExitCode::from(4);
        }
    };

    let regressions = trend::compare(&baseline, &current, max_pct / 100.0);
    let drops = trend::compare_speedups(&base_metrics, &cur_metrics, min_keep);
    if regressions.is_empty() && drops.is_empty() {
        eprintln!(
            "bench_trend: {} benchmark(s) within the {max_pct}% budget vs {baseline_path}",
            current.len()
        );
        return ExitCode::SUCCESS;
    }
    for r in &regressions {
        eprintln!(
            "bench_trend: REGRESSION {}/{}: {:.3e}s -> {:.3e}s (+{:.1}%, budget {max_pct}%)",
            r.group,
            r.id,
            r.baseline_s,
            r.current_s,
            r.slowdown_pct()
        );
    }
    for d in &drops {
        eprintln!(
            "bench_trend: SPEEDUP DROP {}/{}: {:.2}x -> {:.2}x (kept {:.0}%, floor {:.0}%)",
            d.group,
            d.id,
            d.baseline,
            d.current,
            d.kept_ratio() * 100.0,
            min_keep * 100.0
        );
    }
    ExitCode::FAILURE
}
