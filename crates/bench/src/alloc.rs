//! A counting global allocator for allocation-probe benches.
//!
//! Bench binaries that want allocation counts install it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: cocci_bench::alloc::CountingAlloc = cocci_bench::alloc::CountingAlloc::new();
//! ```
//!
//! and bracket the measured region with [`CountingAlloc::snapshot`] /
//! [`AllocSnapshot::delta`]. Counting is two relaxed atomic increments
//! per allocation — cheap enough to leave on for a whole bench run, but
//! this type is only meant for bench/test builds, never the shipped
//! binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps [`System`], counting every allocation and allocated byte.
pub struct CountingAlloc {
    allocs: AtomicU64,
    bytes: AtomicU64,
}

/// A point-in-time reading of the counters; subtract two with
/// [`AllocSnapshot::delta`] to get the cost of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Total allocation calls since process start.
    pub allocs: u64,
    /// Total bytes requested since process start.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counters accumulated between `earlier` and `self`.
    pub fn delta(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

impl CountingAlloc {
    /// A fresh counter (counts start at zero).
    pub const fn new() -> Self {
        CountingAlloc {
            allocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Read the current counters.
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: defers every allocation to `System`; the counters are plain
// atomics and never allocate themselves.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_subtracts() {
        let a = AllocSnapshot {
            allocs: 10,
            bytes: 100,
        };
        let b = AllocSnapshot {
            allocs: 25,
            bytes: 640,
        };
        assert_eq!(
            b.delta(a),
            AllocSnapshot {
                allocs: 15,
                bytes: 540
            }
        );
        // Saturates rather than wrapping if snapshots are swapped.
        assert_eq!(
            a.delta(b),
            AllocSnapshot {
                allocs: 0,
                bytes: 0
            }
        );
    }

    #[test]
    fn counting_alloc_counts_through_system() {
        // Not installed as the global allocator here; exercise the
        // GlobalAlloc impl directly.
        let c = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = c.alloc(layout);
            assert!(!p.is_null());
            c.dealloc(p, layout);
        }
        let s = c.snapshot();
        assert_eq!(s.allocs, 1);
        assert_eq!(s.bytes, 64);
    }
}
