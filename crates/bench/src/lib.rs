//! `cocci-bench`: shared fixtures and the in-house timing harness for
//! the experiment benchmarks.
//!
//! Each bench target (`harness = false`, built on [`timing::Harness`])
//! regenerates one experiment from DESIGN.md's index:
//!
//! | bench       | experiment | what it reports |
//! |-------------|------------|-----------------|
//! | `uc_matrix` | E1         | per-use-case apply time + correctness row |
//! | `precision` | E2         | semantic vs textual throughput, FP/FN table |
//! | `scaling`   | E3         | throughput vs codebase size and threads |
//! | `aos_soa`   | E4         | AoS vs SoA particle-update throughput |

pub mod alloc;
pub mod timing;
pub mod trend;

use cocci_workloads::gen::{self, CodebaseSpec, GeneratedFile};

/// The corpus each use case runs against in the E1 matrix.
pub fn corpus_for(uc: &str) -> Vec<GeneratedFile> {
    let spec = CodebaseSpec {
        files: 4,
        functions_per_file: 8,
        seed: 0xE1,
    };
    match uc {
        "UC1" => gen::omp_codebase(&spec),
        "UC2" => gen::kernel_codebase(&spec),
        "UC3" | "UC4" => gen::multiversion_codebase(&spec),
        "UC5-p0" | "UC5-p1r1" => gen::unrolled_codebase(&spec, 4),
        "UC6" => gen::stencil_codebase(&spec),
        "UC7" | "UC8" => gen::cuda_codebase(&spec),
        "UC9" => gen::openacc_codebase(&spec),
        "UC10" => gen::raw_loop_codebase(&spec),
        "UC11" => gen::librsb_codebase(&CodebaseSpec {
            files: 4,
            functions_per_file: 24,
            seed: 0xE1,
        }),
        other => panic!("unknown use case {other}"),
    }
}

/// A marker string whose presence in the output demonstrates the use
/// case's transformation fired (the "shape check" of the E1 row).
pub fn expected_marker(uc: &str) -> &'static str {
    match uc {
        "UC1" => "LIKWID_MARKER_START(__func__);",
        "UC2" => "avx512_kernel_",
        "UC3" => "avx512_specific_setup();",
        "UC4" => "", // UC4 deletes; checked by absence instead
        "UC5-p0" | "UC5-p1r1" => "#pragma omp unroll partial(4)",
        "UC6" => "a[i, j, ",
        "UC7" => "rocrand_uniform_double",
        "UC8" => "hipLaunchKernelGGL",
        "UC9" => "#pragma omp target teams",
        "UC10" => "find(begin(",
        "UC11" => "#pragma GCC push_options",
        other => panic!("unknown use case {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocci_core::apply_to_files;
    use cocci_smpl::parse_semantic_patch;
    use cocci_workloads::patches;

    /// The E1 correctness matrix as a test: every use case fires on its
    /// generated corpus and produces its marker.
    #[test]
    fn e1_matrix_all_use_cases_fire() {
        for (uc, patch_text) in patches::ALL {
            let corpus = corpus_for(uc);
            let patch = parse_semantic_patch(patch_text).unwrap_or_else(|e| panic!("{uc}: {e}"));
            let inputs: Vec<(String, String)> = corpus
                .iter()
                .map(|f| (f.name.clone(), f.text.clone()))
                .collect();
            let outcomes = apply_to_files(&patch, &inputs, 2).unwrap();
            let changed = outcomes.iter().filter(|o| o.output.is_some()).count();
            assert!(changed > 0, "{uc}: no file transformed");
            for o in &outcomes {
                assert!(o.error.is_none(), "{uc}: {}: {:?}", o.name, o.error);
            }
            let marker = expected_marker(uc);
            if !marker.is_empty() {
                let hit = outcomes
                    .iter()
                    .filter_map(|o| o.output.as_deref())
                    .any(|t| t.contains(marker));
                assert!(hit, "{uc}: marker {marker:?} missing");
            } else {
                // UC4: the avx512/avx2 clones must be gone.
                for o in outcomes.iter().filter_map(|o| o.output.as_deref()) {
                    assert!(!o.contains("target(\"avx512\")"), "{uc}: clone survived");
                }
            }
        }
    }
}
