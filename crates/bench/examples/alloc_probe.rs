//! Allocation probe: parse every C-family file of the generated mixed
//! corpus and report allocator traffic per parsed file. Used to compare
//! pre/post interning allocation counts; the `scaling` bench records the
//! same number as a trend-gated metric.

use cocci_bench::alloc::CountingAlloc;
use cocci_cast::parser::{parse_translation_unit, NoMeta, ParseOptions};
use cocci_workloads::corpus::{corpus_tree, CorpusTreeSpec};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() {
    let files = corpus_tree(&CorpusTreeSpec::default());
    // Warm up once so lazily-initialised tables don't land in the
    // measured region.
    for f in &files {
        let _ = parse_translation_unit(&f.text, ParseOptions::cpp(), &NoMeta);
    }
    let before = ALLOC.snapshot();
    let mut parsed = 0u64;
    for f in &files {
        let opts = if f.name.ends_with(".cpp") || f.name.ends_with(".cu") {
            ParseOptions::cpp()
        } else {
            ParseOptions::c()
        };
        if parse_translation_unit(&f.text, opts, &NoMeta).is_ok() {
            parsed += 1;
        }
    }
    let d = ALLOC.snapshot().delta(before);
    println!(
        "parsed={} allocs={} bytes={} allocs_per_file={:.1} bytes_per_file={:.0}",
        parsed,
        d.allocs,
        d.bytes,
        d.allocs as f64 / parsed as f64,
        d.bytes as f64 / parsed as f64
    );
}
