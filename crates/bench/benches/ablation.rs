//! Ablation benches for the engine's design choices (DESIGN.md §4).
//!
//! * `iso` — cost of the const-fold/additive isomorphism: the paper's
//!   `p0` pattern (`i+k-1` with `constant k={4}`, requires the
//!   isomorphism) vs. an equivalent patch written with pre-folded
//!   literals (`i+3`, pure structural matching). Measures what the
//!   generality of "constants compared by value" costs.
//! * `regex` — cost of `=~` constraints: UC11 with its long LIBRSB regex
//!   vs. the same patch with the constraint removed (matching every
//!   function). Shows constraint checking is cheap relative to matching,
//!   and *reduces* work by pruning candidates early.

use cocci_bench::timing::{Harness, Throughput};
use cocci_core::apply_to_files;
use cocci_smpl::parse_semantic_patch;
use cocci_workloads::gen::{librsb_codebase, unrolled_codebase, CodebaseSpec};
use cocci_workloads::patches::{UC11_PRAGMA_INJECT, UC5_UNROLL_P0};

/// `p0` rewritten with the constant arithmetic already folded: matches
/// the same loops without exercising the isomorphism machinery.
const UNROLL_LITERAL: &str = r#"
@p0lit@
type T;
identifier i,l;
statement A,B,C,D;
@@
+ #pragma omp unroll partial(4)
for (T i=0; i
- +3
< l ;
- i+=4
+ ++i
)
{
\( A \& i+0 \) \(
- B \& i+1
\) \(
- C \& i+2
\) \(
- D \& i+3
\)
}
"#;

/// UC11 without the regex constraint: every function gets wrapped.
const PRAGMA_INJECT_UNCONSTRAINED: &str = r#"
@pragma_inject@
identifier i;
type T;
@@
+ #pragma GCC push_options
+ #pragma GCC optimize "-O3", "-fno-tree-loop-vectorize"
T i(...)
{
...
}
+ #pragma GCC pop_options
"#;

fn iso_ablation(h: &mut Harness) {
    let spec = CodebaseSpec {
        files: 4,
        functions_per_file: 8,
        seed: 0xAB1,
    };
    let files = unrolled_codebase(&spec, 4);
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|f| (f.name.clone(), f.text.clone()))
        .collect();

    let with_iso = parse_semantic_patch(UC5_UNROLL_P0).unwrap();
    let literal = parse_semantic_patch(UNROLL_LITERAL).unwrap();

    // Both must transform every loop.
    for patch in [&with_iso, &literal] {
        let outcomes = apply_to_files(patch, &inputs, 1).unwrap();
        let n: usize = outcomes
            .iter()
            .filter_map(|o| o.output.as_deref())
            .map(|t| t.matches("#pragma omp unroll").count())
            .sum();
        assert_eq!(n, spec.files * spec.functions_per_file);
    }

    h.bench("ablation_iso", "const-fold-iso", Throughput::None, || {
        apply_to_files(&with_iso, &inputs, 1).unwrap()
    });
    h.bench("ablation_iso", "literal", Throughput::None, || {
        apply_to_files(&literal, &inputs, 1).unwrap()
    });
}

fn regex_ablation(h: &mut Harness) {
    let spec = CodebaseSpec {
        files: 4,
        functions_per_file: 24,
        seed: 0xAB2,
    };
    let files = librsb_codebase(&spec);
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|f| (f.name.clone(), f.text.clone()))
        .collect();

    let constrained = parse_semantic_patch(UC11_PRAGMA_INJECT).unwrap();
    let unconstrained = parse_semantic_patch(PRAGMA_INJECT_UNCONSTRAINED).unwrap();

    h.bench(
        "ablation_regex",
        "regex-constrained",
        Throughput::None,
        || apply_to_files(&constrained, &inputs, 1).unwrap(),
    );
    h.bench("ablation_regex", "unconstrained", Throughput::None, || {
        apply_to_files(&unconstrained, &inputs, 1).unwrap()
    });
}

fn main() {
    let mut h = Harness::new("ablation").sample_size(15);
    iso_ablation(&mut h);
    regex_ablation(&mut h);
    h.finish().expect("write BENCH_ablation.json");
}
