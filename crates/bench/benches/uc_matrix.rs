//! Experiment E1: the use-case correctness/cost matrix.
//!
//! For each Section-3 use case, applies its semantic patch to the
//! matching generated corpus and measures wall time per application.
//! Correctness itself is asserted by the `e1_matrix_all_use_cases_fire`
//! unit test in `cocci-bench`; here the same rows are timed so the paper
//! table gains a cost column.

use cocci_bench::corpus_for;
use cocci_bench::timing::{Harness, Throughput};
use cocci_core::apply_to_files;
use cocci_smpl::parse_semantic_patch;
use cocci_workloads::patches;

fn main() {
    let mut h = Harness::new("uc_matrix").sample_size(20);
    for (uc, patch_text) in patches::ALL {
        let corpus = corpus_for(uc);
        let patch = parse_semantic_patch(patch_text).expect(uc);
        let inputs: Vec<(String, String)> = corpus
            .iter()
            .map(|f| (f.name.clone(), f.text.clone()))
            .collect();
        let bytes: usize = inputs.iter().map(|(_, t)| t.len()).sum();
        h.bench("uc_matrix", uc, Throughput::Bytes(bytes as u64), || {
            let outcomes = apply_to_files(&patch, &inputs, 1).unwrap();
            assert!(outcomes.iter().any(|o| o.output.is_some()));
            outcomes
        });
    }
    h.finish().expect("write BENCH_uc_matrix.json");
}
