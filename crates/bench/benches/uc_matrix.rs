//! Experiment E1: the use-case correctness/cost matrix.
//!
//! For each Section-3 use case, applies its semantic patch to the
//! matching generated corpus and measures wall time per application.
//! Correctness itself is asserted by the `e1_matrix_all_use_cases_fire`
//! unit test in `cocci-bench`; here the same rows are timed so the paper
//! table gains a cost column.

use cocci_bench::corpus_for;
use cocci_core::apply_to_files;
use cocci_smpl::parse_semantic_patch;
use cocci_workloads::patches;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn uc_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("uc_matrix");
    for (uc, patch_text) in patches::ALL {
        let corpus = corpus_for(uc);
        let patch = parse_semantic_patch(patch_text).expect(uc);
        let inputs: Vec<(String, String)> = corpus
            .iter()
            .map(|f| (f.name.clone(), f.text.clone()))
            .collect();
        let bytes: usize = inputs.iter().map(|(_, t)| t.len()).sum();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(BenchmarkId::from_parameter(uc), &inputs, |b, inputs| {
            b.iter(|| {
                let outcomes = apply_to_files(&patch, inputs, 1);
                assert!(outcomes.iter().any(|o| o.output.is_some()));
                outcomes
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = uc_matrix
}
criterion_main!(benches);
