//! Scan-engine scaling: N rules, one parse per file.
//!
//! `spatch scan` promises sub-linear cost in the rule count: the file
//! is parsed once into a `FileContext` shared by every rule, and one
//! merged literal automaton prefilters all rules in a single pass over
//! the text. This bench measures both claims on the `rule_matrix`
//! workload at 1, 10, and 50 rules over the same mixed corpus:
//!
//! * `scan_batch` wall clock per rule count — with the paper-style
//!   expectation that 50 rules cost well under 50× one rule (the CI
//!   budget is 10×), recorded as the `scan_per_rule_ratio` metric;
//! * `sieve_survivors` vs `may_match_survivors` — (file, rule) pairs
//!   the merged automaton admits vs what N independent per-rule
//!   `may_match` scans admit. Equal counts mean merging loses no
//!   precision; the automaton gets them in one text pass instead of N.
//!
//! Rule groups share prefilter atoms (`overlap = 5`), so a single atom
//! hit wakes several rules of which at most one matches — the
//! adversarial case for merged prefiltering.

use cocci_bench::timing::{Harness, Throughput};
use cocci_core::{scan_batch, CompiledRuleSet, ExecOptions};
use cocci_workloads::rule_matrix::{rule_matrix_codebase, rule_matrix_rules, RuleMatrixSpec};

fn build_set(spec: &RuleMatrixSpec, rules: usize) -> CompiledRuleSet {
    let sources: Vec<(String, String, String)> = rule_matrix_rules(&RuleMatrixSpec {
        rules,
        ..spec.clone()
    })
    .into_iter()
    .map(|f| {
        let default_id = f.name.trim_end_matches(".cocci").to_string();
        (f.name, default_id, f.text)
    })
    .collect();
    CompiledRuleSet::from_sources(&sources).expect("rule matrix compiles")
}

/// Median of five timed runs — the Harness keeps its samples private,
/// so the ratio metric takes its own measurements.
fn median_seconds<R>(mut f: impl FnMut() -> R) -> f64 {
    let mut s: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = std::time::Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    s.sort_by(f64::total_cmp);
    s[s.len() / 2]
}

fn main() {
    let spec = RuleMatrixSpec {
        rules: 50,
        files: 24,
        functions_per_file: 12,
        overlap: 5,
        seed: 0x5CA0,
    };
    let inputs: Vec<(String, String)> = rule_matrix_codebase(&spec)
        .into_iter()
        .map(|f| (f.name, f.text))
        .collect();
    let bytes: usize = inputs.iter().map(|(_, t)| t.len()).sum();
    let opts = ExecOptions {
        threads: 1,
        prefilter: true,
        ..ExecOptions::default()
    };

    let mut h = Harness::new("scan_rules").sample_size(10);
    let mut wall = Vec::new();
    for n in [1usize, 10, 50] {
        let set = build_set(&spec, n);
        let label = format!("{n}_rules");

        // Merged-automaton survivors vs N independent may_match scans:
        // both count admitted (file, rule) pairs, so equality means the
        // merge lost no pruning precision.
        let sieve: usize = inputs
            .iter()
            .map(|(_, t)| set.surviving_rules(t).len())
            .sum();
        let solo: usize = inputs
            .iter()
            .map(|(_, t)| set.rules.iter().filter(|r| r.compiled.may_match(t)).count())
            .sum();
        h.metric("sieve_survivors", &label, sieve as f64);
        h.metric("may_match_survivors", &label, solo as f64);

        let outcomes = scan_batch(&set, &inputs, &opts);
        let parses: usize = outcomes.iter().map(|o| o.parses).sum();
        let findings: usize = outcomes.iter().map(|o| o.findings.len()).sum();
        h.metric("parses", &label, parses as f64);
        h.metric("findings", &label, findings as f64);

        h.bench("scan", &label, Throughput::Bytes(bytes as u64), || {
            scan_batch(&set, &inputs, &opts)
        });
        wall.push((n, median_seconds(|| scan_batch(&set, &inputs, &opts))));
    }

    // Sub-linear scaling headline: wall-clock ratio 50 rules : 1 rule
    // (CI's acceptance budget for this ratio is 10×).
    if let (Some((_, one)), Some((_, fifty))) = (
        wall.iter().find(|(n, _)| *n == 1),
        wall.iter().find(|(n, _)| *n == 50),
    ) {
        h.metric("scan_per_rule_ratio", "50_vs_1", fifty / one);
    }

    // Lint-at-load overhead: statically analysing all 50 rules must be
    // noise next to scanning the corpus with them (CI gates the
    // fraction at < 1% of the 50-rule scan).
    let set = build_set(&spec, 50);
    let cfg = cocci_lint::LintConfig::default();
    let lint_s = median_seconds(|| cocci_lint::lint_ruleset(&set, &cfg));
    h.metric("lint_seconds", "50_rules", lint_s);
    if let Some((_, fifty)) = wall.iter().find(|(n, _)| *n == 50) {
        h.metric("lint_overhead_frac", "50_vs_scan", lint_s / fifty);
    }
    h.metric("corpus", "files", inputs.len() as f64);
    h.finish().expect("write BENCH_scan_rules.json");
}
