//! Tree-sequence vs CFG path matching of statement dots.
//!
//! Two corpora from the CFG workload family:
//!
//! * **linear** — straight-line probe pairs, the *dots-free-equivalent*
//!   workload: tree and flow engines find exactly the same matches, so
//!   the wall-clock ratio is the pure price of building CFGs and
//!   walking paths. Recorded as the `cfg_overhead/linear` metric; the
//!   engine is expected to stay within ~3× of the tree matcher here.
//! * **branchy** — a rotation of join / early-return / loop shapes
//!   where the two semantics *disagree*. The per-engine match counts
//!   land as metrics (`matches/tree`, `matches/flow`) so the semantic
//!   gap is visible in the trend data, alongside both timings.
//! * **forked** — every function binds a metavariable differently in
//!   the two arms of a branch, so the path engine forks per-path
//!   witnesses; the witness total lands as `witnesses/forked` and the
//!   timing prices the forking machinery.
//! * **report_scan** — the findings engine's workload: a
//!   reporting-only rule (`acquire(r)@p; ... release(r);`, pure
//!   context) over the `report_scan` corpus family. The finding total
//!   lands as `findings/report_scan` so the bench-trend gate baselines
//!   the report route, and the timing prices findings production.
//!
//! The measured rules are the canonical instrumentation pair
//! `probe_begin(b); ... probe_end(b);` (with an edit on the opening
//! anchor) and, for the forked corpus,
//! `checkpoint(); ... commit(e);` (with an edit on the commit anchor).

use cocci_bench::timing::{Harness, Throughput};
use cocci_core::{apply_batch_opts, CompiledPatch, ExecOptions};
use cocci_smpl::parse_semantic_patch;
use cocci_workloads::gen::{
    branchy_codebase, forked_commit_codebase, linear_probe_codebase, report_scan_codebase,
    CodebaseSpec,
};
use std::sync::Arc;
use std::time::Instant;

const PROBE_PATCH: &str =
    "@@\nexpression b;\n@@\n- probe_begin(b);\n+ probe_enter(b);\n...\nprobe_end(b);\n";

const FORK_PATCH: &str =
    "@@\nexpression e;\n@@\ncheckpoint();\n...\n- commit(e);\n+ commit_logged(e);\n";

const SCAN_PATCH: &str =
    "@scan@\nexpression r;\nposition p;\n@@\nacquire(r)@p;\n...\nrelease(r);\n";

fn total_matches(outcomes: &[cocci_core::FileOutcome]) -> usize {
    outcomes.iter().map(|o| o.matches).sum()
}

fn main() {
    let spec = CodebaseSpec {
        files: 12,
        functions_per_file: 16,
        seed: 0xCF6,
    };
    let linear: Vec<(String, String)> = linear_probe_codebase(&spec)
        .into_iter()
        .map(|f| (f.name, f.text))
        .collect();
    let branchy: Vec<(String, String)> = branchy_codebase(&spec)
        .into_iter()
        .map(|f| (f.name, f.text))
        .collect();

    let patch = parse_semantic_patch(PROBE_PATCH).expect("probe patch");
    let compiled = Arc::new(CompiledPatch::compile(&patch).expect("compile"));
    let tree = ExecOptions {
        threads: 1,
        flow: false,
        ..Default::default()
    };
    let flow = ExecOptions {
        threads: 1,
        flow: true,
        ..Default::default()
    };

    let mut h = Harness::new("cfg_match").sample_size(10);

    // Semantic comparison on the branch-heavy corpus: the tree engine
    // over-matches (it absorbs early returns into the dots); the CFG
    // engine refuses those and additionally matches cross-branch pairs.
    let tree_out = apply_batch_opts(&compiled, &branchy, &tree);
    let flow_out = apply_batch_opts(&compiled, &branchy, &flow);
    h.metric("matches", "tree", total_matches(&tree_out) as f64);
    h.metric("matches", "flow", total_matches(&flow_out) as f64);

    // Overhead on the dots-free-equivalent corpus, where both engines
    // agree: median-of-N wall-clock ratio.
    let bytes: usize = linear.iter().map(|(_, t)| t.len()).sum();
    let samples = 9;
    let time = |opts: &ExecOptions| -> f64 {
        let mut ts: Vec<f64> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(apply_batch_opts(&compiled, &linear, opts));
                t0.elapsed().as_secs_f64()
            })
            .collect();
        ts.sort_by(f64::total_cmp);
        ts[samples / 2]
    };
    let tree_median = time(&tree);
    let flow_median = time(&flow);
    h.metric("cfg_overhead", "linear", flow_median / tree_median);

    let agree = total_matches(&apply_batch_opts(&compiled, &linear, &tree))
        == total_matches(&apply_batch_opts(&compiled, &linear, &flow));
    h.metric("agreement", "linear", if agree { 1.0 } else { 0.0 });

    h.bench(
        "tree_dots",
        "linear",
        Throughput::Bytes(bytes as u64),
        || apply_batch_opts(&compiled, &linear, &tree),
    );
    h.bench(
        "flow_dots",
        "linear",
        Throughput::Bytes(bytes as u64),
        || apply_batch_opts(&compiled, &linear, &flow),
    );
    let bbytes: usize = branchy.iter().map(|(_, t)| t.len()).sum();
    h.bench(
        "tree_dots",
        "branchy",
        Throughput::Bytes(bbytes as u64),
        || apply_batch_opts(&compiled, &branchy, &tree),
    );
    h.bench(
        "flow_dots",
        "branchy",
        Throughput::Bytes(bbytes as u64),
        || apply_batch_opts(&compiled, &branchy, &flow),
    );

    // Witness forking: a corpus whose every branch binds the commit
    // metavariable differently per arm, so each function forks one
    // witness per path — prices the forking machinery and records the
    // witness volume as a trend metric.
    let forked: Vec<(String, String)> = forked_commit_codebase(&spec)
        .into_iter()
        .map(|f| (f.name, f.text))
        .collect();
    let fork_patch = parse_semantic_patch(FORK_PATCH).expect("fork patch");
    let fork_compiled = Arc::new(CompiledPatch::compile(&fork_patch).expect("compile"));
    let fork_out = apply_batch_opts(&fork_compiled, &forked, &flow);
    let witnesses: usize = fork_out.iter().map(|o| o.witnesses).sum();
    h.metric("witnesses", "forked", witnesses as f64);
    h.metric("matches", "forked", total_matches(&fork_out) as f64);
    let fbytes: usize = forked.iter().map(|(_, t)| t.len()).sum();
    h.bench(
        "flow_dots",
        "forked",
        Throughput::Bytes(fbytes as u64),
        || apply_batch_opts(&fork_compiled, &forked, &flow),
    );

    // Report route: a reporting-only (pure-context) rule over the
    // report_scan family — every match witness becomes a finding
    // instead of an edit. The generator's shape rotation makes the
    // expected total exactly files × functions ÷ 2.
    let scan: Vec<(String, String)> = report_scan_codebase(&spec)
        .into_iter()
        .map(|f| (f.name, f.text))
        .collect();
    let scan_patch = parse_semantic_patch(SCAN_PATCH).expect("scan patch");
    let scan_compiled = Arc::new(CompiledPatch::compile(&scan_patch).expect("compile"));
    let scan_out = apply_batch_opts(&scan_compiled, &scan, &flow);
    let findings: usize = scan_out.iter().map(|o| o.findings.len()).sum();
    h.metric("findings", "report_scan", findings as f64);
    let sbytes: usize = scan.iter().map(|(_, t)| t.len()).sum();
    h.bench(
        "report_scan",
        "flow",
        Throughput::Bytes(sbytes as u64),
        || apply_batch_opts(&scan_compiled, &scan, &flow),
    );

    h.finish().expect("write BENCH_cfg_match.json");
}
