//! Prefilter effectiveness on a synthetic many-file tree.
//!
//! The corpus mixes five generator families (OpenMP, CUDA, kernel,
//! raw-loop, LIBRSB) of which only one subtree can match each measured
//! patch — exactly the shape of a real codebase where a collateral
//! evolution touches one subsystem. Three patches exercise the three
//! prefilter sources: UC1 prunes on directive atoms (`<omp.h>`,
//! `pragma omp`), UC2 and UC11 prune on literal factors extracted from
//! their `=~` regex constraints (`kernel`, `rsb__BCSR_spmv_…`). For each
//! patch the bench times the batch driver with the literal-atom
//! prefilter on and off, and records the **hit rate** (fraction of files
//! pruned before lexing/parsing) as a metric in `BENCH_prefilter.json`.

use cocci_bench::timing::{Harness, Throughput};
use cocci_core::{apply_batch, CompiledPatch};
use cocci_smpl::parse_semantic_patch;
use cocci_workloads::corpus::{corpus_tree, is_walkable, CorpusTreeSpec};
use cocci_workloads::patches::{UC11_PRAGMA_INJECT, UC1_LIKWID, UC2_VARIANT};
use std::sync::Arc;

fn main() {
    let spec = CorpusTreeSpec {
        files_per_family: 16,
        functions_per_file: 8,
        seed: 0xBF17,
    };
    // The walkable slice of the tree, as the directory walker would see it.
    let inputs: Vec<(String, String)> = corpus_tree(&spec)
        .into_iter()
        .filter(|f| is_walkable(&f.name))
        .map(|f| (f.name, f.text))
        .collect();
    let bytes: usize = inputs.iter().map(|(_, t)| t.len()).sum();

    let mut h = Harness::new("prefilter").sample_size(10);
    for (uc, patch_text) in [
        ("UC1", UC1_LIKWID),
        ("UC2", UC2_VARIANT),
        ("UC11", UC11_PRAGMA_INJECT),
    ] {
        let patch = parse_semantic_patch(patch_text).expect(uc);
        let compiled = Arc::new(CompiledPatch::compile(&patch).expect(uc));

        let outcomes = apply_batch(&compiled, &inputs, 1, true);
        let pruned = outcomes.iter().filter(|o| o.pruned).count();
        let errors = outcomes.iter().filter(|o| o.error.is_some()).count();
        h.metric(
            "prefilter_hit_rate",
            uc,
            pruned as f64 / inputs.len() as f64,
        );
        h.metric("prefilter_errors", uc, errors as f64);

        h.bench("prefilter_on", uc, Throughput::Bytes(bytes as u64), || {
            apply_batch(&compiled, &inputs, 1, true)
        });
        h.bench("prefilter_off", uc, Throughput::Bytes(bytes as u64), || {
            apply_batch(&compiled, &inputs, 1, false)
        });
    }
    h.metric("corpus", "files", inputs.len() as f64);
    h.finish().expect("write BENCH_prefilter.json");
}
