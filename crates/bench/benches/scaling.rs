//! Experiment E3: throughput and parallel scaling — the "thousands of
//! loops across a GADGET-scale codebase" claim.
//!
//! Three sweeps:
//!
//! * `size` — single-thread apply time vs. per-file size (loops per
//!   function), expecting ~linear growth;
//! * `threads` — multi-file driver over a fixed corpus with 1..=8
//!   workers, expecting near-linear speedup until core count;
//! * `corpus` — the generated mixed corpus tree through the streaming
//!   work-stealing corpus driver at 1/2/4/all threads, with derived
//!   `speedup_*` metrics (trend-gated: CI fails when the max-thread
//!   speedup decays below 70% of the previous run's ratio).
//!
//! The binary also installs a counting allocator and records allocator
//! traffic per parsed corpus file — the number string interning is
//! meant to keep down — plus the process peak RSS every harness run
//! records.

use cocci_bench::alloc::CountingAlloc;
use cocci_bench::timing::{Harness, Throughput};
use cocci_cast::parser::{parse_translation_unit, NoMeta, ParseOptions};
use cocci_core::{apply_to_corpus, apply_to_files, CorpusOptions, MemorySource};
use cocci_smpl::parse_semantic_patch;
use cocci_workloads::corpus::{corpus_tree, CorpusTreeSpec};
use cocci_workloads::gen::sized_codebase;
use cocci_workloads::patches::UC1_LIKWID;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn size_sweep(h: &mut Harness) {
    let patch = parse_semantic_patch(UC1_LIKWID).unwrap();
    for loops in [4usize, 16, 64, 256] {
        let files = sized_codebase(2, 4, loops, 0xE3);
        let inputs: Vec<(String, String)> = files
            .iter()
            .map(|f| (f.name.clone(), f.text.clone()))
            .collect();
        let bytes: usize = inputs.iter().map(|(_, t)| t.len()).sum();
        h.bench(
            "scaling_size",
            &loops.to_string(),
            Throughput::Bytes(bytes as u64),
            || apply_to_files(&patch, &inputs, 1).unwrap(),
        );
    }
}

fn thread_sweep(h: &mut Harness) {
    let patch = parse_semantic_patch(UC1_LIKWID).unwrap();
    let files = sized_codebase(32, 8, 32, 0xE3);
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|f| (f.name.clone(), f.text.clone()))
        .collect();
    let bytes: usize = inputs.iter().map(|(_, t)| t.len()).sum();

    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let mut t = 1usize;
    while t <= max {
        h.bench(
            "scaling_threads",
            &t.to_string(),
            Throughput::Bytes(bytes as u64),
            || apply_to_files(&patch, &inputs, t).unwrap(),
        );
        t *= 2;
    }
}

/// The mixed corpus tree through the streaming corpus driver (persistent
/// worker pool + work-stealing queue), small batches so the pool's
/// cross-batch overlap is actually exercised.
fn corpus_sweep(h: &mut Harness) {
    let patch = parse_semantic_patch(UC1_LIKWID).unwrap();
    let files = corpus_tree(&CorpusTreeSpec::default());
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|f| (f.name.clone(), f.text.clone()))
        .collect();
    let bytes: usize = inputs.iter().map(|(_, t)| t.len()).sum();

    let all = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4];
    if all > 4 {
        counts.push(all);
    }
    for &t in &counts {
        h.bench(
            "scaling_corpus",
            &t.to_string(),
            Throughput::Bytes(bytes as u64),
            || {
                let mut src = MemorySource::new(inputs.clone());
                apply_to_corpus(
                    &patch,
                    &mut src,
                    &CorpusOptions {
                        threads: t,
                        ..Default::default()
                    },
                    |_, _, _| {},
                )
                .unwrap()
            },
        );
    }
    let base = h.median_s("scaling_corpus", "1").expect("1-thread record");
    for &t in &counts[1..] {
        let m = h.median_s("scaling_corpus", &t.to_string()).unwrap();
        h.metric("scaling_corpus", &format!("speedup_{t}"), base / m);
    }
    let max_t = *counts.last().unwrap();
    let m = h.median_s("scaling_corpus", &max_t.to_string()).unwrap();
    h.metric("scaling_corpus", "speedup_max", base / m);
    h.metric("scaling_corpus", "threads_max", max_t as f64);
}

/// Telemetry probe: what the instrumentation costs, plus the pool's
/// scheduler counters (steals, idle fraction, max queue depth) from a
/// traced run's `metrics` block.
///
/// Two costs, kept apart because they answer different questions:
///
/// * `trace_overhead_frac` — the tax the *disabled* probes leave in a
///   production run (ci.sh gates this under 2%). A same-binary A/B
///   can't remove the probes, so it is computed as measured disabled
///   probe cost (one relaxed atomic load) × probe-site executions per
///   corpus run (from an enabled run's span count, doubled for slack
///   to cover counter probes), over the untraced run's wall clock.
/// * `trace_cost_enabled_frac` — enabled-vs-disabled wall clock, the
///   price of actually recording. Recorded, not gated: ring writes are
///   real work and sub-2% deltas of a loaded builder's wall clock are
///   noise, which is also why the ratio uses min-over-samples
///   (interference is one-sided).
fn telemetry_probe(h: &mut Harness) {
    let patch = parse_semantic_patch(UC1_LIKWID).unwrap();
    let files = corpus_tree(&CorpusTreeSpec::default());
    // Replicate the tree so one run is ~10ms+: a 2% fraction of a
    // millisecond-scale run would drown in scheduler jitter.
    let inputs: Vec<(String, String)> = (0..10)
        .flat_map(|copy| {
            files
                .iter()
                .map(move |f| (format!("copy{copy}/{}", f.name), f.text.clone()))
        })
        .collect();
    let bytes: usize = inputs.iter().map(|(_, t)| t.len()).sum();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut run = || {
        let mut src = MemorySource::new(inputs.clone());
        apply_to_corpus(
            &patch,
            &mut src,
            &CorpusOptions {
                threads,
                ..Default::default()
            },
            |_, _, _| {},
        )
        .unwrap()
    };

    cocci_trace::set_enabled(false);
    h.bench(
        "scaling_trace",
        "off",
        Throughput::Bytes(bytes as u64),
        &mut run,
    );
    cocci_trace::set_enabled(true);
    h.bench(
        "scaling_trace",
        "on",
        Throughput::Bytes(bytes as u64),
        &mut run,
    );

    // One more traced run with clean counters to harvest pool metrics
    // and the number of probe sites one corpus run executes.
    cocci_trace::reset();
    let report = run();
    let data = cocci_trace::collect();
    let probes_per_run = 2.0 * (data.span_count() as u64 + data.dropped()) as f64;
    cocci_trace::set_enabled(false);
    let pool = report
        .metrics
        .as_ref()
        .and_then(|m| m.pool.as_ref())
        .expect("traced corpus run embeds pool metrics");
    h.metric("pool", "pool_steals", pool.steals as f64);
    h.metric(
        "pool",
        "pool_idle_frac",
        pool.idle_frac(report.total_seconds),
    );
    h.metric("pool", "queue_depth_max", pool.queue_depth_max as f64);

    // Attempts one corpus run makes — the explain engine's probe-site
    // count, harvested from the same clean-counter traced run.
    let attempts_per_run = cocci_trace::counter_value(cocci_trace::Counter::Attempts) as f64;

    // Disabled probe unit cost: black_box keeps the guard construction
    // and drop (both one relaxed load) from being hoisted or elided.
    const PROBE_ITERS: u64 = 1_000_000;
    let t0 = std::time::Instant::now();
    for _ in 0..PROBE_ITERS {
        let _g = std::hint::black_box(cocci_trace::span(cocci_trace::Phase::TreeMatch));
    }
    let probe_ns = t0.elapsed().as_nanos() as f64 / PROBE_ITERS as f64;

    // Explain's always-on half, disabled: record_attempt bails on one
    // relaxed load per (file × rule) attempt. Same construction as
    // trace_overhead_frac — measured disabled unit cost × attempt
    // sites per corpus run (doubled for slack), over the untraced wall
    // clock. ci.sh gates this under 1%.
    let t0 = std::time::Instant::now();
    for _ in 0..PROBE_ITERS {
        cocci_core::explain::record_attempt(
            std::hint::black_box(cocci_core::explain::KillStage::Completed),
            std::hint::black_box("bench.c"),
            "bench-rule",
            None,
        );
    }
    let attempt_ns = t0.elapsed().as_nanos() as f64 / PROBE_ITERS as f64;

    let off = h.min_s("scaling_trace", "off").expect("off record");
    let on = h.min_s("scaling_trace", "on").expect("on record");
    h.metric(
        "scaling_trace",
        "trace_cost_enabled_frac",
        ((on - off) / off).max(0.0),
    );
    h.metric("scaling_trace", "probe_ns", probe_ns);
    h.metric(
        "scaling_trace",
        "trace_overhead_frac",
        (probe_ns * 1e-9 * probes_per_run) / off,
    );
    h.metric("scaling_trace", "explain_probe_ns", attempt_ns);
    h.metric(
        "scaling_trace",
        "explain_overhead_frac",
        (attempt_ns * 1e-9 * attempts_per_run * 2.0) / off,
    );
}

/// Allocator traffic per parsed corpus file — the interning payoff, as
/// a recorded (not trend-gated) metric next to the timings.
fn alloc_probe(h: &mut Harness) {
    let files = corpus_tree(&CorpusTreeSpec::default());
    // Warm up once so lazily-initialised tables (keyword sets, the
    // interner's steady-state vocabulary) don't land in the measurement.
    for f in &files {
        let _ = parse_translation_unit(&f.text, ParseOptions::cpp(), &NoMeta);
    }
    let before = ALLOC.snapshot();
    let mut parsed = 0u64;
    for f in &files {
        let opts = if f.name.ends_with(".cpp") || f.name.ends_with(".cu") {
            ParseOptions::cpp()
        } else {
            ParseOptions::c()
        };
        if parse_translation_unit(&f.text, opts, &NoMeta).is_ok() {
            parsed += 1;
        }
    }
    let d = ALLOC.snapshot().delta(before);
    h.metric("alloc", "parsed_files", parsed as f64);
    h.metric(
        "alloc",
        "allocs_per_parsed_file",
        d.allocs as f64 / parsed.max(1) as f64,
    );
    h.metric(
        "alloc",
        "bytes_per_parsed_file",
        d.bytes as f64 / parsed.max(1) as f64,
    );
}

fn main() {
    let mut h = Harness::new("scaling").sample_size(12);
    size_sweep(&mut h);
    thread_sweep(&mut h);
    corpus_sweep(&mut h);
    telemetry_probe(&mut h);
    alloc_probe(&mut h);
    h.finish().expect("write BENCH_scaling.json");
}
