//! Experiment E3: throughput and parallel scaling — the "thousands of
//! loops across a GADGET-scale codebase" claim.
//!
//! Two sweeps:
//!
//! * `size` — single-thread apply time vs. per-file size (loops per
//!   function), expecting ~linear growth;
//! * `threads` — multi-file driver over a fixed corpus with 1..=8
//!   workers, expecting near-linear speedup until core count.

use cocci_bench::timing::{Harness, Throughput};
use cocci_core::apply_to_files;
use cocci_smpl::parse_semantic_patch;
use cocci_workloads::gen::sized_codebase;
use cocci_workloads::patches::UC1_LIKWID;

fn size_sweep(h: &mut Harness) {
    let patch = parse_semantic_patch(UC1_LIKWID).unwrap();
    for loops in [4usize, 16, 64, 256] {
        let files = sized_codebase(2, 4, loops, 0xE3);
        let inputs: Vec<(String, String)> = files
            .iter()
            .map(|f| (f.name.clone(), f.text.clone()))
            .collect();
        let bytes: usize = inputs.iter().map(|(_, t)| t.len()).sum();
        h.bench(
            "scaling_size",
            &loops.to_string(),
            Throughput::Bytes(bytes as u64),
            || apply_to_files(&patch, &inputs, 1).unwrap(),
        );
    }
}

fn thread_sweep(h: &mut Harness) {
    let patch = parse_semantic_patch(UC1_LIKWID).unwrap();
    let files = sized_codebase(32, 8, 32, 0xE3);
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|f| (f.name.clone(), f.text.clone()))
        .collect();
    let bytes: usize = inputs.iter().map(|(_, t)| t.len()).sum();

    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let mut t = 1usize;
    while t <= max {
        h.bench(
            "scaling_threads",
            &t.to_string(),
            Throughput::Bytes(bytes as u64),
            || apply_to_files(&patch, &inputs, t).unwrap(),
        );
        t *= 2;
    }
}

fn main() {
    let mut h = Harness::new("scaling").sample_size(12);
    size_sweep(&mut h);
    thread_sweep(&mut h);
    h.finish().expect("write BENCH_scaling.json");
}
