//! Experiment E3: throughput and parallel scaling — the "thousands of
//! loops across a GADGET-scale codebase" claim.
//!
//! Two sweeps:
//!
//! * `size` — single-thread apply time vs. per-file size (loops per
//!   function), expecting ~linear growth;
//! * `threads` — multi-file driver over a fixed corpus with 1..=8
//!   workers, expecting near-linear speedup until core count.

use cocci_core::apply_to_files;
use cocci_smpl::parse_semantic_patch;
use cocci_workloads::gen::sized_codebase;
use cocci_workloads::patches::UC1_LIKWID;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn size_sweep(c: &mut Criterion) {
    let patch = parse_semantic_patch(UC1_LIKWID).unwrap();
    let mut group = c.benchmark_group("scaling_size");
    for loops in [4usize, 16, 64, 256] {
        let files = sized_codebase(2, 4, loops, 0xE3);
        let inputs: Vec<(String, String)> = files
            .iter()
            .map(|f| (f.name.clone(), f.text.clone()))
            .collect();
        let bytes: usize = inputs.iter().map(|(_, t)| t.len()).sum();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(loops),
            &inputs,
            |b, inputs| b.iter(|| apply_to_files(&patch, inputs, 1)),
        );
    }
    group.finish();
}

fn thread_sweep(c: &mut Criterion) {
    let patch = parse_semantic_patch(UC1_LIKWID).unwrap();
    let files = sized_codebase(32, 8, 32, 0xE3);
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|f| (f.name.clone(), f.text.clone()))
        .collect();
    let bytes: usize = inputs.iter().map(|(_, t)| t.len()).sum();

    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let mut group = c.benchmark_group("scaling_threads");
    group.throughput(Throughput::Bytes(bytes as u64));
    let mut t = 1usize;
    while t <= max {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &threads| {
            b.iter(|| apply_to_files(&patch, &inputs, threads))
        });
        t *= 2;
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12);
    targets = size_sweep, thread_sweep
}
criterion_main!(benches);
