//! Experiment E2: semantic vs textual API translation — the paper's
//! implicit hipify-perl comparison, made quantitative.
//!
//! On the adversarial corpus (API names inside strings, comments, and
//! longer identifiers), three translators run:
//!
//! * `semantic` — the cocci-core engine with the UC7 dictionary patch:
//!   expected 0 false positives;
//! * `text-word` — hipify-perl-fidelity word-boundary rewriting:
//!   rewrites string/comment occurrences (false positives > 0);
//! * `text-naive` — plain substring replacement: additionally corrupts
//!   identifiers containing the API name.
//!
//! The FP/FN table is printed once before timing; the timed section
//! reports throughput, which is expected to *favour* the textual tools —
//! the trade-off the paper's approach buys precision with.

use cocci_bench::timing::{Harness, Throughput};
use cocci_core::Patcher;
use cocci_smpl::parse_semantic_patch;
use cocci_textpatch::{Mode, TextPatcher, CUDA_HIP_DICT};
use cocci_workloads::adversarial;
use cocci_workloads::patches::UC7_CUDA_HIP;

const OLD: &str = "curand_uniform_double";
const NEW: &str = "rocrand_uniform_double";

fn print_precision_table() {
    let corpus = adversarial::corpus(8);
    let patch = parse_semantic_patch(UC7_CUDA_HIP).unwrap();

    let mut sem = (0usize, 0usize, 0usize); // (tp, fp, expected)
    let mut word = (0usize, 0usize, 0usize);
    let mut naive = (0usize, 0usize, 0usize);

    for f in &corpus {
        let expected = f.true_call_sites;

        let mut patcher = Patcher::new(&patch).unwrap();
        let sem_out = patcher
            .apply(&f.name, &f.text)
            .unwrap()
            .unwrap_or_else(|| f.text.clone());
        let (tp, fp) = adversarial::score(f, &sem_out, OLD, NEW);
        sem = (sem.0 + tp, sem.1 + fp, sem.2 + expected);

        let (wout, _) = TextPatcher::with_mode(CUDA_HIP_DICT, Mode::WordBoundary).apply(&f.text);
        let (tp, fp) = adversarial::score(f, &wout, OLD, NEW);
        word = (word.0 + tp, word.1 + fp, word.2 + expected);

        let (nout, _) = TextPatcher::with_mode(CUDA_HIP_DICT, Mode::Naive).apply(&f.text);
        let (tp, fp) = adversarial::score(f, &nout, OLD, NEW);
        naive = (naive.0 + tp, naive.1 + fp, naive.2 + expected);
    }

    eprintln!(
        "\nE2 precision table (adversarial corpus, {} files):",
        corpus.len()
    );
    eprintln!(
        "{:<12} {:>10} {:>10} {:>16}",
        "engine", "rewritten", "expected", "false positives"
    );
    for (name, (tp, fp, exp)) in [
        ("semantic", sem),
        ("text-word", word),
        ("text-naive", naive),
    ] {
        eprintln!("{name:<12} {tp:>10} {exp:>10} {fp:>16}");
    }
    assert_eq!(sem.1, 0, "semantic engine produced false positives");
    assert_eq!(sem.0, sem.2, "semantic engine missed call sites");
    assert!(word.1 > 0, "word-boundary baseline should hit traps");
    assert!(naive.1 > word.1, "naive baseline should hit more traps");
}

fn main() {
    print_precision_table();

    let corpus = adversarial::corpus(8);
    let bytes: usize = corpus.iter().map(|f| f.text.len()).sum();
    let patch = parse_semantic_patch(UC7_CUDA_HIP).unwrap();

    let mut h = Harness::new("precision").sample_size(20);
    h.bench(
        "precision",
        "semantic",
        Throughput::Bytes(bytes as u64),
        || {
            let mut patcher = Patcher::new(&patch).unwrap();
            corpus
                .iter()
                .map(|f| patcher.apply(&f.name, &f.text).unwrap().is_some() as usize)
                .sum::<usize>()
        },
    );
    let tp = TextPatcher::with_mode(CUDA_HIP_DICT, Mode::WordBoundary);
    h.bench(
        "precision",
        "text-word",
        Throughput::Bytes(bytes as u64),
        || corpus.iter().map(|f| tp.apply(&f.text).1).sum::<usize>(),
    );
    let tp = TextPatcher::with_mode(CUDA_HIP_DICT, Mode::Naive);
    h.bench(
        "precision",
        "text-naive",
        Throughput::Bytes(bytes as u64),
        || corpus.iter().map(|f| tp.apply(&f.text).1).sum::<usize>(),
    );
    h.finish().expect("write BENCH_precision.json");
}
