//! Experiment E4: the AoS vs SoA layout effect that motivates the
//! paper's flagship refactoring ([ML21]/[BIHK16]).
//!
//! Sweeps the particle count across cache regimes; the reproduction
//! criterion is the *shape* — SoA ≥ AoS with the gap widening once the
//! AoS working set (10 doubles/particle vs 6 used) exceeds cache.

use cocci_bench::timing::{Harness, Throughput};
use cocci_workloads::kernels::{init_aos, init_soa, update_aos, update_soa};

fn main() {
    let mut h = Harness::new("aos_soa").sample_size(30);
    for exp in [10u32, 14, 18] {
        let n = 1usize << exp;
        let mut particles = init_aos(n);
        h.bench(
            "aos_soa",
            &format!("aos/{n}"),
            Throughput::Elements(n as u64),
            || update_aos(&mut particles, 1e-6),
        );
        let mut particles = init_soa(n);
        h.bench(
            "aos_soa",
            &format!("soa/{n}"),
            Throughput::Elements(n as u64),
            || update_soa(&mut particles, 1e-6),
        );
    }
    h.finish().expect("write BENCH_aos_soa.json");
}
