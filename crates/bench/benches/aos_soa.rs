//! Experiment E4: the AoS vs SoA layout effect that motivates the
//! paper's flagship refactoring ([ML21]/[BIHK16]).
//!
//! Sweeps the particle count across cache regimes; the reproduction
//! criterion is the *shape* — SoA ≥ AoS with the gap widening once the
//! AoS working set (10 doubles/particle vs 6 used) exceeds cache.

use cocci_workloads::kernels::{init_aos, init_soa, update_aos, update_soa};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn aos_vs_soa(c: &mut Criterion) {
    let mut group = c.benchmark_group("aos_soa");
    for exp in [10u32, 14, 18] {
        let n = 1usize << exp;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("aos", n), &n, |b, &n| {
            let mut particles = init_aos(n);
            b.iter(|| update_aos(&mut particles, 1e-6));
        });
        group.bench_with_input(BenchmarkId::new("soa", n), &n, |b, &n| {
            let mut particles = init_soa(n);
            b.iter(|| update_soa(&mut particles, 1e-6));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = aos_vs_soa
}
criterion_main!(benches);
