//! Prefilter-atom extraction: the set of literal substrings a target file
//! **must** contain for a rule's pattern to possibly match.
//!
//! The corpus driver uses these atoms as a cheap pre-scan: a file missing
//! any required atom of every transform rule cannot match the patch and is
//! skipped before lexing/parsing. Soundness is the contract — an atom is
//! emitted only when *every* successful match of the pattern implies the
//! atom appears verbatim (contiguously) in the file:
//!
//! * non-metavariable identifiers match by name equality, so their name is
//!   required (`::`-qualified names are split into segments, which are the
//!   contiguous pieces);
//! * `symbol` metavariables match only their own name;
//! * string/char/float literals match by raw-text equality;
//! * **int literals are excluded** — the const-fold isomorphism compares
//!   values, so pattern `4` matches source `0x4`;
//! * operators are excluded — the additive-normalization isomorphism can
//!   match `x - 1` against `x + -1` (the CUDA `<<<` launch marker is the
//!   one exception: kernel-call patterns never fold);
//! * concrete statement forms require their keyword (`for`, `return`, …);
//! * directives require their words (pragma metavariable words excluded);
//! * disjunction branches contribute only their **intersection**;
//!   conjunction branches contribute their union;
//! * identifier-kind metavariables with an `=~` constraint contribute the
//!   regex's [`required_literals`](cocci_rex::Regex::required_literals) —
//!   the bound source identifier must contain a match, hence its
//!   guaranteed literal factors.
//!
//! An empty atom set means "cannot prefilter" (the rule may match any
//! file), never "matches nothing".

use crate::{Constraint, MetaDecl, MetaDeclKind, Pattern, TransformRule};
use cocci_cast::ast::*;
use cocci_rex::Regex;
use std::collections::HashMap;

/// Required atoms for one transform rule's pattern, sorted and deduped.
///
/// Every atom must appear as a substring of a file for the rule to have
/// any chance of matching it. An empty vector means the rule cannot be
/// prefiltered.
pub fn rule_atoms(rule: &TransformRule) -> Vec<String> {
    pattern_atoms(&rule.body.pattern, &rule.metavars, None)
}

/// Required atoms for a classified pattern with `metavars` in scope.
///
/// `regexes` lets a caller that has already compiled the rule's `=~`
/// constraints (keyed by metavariable name) share them; without it, any
/// regex constraint encountered is compiled on the spot (and skipped if
/// invalid — an invalid constraint fails the rule's real compile anyway).
pub fn pattern_atoms(
    pattern: &Pattern,
    metavars: &[MetaDecl],
    regexes: Option<&HashMap<String, Regex>>,
) -> Vec<String> {
    let cx = Cx { metavars, regexes };
    let mut out = Vec::new();
    match pattern {
        Pattern::Expr(e) => cx.expr(e, &mut out),
        Pattern::Stmts(stmts) => cx.stmt_seq(stmts, &mut out),
        Pattern::Items(items) => {
            for it in items {
                cx.item(it, &mut out);
            }
        }
    }
    out.retain(|a| !a.is_empty());
    out.sort();
    out.dedup();
    out
}

struct Cx<'a> {
    metavars: &'a [MetaDecl],
    regexes: Option<&'a HashMap<String, Regex>>,
}

impl Cx<'_> {
    fn decl(&self, name: &str) -> Option<&MetaDecl> {
        self.metavars.iter().find(|d| d.name == name)
    }

    fn kind(&self, name: &str) -> Option<&MetaDeclKind> {
        self.decl(name).map(|d| &d.kind)
    }

    /// Atoms guaranteed by a bound identifier-kind metavariable: the
    /// literal factors of its `=~` constraint, if any.
    fn regex_atoms(&self, name: &str, out: &mut Vec<String>) {
        if let Some(compiled) = self.regexes.and_then(|m| m.get(name)) {
            if matches!(
                self.decl(name).and_then(|d| d.constraint.as_ref()),
                Some(Constraint::Regex(_))
            ) {
                out.extend(compiled.required_literals().iter().cloned());
            }
            return;
        }
        if let Some(decl) = self.decl(name) {
            if let Some(Constraint::Regex(re)) = &decl.constraint {
                if let Ok(re) = Regex::new(re) {
                    out.extend(re.required_literals().iter().cloned());
                }
            }
        }
    }

    /// An identifier occurrence that, per `match_ident`, either binds an
    /// identifier-kind metavariable or must appear literally.
    fn ident(&self, id: &Ident, out: &mut Vec<String>) {
        match self.kind(id.name.as_str()) {
            Some(
                MetaDeclKind::Identifier
                | MetaDeclKind::Function
                | MetaDeclKind::FreshIdentifier(_),
            ) => self.regex_atoms(id.name.as_str(), out),
            // Symbols and undeclared names match only themselves.
            _ => push_name(id.name.as_str(), out),
        }
    }

    fn expr(&self, e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Ident(id) => match self.kind(id.name.as_str()) {
                Some(
                    MetaDeclKind::Expression
                    | MetaDeclKind::ExpressionList
                    | MetaDeclKind::Constant
                    | MetaDeclKind::Type,
                ) => {}
                Some(
                    MetaDeclKind::Identifier
                    | MetaDeclKind::Function
                    | MetaDeclKind::FreshIdentifier(_),
                ) => self.regex_atoms(id.name.as_str(), out),
                Some(MetaDeclKind::Symbol) => push_name(id.name.as_str(), out),
                // Undeclared (or non-expression-kind) names fall through to
                // literal identifier matching in the matcher.
                _ => push_name(id.name.as_str(), out),
            },
            // Value-compared under the const-fold isomorphism (`4` ≘ `0x4`).
            Expr::IntLit { .. } => {}
            Expr::FloatLit { raw, .. } | Expr::StrLit { raw, .. } | Expr::CharLit { raw, .. } => {
                out.push(raw.as_str().to_string())
            }
            Expr::Paren { inner, .. } => self.expr(inner, out),
            Expr::Unary { expr, .. } => self.expr(expr, out),
            Expr::PostIncDec { expr, .. } => self.expr(expr, out),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs, out);
                self.expr(rhs, out);
            }
            Expr::Assign { lhs, rhs, .. } => {
                self.expr(lhs, out);
                self.expr(rhs, out);
            }
            Expr::Ternary {
                cond,
                then_val,
                else_val,
                ..
            } => {
                self.expr(cond, out);
                self.expr(then_val, out);
                self.expr(else_val, out);
            }
            Expr::Call { callee, args, .. } => {
                self.expr(callee, out);
                self.expr_list(args, out);
            }
            Expr::KernelCall {
                callee,
                config,
                args,
                ..
            } => {
                // Kernel launches never const-fold, so the launch marker
                // itself is a required (and highly selective) atom.
                out.push("<<<".to_string());
                self.expr(callee, out);
                self.expr_list(config, out);
                self.expr_list(args, out);
            }
            Expr::Index { base, indices, .. } => {
                self.expr(base, out);
                self.expr_list(indices, out);
            }
            Expr::Member { base, field, .. } => {
                self.expr(base, out);
                match self.kind(field.name.as_str()) {
                    Some(MetaDeclKind::Identifier) => self.regex_atoms(field.name.as_str(), out),
                    _ => push_name(field.name.as_str(), out),
                }
            }
            Expr::Cast { ty, expr, .. } => {
                self.ty(ty, out);
                self.expr(expr, out);
            }
            Expr::Sizeof { arg, .. } => {
                out.push("sizeof".to_string());
                if self.kind(arg.as_str()).is_none() && !arg.as_str().contains(char::is_whitespace)
                {
                    out.push(arg.as_str().to_string());
                }
            }
            Expr::InitList { elems, .. } => self.expr_list(elems, out),
            Expr::Dots { .. } => {}
            Expr::Disj { branches, .. } => {
                intersect_branches(
                    out,
                    branches.iter().map(|b| self.atoms_of(|o| self.expr(b, o))),
                );
            }
            Expr::PosAnn { inner, .. } => self.expr(inner, out),
        }
    }

    fn expr_list(&self, list: &[Expr], out: &mut Vec<String>) {
        for e in list {
            self.expr(e, out);
        }
    }

    fn ty(&self, t: &Type, out: &mut Vec<String>) {
        match &t.kind {
            TypeKind::Named { name, .. } => {
                if matches!(self.kind(name.as_str()), Some(MetaDeclKind::Identifier)) {
                    self.regex_atoms(name.as_str(), out);
                } else {
                    push_name(name.as_str(), out);
                }
            }
            TypeKind::Record { keyword, name, .. } => {
                out.push(keyword.as_str().to_string());
                if let Some(n) = name {
                    push_name(n.as_str(), out);
                }
            }
            TypeKind::Ptr(inner) | TypeKind::Ref(inner) => self.ty(inner, out),
            TypeKind::Qualified { quals, inner } => {
                out.extend(quals.iter().map(|q| q.as_str().to_string()));
                self.ty(inner, out);
            }
            TypeKind::Meta { .. } => {}
        }
    }

    fn directive(&self, d: &Directive, out: &mut Vec<String>) {
        match d.kind {
            DirectiveKind::Include => {
                out.push("include".to_string());
                out.push(d.payload.clone());
            }
            DirectiveKind::Pragma => {
                out.push("pragma".to_string());
                for word in d.payload.split_whitespace() {
                    if word == "..." {
                        continue;
                    }
                    match self.kind(word) {
                        Some(MetaDeclKind::Identifier) => self.regex_atoms(word, out),
                        Some(_) => {}
                        None => out.push(word.to_string()),
                    }
                }
            }
            // Define/Other match by exact raw-text equality, so every word
            // is required (metavariables are *not* substituted there).
            _ => out.extend(d.raw.split_whitespace().map(str::to_string)),
        }
    }

    fn decl_atoms(&self, d: &Declaration, out: &mut Vec<String>) {
        for s in &d.specifiers {
            push_name(s.name.as_str(), out);
        }
        for a in &d.attrs {
            self.attr(a, out);
        }
        self.ty(&d.ty, out);
        for dr in &d.declarators {
            self.ident(&dr.name, out);
            for ext in dr.array.iter().flatten() {
                self.expr(ext, out);
            }
            if let Some(init) = &dr.init {
                self.expr(init, out);
            }
            if let Some(params) = &dr.fn_params {
                self.params(params, out);
            }
        }
    }

    fn attr(&self, a: &Attribute, out: &mut Vec<String>) {
        out.push("__attribute__".to_string());
        for item in &a.items {
            self.ident(&item.name, out);
            if let Some(args) = &item.args {
                self.expr_list(args, out);
            }
        }
    }

    fn params(&self, params: &[Param], out: &mut Vec<String>) {
        for p in params {
            if p.meta_list {
                continue;
            }
            self.ty(&p.ty, out);
            if let Some(n) = &p.name {
                self.ident(n, out);
            }
        }
    }

    fn stmt_seq(&self, stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            self.stmt(s, out);
        }
    }

    fn stmt(&self, s: &Stmt, out: &mut Vec<String>) {
        match s {
            Stmt::Expr { expr, .. } => self.expr(expr, out),
            Stmt::Decl(d) => self.decl_atoms(d, out),
            Stmt::Block(b) => self.stmt_seq(&b.stmts, out),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                out.push("if".to_string());
                self.expr(cond, out);
                self.stmt(then_branch, out);
                if let Some(e) = else_branch {
                    out.push("else".to_string());
                    self.stmt(e, out);
                }
            }
            Stmt::While { cond, body, .. } => {
                out.push("while".to_string());
                self.expr(cond, out);
                self.stmt(body, out);
            }
            Stmt::DoWhile { body, cond, .. } => {
                out.push("do".to_string());
                out.push("while".to_string());
                self.expr(cond, out);
                self.stmt(body, out);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                out.push("for".to_string());
                match init.as_deref() {
                    Some(ForInit::Decl(d)) => self.decl_atoms(d, out),
                    Some(ForInit::Expr(e)) => self.expr(e, out),
                    Some(ForInit::Dots { .. }) | None => {}
                }
                self.opt_expr(cond.as_ref(), out);
                self.opt_expr(step.as_ref(), out);
                self.stmt(body, out);
            }
            Stmt::RangeFor {
                ty,
                var,
                range,
                body,
                ..
            } => {
                out.push("for".to_string());
                self.ty(ty, out);
                self.ident(var, out);
                self.expr(range, out);
                self.stmt(body, out);
            }
            Stmt::Return { value, .. } => {
                out.push("return".to_string());
                self.opt_expr(value.as_ref(), out);
            }
            Stmt::Break { .. } => out.push("break".to_string()),
            Stmt::Continue { .. } => out.push("continue".to_string()),
            Stmt::Goto { label, .. } => {
                out.push("goto".to_string());
                self.ident(label, out);
            }
            Stmt::Label { label, stmt, .. } => {
                self.ident(label, out);
                self.stmt(stmt, out);
            }
            Stmt::Switch {
                scrutinee, body, ..
            } => {
                out.push("switch".to_string());
                self.expr(scrutinee, out);
                self.stmt(body, out);
            }
            Stmt::Case { value, stmt, .. } => {
                match value {
                    Some(v) => {
                        out.push("case".to_string());
                        self.expr(v, out);
                    }
                    None => out.push("default".to_string()),
                }
                self.stmt(stmt, out);
            }
            Stmt::Directive(d) => self.directive(d, out),
            Stmt::Empty { .. }
            | Stmt::Dots { .. }
            | Stmt::MetaStmt { .. }
            | Stmt::MetaStmtList { .. } => {}
            Stmt::PatGroup { conj, branches, .. } => {
                // The matcher only considers single-statement branches;
                // others can never match and are skipped here too.
                let viable = branches.iter().filter(|b| b.len() == 1);
                if *conj {
                    for b in viable {
                        self.stmt(&b[0], out);
                    }
                } else {
                    intersect_branches(out, viable.map(|b| self.atoms_of(|o| self.stmt(&b[0], o))));
                }
            }
        }
    }

    fn opt_expr(&self, e: Option<&Expr>, out: &mut Vec<String>) {
        // `...` in an optional slot matches presence *or* absence.
        if let Some(e) = e {
            if !matches!(e, Expr::Dots { .. }) {
                self.expr(e, out);
            }
        }
    }

    fn item(&self, it: &Item, out: &mut Vec<String>) {
        match it {
            Item::Directive(d) => self.directive(d, out),
            Item::Function(f) => {
                for s in &f.specifiers {
                    push_name(s.name.as_str(), out);
                }
                for a in &f.attrs {
                    self.attr(a, out);
                }
                self.ty(&f.ret, out);
                self.ident(&f.name, out);
                self.params(&f.params, out);
                self.stmt_seq(&f.body.stmts, out);
            }
            Item::Decl(d) => self.decl_atoms(d, out),
            // Namespace / extern-block patterns never match (`match_item`
            // has no arm for them), so they constrain nothing.
            Item::Namespace { .. } | Item::ExternBlock { .. } => {}
        }
    }

    fn atoms_of(&self, f: impl FnOnce(&mut Vec<String>)) -> Vec<String> {
        let mut v = Vec::new();
        f(&mut v);
        v
    }
}

/// Push a (possibly `::`-qualified, possibly multi-word) name as its
/// contiguous segments.
fn push_name(name: &str, out: &mut Vec<String>) {
    for word in name.split_whitespace() {
        for seg in word.split("::") {
            if !seg.is_empty() {
                out.push(seg.to_string());
            }
        }
    }
}

/// Extend `out` with the intersection of the branch atom sets: only an
/// atom required by *every* branch is required by the disjunction.
fn intersect_branches(out: &mut Vec<String>, branches: impl Iterator<Item = Vec<String>>) {
    let mut common: Option<Vec<String>> = None;
    for b in branches {
        common = Some(match common {
            None => b,
            Some(prev) => prev.into_iter().filter(|a| b.contains(a)).collect(),
        });
    }
    if let Some(c) = common {
        out.extend(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_semantic_patch;
    use crate::Rule;

    fn atoms_of_patch(src: &str) -> Vec<Vec<String>> {
        let sp = parse_semantic_patch(src).unwrap();
        sp.rules
            .iter()
            .filter_map(|r| match r {
                Rule::Transform(t) => Some(rule_atoms(t)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn call_rename_requires_callee() {
        let a = atoms_of_patch("@@\nexpression e;\n@@\n- old_api(e);\n+ new_api(e);\n");
        assert_eq!(a, vec![vec!["old_api".to_string()]]);
    }

    #[test]
    fn int_literals_are_not_required() {
        // `4` matches `0x4` under const folding; only the callee is safe.
        let a = atoms_of_patch("@@ @@\n- f(4);\n+ g(4);\n");
        assert_eq!(a, vec![vec!["f".to_string()]]);
    }

    #[test]
    fn pragma_and_include_words() {
        let a = atoms_of_patch(
            "@@ @@\n#include <omp.h>\n+ #include <likwid-marker.h>\n\n@@ @@\n#pragma omp ...\n{\n+ S();\n...\n}\n",
        );
        assert_eq!(a[0], ["<omp.h>", "include"]);
        assert_eq!(a[1], ["omp", "pragma"]);
    }

    #[test]
    fn regex_constraint_contributes_literal_factors() {
        let a = atoms_of_patch(
            "@@\ntype T;\nidentifier f =~ \"kernel\";\nparameter list PL;\nstatement list SL;\n@@\nT f (PL) { SL }\n",
        );
        assert_eq!(a, vec![vec!["kernel".to_string()]]);
    }

    #[test]
    fn disjunction_takes_branch_intersection() {
        let a = atoms_of_patch("@@\nexpression e;\n@@\n- \\( foo(e) \\| bar(e) \\)\n+ baz(e);\n");
        assert_eq!(a, vec![Vec::<String>::new()]);
        let b =
            atoms_of_patch("@@\nexpression e;\n@@\n- \\( foo(e, a) \\| foo(a, e) \\)\n+ baz(e);\n");
        assert_eq!(b, vec![vec!["a".to_string(), "foo".to_string()]]);
    }

    #[test]
    fn symbol_metavariable_is_required() {
        let a = atoms_of_patch(
            "#spatch --c++=23\n@@\nsymbol a;\nexpression x,y,z;\n@@\n- a[x][y][z]\n+ a[x, y, z]\n",
        );
        assert_eq!(a, vec![vec!["a".to_string()]]);
    }

    #[test]
    fn kernel_launch_marker_required() {
        let a = atoms_of_patch(
            "#spatch --c++\n@@\nexpression k,b,t;\nexpression list el;\n@@\n- k<<<b,t>>>(el)\n+ hipLaunchKernelGGL(k, b, t, 0, 0, el)\n",
        );
        assert_eq!(a, vec![vec!["<<<".to_string()]]);
    }

    #[test]
    fn attribute_pattern_atoms() {
        let a = atoms_of_patch(
            "@@\nidentifier f;\ntype T;\n@@\n__attribute__((target(...,\"avx512\",...)))\nT f(...)\n{\n+ setup();\n...\n}\n",
        );
        assert_eq!(
            a,
            vec![vec![
                "\"avx512\"".to_string(),
                "__attribute__".to_string(),
                "target".to_string()
            ]]
        );
    }
}
