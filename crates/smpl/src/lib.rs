//! `cocci-smpl`: the Semantic Patch Language.
//!
//! A semantic patch is a sequence of *rules*. Each rule has a header
//! declaring metavariables, followed by a transformation body written as
//! annotated C/C++ (`-` lines removed, `+` lines added, unannotated lines
//! as matching context). This crate parses semantic patch files into
//! structured [`SemanticPatch`] values; matching and transformation live
//! in `cocci-core`.
//!
//! Supported SMPL subset (everything exercised by the paper's Section-3
//! use cases, plus headroom):
//!
//! * rule headers `@name@`, `@@`, `@name depends on other@`
//! * metavariable kinds: `type`, `identifier`, `fresh identifier` (with
//!   `##` concatenation), `expression`, `expression list`, `statement`,
//!   `statement list`, `parameter list`, `constant`, `function`, `symbol`,
//!   `position`, `pragmainfo`
//! * constraints: `=~ "regex"` and value sets `= {a,b}` / `= {4}`
//! * inherited metavariables `rule.name`
//! * pattern operators: `...` dots, `\( … \| … \)` disjunction,
//!   `\( … \& … \)` conjunction, `@pos` position attachment
//! * script rules `@initialize:<lang>@`, `@script:<lang> name@` with
//!   `local << rule.remote;` inputs and bare `out;` output declarations
//! * `#spatch --c++[=NN]` option lines selecting the C++ dialect
//!
//! Deviations from upstream Coccinelle are documented in DESIGN.md: the
//! disjunction syntax is always the escaped `\( \| \)` form (the
//! column-zero bare-parenthesis form is not supported), and script rules
//! are interpreted by `cocci-script` (a Python-subset interpreter) rather
//! than CPython.

mod body;
mod parse;
pub mod prefilter;

pub use body::{classify_body, Annot, BodyLine, Pattern, PlusGroup, RuleBody};
pub use parse::{parse_semantic_patch, SmplError};

use cocci_cast::{Lang, MetaKind};

/// A whole semantic patch file.
#[derive(Debug, Clone)]
pub struct SemanticPatch {
    /// Rules in declaration order.
    pub rules: Vec<Rule>,
    /// Language dialect selected by `#spatch` options.
    pub lang: Lang,
}

impl SemanticPatch {
    /// Find a rule by name.
    pub fn rule(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name() == Some(name))
    }

    /// Whether the patch is **transformation-free**: every transform
    /// rule's body is pure context (no `-`/`+` lines), so applying it
    /// can only ever produce findings, never edits. `spatch` auto-selects
    /// report mode for such patches.
    pub fn is_report_only(&self) -> bool {
        self.rules.iter().all(|r| match r {
            Rule::Transform(t) => t.is_report_only(),
            _ => true,
        })
    }
}

/// One rule of a semantic patch.
#[derive(Debug, Clone)]
pub enum Rule {
    /// A transformation (or pure-match) rule.
    Transform(TransformRule),
    /// A script rule computing new bindings from inherited ones.
    Script(ScriptRule),
    /// An `@initialize:<lang>@` block run before matching starts.
    Initialize(ScriptBlock),
    /// A `@finalize:<lang>@` block run after all rules.
    Finalize(ScriptBlock),
}

impl Rule {
    /// The rule's name, if it has one.
    pub fn name(&self) -> Option<&str> {
        match self {
            Rule::Transform(t) => t.name.as_deref(),
            Rule::Script(s) => s.name.as_deref(),
            Rule::Initialize(_) | Rule::Finalize(_) => None,
        }
    }
}

/// Dependency expression in `depends on …`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepExpr {
    /// The named rule must have matched.
    Rule(String),
    /// Negation: the named rule must *not* have matched.
    Not(String),
    /// All conjuncts must hold.
    And(Vec<DepExpr>),
    /// Any disjunct must hold.
    Or(Vec<DepExpr>),
}

/// A transformation rule.
#[derive(Debug, Clone)]
pub struct TransformRule {
    /// Rule name (`@name@`); anonymous rules have none.
    pub name: Option<String>,
    /// `depends on` expression, if any.
    pub depends: Option<DepExpr>,
    /// Declared metavariables.
    pub metavars: Vec<MetaDecl>,
    /// The annotated body.
    pub body: RuleBody,
}

impl TransformRule {
    /// Look up a metavariable declaration by (local) name.
    pub fn metavar(&self, name: &str) -> Option<&MetaDecl> {
        self.metavars.iter().find(|m| m.name == name)
    }

    /// Whether the rule's pattern is flow-sensitive: it contains `...`
    /// in statement position, whose faithful semantics ("along every
    /// control-flow path") needs CFG path matching rather than
    /// tree-sequence gaps. See [`Pattern::has_statement_dots`].
    pub fn is_flow_sensitive(&self) -> bool {
        self.body.pattern.has_statement_dots()
    }

    /// Whether the rule is reporting-only: its body is pure context
    /// (see [`RuleBody::is_pure_context`]), so its matches route to
    /// findings instead of edits.
    pub fn is_report_only(&self) -> bool {
        self.body.is_pure_context()
    }
}

/// Kinds of metavariable declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaDeclKind {
    /// `type T;`
    Type,
    /// `identifier f;`
    Identifier,
    /// `fresh identifier x = "pre" ## f;`
    FreshIdentifier(Vec<FreshPart>),
    /// `expression e;`
    Expression,
    /// `expression list el;`
    ExpressionList,
    /// `statement S;`
    Statement,
    /// `statement list SL;`
    StatementList,
    /// `parameter list PL;`
    ParameterList,
    /// `constant k;`
    Constant,
    /// `function f;`
    Function,
    /// `symbol s;` (matches only that very identifier)
    Symbol,
    /// `position p;`
    Position,
    /// `pragmainfo pi;`
    PragmaInfo,
}

impl MetaDeclKind {
    /// The parser-visible kind for pattern-body parsing.
    pub fn parse_kind(&self) -> MetaKind {
        match self {
            MetaDeclKind::Type => MetaKind::Type,
            MetaDeclKind::Identifier
            | MetaDeclKind::FreshIdentifier(_)
            | MetaDeclKind::Constant
            | MetaDeclKind::Function
            | MetaDeclKind::Symbol => MetaKind::Ident,
            MetaDeclKind::Expression => MetaKind::Expr,
            MetaDeclKind::ExpressionList => MetaKind::ExprList,
            MetaDeclKind::Statement => MetaKind::Stmt,
            MetaDeclKind::StatementList => MetaKind::StmtList,
            MetaDeclKind::ParameterList => MetaKind::ParamList,
            MetaDeclKind::Position => MetaKind::Pos,
            MetaDeclKind::PragmaInfo => MetaKind::PragmaInfo,
        }
    }
}

/// A fragment of a `fresh identifier` definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FreshPart {
    /// A string literal fragment.
    Lit(String),
    /// A reference to another metavariable of the same rule.
    MetaRef(String),
}

/// Constraint attached to a metavariable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// `=~ "regex"` — the bound identifier must match.
    Regex(String),
    /// `!~ "regex"` — must not match.
    NotRegex(String),
    /// `= {a, b, 4}` — the bound value's text must be one of these.
    Set(Vec<String>),
}

/// One metavariable declaration.
#[derive(Debug, Clone)]
pub struct MetaDecl {
    /// Local name.
    pub name: String,
    /// Kind.
    pub kind: MetaDeclKind,
    /// Optional constraint.
    pub constraint: Option<Constraint>,
    /// For inherited metavariables `rule.name`: the source rule.
    pub inherited_from: Option<String>,
}

/// A script rule.
#[derive(Debug, Clone)]
pub struct ScriptRule {
    /// Rule name (needed for other rules to inherit its outputs).
    pub name: Option<String>,
    /// Script language tag (informational; `cocci-script` interprets all).
    pub lang: String,
    /// `depends on` expression, if any.
    pub depends: Option<DepExpr>,
    /// Inputs: `(local, source_rule, remote)` from `local << rule.remote;`.
    pub inputs: Vec<(String, String, String)>,
    /// Output metavariable names (bare declarations).
    pub outputs: Vec<String>,
    /// The script source.
    pub code: String,
}

/// An initialize/finalize block.
#[derive(Debug, Clone)]
pub struct ScriptBlock {
    /// Script language tag.
    pub lang: String,
    /// The script source.
    pub code: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIKWID: &str = r#"
@@ @@
#include <omp.h>
+ #include <likwid-marker.h>

@@ @@
#pragma omp ...
{
+ LIKWID_MARKER_START(__func__);
...
+ LIKWID_MARKER_STOP(__func__);
}
"#;

    #[test]
    fn parses_likwid_patch() {
        let sp = parse_semantic_patch(LIKWID).unwrap();
        assert_eq!(sp.rules.len(), 2);
        match &sp.rules[0] {
            Rule::Transform(t) => {
                assert!(t.name.is_none());
                assert!(t.metavars.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_metavar_decls() {
        let src = r#"
@p0@
type T;
identifier i,l;
constant k={4};
statement A,B,C,D;
@@
A
"#;
        let sp = parse_semantic_patch(src).unwrap();
        match &sp.rules[0] {
            Rule::Transform(t) => {
                assert_eq!(t.name.as_deref(), Some("p0"));
                assert_eq!(t.metavars.len(), 8);
                let k = t.metavar("k").unwrap();
                assert_eq!(k.kind, MetaDeclKind::Constant);
                assert_eq!(k.constraint, Some(Constraint::Set(vec!["4".to_string()])));
                assert_eq!(t.metavar("C").unwrap().kind, MetaDeclKind::Statement);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_regex_constraint_and_fresh() {
        let src = r#"
@@
type T;
identifier f =~ "kernel";
parameter list PL;
statement list SL;
fresh identifier f512 = "avx512_" ## f;
@@
T f (PL) { SL }
"#;
        let sp = parse_semantic_patch(src).unwrap();
        match &sp.rules[0] {
            Rule::Transform(t) => {
                assert_eq!(
                    t.metavar("f").unwrap().constraint,
                    Some(Constraint::Regex("kernel".into()))
                );
                match &t.metavar("f512").unwrap().kind {
                    MetaDeclKind::FreshIdentifier(parts) => {
                        assert_eq!(
                            parts,
                            &vec![
                                FreshPart::Lit("avx512_".into()),
                                FreshPart::MetaRef("f".into())
                            ]
                        );
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_inherited_and_depends() {
        let src = r#"
@c@
type T;
function f;
parameter list PL;
@@
- T f(PL) { ... }

@d depends on c@
type c.T;
function c.f;
parameter list c.PL;
@@
T f(PL) { ... }
"#;
        let sp = parse_semantic_patch(src).unwrap();
        match &sp.rules[1] {
            Rule::Transform(t) => {
                assert_eq!(t.name.as_deref(), Some("d"));
                assert_eq!(t.depends, Some(DepExpr::Rule("c".into())));
                assert_eq!(t.metavar("T").unwrap().inherited_from.as_deref(), Some("c"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_script_rules() {
        let src = r#"
@initialize:python@ @@
C2HF = { "curand_uniform_double": "rocrand_uniform_double" }

@cfe@
identifier fn;
expression list el;
position p;
@@
fn@p(el)

@script:python cf2hf@
fn << cfe.fn;
nf;
@@
coccinelle.nf = cocci.make_ident(C2HF[fn]);

@hfe@
identifier cfe.fn;
identifier cf2hf.nf;
position cfe.p;
@@
- fn@p
+ nf
(...)
"#;
        let sp = parse_semantic_patch(src).unwrap();
        assert_eq!(sp.rules.len(), 4);
        assert!(matches!(&sp.rules[0], Rule::Initialize(b) if b.code.contains("C2HF")));
        match &sp.rules[2] {
            Rule::Script(s) => {
                assert_eq!(s.name.as_deref(), Some("cf2hf"));
                assert_eq!(
                    s.inputs,
                    vec![("fn".to_string(), "cfe".to_string(), "fn".to_string())]
                );
                assert_eq!(s.outputs, vec!["nf".to_string()]);
                assert!(s.code.contains("make_ident"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spatch_option_line_sets_lang() {
        let src = "#spatch --c++=23\n@tomultiindex@\nsymbol a;\nexpression x,y,z;\n@@\n- a[x][y][z]\n+ a[x, y, z]\n";
        let sp = parse_semantic_patch(src).unwrap();
        assert_eq!(sp.lang, Lang::Cpp);
    }

    #[test]
    fn body_annotations_recorded() {
        let sp = parse_semantic_patch(LIKWID).unwrap();
        match &sp.rules[1] {
            Rule::Transform(t) => {
                let plus_lines: Vec<_> = t
                    .body
                    .lines
                    .iter()
                    .filter(|l| l.annot == Annot::Plus)
                    .collect();
                assert_eq!(plus_lines.len(), 2);
                assert!(plus_lines[0].text.contains("LIKWID_MARKER_START"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn when_exists_and_strict_carry_through_the_pattern() {
        use cocci_cast::DotsQuant;
        let src = "@@\nexpression b;\n@@\n- probe_begin(b);\n+ probe_enter(b);\n... when exists\nprobe_end(b);\n";
        let sp = parse_semantic_patch(src).unwrap();
        let Rule::Transform(t) = &sp.rules[0] else {
            panic!("transform rule expected");
        };
        assert!(t.is_flow_sensitive());
        assert_eq!(
            t.body.pattern.statement_dots_quants(),
            vec![DotsQuant::Exists]
        );

        let strict = src.replace("when exists", "when strict");
        let sp = parse_semantic_patch(&strict).unwrap();
        let Rule::Transform(t) = &sp.rules[0] else {
            panic!("transform rule expected");
        };
        assert_eq!(
            t.body.pattern.statement_dots_quants(),
            vec![DotsQuant::Strict]
        );

        let plain = src.replace(" when exists", "");
        let sp = parse_semantic_patch(&plain).unwrap();
        let Rule::Transform(t) = &sp.rules[0] else {
            panic!("transform rule expected");
        };
        assert_eq!(
            t.body.pattern.statement_dots_quants(),
            vec![DotsQuant::Default]
        );
    }

    #[test]
    fn pure_context_bodies_classify_as_report_only() {
        // Context-only body (a position metavariable pins the site).
        let sp =
            parse_semantic_patch("@r@\nexpression e;\nposition p;\n@@\nold_api(e)@p;\n").unwrap();
        let Rule::Transform(t) = &sp.rules[0] else {
            panic!("transform rule expected");
        };
        assert!(t.is_report_only());
        assert!(sp.is_report_only());

        // Any `-` or `+` line makes the rule (and patch) transforming.
        for body in [
            "- old_api(e);\n+ new_api(e);\n",
            "+ extra();\nold_api(e);\n",
        ] {
            let sp = parse_semantic_patch(&format!("@r@\nexpression e;\n@@\n{body}")).unwrap();
            let Rule::Transform(t) = &sp.rules[0] else {
                panic!("transform rule expected");
            };
            assert!(!t.is_report_only(), "{body}");
            assert!(!sp.is_report_only(), "{body}");
        }

        // A mixed patch (one reporting rule, one transforming rule) is
        // not transformation-free.
        let sp = parse_semantic_patch(
            "@a@\nexpression e;\n@@\nold_api(e);\n\n@b@\n@@\n- gone();\n+ here();\n",
        )
        .unwrap();
        assert!(!sp.is_report_only());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_semantic_patch("not a patch at all").is_err());
        assert!(parse_semantic_patch("@r@\nbogus metavar decl\n@@\nx\n").is_err());
    }
}
