//! File-level parsing of semantic patches: rule headers, metavariable
//! declarations, script-rule interfaces, and `#spatch` option lines.

use crate::body::RuleBody;
use crate::{
    Constraint, DepExpr, FreshPart, MetaDecl, MetaDeclKind, Rule, ScriptBlock, ScriptRule,
    SemanticPatch, TransformRule,
};
use cocci_cast::Lang;
use std::fmt;

/// Error produced while parsing a semantic patch file.
#[derive(Debug, Clone)]
pub struct SmplError {
    /// 1-based line number of the problem (0 = whole file).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SmplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "semantic patch error (line {}): {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for SmplError {}

fn err(line: usize, message: impl Into<String>) -> SmplError {
    SmplError {
        line,
        message: message.into(),
    }
}

/// Parse a complete semantic patch file.
pub fn parse_semantic_patch(src: &str) -> Result<SemanticPatch, SmplError> {
    let lines: Vec<&str> = src.lines().collect();
    let mut lang = Lang::C;
    let mut rules = Vec::new();
    let mut i = 0usize;

    while i < lines.len() {
        let line = lines[i];
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with("//") {
            i += 1;
            continue;
        }
        // Option lines: `#spatch --c++=23`, `# spatch --c++`.
        if trimmed.starts_with('#') {
            let rest = trimmed.trim_start_matches('#').trim_start();
            if rest.starts_with("spatch") {
                if rest.contains("--c++") {
                    lang = Lang::Cpp;
                }
                i += 1;
                continue;
            }
            return Err(err(
                i + 1,
                format!("unexpected line outside rule: `{trimmed}`"),
            ));
        }
        if !trimmed.starts_with('@') {
            return Err(err(
                i + 1,
                format!("expected rule header starting with `@`, found `{trimmed}`"),
            ));
        }

        // ---- header ----
        let header_line = trimmed;
        let after_at = &header_line[1..];
        let close = after_at
            .find('@')
            .ok_or_else(|| err(i + 1, "unterminated rule header (missing closing `@`)"))?;
        let header = after_at[..close].trim().to_string();
        let rest_of_line = after_at[close + 1..].trim();
        let header_line_idx = i;
        i += 1;

        // ---- metavariable section ----
        let mut meta_text = String::new();
        if rest_of_line == "@@" || rest_of_line.starts_with("@@") {
            // `@name@ @@` one-liner: empty metavariable section.
        } else if rest_of_line.is_empty() {
            // Metavariable declarations until a line that is exactly `@@`.
            loop {
                if i >= lines.len() {
                    return Err(err(header_line_idx + 1, "rule header without closing `@@`"));
                }
                let l = lines[i].trim();
                i += 1;
                if l == "@@" {
                    break;
                }
                meta_text.push_str(lines[i - 1]);
                meta_text.push('\n');
            }
        } else {
            return Err(err(
                header_line_idx + 1,
                format!("unexpected text after rule header: `{rest_of_line}`"),
            ));
        }

        // ---- body ----
        let body_first = i;
        while i < lines.len() && !lines[i].starts_with('@') {
            i += 1;
        }
        let mut body_lines: Vec<&str> = lines[body_first..i].to_vec();
        while body_lines
            .last()
            .map(|l| l.trim().is_empty())
            .unwrap_or(false)
        {
            body_lines.pop();
        }
        while body_lines
            .first()
            .map(|l| l.trim().is_empty())
            .unwrap_or(false)
        {
            body_lines.remove(0);
        }
        let body_text = body_lines.join("\n");

        // ---- dispatch on header form ----
        if header == "initialize" || header.starts_with("initialize:") {
            let lang_tag = header.split(':').nth(1).unwrap_or("cocci").to_string();
            rules.push(Rule::Initialize(ScriptBlock {
                lang: lang_tag,
                code: body_text,
            }));
            continue;
        }
        if header == "finalize" || header.starts_with("finalize:") {
            let lang_tag = header.split(':').nth(1).unwrap_or("cocci").to_string();
            rules.push(Rule::Finalize(ScriptBlock {
                lang: lang_tag,
                code: body_text,
            }));
            continue;
        }
        if header.starts_with("script") {
            // `script:python name [depends on …]`
            let mut parts = header.splitn(2, ':');
            let _ = parts.next();
            let rest = parts.next().unwrap_or("").trim();
            let mut words = rest.split_whitespace();
            let lang_tag = words.next().unwrap_or("cocci").to_string();
            let tail: Vec<&str> = words.collect();
            let (name, depends) = parse_name_and_depends(&tail, header_line_idx + 1)?;
            let (inputs, outputs) = parse_script_interface(&meta_text, header_line_idx + 1)?;
            rules.push(Rule::Script(ScriptRule {
                name,
                lang: lang_tag,
                depends,
                inputs,
                outputs,
                code: body_text,
            }));
            continue;
        }

        // Transformation rule: `name [depends on …]` or empty.
        let words: Vec<&str> = header.split_whitespace().collect();
        let (name, depends) = parse_name_and_depends(&words, header_line_idx + 1)?;
        let metavars = parse_metavar_decls(&meta_text, header_line_idx + 1)?;
        let body = RuleBody::new(&body_text, name.as_deref(), &metavars, lang)
            .map_err(|m| err(body_first + 1, m))?;
        rules.push(Rule::Transform(TransformRule {
            name,
            depends,
            metavars,
            body,
        }));
    }

    if rules.is_empty() {
        return Err(err(0, "no rules found in semantic patch"));
    }
    Ok(SemanticPatch { rules, lang })
}

/// Parse `[name] [depends on expr]` from header words.
fn parse_name_and_depends(
    words: &[&str],
    line: usize,
) -> Result<(Option<String>, Option<DepExpr>), SmplError> {
    if words.is_empty() {
        return Ok((None, None));
    }
    let (name, rest) = if words[0] == "depends" {
        (None, words)
    } else {
        (Some(words[0].to_string()), &words[1..])
    };
    if rest.is_empty() {
        return Ok((name, None));
    }
    if rest.len() < 2 || rest[0] != "depends" || rest[1] != "on" {
        return Err(err(
            line,
            format!("malformed rule header near `{}`", rest.join(" ")),
        ));
    }
    let dep = parse_dep_expr(&rest[2..], line)?;
    Ok((name, Some(dep)))
}

/// Parse a dependency expression: `a`, `!a`, `a && b`, `a || b`.
fn parse_dep_expr(words: &[&str], line: usize) -> Result<DepExpr, SmplError> {
    if words.is_empty() {
        return Err(err(line, "empty `depends on` expression"));
    }
    // Split on || first (lowest precedence), then &&.
    let text = words.join(" ");
    let or_parts: Vec<&str> = text.split("||").map(str::trim).collect();
    let mut or_exprs = Vec::new();
    for part in or_parts {
        let and_parts: Vec<&str> = part.split("&&").map(str::trim).collect();
        let mut and_exprs = Vec::new();
        for atom in and_parts {
            if atom.is_empty() {
                return Err(err(line, "malformed `depends on` expression"));
            }
            if let Some(n) = atom.strip_prefix('!') {
                and_exprs.push(DepExpr::Not(n.trim().to_string()));
            } else {
                and_exprs.push(DepExpr::Rule(atom.to_string()));
            }
        }
        or_exprs.push(if and_exprs.len() == 1 {
            and_exprs.pop().unwrap()
        } else {
            DepExpr::And(and_exprs)
        });
    }
    Ok(if or_exprs.len() == 1 {
        or_exprs.pop().unwrap()
    } else {
        DepExpr::Or(or_exprs)
    })
}

/// Parse the metavariable declaration section of a transformation rule.
fn parse_metavar_decls(text: &str, line0: usize) -> Result<Vec<MetaDecl>, SmplError> {
    let mut out = Vec::new();
    for (off, raw_decl) in split_decls(text) {
        let line = line0 + text[..off].matches('\n').count();
        let decl = raw_decl.trim();
        if decl.is_empty() || decl.starts_with("//") {
            continue;
        }
        parse_one_decl(decl, line, &mut out)?;
    }
    Ok(out)
}

/// Split declaration text on `;` while respecting string literals and
/// braces (value sets contain commas, not semicolons, but strings could
/// contain `;`).
fn split_decls(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in text.char_indices() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ';' if !in_str => {
                out.push((start, std::mem::take(&mut cur)));
                start = i + 1;
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push((start, cur));
    }
    out
}

/// Parse one metavariable declaration (without trailing `;`).
fn parse_one_decl(decl: &str, line: usize, out: &mut Vec<MetaDecl>) -> Result<(), SmplError> {
    let words: Vec<&str> = decl.split_whitespace().collect();
    let (kind, rest_idx): (MetaDeclKind, usize) = match words.as_slice() {
        ["fresh", "identifier", ..] => (MetaDeclKind::FreshIdentifier(Vec::new()), 2),
        ["expression", "list", ..] => (MetaDeclKind::ExpressionList, 2),
        ["statement", "list", ..] => (MetaDeclKind::StatementList, 2),
        ["parameter", "list", ..] => (MetaDeclKind::ParameterList, 2),
        ["type", ..] => (MetaDeclKind::Type, 1),
        ["identifier", ..] => (MetaDeclKind::Identifier, 1),
        ["expression", ..] => (MetaDeclKind::Expression, 1),
        ["statement", ..] => (MetaDeclKind::Statement, 1),
        ["constant", ..] => (MetaDeclKind::Constant, 1),
        ["function", ..] => (MetaDeclKind::Function, 1),
        ["symbol", ..] => (MetaDeclKind::Symbol, 1),
        ["position", ..] => (MetaDeclKind::Position, 1),
        ["pragmainfo", ..] => (MetaDeclKind::PragmaInfo, 1),
        _ => {
            return Err(err(
                line,
                format!("unrecognized metavariable declaration `{decl}`"),
            ))
        }
    };
    let rest = words[rest_idx..].join(" ");
    if rest.is_empty() {
        return Err(err(line, format!("missing metavariable name in `{decl}`")));
    }

    if let MetaDeclKind::FreshIdentifier(_) = kind {
        // `name = "lit" ## ref ## "lit" …`
        let (name_part, def) = rest.split_once('=').ok_or_else(|| {
            err(
                line,
                format!("fresh identifier without definition: `{decl}`"),
            )
        })?;
        let name = name_part.trim().to_string();
        let mut parts = Vec::new();
        for piece in def.split("##") {
            let p = piece.trim();
            if let Some(stripped) = p.strip_prefix('"') {
                let lit = stripped
                    .strip_suffix('"')
                    .ok_or_else(|| err(line, format!("unterminated string in `{decl}`")))?;
                parts.push(FreshPart::Lit(lit.to_string()));
            } else if !p.is_empty() {
                parts.push(FreshPart::MetaRef(p.to_string()));
            }
        }
        out.push(MetaDecl {
            name,
            kind: MetaDeclKind::FreshIdentifier(parts),
            constraint: None,
            inherited_from: None,
        });
        return Ok(());
    }

    // Constraint forms:
    //   names =~ "regex"   |   names !~ "regex"   |   name = {a,b}
    let (names_part, constraint) = if let Some(idx) = rest.find("=~") {
        let re = extract_quoted(&rest[idx + 2..])
            .ok_or_else(|| err(line, format!("missing regex in `{decl}`")))?;
        (rest[..idx].to_string(), Some(Constraint::Regex(re)))
    } else if let Some(idx) = rest.find("!~") {
        let re = extract_quoted(&rest[idx + 2..])
            .ok_or_else(|| err(line, format!("missing regex in `{decl}`")))?;
        (rest[..idx].to_string(), Some(Constraint::NotRegex(re)))
    } else if let Some(idx) = rest.find('=') {
        let set_text = rest[idx + 1..].trim();
        let inner = set_text
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| err(line, format!("expected `{{…}}` value set in `{decl}`")))?;
        let vals = inner
            .split(',')
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty())
            .collect();
        (rest[..idx].to_string(), Some(Constraint::Set(vals)))
    } else {
        (rest, None)
    };

    for name in names_part.split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        let (inherited_from, local) = match name.split_once('.') {
            Some((r, n)) => (Some(r.to_string()), n.to_string()),
            None => (None, name.to_string()),
        };
        out.push(MetaDecl {
            name: local,
            kind: kind.clone(),
            constraint: constraint.clone(),
            inherited_from,
        });
    }
    Ok(())
}

fn extract_quoted(s: &str) -> Option<String> {
    let s = s.trim();
    let rest = s.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Script inputs: `(local, source_rule, remote_var)` triples.
type ScriptInputs = Vec<(String, String, String)>;

/// Parse the interface section of a script rule:
/// `local << rule.remote;` inputs and bare `out;` outputs.
fn parse_script_interface(
    text: &str,
    line0: usize,
) -> Result<(ScriptInputs, Vec<String>), SmplError> {
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    for (off, decl) in split_decls(text) {
        let line = line0 + text[..off].matches('\n').count();
        let decl = decl.trim();
        if decl.is_empty() || decl.starts_with("//") {
            continue;
        }
        if let Some((local, remote)) = decl.split_once("<<") {
            let local = local.trim().to_string();
            let remote = remote.trim();
            let (rule, var) = remote
                .split_once('.')
                .ok_or_else(|| err(line, format!("script input must be `rule.var`: `{decl}`")))?;
            inputs.push((local, rule.trim().to_string(), var.trim().to_string()));
        } else {
            let name = decl.to_string();
            if name.split_whitespace().count() != 1 {
                return Err(err(
                    line,
                    format!("unrecognized script interface declaration `{decl}`"),
                ));
            }
            outputs.push(name);
        }
    }
    Ok((inputs, outputs))
}
