//! Rule-body processing: line annotations, the two-slice model, pattern
//! classification.
//!
//! SMPL marks removals and additions per *line* (`-`/`+` in the first
//! column). The body is processed into:
//!
//! * the **minus slice** — body text with `+` lines blanked and the
//!   annotation column replaced by a space, *preserving byte offsets*, so
//!   that spans of the parsed pattern AST index directly into the body;
//! * per-line records ([`BodyLine`]) with annotation, text, and lexed
//!   tokens (used by the transformer to render `+` material with
//!   metavariable substitution);
//! * **plus groups** — maximal runs of `+` lines with their anchor offset
//!   in body coordinates (used for insertions at statement/item list
//!   positions);
//! * the classified [`Pattern`] (expression / statement-sequence /
//!   item-sequence), parsed with the rule's metavariables in scope.

use crate::MetaDecl;
use cocci_cast::lexer::{lex, LexMode};
use cocci_cast::parser::{
    parse_expression, parse_statements, parse_translation_unit, MetaKind, MetaLookup, ParseOptions,
};
use cocci_cast::{visit, DotsQuant, Expr, Item, Lang, Stmt, Token, TokenKind};

/// Per-line annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Annot {
    /// Context line: must match, is kept.
    Context,
    /// `-` line: must match, is removed.
    Minus,
    /// `+` line: is added.
    Plus,
}

/// One line of a rule body.
#[derive(Debug, Clone)]
pub struct BodyLine {
    /// Annotation from the first column.
    pub annot: Annot,
    /// Byte offset of the line start in body coordinates.
    pub start: u32,
    /// Byte offset one past the line end (excluding `\n`).
    pub end: u32,
    /// Line text with the annotation column replaced by a space.
    pub text: String,
    /// Tokens of this line (offsets in body coordinates). Empty when the
    /// line does not lex in isolation (e.g. a comment-only `+` line).
    pub tokens: Vec<Token>,
}

/// A maximal run of `+` lines.
#[derive(Debug, Clone)]
pub struct PlusGroup {
    /// Index range of the lines in [`RuleBody::lines`].
    pub lines: (usize, usize),
    /// Byte offset (body coordinates) where the group begins — used to
    /// locate the insertion point relative to the pattern.
    pub anchor: u32,
}

/// The classified pattern of a rule body.
#[derive(Debug, Clone)]
pub enum Pattern {
    /// A single expression pattern — matched against every subexpression.
    Expr(Expr),
    /// A statement-sequence pattern — matched inside blocks (and, when
    /// composed solely of directives/declarations, against the top level
    /// too).
    Stmts(Vec<Stmt>),
    /// An item-sequence pattern — matched against the top level.
    Items(Vec<Item>),
}

impl Pattern {
    /// Whether the pattern contains `...` between statements at the top
    /// level of its sequence — the construct whose faithful (CTL)
    /// semantics is "along every control-flow path" rather than "some
    /// gap in the statement list". Rules with such a pattern are
    /// *flow-sensitive*: the engine routes them through CFG path
    /// matching when it can lower them (see `cocci-core`'s `flowmatch`).
    ///
    /// Dots nested inside a braced sub-block (the LIKWID-style
    /// `{ ... }` body) are matched per-block by the tree matcher and do
    /// not mark the rule.
    pub fn has_statement_dots(&self) -> bool {
        match self {
            Pattern::Stmts(stmts) => stmts.iter().any(|s| matches!(s, Stmt::Dots { .. })),
            Pattern::Expr(_) | Pattern::Items(_) => false,
        }
    }

    /// The path quantifiers of every statement dots in the pattern —
    /// top-level *and* nested inside compound statements or function
    /// bodies — in traversal order (`when exists` → `Exists`,
    /// `when strict` → `Strict`, bare dots → `Default`). Empty for
    /// patterns without statement dots. The compile-time guard uses
    /// this to refuse quantifiers in positions only the tree matcher
    /// would see (where they would silently read as plain dots).
    pub fn statement_dots_quants(&self) -> Vec<DotsQuant> {
        let mut out = Vec::new();
        let mut collect = |stmts: &[Stmt]| {
            for s in stmts {
                visit::walk_stmt(s, &mut |st| {
                    if let Stmt::Dots { quant, .. } = st {
                        out.push(*quant);
                    }
                });
            }
        };
        match self {
            Pattern::Stmts(stmts) => collect(stmts),
            Pattern::Items(items) => {
                for it in items {
                    if let Item::Function(f) = it {
                        collect(&f.body.stmts);
                    }
                }
            }
            Pattern::Expr(_) => {}
        }
        out
    }
}

/// A processed rule body.
#[derive(Debug, Clone)]
pub struct RuleBody {
    /// Original body text (annotation columns intact).
    pub raw: String,
    /// Minus-slice text: `+` lines blanked, annotation columns blanked.
    pub minus_slice: String,
    /// Per-line records.
    pub lines: Vec<BodyLine>,
    /// Maximal `+` runs.
    pub plus_groups: Vec<PlusGroup>,
    /// The parsed pattern.
    pub pattern: Pattern,
}

struct DeclLookup<'a>(&'a [MetaDecl]);

impl MetaLookup for DeclLookup<'_> {
    fn kind(&self, name: &str) -> Option<MetaKind> {
        self.0
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.kind.parse_kind())
    }
}

impl RuleBody {
    /// Process `raw` into a rule body, parsing the pattern with the given
    /// metavariables in scope.
    pub fn new(
        raw: &str,
        rule_name: Option<&str>,
        metavars: &[MetaDecl],
        lang: Lang,
    ) -> Result<RuleBody, String> {
        let mut lines = Vec::new();
        let mut minus_slice = String::with_capacity(raw.len());
        let mut offset = 0u32;
        for (idx, line) in raw.split('\n').enumerate() {
            let (annot, display) = classify_line(line);
            let start = offset;
            let end = offset + line.len() as u32;
            // Build the minus-slice fragment for this line.
            match annot {
                Annot::Plus => {
                    minus_slice.extend(std::iter::repeat_n(' ', line.len()));
                }
                Annot::Minus => {
                    minus_slice.push(' ');
                    minus_slice.push_str(&line[1..]);
                }
                Annot::Context => minus_slice.push_str(line),
            }
            if idx + 1 != raw.split('\n').count() {
                minus_slice.push('\n');
            }
            // Lex the display text for substitution-time token info.
            let tokens = lex(&display, LexMode::Smpl)
                .map(|ts| {
                    ts.into_iter()
                        .filter(|t| t.kind != TokenKind::Eof)
                        .map(|mut t| {
                            t.span.start += start;
                            t.span.end += start;
                            t
                        })
                        .collect()
                })
                .unwrap_or_default();
            lines.push(BodyLine {
                annot,
                start,
                end,
                text: display,
                tokens,
            });
            offset = end + 1; // newline
        }
        debug_assert_eq!(minus_slice.len(), raw.len());

        // Plus groups.
        let mut plus_groups = Vec::new();
        let mut i = 0usize;
        while i < lines.len() {
            if lines[i].annot == Annot::Plus {
                let begin = i;
                while i < lines.len() && lines[i].annot == Annot::Plus {
                    i += 1;
                }
                plus_groups.push(PlusGroup {
                    lines: (begin, i),
                    anchor: lines[begin].start,
                });
            } else {
                i += 1;
            }
        }

        let lookup = DeclLookup(metavars);
        let pattern = classify_body(&minus_slice, lang, &lookup).map_err(|e| {
            format!(
                "cannot parse body of rule {}: {e}",
                rule_name.unwrap_or("<anonymous>")
            )
        })?;

        Ok(RuleBody {
            raw: raw.to_string(),
            minus_slice,
            lines,
            plus_groups,
            pattern,
        })
    }

    /// Whether the body is **pure context**: no `-` or `+` line at all,
    /// so matching it can never produce an edit. Such rules are compiled
    /// as *reporting-only* — their match witnesses become findings
    /// (`file:line:col` diagnostics) instead of rewrites.
    pub fn is_pure_context(&self) -> bool {
        self.lines.iter().all(|l| l.annot == Annot::Context)
    }

    /// Index of the line containing body offset `off`.
    pub fn line_of_offset(&self, off: u32) -> usize {
        match self.lines.binary_search_by(|l| l.start.cmp(&off)) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        }
    }

    /// Whether all tokens within `span` (body coordinates) lie on `-`
    /// lines. Spans with no tokens return `false`.
    pub fn span_all_minus(&self, span: cocci_source::Span) -> bool {
        let mut any = false;
        for l in &self.lines {
            if l.end <= span.start || l.start >= span.end {
                continue;
            }
            for t in &l.tokens {
                if t.span.start >= span.start && t.span.end <= span.end {
                    any = true;
                    if l.annot != Annot::Minus {
                        return false;
                    }
                }
            }
        }
        any
    }

    /// Whether any token within `span` lies on a `-` line.
    pub fn span_has_minus(&self, span: cocci_source::Span) -> bool {
        self.lines.iter().any(|l| {
            l.annot == Annot::Minus
                && l.tokens
                    .iter()
                    .any(|t| t.span.start >= span.start && t.span.end <= span.end)
        })
    }

    /// Whether any `+` group's anchor falls strictly inside `span`.
    pub fn span_has_interior_plus(&self, span: cocci_source::Span) -> bool {
        self.plus_groups
            .iter()
            .any(|g| g.anchor > span.start && g.anchor < span.end)
    }
}

/// Determine the annotation of a raw body line and produce its display
/// text (annotation column replaced by a space so offsets line up).
fn classify_line(line: &str) -> (Annot, String) {
    match line.as_bytes().first() {
        Some(b'-') => (Annot::Minus, format!(" {}", &line[1..])),
        Some(b'+') => (Annot::Plus, format!(" {}", &line[1..])),
        _ => (Annot::Context, line.to_string()),
    }
}

/// Classify the minus slice into one of the three pattern levels.
///
/// Order matters: expressions first (`a[x][y][z]`, `k<<<b,t>>>(el)`), then
/// statement sequences (covers declarations and directive+block shapes),
/// then item sequences (function definitions, attribute-prefixed
/// functions).
pub fn classify_body(
    minus_slice: &str,
    lang: Lang,
    meta: &dyn MetaLookup,
) -> Result<Pattern, String> {
    let opts = ParseOptions {
        pattern: true,
        lang,
    };
    let mut errors = Vec::new();
    match parse_expression(minus_slice, opts, meta) {
        Ok(e) => return Ok(Pattern::Expr(e)),
        Err(e) => errors.push(format!("as expression: {e}")),
    }
    match parse_statements(minus_slice, opts, meta) {
        Ok(stmts) if !stmts.is_empty() => return Ok(Pattern::Stmts(stmts)),
        Ok(_) => errors.push("as statements: empty".into()),
        Err(e) => errors.push(format!("as statements: {e}")),
    }
    match parse_translation_unit(minus_slice, opts, meta) {
        Ok(tu) if !tu.items.is_empty() => return Ok(Pattern::Items(tu.items)),
        Ok(_) => errors.push("as items: empty".into()),
        Err(e) => errors.push(format!("as items: {e}")),
    }
    Err(errors.join("; "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetaDecl, MetaDeclKind};

    fn mv(name: &str, kind: MetaDeclKind) -> MetaDecl {
        MetaDecl {
            name: name.into(),
            kind,
            constraint: None,
            inherited_from: None,
        }
    }

    #[test]
    fn minus_slice_preserves_offsets() {
        let raw = "x = 1;\n- y = 2;\n+ z = 3;";
        let body = RuleBody::new(raw, None, &[], Lang::C).unwrap();
        assert_eq!(body.minus_slice.len(), raw.len());
        assert!(body.minus_slice.contains("x = 1;"));
        assert!(body.minus_slice.contains("  y = 2;"));
        assert!(!body.minus_slice.contains('z'));
    }

    #[test]
    fn classifies_expression_pattern() {
        let body = RuleBody::new(
            "a[x][y][z]",
            None,
            &[
                mv("a", MetaDeclKind::Symbol),
                mv("x", MetaDeclKind::Expression),
                mv("y", MetaDeclKind::Expression),
                mv("z", MetaDeclKind::Expression),
            ],
            Lang::Cpp,
        )
        .unwrap();
        assert!(matches!(body.pattern, Pattern::Expr(_)));
    }

    #[test]
    fn classifies_statement_pattern() {
        let body = RuleBody::new(
            "#pragma omp ...\n{\n+ START();\n...\n+ STOP();\n}",
            None,
            &[],
            Lang::C,
        )
        .unwrap();
        match &body.pattern {
            Pattern::Stmts(stmts) => {
                assert_eq!(stmts.len(), 2);
                assert!(matches!(stmts[0], Stmt::Directive(_)));
                assert!(matches!(stmts[1], Stmt::Block(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn classifies_item_pattern() {
        let body = RuleBody::new(
            "T f (PL) { SL }",
            None,
            &[
                mv("T", MetaDeclKind::Type),
                mv("f", MetaDeclKind::Identifier),
                mv("PL", MetaDeclKind::ParameterList),
                mv("SL", MetaDeclKind::StatementList),
            ],
            Lang::C,
        )
        .unwrap();
        match &body.pattern {
            Pattern::Items(items) => {
                assert_eq!(items.len(), 1);
                assert!(matches!(items[0], Item::Function(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plus_groups_and_anchors() {
        let raw = "ctx();\n+ one();\n+ two();\nmore();\n+ three();";
        let body = RuleBody::new(raw, None, &[], Lang::C).unwrap();
        assert_eq!(body.plus_groups.len(), 2);
        assert_eq!(body.plus_groups[0].lines, (1, 3));
        assert_eq!(body.plus_groups[1].lines, (4, 5));
        // First group anchored after `ctx();` line.
        assert_eq!(body.plus_groups[0].anchor, 7);
    }

    #[test]
    fn span_annotation_queries() {
        // `- y = 2;` occupies bytes 7..15 (line 2).
        let raw = "x = 1;\n- y = 2;";
        let body = RuleBody::new(raw, None, &[], Lang::C).unwrap();
        let whole = cocci_source::Span::new(0, raw.len() as u32);
        assert!(body.span_has_minus(whole));
        assert!(!body.span_all_minus(whole));
        let minus_line = cocci_source::Span::new(7, 15);
        assert!(body.span_all_minus(minus_line));
    }

    #[test]
    fn statement_dots_mark_flow_sensitivity() {
        let flow = RuleBody::new("a();\n...\nb();", None, &[], Lang::C).unwrap();
        assert!(flow.pattern.has_statement_dots());
        // Dots nested inside a braced sub-block stay tree territory.
        let nested = RuleBody::new("#pragma omp ...\n{\n...\n}", None, &[], Lang::C).unwrap();
        assert!(!nested.pattern.has_statement_dots());
        // Expression-level dots are not statement dots.
        let expr = RuleBody::new("f(...)", None, &[], Lang::C).unwrap();
        assert!(!expr.pattern.has_statement_dots());
    }

    #[test]
    fn line_of_offset_lookup() {
        let raw = "a();\nb();\nc();";
        let body = RuleBody::new(raw, None, &[], Lang::C).unwrap();
        assert_eq!(body.line_of_offset(0), 0);
        assert_eq!(body.line_of_offset(6), 1);
        assert_eq!(body.line_of_offset(11), 2);
    }
}
