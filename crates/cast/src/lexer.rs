//! Lexer for C/C++ (and, in [`LexMode::Smpl`], for SMPL rule bodies).
//!
//! Differences between the two modes:
//! * C mode treats `#` at the start of a logical line as a preprocessor
//!   directive consumed to end-of-line (joining `\` continuations).
//! * SMPL mode additionally recognizes `\(`, `\|`, `\&`, `\)` (pattern
//!   disjunction/conjunction), `@` (position attachment) and `##`
//!   (fresh-identifier concatenation) as punctuation.
//!
//! Comments and whitespace are skipped; their extents are recoverable from
//! inter-token span gaps, which is all the minimal-diff unparser needs.

use crate::token::{Punct, Token, TokenKind};
use cocci_source::{Span, Symbol};

/// Lexing dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LexMode {
    /// Plain C/C++ target code.
    C,
    /// SMPL rule bodies (adds `\(`-family, `@`, `##`).
    Smpl,
}

/// Lexer error (unterminated literal / stray byte).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the problem.
    pub at: u32,
    /// Description.
    pub message: String,
}

/// Lex `src` fully.
pub fn lex(src: &str, mode: LexMode) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        mode,
        at_line_start: true,
        tokens: Vec::with_capacity(src.len() / 6 + 8),
    };
    lx.run()?;
    Ok(lx.tokens)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    mode: LexMode,
    /// True when only whitespace has been seen since the last newline —
    /// the condition for `#` starting a directive.
    at_line_start: bool,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn err(&self, at: usize, msg: impl Into<String>) -> LexError {
        LexError {
            at: at as u32,
            message: msg.into(),
        }
    }

    fn peek(&self) -> u8 {
        self.src.get(self.pos).copied().unwrap_or(0)
    }

    fn peek2(&self) -> u8 {
        self.src.get(self.pos + 1).copied().unwrap_or(0)
    }

    fn peek3(&self) -> u8 {
        self.src.get(self.pos + 2).copied().unwrap_or(0)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
            sym: None,
        });
        self.at_line_start = false;
    }

    fn punct(&mut self, p: Punct, start: usize, len: usize) {
        self.pos = start + len;
        self.push(TokenKind::Punct(p), start);
    }

    fn run(&mut self) -> Result<(), LexError> {
        while self.pos < self.src.len() {
            let c = self.peek();
            let start = self.pos;
            match c {
                b'\n' => {
                    self.pos += 1;
                    self.at_line_start = true;
                }
                b' ' | b'\t' | b'\r' | 0x0b | 0x0c => {
                    self.pos += 1;
                }
                b'\\' if self.peek2() == b'\n' => {
                    // Line continuation in normal code: whitespace.
                    self.pos += 2;
                }
                b'\\'
                    if self.mode == LexMode::Smpl
                        && matches!(self.peek2(), b'(' | b')' | b'|' | b'&') =>
                {
                    let p = match self.peek2() {
                        b'(' => Punct::DisjOpen,
                        b')' => Punct::DisjClose,
                        b'|' => Punct::DisjPipe,
                        _ => Punct::ConjAmp,
                    };
                    self.punct(p, start, 2);
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    self.pos += 2;
                    loop {
                        if self.pos + 1 >= self.src.len() {
                            return Err(self.err(start, "unterminated block comment"));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                b'#' if self.at_line_start && self.mode == LexMode::C => {
                    self.directive(start)?;
                }
                b'#' if self.mode == LexMode::Smpl && self.peek2() == b'#' => {
                    self.punct(Punct::HashHash, start, 2);
                }
                b'#' if self.mode == LexMode::Smpl => {
                    // SMPL bodies contain `#pragma`/`#include` pattern lines;
                    // the SMPL layer pre-splits bodies into lines, so here a
                    // `#` always begins a directive-shaped line.
                    self.directive(start)?;
                }
                b'"' => self.string(start, b'"')?,
                b'\'' => self.string(start, b'\'')?,
                b'0'..=b'9' => self.number(start)?,
                b'.' if self.peek2().is_ascii_digit() => self.number(start)?,
                c if c == b'_' || c.is_ascii_alphabetic() => {
                    while self.pos < self.src.len()
                        && (self.peek() == b'_' || self.peek().is_ascii_alphanumeric())
                    {
                        self.pos += 1;
                    }
                    // Intern once at lex time; every later use of the
                    // identifier (parser, matcher) is a Symbol compare.
                    let text = std::str::from_utf8(&self.src[start..self.pos])
                        .expect("identifier bytes are ASCII");
                    let sym = Symbol::intern(text);
                    self.tokens.push(Token {
                        kind: TokenKind::Ident,
                        span: Span::new(start as u32, self.pos as u32),
                        sym: Some(sym),
                    });
                    self.at_line_start = false;
                }
                _ => self.operator(start)?,
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            span: Span::empty(self.src.len() as u32),
            sym: None,
        });
        Ok(())
    }

    /// Consume a preprocessor logical line (joining `\` continuations).
    fn directive(&mut self, start: usize) -> Result<(), LexError> {
        while self.pos < self.src.len() {
            match self.peek() {
                b'\n' => break,
                b'\\' if self.peek2() == b'\n' => {
                    self.pos += 2;
                }
                b'\\' if self.peek2() == b'\r' && self.peek3() == b'\n' => {
                    self.pos += 3;
                }
                _ => self.pos += 1,
            }
        }
        // Trim trailing spaces from the token span for cleaner raw text.
        let mut end = self.pos;
        while end > start && matches!(self.src[end - 1], b' ' | b'\t' | b'\r') {
            end -= 1;
        }
        let save = self.pos;
        self.pos = end;
        self.push(TokenKind::Directive, start);
        self.pos = save;
        Ok(())
    }

    fn string(&mut self, start: usize, quote: u8) -> Result<(), LexError> {
        self.pos += 1;
        loop {
            if self.pos >= self.src.len() {
                return Err(self.err(start, "unterminated literal"));
            }
            match self.peek() {
                b'\\' => {
                    if self.pos + 1 >= self.src.len() {
                        return Err(self.err(start, "unterminated literal"));
                    }
                    self.pos += 2;
                }
                b'\n' => return Err(self.err(start, "newline in literal")),
                c if c == quote => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.push(
            if quote == b'"' {
                TokenKind::StrLit
            } else {
                TokenKind::CharLit
            },
            start,
        );
        Ok(())
    }

    fn number(&mut self, start: usize) -> Result<(), LexError> {
        let mut is_float = false;
        if self.peek() == b'0' && matches!(self.peek2(), b'x' | b'X' | b'b' | b'B') {
            self.pos += 2;
            while self.pos < self.src.len()
                && (self.peek().is_ascii_alphanumeric() || self.peek() == b'_')
            {
                self.pos += 1;
            }
            self.push(TokenKind::IntLit, start);
            return Ok(());
        }
        while self.pos < self.src.len() {
            match self.peek() {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !is_float && self.peek2() != b'.' => {
                    // `1..` would be a range-ish typo; `1.` is a float.
                    is_float = true;
                    self.pos += 1;
                }
                b'e' | b'E'
                    if matches!(self.peek2(), b'+' | b'-') || self.peek2().is_ascii_digit() =>
                {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), b'+' | b'-') {
                        self.pos += 1;
                    }
                }
                b'f' | b'F' | b'l' | b'L' | b'u' | b'U' => self.pos += 1,
                _ => break,
            }
        }
        self.push(
            if is_float {
                TokenKind::FloatLit
            } else {
                TokenKind::IntLit
            },
            start,
        );
        Ok(())
    }

    fn operator(&mut self, start: usize) -> Result<(), LexError> {
        use Punct::*;
        let (a, b, c) = (self.peek(), self.peek2(), self.peek3());
        let (p, len) = match (a, b, c) {
            (b'.', b'.', b'.') => (Ellipsis, 3),
            (b'<', b'<', b'<') => (TripleLt, 3),
            (b'>', b'>', b'>') => (TripleGt, 3),
            (b'<', b'<', b'=') => (ShlEq, 3),
            (b'>', b'>', b'=') => (ShrEq, 3),
            (b':', b':', _) => (ColonColon, 2),
            (b'-', b'>', _) => (Arrow, 2),
            (b'+', b'+', _) => (PlusPlus, 2),
            (b'+', b'=', _) => (PlusEq, 2),
            (b'-', b'-', _) => (MinusMinus, 2),
            (b'-', b'=', _) => (MinusEq, 2),
            (b'*', b'=', _) => (StarEq, 2),
            (b'/', b'=', _) => (SlashEq, 2),
            (b'%', b'=', _) => (PercentEq, 2),
            (b'&', b'&', _) => (AmpAmp, 2),
            (b'&', b'=', _) => (AmpEq, 2),
            (b'|', b'|', _) => (PipePipe, 2),
            (b'|', b'=', _) => (PipeEq, 2),
            (b'^', b'=', _) => (CaretEq, 2),
            (b'!', b'=', _) => (BangEq, 2),
            (b'=', b'=', _) => (EqEq, 2),
            (b'<', b'<', _) => (Shl, 2),
            (b'>', b'>', _) => (Shr, 2),
            (b'<', b'=', _) => (LtEq, 2),
            (b'>', b'=', _) => (GtEq, 2),
            (b'(', ..) => (LParen, 1),
            (b')', ..) => (RParen, 1),
            (b'{', ..) => (LBrace, 1),
            (b'}', ..) => (RBrace, 1),
            (b'[', ..) => (LBracket, 1),
            (b']', ..) => (RBracket, 1),
            (b';', ..) => (Semi, 1),
            (b',', ..) => (Comma, 1),
            (b':', ..) => (Colon, 1),
            (b'?', ..) => (Question, 1),
            (b'.', ..) => (Dot, 1),
            (b'+', ..) => (Plus, 1),
            (b'-', ..) => (Minus, 1),
            (b'*', ..) => (Star, 1),
            (b'/', ..) => (Slash, 1),
            (b'%', ..) => (Percent, 1),
            (b'&', ..) => (Amp, 1),
            (b'|', ..) => (Pipe, 1),
            (b'^', ..) => (Caret, 1),
            (b'~', ..) => (Tilde, 1),
            (b'!', ..) => (Bang, 1),
            (b'=', ..) => (Eq, 1),
            (b'<', ..) => (Lt, 1),
            (b'>', ..) => (Gt, 1),
            (b'@', ..) if self.mode == LexMode::Smpl => (At, 1),
            _ => return Err(self.err(start, format!("unexpected character `{}`", a as char))),
        };
        self.punct(p, start, len);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src, LexMode::C)
            .unwrap()
            .into_iter()
            .filter(|t| t.kind != TokenKind::Eof)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(texts("int x = 42;"), vec!["int", "x", "=", "42", ";"]);
    }

    #[test]
    fn operators_maximal_munch() {
        assert_eq!(
            texts("a<<=b>>=c<<<d>>>e"),
            vec!["a", "<<=", "b", ">>=", "c", "<<<", "d", ">>>", "e"]
        );
        assert_eq!(
            texts("i+=1; j++; k--;"),
            vec!["i", "+=", "1", ";", "j", "++", ";", "k", "--", ";"]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(texts("a /* mid */ b // tail\nc"), vec!["a", "b", "c"]);
    }

    #[test]
    fn directive_whole_line() {
        let src = "#include <omp.h>\nint x;";
        let toks = lex(src, LexMode::C).unwrap();
        assert_eq!(toks[0].kind, TokenKind::Directive);
        assert_eq!(toks[0].text(src), "#include <omp.h>");
        assert_eq!(toks[1].text(src), "int");
    }

    #[test]
    fn directive_with_continuation() {
        let src = "#pragma omp parallel \\\n    for\nx;";
        let toks = lex(src, LexMode::C).unwrap();
        assert_eq!(toks[0].kind, TokenKind::Directive);
        assert!(toks[0].text(src).contains("for"));
        assert_eq!(toks[1].text(src), "x");
    }

    #[test]
    fn hash_mid_line_is_error_in_c() {
        assert!(lex("a # b", LexMode::C).is_err());
    }

    #[test]
    fn directive_only_at_line_start() {
        let src = "int a;\n  #pragma omp simd\nint b;";
        let toks = lex(src, LexMode::C).unwrap();
        let dirs: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Directive)
            .collect();
        assert_eq!(dirs.len(), 1);
        assert_eq!(dirs[0].text(src), "#pragma omp simd");
    }

    #[test]
    fn string_and_char_literals() {
        let src = r#"f("a\"b", 'c', '\n');"#;
        let toks = lex(src, LexMode::C).unwrap();
        let kinds: Vec<_> = toks.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokenKind::StrLit));
        assert_eq!(
            kinds.iter().filter(|&&k| k == TokenKind::CharLit).count(),
            2
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc", LexMode::C).is_err());
        assert!(lex("\"abc\ndef\"", LexMode::C).is_err());
    }

    #[test]
    fn numbers() {
        let src = "0 42 0x1fUL 0b101 3.14 1e-9 2.f 10ull";
        let toks = lex(src, LexMode::C).unwrap();
        let kinds: Vec<_> = toks
            .iter()
            .filter(|t| t.kind != TokenKind::Eof)
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::IntLit,
                TokenKind::IntLit,
                TokenKind::IntLit,
                TokenKind::IntLit,
                TokenKind::FloatLit,
                TokenKind::FloatLit,
                TokenKind::FloatLit,
                TokenKind::IntLit,
            ]
        );
    }

    #[test]
    fn ellipsis_vs_dots() {
        assert_eq!(texts("f(int, ...)"), vec!["f", "(", "int", ",", "...", ")"]);
    }

    #[test]
    fn smpl_mode_extras() {
        let src = r"\( a \| b \& c \) x@p f##g";
        let toks = lex(src, LexMode::Smpl).unwrap();
        let ts: Vec<_> = toks
            .iter()
            .filter(|t| t.kind != TokenKind::Eof)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(
            ts,
            vec![r"\(", "a", r"\|", "b", r"\&", "c", r"\)", "x", "@", "p", "f", "##", "g"]
        );
    }

    #[test]
    fn smpl_pragma_line() {
        let src = "#pragma omp pi";
        let toks = lex(src, LexMode::Smpl).unwrap();
        assert_eq!(toks[0].kind, TokenKind::Directive);
    }

    #[test]
    fn line_continuation_in_code() {
        assert_eq!(texts("int \\\n x;"), vec!["int", "x", ";"]);
    }

    #[test]
    fn eof_token_terminates() {
        let toks = lex("x", LexMode::C).unwrap();
        assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
    }

    #[test]
    fn spans_are_exact() {
        let src = "ab + cd";
        let toks = lex(src, LexMode::C).unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }
}
