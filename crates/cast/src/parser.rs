//! Recursive-descent parser for the C/C++ subset.
//!
//! The same parser serves two clients:
//!
//! * target code — plain C/C++ translation units;
//! * SMPL rule bodies — when [`ParseOptions::pattern`] is set, the grammar
//!   is extended with SMPL pattern constructs (`...` dots, `\( \| \)`
//!   disjunction, `\&` conjunction branches, `@pos` attachments,
//!   metavariable-aware type and statement recognition through a
//!   [`MetaLookup`]).
//!
//! Declaration/expression disambiguation uses the classic heuristics: a
//! registry of known type names seeded with builtins, extended by
//! `typedef`s encountered, type metavariables, and the `ident ident`
//! / `ident * ident ;` lookahead patterns.

use crate::ast::*;
use crate::lexer::{lex, LexError, LexMode};
use crate::token::{
    is_decl_specifier_sym, is_keyword, is_keyword_sym, Punct, Token, TokenKind, DECL_SPECIFIERS,
};
use cocci_source::{Span, Symbol};
use std::collections::HashSet;

/// Metavariable kinds a [`MetaLookup`] can report. Mirrors the SMPL
/// declaration kinds that affect *parsing* (others, like `constant`,
/// parse as plain identifiers and are resolved at match time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaKind {
    /// `type T;`
    Type,
    /// `identifier f;` / `symbol a;` / `function f;` / `constant k;`
    Ident,
    /// `expression x;`
    Expr,
    /// `expression list el;`
    ExprList,
    /// `statement S;`
    Stmt,
    /// `statement list SL;`
    StmtList,
    /// `parameter list PL;`
    ParamList,
    /// `position p;`
    Pos,
    /// `pragmainfo pi;`
    PragmaInfo,
}

/// Resolves metavariable names while parsing SMPL pattern bodies.
pub trait MetaLookup {
    /// Kind of `name` if it is a declared metavariable.
    fn kind(&self, name: &str) -> Option<MetaKind>;
}

/// A [`MetaLookup`] that knows no metavariables (plain C parsing).
pub struct NoMeta;

impl MetaLookup for NoMeta {
    fn kind(&self, _name: &str) -> Option<MetaKind> {
        None
    }
}

/// Language dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lang {
    /// C (the default).
    C,
    /// C++ (enables `::` paths, references, range-`for`, multi-index).
    Cpp,
}

/// Parser configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Enable SMPL pattern constructs.
    pub pattern: bool,
    /// Dialect.
    pub lang: Lang,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            pattern: false,
            lang: Lang::C,
        }
    }
}

impl ParseOptions {
    /// Options for plain C.
    pub fn c() -> Self {
        Self::default()
    }

    /// Options for C++.
    pub fn cpp() -> Self {
        ParseOptions {
            pattern: false,
            lang: Lang::Cpp,
        }
    }

    /// Options for SMPL pattern bodies (C++ superset grammar).
    pub fn pattern() -> Self {
        ParseOptions {
            pattern: true,
            lang: Lang::Cpp,
        }
    }
}

/// Parse error with location.
#[derive(Debug, Clone)]
pub struct ParseErr {
    /// Byte offset of the problem.
    pub span: Span,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseErr {}

impl From<LexError> for ParseErr {
    fn from(e: LexError) -> Self {
        ParseErr {
            span: Span::empty(e.at),
            message: e.message,
        }
    }
}

/// Parse a full translation unit.
pub fn parse_translation_unit(
    src: &str,
    opts: ParseOptions,
    meta: &dyn MetaLookup,
) -> Result<TranslationUnit, ParseErr> {
    // Pattern snippets (SMPL compilation) are not target files: only
    // whole-file parses count toward the run's lex/parse telemetry.
    let _span = if opts.pattern {
        cocci_trace::SpanGuard::disabled()
    } else {
        cocci_trace::count(cocci_trace::Counter::FilesParsed, 1);
        cocci_trace::span(cocci_trace::Phase::Parse)
    };
    let mut p = Parser::new(src, opts, meta)?;
    p.translation_unit()
}

/// Parse a statement sequence (used for SMPL statement-level patterns).
pub fn parse_statements(
    src: &str,
    opts: ParseOptions,
    meta: &dyn MetaLookup,
) -> Result<Vec<Stmt>, ParseErr> {
    let mut p = Parser::new(src, opts, meta)?;
    let mut stmts = Vec::new();
    while !p.at_eof() {
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

/// Parse a single expression consuming all input (used for SMPL
/// expression-level patterns).
pub fn parse_expression(
    src: &str,
    opts: ParseOptions,
    meta: &dyn MetaLookup,
) -> Result<Expr, ParseErr> {
    let mut p = Parser::new(src, opts, meta)?;
    let e = p.expr()?;
    if !p.at_eof() {
        return Err(p.err_here("trailing input after expression"));
    }
    Ok(e)
}

/// Builtin type names recognized without registration.
const BUILTIN_TYPES: &[&str] = &[
    "void",
    "char",
    "short",
    "int",
    "long",
    "float",
    "double",
    "signed",
    "unsigned",
    "bool",
    "size_t",
    "ssize_t",
    "ptrdiff_t",
    "intptr_t",
    "uintptr_t",
    "int8_t",
    "int16_t",
    "int32_t",
    "int64_t",
    "uint8_t",
    "uint16_t",
    "uint32_t",
    "uint64_t",
    "wchar_t",
    "FILE",
    "va_list",
    "dim3",
    "cudaStream_t",
    "cudaError_t",
    "hipStream_t",
    "hipError_t",
    "__half",
    "rocblas_half",
    "curandState_t",
    "auto",
];

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    pos: usize,
    opts: ParseOptions,
    meta: &'a dyn MetaLookup,
    typedefs: HashSet<String>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, opts: ParseOptions, meta: &'a dyn MetaLookup) -> Result<Self, ParseErr> {
        let mode = if opts.pattern {
            LexMode::Smpl
        } else {
            LexMode::C
        };
        let toks = lex(src, mode)?;
        Ok(Parser {
            src,
            toks,
            pos: 0,
            opts,
            meta,
            typedefs: HashSet::new(),
        })
    }

    // ---- token helpers ----

    fn peek(&self) -> Token {
        self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn peek_at(&self, n: usize) -> Token {
        self.toks[(self.pos + n).min(self.toks.len() - 1)]
    }

    fn text(&self, t: Token) -> &'a str {
        t.text(self.src)
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn bump(&mut self) -> Token {
        let t = self.peek();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, p: Punct) -> bool {
        if self.peek().is(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        let t = self.peek();
        if t.kind == TokenKind::Ident && self.text(t) == kw {
            self.bump();
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        let t = self.peek();
        t.kind == TokenKind::Ident && self.text(t) == kw
    }

    fn expect(&mut self, p: Punct) -> Result<Token, ParseErr> {
        if self.peek().is(p) {
            Ok(self.bump())
        } else {
            Err(self.err_here(format!(
                "expected `{}`, found {}",
                p.text(),
                self.describe_current()
            )))
        }
    }

    fn describe_current(&self) -> String {
        let t = self.peek();
        match t.kind {
            TokenKind::Eof => "end of input".to_string(),
            _ => format!("`{}`", self.text(t)),
        }
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseErr {
        ParseErr {
            span: self.peek().span,
            message: msg.into(),
        }
    }

    fn ident(&mut self) -> Result<Ident, ParseErr> {
        let t = self.peek();
        if t.kind == TokenKind::Ident && !is_keyword_sym(t.ident_sym()) {
            self.bump();
            Ok(Ident {
                name: t.ident_sym(),
                span: t.span,
            })
        } else {
            Err(self.err_here(format!(
                "expected identifier, found {}",
                self.describe_current()
            )))
        }
    }

    /// Parse a possibly `::`-qualified identifier path into one Ident
    /// whose name contains the `::` separators.
    fn ident_path(&mut self) -> Result<Ident, ParseErr> {
        let mut id = self.ident()?;
        if !(self.peek().is(Punct::ColonColon) && self.peek_at(1).kind == TokenKind::Ident) {
            return Ok(id);
        }
        let mut path = id.as_str().to_string();
        while self.peek().is(Punct::ColonColon) && self.peek_at(1).kind == TokenKind::Ident {
            self.bump();
            let seg = self.ident()?;
            path.push_str("::");
            path.push_str(seg.as_str());
            id.span = id.span.merge(seg.span);
        }
        id.name = Symbol::intern(&path);
        Ok(id)
    }

    // ---- type recognition ----

    fn is_type_name(&self, name: &str) -> bool {
        BUILTIN_TYPES.contains(&name)
            || self.typedefs.contains(name)
            || name.ends_with("_t")
            || self.meta.kind(name) == Some(MetaKind::Type)
    }

    fn is_qualifier(name: &str) -> bool {
        matches!(
            name,
            "const" | "volatile" | "restrict" | "__restrict__" | "__restrict"
        )
    }

    /// Does a declaration plausibly start at the current position?
    fn looks_like_decl(&self) -> bool {
        let mut i = 0;
        // Skip specifiers, qualifiers and attributes.
        loop {
            let t = self.peek_at(i);
            if t.kind != TokenKind::Ident {
                return false;
            }
            let s = self.text(t);
            if DECL_SPECIFIERS.contains(&s) || Self::is_qualifier(s) {
                i += 1;
                continue;
            }
            if s == "struct" || s == "union" || s == "enum" {
                return true;
            }
            if self.is_type_name(s) {
                // Multi-word builtins keep consuming below; single check
                // suffices: type name followed by declarator-ish token.
                break;
            }
            // Unknown identifier: `ident ident`, `ident * ident`,
            // `ident & ident` (C++) are declaration-shaped.
            let t1 = self.peek_at(i + 1);
            let t2 = self.peek_at(i + 2);
            if t1.kind == TokenKind::Ident
                && !is_keyword(self.text(t1))
                && self.meta.kind(self.text(t1)) != Some(MetaKind::Stmt)
                && matches!(
                    t2.kind,
                    TokenKind::Punct(
                        Punct::Semi | Punct::Eq | Punct::Comma | Punct::LBracket | Punct::LParen
                    )
                )
            {
                return true;
            }
            if (t1.is(Punct::Star) || (t1.is(Punct::Amp) && self.opts.lang == Lang::Cpp))
                && t2.kind == TokenKind::Ident
                && !is_keyword(self.text(t2))
            {
                let t3 = self.peek_at(i + 3);
                return matches!(
                    t3.kind,
                    TokenKind::Punct(
                        Punct::Semi
                            | Punct::Eq
                            | Punct::Comma
                            | Punct::LBracket
                            | Punct::LParen
                            | Punct::Colon
                    )
                );
            }
            return false;
        }
        // Known type name at position i: check what follows.
        let mut j = i + 1;
        // Skip further type words (unsigned long long) and template args.
        while self.peek_at(j).kind == TokenKind::Ident
            && self.is_type_name(self.text(self.peek_at(j)))
        {
            j += 1;
        }
        if self.peek_at(j).is(Punct::Lt) {
            // Template args make this a type in C++; assume decl.
            return self.opts.lang == Lang::Cpp;
        }
        loop {
            let t = self.peek_at(j);
            match t.kind {
                TokenKind::Punct(Punct::Star) | TokenKind::Punct(Punct::Amp) => j += 1,
                TokenKind::Ident if !is_keyword(self.text(t)) => return true,
                // Abstract: `int;` is silly but `int f(void)` prototypes
                // in casts are handled elsewhere.
                _ => return false,
            }
        }
    }

    /// Parse a type *specifier* (no pointers — those belong to
    /// declarators), e.g. `unsigned long`, `struct particle`,
    /// `std::vector<double>`, `const double`.
    fn type_specifier(&mut self) -> Result<Type, ParseErr> {
        let start = self.peek().span;
        let mut quals: Vec<Symbol> = Vec::new();
        loop {
            let t = self.peek();
            if t.kind == TokenKind::Ident && Self::is_qualifier(self.text(t)) {
                quals.push(t.ident_sym());
                self.bump();
            } else {
                break;
            }
        }
        let t = self.peek();
        if t.kind != TokenKind::Ident {
            return Err(self.err_here("expected type name"));
        }
        let first_sym = t.ident_sym();
        let first = first_sym.as_str();
        let base = if first == "struct" || first == "union" || first == "enum" {
            self.bump();
            let name = if self.peek().kind == TokenKind::Ident {
                Some(self.ident()?.name)
            } else {
                None
            };
            if self.peek().is(Punct::LBrace) {
                let body_start = self.peek().span.start;
                self.skip_balanced(Punct::LBrace, Punct::RBrace)?;
                let body_end = self.toks[self.pos - 1].span.end;
                let raw_body = self.src[body_start as usize..body_end as usize].to_string();
                let span = start.merge(Span::new(body_start, body_end));
                Type {
                    kind: TypeKind::Record {
                        keyword: first_sym,
                        name,
                        raw_body,
                    },
                    span,
                }
            } else {
                let name = name.ok_or_else(|| self.err_here("expected struct/union/enum tag"))?;
                let end = self.toks[self.pos - 1].span;
                Type::named(format!("{first} {name}"), start.merge(end))
            }
        } else if self.meta.kind(first) == Some(MetaKind::Type) {
            self.bump();
            Type {
                kind: TypeKind::Meta { name: first_sym },
                span: t.span,
            }
        } else {
            // Multi-word builtin or single named type (possibly :: path).
            let mut words: Vec<&str> = Vec::new();
            let mut end = t.span;
            if BUILTIN_TYPES.contains(&first) {
                while self.peek().kind == TokenKind::Ident
                    && BUILTIN_TYPES.contains(&self.text(self.peek()))
                {
                    let w = self.bump();
                    words.push(w.ident_sym().as_str());
                    end = w.span;
                }
            } else {
                let id = self.ident_path()?;
                end = id.span;
                words.push(id.as_str());
            }
            let mut name = words.join(" ");
            // Template arguments: capture raw balanced <...> in C++.
            let template_args = if self.opts.lang == Lang::Cpp
                && self.peek().is(Punct::Lt)
                && self.template_args_ahead()
            {
                let s = self.peek().span.start;
                self.skip_template_args()?;
                let e = self.toks[self.pos - 1].span.end;
                end = Span::new(s, e);
                Some(self.src[s as usize..e as usize].to_string())
            } else {
                None
            };
            if name == "auto" {
                name = "auto".to_string();
            }
            Type {
                kind: TypeKind::Named {
                    name: Symbol::intern(&name),
                    template_args,
                },
                span: start.merge(end),
            }
        };
        // Trailing qualifiers: `double const`.
        let mut ty = base;
        loop {
            let t = self.peek();
            if t.kind == TokenKind::Ident && Self::is_qualifier(self.text(t)) {
                quals.push(t.ident_sym());
                self.bump();
            } else {
                break;
            }
        }
        if !quals.is_empty() {
            // Sort by name, not by symbol id: qualifier order is
            // user-visible through the renderer.
            quals.sort_by_key(|q| q.as_str());
            quals.dedup();
            let span = ty.span.merge(start);
            ty = Type {
                kind: TypeKind::Qualified {
                    quals,
                    inner: Box::new(ty),
                },
                span,
            };
        }
        Ok(ty)
    }

    /// Heuristic: `<` begins template arguments (rather than comparison)
    /// if a matching `>` appears before any `;`/`{`/`)` at depth 0 and the
    /// contents look type-ish. Conservative by design.
    fn template_args_ahead(&self) -> bool {
        let mut depth = 0usize;
        let mut i = 0usize;
        loop {
            let t = self.peek_at(i);
            match t.kind {
                TokenKind::Punct(Punct::Lt) => depth += 1,
                TokenKind::Punct(Punct::Gt) => {
                    depth -= 1;
                    if depth == 0 {
                        return true;
                    }
                }
                TokenKind::Punct(Punct::Shr) => {
                    if depth >= 2 {
                        depth -= 2;
                        if depth == 0 {
                            return true;
                        }
                    } else {
                        return false;
                    }
                }
                TokenKind::Punct(Punct::Semi | Punct::LBrace | Punct::RParen) | TokenKind::Eof => {
                    return false
                }
                TokenKind::Punct(
                    Punct::PlusPlus | Punct::MinusMinus | Punct::AmpAmp | Punct::PipePipe,
                ) => return false,
                _ => {}
            }
            i += 1;
            if i > 64 {
                return false;
            }
        }
    }

    fn skip_template_args(&mut self) -> Result<(), ParseErr> {
        let mut depth = 0usize;
        loop {
            let t = self.peek();
            match t.kind {
                TokenKind::Punct(Punct::Lt) => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Punct(Punct::Gt) => {
                    depth -= 1;
                    self.bump();
                    if depth == 0 {
                        return Ok(());
                    }
                }
                TokenKind::Punct(Punct::Shr) if depth >= 2 => {
                    depth -= 2;
                    self.bump();
                    if depth == 0 {
                        return Ok(());
                    }
                }
                TokenKind::Eof => return Err(self.err_here("unterminated template arguments")),
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn skip_balanced(&mut self, open: Punct, close: Punct) -> Result<(), ParseErr> {
        let mut depth = 0usize;
        loop {
            let t = self.peek();
            if t.is(open) {
                depth += 1;
                self.bump();
            } else if t.is(close) {
                depth -= 1;
                self.bump();
                if depth == 0 {
                    return Ok(());
                }
            } else if t.kind == TokenKind::Eof {
                return Err(self.err_here(format!("unbalanced `{}`", open.text())));
            } else {
                self.bump();
            }
        }
    }

    // ---- items ----

    fn translation_unit(&mut self) -> Result<TranslationUnit, ParseErr> {
        let start = self.peek().span;
        let mut items = Vec::new();
        while !self.at_eof() {
            items.push(self.item()?);
        }
        let end = self.peek().span;
        Ok(TranslationUnit {
            items,
            span: start.merge(end),
        })
    }

    fn item(&mut self) -> Result<Item, ParseErr> {
        let t = self.peek();
        if t.kind == TokenKind::Directive {
            let d = self.directive();
            return Ok(Item::Directive(d));
        }
        if self.peek_kw("namespace") {
            let start = self.bump().span;
            let name = if self.peek().kind == TokenKind::Ident {
                Some(self.ident()?)
            } else {
                None
            };
            self.expect(Punct::LBrace)?;
            let mut items = Vec::new();
            while !self.peek().is(Punct::RBrace) {
                if self.at_eof() {
                    return Err(self.err_here("unterminated namespace"));
                }
                items.push(self.item()?);
            }
            let end = self.expect(Punct::RBrace)?.span;
            return Ok(Item::Namespace {
                name,
                items,
                span: start.merge(end),
            });
        }
        if self.peek_kw("extern") && self.peek_at(1).kind == TokenKind::StrLit {
            let start = self.bump().span;
            self.bump(); // "C"
            if self.peek().is(Punct::LBrace) {
                self.bump();
                let mut items = Vec::new();
                while !self.peek().is(Punct::RBrace) {
                    if self.at_eof() {
                        return Err(self.err_here("unterminated extern block"));
                    }
                    items.push(self.item()?);
                }
                let end = self.expect(Punct::RBrace)?.span;
                return Ok(Item::ExternBlock {
                    items,
                    span: start.merge(end),
                });
            }
            // `extern "C" decl;` — fall through to declaration with the
            // extern already consumed; treat as plain decl.
        }
        self.function_or_decl()
    }

    fn directive(&mut self) -> Directive {
        let t = self.bump();
        let raw = self.text(t).to_string();
        let body = raw.trim_start_matches('#').trim_start();
        let (kind, payload) = if let Some(rest) = body.strip_prefix("include") {
            (DirectiveKind::Include, rest.trim().to_string())
        } else if let Some(rest) = body.strip_prefix("pragma") {
            (DirectiveKind::Pragma, rest.trim().to_string())
        } else if let Some(rest) = body.strip_prefix("define") {
            (DirectiveKind::Define, rest.trim().to_string())
        } else {
            (DirectiveKind::Other, body.to_string())
        };
        Directive {
            kind,
            raw,
            payload,
            span: t.span,
        }
    }

    /// Parse `__attribute__((...))` groups.
    fn attributes(&mut self) -> Result<Vec<Attribute>, ParseErr> {
        let mut attrs = Vec::new();
        while self.peek_kw("__attribute__") {
            let start = self.bump().span;
            self.expect(Punct::LParen)?;
            self.expect(Punct::LParen)?;
            let mut items = Vec::new();
            while !self.peek().is(Punct::RParen) {
                let name = self.ident()?;
                let mut ispan = name.span;
                let args = if self.peek().is(Punct::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    while !self.peek().is(Punct::RParen) {
                        args.push(self.assign_expr()?);
                        if !self.eat(Punct::Comma) {
                            break;
                        }
                    }
                    let e = self.expect(Punct::RParen)?;
                    ispan = ispan.merge(e.span);
                    Some(args)
                } else {
                    None
                };
                items.push(AttrItem {
                    name,
                    args,
                    span: ispan,
                });
                if !self.eat(Punct::Comma) {
                    break;
                }
            }
            self.expect(Punct::RParen)?;
            let end = self.expect(Punct::RParen)?.span;
            attrs.push(Attribute {
                items,
                span: start.merge(end),
            });
        }
        Ok(attrs)
    }

    fn specifiers(&mut self) -> Vec<Ident> {
        let mut specs = Vec::new();
        loop {
            let t = self.peek();
            if t.kind == TokenKind::Ident && is_decl_specifier_sym(t.ident_sym()) {
                specs.push(Ident {
                    name: t.ident_sym(),
                    span: t.span,
                });
                self.bump();
            } else {
                break;
            }
        }
        specs
    }

    fn function_or_decl(&mut self) -> Result<Item, ParseErr> {
        let start = self.peek().span;
        let attrs = self.attributes()?;
        let mut specifiers = self.specifiers();
        // Specifiers may also appear after attributes in either order.
        let attrs = if attrs.is_empty() {
            let a = self.attributes()?;
            specifiers.extend(self.specifiers());
            a
        } else {
            attrs
        };
        let ty = self.type_specifier()?;

        // Struct/union/enum definition without declarators: `struct S {...};`
        if matches!(ty.kind, TypeKind::Record { .. }) && self.peek().is(Punct::Semi) {
            let end = self.bump().span;
            let is_typedef = specifiers.iter().any(|s| s.name == "typedef");
            let decl = Declaration {
                attrs,
                specifiers,
                ty,
                declarators: Vec::new(),
                span: start.merge(end),
            };
            let _ = is_typedef;
            return Ok(Item::Decl(decl));
        }

        // First declarator: pointers, name.
        let mut ptr = 0u8;
        let mut reference = false;
        while self.peek().is(Punct::Star) || self.peek().is(Punct::Amp) {
            if self.bump().is(Punct::Star) {
                ptr += 1;
            } else {
                reference = true;
            }
        }
        let name = self.ident_path()?;

        if self.peek().is(Punct::LParen) && !self.is_function_ptr_decl() {
            // Function definition or prototype.
            let params_start = self.bump().span;
            let (params, varargs) = self.params()?;
            let rp = self.expect(Punct::RParen)?;
            let _ = params_start;
            let sig_span = ty.span.merge(rp.span);
            // Trailing attributes / specifiers after the param list.
            let mut post_attrs = self.attributes()?;
            while self.peek_kw("override") || self.peek_kw("final") || self.peek_kw("const") {
                self.bump();
            }
            if self.peek().is(Punct::LBrace) {
                let body = self.block()?;
                let span = start.merge(body.span);
                let mut all_attrs = attrs;
                all_attrs.append(&mut post_attrs);
                let mut ret = ty;
                for _ in 0..ptr {
                    let sp = ret.span;
                    ret = Type {
                        kind: TypeKind::Ptr(Box::new(ret)),
                        span: sp,
                    };
                }
                return Ok(Item::Function(FunctionDef {
                    attrs: all_attrs,
                    specifiers,
                    ret,
                    name,
                    params,
                    varargs,
                    body,
                    span,
                    sig_span,
                }));
            }
            // Prototype: `T f(params);`
            let end = self.expect(Punct::Semi)?.span;
            let decl = Declaration {
                attrs,
                specifiers,
                ty,
                declarators: vec![Declarator {
                    name,
                    ptr,
                    reference,
                    array: Vec::new(),
                    init: None,
                    fn_params: Some(params),
                    span: sig_span,
                }],
                span: start.merge(end),
            };
            return Ok(Item::Decl(decl));
        }

        // Variable declaration(s).
        let first = self.declarator_tail(name, ptr, reference)?;
        let mut declarators = vec![first];
        while self.eat(Punct::Comma) {
            let mut ptr = 0u8;
            let mut reference = false;
            while self.peek().is(Punct::Star) || self.peek().is(Punct::Amp) {
                if self.bump().is(Punct::Star) {
                    ptr += 1;
                } else {
                    reference = true;
                }
            }
            let name = self.ident_path()?;
            declarators.push(self.declarator_tail(name, ptr, reference)?);
        }
        let end = self.expect(Punct::Semi)?.span;
        if specifiers.iter().any(|s| s.name == "typedef") {
            for d in &declarators {
                self.typedefs.insert(d.name.as_str().to_string());
            }
        }
        Ok(Item::Decl(Declaration {
            attrs,
            specifiers,
            ty,
            declarators,
            span: start.merge(end),
        }))
    }

    /// Lookahead to rule out `T (*f)(...)` function-pointer declarators
    /// (we only need to not mis-parse them; they are rare in patterns).
    fn is_function_ptr_decl(&self) -> bool {
        self.peek().is(Punct::LParen) && self.peek_at(1).is(Punct::Star)
    }

    fn declarator_tail(
        &mut self,
        name: Ident,
        ptr: u8,
        reference: bool,
    ) -> Result<Declarator, ParseErr> {
        let mut span = name.span;
        let mut array = Vec::new();
        while self.peek().is(Punct::LBracket) {
            self.bump();
            if self.peek().is(Punct::RBracket) {
                array.push(None);
            } else {
                array.push(Some(self.assign_expr()?));
            }
            let e = self.expect(Punct::RBracket)?;
            span = span.merge(e.span);
        }
        let init = if self.eat(Punct::Eq) {
            let e = if self.peek().is(Punct::LBrace) {
                self.init_list()?
            } else {
                self.assign_expr()?
            };
            span = span.merge(e.span());
            Some(e)
        } else {
            None
        };
        Ok(Declarator {
            name,
            ptr,
            reference,
            array,
            init,
            fn_params: None,
            span,
        })
    }

    fn init_list(&mut self) -> Result<Expr, ParseErr> {
        let start = self.expect(Punct::LBrace)?.span;
        let mut elems = Vec::new();
        while !self.peek().is(Punct::RBrace) {
            if self.peek().is(Punct::LBrace) {
                elems.push(self.init_list()?);
            } else {
                elems.push(self.assign_expr()?);
            }
            if !self.eat(Punct::Comma) {
                break;
            }
        }
        let end = self.expect(Punct::RBrace)?.span;
        Ok(Expr::InitList {
            elems,
            span: start.merge(end),
        })
    }

    fn params(&mut self) -> Result<(Vec<Param>, bool), ParseErr> {
        let mut params = Vec::new();
        let mut varargs = false;
        if self.peek().is(Punct::RParen) {
            return Ok((params, varargs));
        }
        // `(void)` empty list.
        if self.peek_kw("void") && self.peek_at(1).is(Punct::RParen) {
            self.bump();
            return Ok((params, varargs));
        }
        loop {
            if self.peek().is(Punct::Ellipsis) {
                self.bump();
                varargs = true;
                break;
            }
            let t = self.peek();
            // Pattern: `parameter list` metavariable occurrence.
            if self.opts.pattern
                && t.kind == TokenKind::Ident
                && self.meta.kind(self.text(t)) == Some(MetaKind::ParamList)
            {
                self.bump();
                params.push(Param {
                    ty: Type::named("<paramlist>", t.span),
                    name: Some(Ident {
                        name: t.ident_sym(),
                        span: t.span,
                    }),
                    meta_list: true,
                    span: t.span,
                });
                if !self.eat(Punct::Comma) {
                    break;
                }
                continue;
            }
            let ty = self.full_type()?;
            let (name, span) =
                if self.peek().kind == TokenKind::Ident && !is_keyword(self.text(self.peek())) {
                    let id = self.ident()?;
                    let mut sp = ty.span.merge(id.span);
                    // Array suffix on parameter.
                    while self.peek().is(Punct::LBracket) {
                        self.bump();
                        if !self.peek().is(Punct::RBracket) {
                            self.assign_expr()?;
                        }
                        sp = sp.merge(self.expect(Punct::RBracket)?.span);
                    }
                    (Some(id), sp)
                } else {
                    (None, ty.span)
                };
            params.push(Param {
                ty,
                name,
                meta_list: false,
                span,
            });
            if !self.eat(Punct::Comma) {
                break;
            }
        }
        Ok((params, varargs))
    }

    /// A full type including pointer/reference suffixes (for params and
    /// casts).
    fn full_type(&mut self) -> Result<Type, ParseErr> {
        let mut ty = self.type_specifier()?;
        loop {
            if self.peek().is(Punct::Star) {
                let s = self.bump().span;
                let sp = ty.span.merge(s);
                ty = Type {
                    kind: TypeKind::Ptr(Box::new(ty)),
                    span: sp,
                };
                // `* const`
                while self.peek().kind == TokenKind::Ident
                    && Self::is_qualifier(self.text(self.peek()))
                {
                    self.bump();
                }
            } else if self.peek().is(Punct::Amp) && self.opts.lang == Lang::Cpp {
                let s = self.bump().span;
                let sp = ty.span.merge(s);
                ty = Type {
                    kind: TypeKind::Ref(Box::new(ty)),
                    span: sp,
                };
            } else {
                break;
            }
        }
        Ok(ty)
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Block, ParseErr> {
        let start = self.expect(Punct::LBrace)?.span;
        let mut stmts = Vec::new();
        while !self.peek().is(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.err_here("unterminated block"));
            }
            stmts.push(self.statement()?);
        }
        let end = self.expect(Punct::RBrace)?.span;
        Ok(Block {
            stmts,
            span: start.merge(end),
        })
    }

    /// Parse one statement.
    pub(crate) fn statement(&mut self) -> Result<Stmt, ParseErr> {
        let t = self.peek();
        match t.kind {
            TokenKind::Directive => Ok(Stmt::Directive(self.directive())),
            TokenKind::Punct(Punct::LBrace) => Ok(Stmt::Block(self.block()?)),
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt::Empty { span: t.span })
            }
            TokenKind::Punct(Punct::Ellipsis) if self.opts.pattern => {
                self.bump();
                // Optional `when` constraints on the dots:
                //   when != expr    (skipped code must not contain expr)
                //   when any        (explicitly unconstrained)
                //   when exists     (some path suffices — EF)
                //   when strict     (all paths, spelled out — AF)
                let mut when_not = Vec::new();
                let mut quant = DotsQuant::Default;
                while self.peek_kw("when") {
                    self.bump();
                    if self.eat_kw("any") {
                        continue;
                    }
                    if self.eat_kw("exists") {
                        if quant == DotsQuant::Strict {
                            return Err(self.err_here("`when exists` conflicts with `when strict`"));
                        }
                        quant = DotsQuant::Exists;
                        continue;
                    }
                    if self.eat_kw("strict") {
                        if quant == DotsQuant::Exists {
                            return Err(self.err_here("`when strict` conflicts with `when exists`"));
                        }
                        quant = DotsQuant::Strict;
                        continue;
                    }
                    if self.eat(Punct::BangEq) {
                        when_not.push(self.assign_expr()?);
                    } else {
                        return Err(self.err_here(
                            "expected `!= expr`, `any`, `exists` or `strict` after `when`",
                        ));
                    }
                }
                Ok(Stmt::Dots {
                    span: t.span,
                    when_not,
                    quant,
                })
            }
            TokenKind::Punct(Punct::DisjOpen) if self.opts.pattern => self.pat_group(),
            TokenKind::Ident => {
                let kw = self.text(t);
                match kw {
                    "if" => self.if_stmt(),
                    "while" => self.while_stmt(),
                    "do" => self.do_stmt(),
                    "for" => self.for_stmt(),
                    "return" => {
                        let start = self.bump().span;
                        let value = if self.peek().is(Punct::Semi) {
                            None
                        } else {
                            Some(self.expr()?)
                        };
                        let end = self.stmt_semi(start)?;
                        Ok(Stmt::Return {
                            value,
                            span: start.merge(end),
                        })
                    }
                    "break" => {
                        let start = self.bump().span;
                        let end = self.stmt_semi(start)?;
                        Ok(Stmt::Break {
                            span: start.merge(end),
                        })
                    }
                    "continue" => {
                        let start = self.bump().span;
                        let end = self.stmt_semi(start)?;
                        Ok(Stmt::Continue {
                            span: start.merge(end),
                        })
                    }
                    "goto" => {
                        let start = self.bump().span;
                        let label = self.ident()?;
                        let end = self.stmt_semi(start)?;
                        Ok(Stmt::Goto {
                            label,
                            span: start.merge(end),
                        })
                    }
                    "switch" => {
                        let start = self.bump().span;
                        self.expect(Punct::LParen)?;
                        let scrutinee = self.expr()?;
                        self.expect(Punct::RParen)?;
                        let body = Box::new(self.statement()?);
                        let span = start.merge(body.span());
                        Ok(Stmt::Switch {
                            scrutinee,
                            body,
                            span,
                        })
                    }
                    "case" => {
                        let start = self.bump().span;
                        let value = self.expr()?;
                        self.expect(Punct::Colon)?;
                        let stmt = Box::new(self.statement()?);
                        let span = start.merge(stmt.span());
                        Ok(Stmt::Case {
                            value: Some(value),
                            stmt,
                            span,
                        })
                    }
                    "default" => {
                        let start = self.bump().span;
                        self.expect(Punct::Colon)?;
                        let stmt = Box::new(self.statement()?);
                        let span = start.merge(stmt.span());
                        Ok(Stmt::Case {
                            value: None,
                            stmt,
                            span,
                        })
                    }
                    _ => {
                        // Pattern: statement / statement-list metavars.
                        if self.opts.pattern {
                            match self.meta.kind(kw) {
                                Some(MetaKind::Stmt) => {
                                    let name = Symbol::intern(kw);
                                    self.bump();
                                    let mut span = t.span;
                                    let pos = if self.eat(Punct::At) {
                                        let p = self.ident()?;
                                        span = span.merge(p.span);
                                        Some(p.name)
                                    } else {
                                        None
                                    };
                                    // Optional semicolon after a stmt metavar.
                                    if self.peek().is(Punct::Semi) {
                                        span = span.merge(self.bump().span);
                                    }
                                    return Ok(Stmt::MetaStmt { name, pos, span });
                                }
                                Some(MetaKind::StmtList) => {
                                    let name = Symbol::intern(kw);
                                    self.bump();
                                    return Ok(Stmt::MetaStmtList { name, span: t.span });
                                }
                                _ => {}
                            }
                        }
                        // Label?
                        if self.peek_at(1).is(Punct::Colon)
                            && !self.peek_at(2).is(Punct::Colon)
                            && !is_keyword(kw)
                        {
                            let label = self.ident()?;
                            self.bump(); // :
                            let stmt = Box::new(self.statement()?);
                            let span = label.span.merge(stmt.span());
                            return Ok(Stmt::Label { label, stmt, span });
                        }
                        if self.looks_like_decl() {
                            let start = self.peek().span;
                            match self.function_or_decl()? {
                                Item::Decl(d) => Ok(Stmt::Decl(d)),
                                Item::Function(_) => Err(ParseErr {
                                    span: start,
                                    message: "function definition in statement position".into(),
                                }),
                                _ => unreachable!(),
                            }
                        } else {
                            self.expr_stmt()
                        }
                    }
                }
            }
            _ => self.expr_stmt(),
        }
    }

    /// Expect `;` after a statement; in pattern mode a missing semicolon
    /// is tolerated when the next token closes a pattern group/block.
    fn stmt_semi(&mut self, _start: Span) -> Result<Span, ParseErr> {
        if self.peek().is(Punct::Semi) {
            return Ok(self.bump().span);
        }
        if self.opts.pattern && self.semi_optional_here() {
            return Ok(self.toks[self.pos.saturating_sub(1)].span);
        }
        Err(self.err_here(format!("expected `;`, found {}", self.describe_current())))
    }

    fn semi_optional_here(&self) -> bool {
        matches!(
            self.peek().kind,
            TokenKind::Punct(Punct::DisjPipe | Punct::ConjAmp | Punct::DisjClose | Punct::RBrace)
                | TokenKind::Eof
        )
    }

    fn expr_stmt(&mut self) -> Result<Stmt, ParseErr> {
        let expr = self.expr()?;
        let start = expr.span();
        let end = self.stmt_semi(start)?;
        Ok(Stmt::Expr {
            span: start.merge(end),
            expr,
        })
    }

    /// Pattern group `\( branch (\| branch)* \)` or `\( b \& b \)`.
    fn pat_group(&mut self) -> Result<Stmt, ParseErr> {
        let start = self.expect(Punct::DisjOpen)?.span;
        let mut branches = Vec::new();
        let mut conj = false;
        loop {
            let mut seq = Vec::new();
            while !matches!(
                self.peek().kind,
                TokenKind::Punct(Punct::DisjPipe | Punct::ConjAmp | Punct::DisjClose)
            ) {
                if self.at_eof() {
                    return Err(self.err_here("unterminated pattern group"));
                }
                seq.push(self.statement()?);
            }
            branches.push(seq);
            match self.peek().kind {
                TokenKind::Punct(Punct::DisjPipe) => {
                    self.bump();
                }
                TokenKind::Punct(Punct::ConjAmp) => {
                    conj = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let end = self.expect(Punct::DisjClose)?.span;
        Ok(Stmt::PatGroup {
            conj,
            branches,
            span: start.merge(end),
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseErr> {
        let start = self.bump().span;
        self.expect(Punct::LParen)?;
        let cond = self.expr()?;
        self.expect(Punct::RParen)?;
        let then_branch = Box::new(self.statement()?);
        let (else_branch, span) = if self.peek_kw("else") {
            self.bump();
            let e = Box::new(self.statement()?);
            let sp = start.merge(e.span());
            (Some(e), sp)
        } else {
            let sp = start.merge(then_branch.span());
            (None, sp)
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
            span,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseErr> {
        let start = self.bump().span;
        self.expect(Punct::LParen)?;
        let cond = self.expr()?;
        self.expect(Punct::RParen)?;
        let body = Box::new(self.statement()?);
        let span = start.merge(body.span());
        Ok(Stmt::While { cond, body, span })
    }

    fn do_stmt(&mut self) -> Result<Stmt, ParseErr> {
        let start = self.bump().span;
        let body = Box::new(self.statement()?);
        if !self.eat_kw("while") {
            return Err(self.err_here("expected `while` after do-body"));
        }
        self.expect(Punct::LParen)?;
        let cond = self.expr()?;
        self.expect(Punct::RParen)?;
        let end = self.stmt_semi(start)?;
        Ok(Stmt::DoWhile {
            body,
            cond,
            span: start.merge(end),
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseErr> {
        let start = self.bump().span;
        let hstart = self.expect(Punct::LParen)?.span;

        // Range-for detection: `for (T x : range)` / `for (T &x : range)`.
        if self.opts.lang == Lang::Cpp {
            if let Some((ty, by_ref, var, after)) = self.try_range_for_head()? {
                self.pos = after;
                let range = self.expr()?;
                let hend = self.expect(Punct::RParen)?.span;
                let body = Box::new(self.statement()?);
                let span = start.merge(body.span());
                let _ = hstart.merge(hend);
                return Ok(Stmt::RangeFor {
                    ty,
                    by_ref,
                    var,
                    range,
                    body,
                    span,
                });
            }
        }

        // Classic for.
        let init = if self.peek().is(Punct::Semi) {
            self.bump();
            None
        } else if self.opts.pattern
            && self.peek().is(Punct::Ellipsis)
            && self.peek_at(1).is(Punct::Semi)
        {
            let d = self.bump().span;
            self.bump();
            Some(Box::new(ForInit::Dots { span: d }))
        } else if self.looks_like_decl() {
            let dstart = self.peek().span;
            let ty = self.type_specifier()?;
            let mut ptr = 0u8;
            let mut reference = false;
            while self.peek().is(Punct::Star) || self.peek().is(Punct::Amp) {
                if self.bump().is(Punct::Star) {
                    ptr += 1;
                } else {
                    reference = true;
                }
            }
            let name = self.ident()?;
            let first = self.declarator_tail(name, ptr, reference)?;
            let mut declarators = vec![first];
            while self.eat(Punct::Comma) {
                let name = self.ident()?;
                declarators.push(self.declarator_tail(name, 0, false)?);
            }
            let dend = self.expect(Punct::Semi)?.span;
            Some(Box::new(ForInit::Decl(Declaration {
                attrs: Vec::new(),
                specifiers: Vec::new(),
                ty,
                declarators,
                span: dstart.merge(dend),
            })))
        } else {
            let e = self.expr()?;
            self.expect(Punct::Semi)?;
            Some(Box::new(ForInit::Expr(e)))
        };

        let cond = if self.peek().is(Punct::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(Punct::Semi)?;
        let step = if self.peek().is(Punct::RParen) {
            None
        } else {
            Some(self.expr()?)
        };
        let hend = self.expect(Punct::RParen)?.span;
        let header_span = start.merge(hend);
        let body = Box::new(self.statement()?);
        let span = start.merge(body.span());
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            span,
            header_span,
        })
    }

    /// Lookahead for a range-for head `T [&|*] name :`. Returns the parsed
    /// pieces and the position just after the `:`.
    fn try_range_for_head(&mut self) -> Result<Option<(Type, bool, Ident, usize)>, ParseErr> {
        let save = self.pos;
        let result = (|| -> Result<Option<(Type, bool, Ident, usize)>, ParseErr> {
            if !self.looks_like_decl() && self.peek().kind != TokenKind::Ident {
                return Ok(None);
            }
            let ty = match self.type_specifier() {
                Ok(t) => t,
                Err(_) => return Ok(None),
            };
            let mut by_ref = false;
            while self.peek().is(Punct::Amp) || self.peek().is(Punct::Star) {
                by_ref = true;
                self.bump();
            }
            let var = match self.ident() {
                Ok(v) => v,
                Err(_) => return Ok(None),
            };
            if self.peek().is(Punct::Colon) && !self.peek_at(1).is(Punct::Colon) {
                self.bump();
                Ok(Some((ty, by_ref, var, self.pos)))
            } else {
                Ok(None)
            }
        })();
        self.pos = save;
        result
    }

    // ---- expressions ----

    /// Full expression including comma operator.
    pub(crate) fn expr(&mut self) -> Result<Expr, ParseErr> {
        let mut e = self.assign_expr()?;
        while self.peek().is(Punct::Comma) {
            self.bump();
            let rhs = self.assign_expr()?;
            let span = e.span().merge(rhs.span());
            e = Expr::Binary {
                op: BinOp::Comma,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(e)
    }

    /// Assignment expression (no top-level comma).
    fn assign_expr(&mut self) -> Result<Expr, ParseErr> {
        let lhs = self.ternary()?;
        let op = match self.peek().kind {
            TokenKind::Punct(Punct::Eq) => Some(AssignOp::Assign),
            TokenKind::Punct(Punct::PlusEq) => Some(AssignOp::AddAssign),
            TokenKind::Punct(Punct::MinusEq) => Some(AssignOp::SubAssign),
            TokenKind::Punct(Punct::StarEq) => Some(AssignOp::MulAssign),
            TokenKind::Punct(Punct::SlashEq) => Some(AssignOp::DivAssign),
            TokenKind::Punct(Punct::PercentEq) => Some(AssignOp::RemAssign),
            TokenKind::Punct(Punct::ShlEq) => Some(AssignOp::ShlAssign),
            TokenKind::Punct(Punct::ShrEq) => Some(AssignOp::ShrAssign),
            TokenKind::Punct(Punct::AmpEq) => Some(AssignOp::AndAssign),
            TokenKind::Punct(Punct::CaretEq) => Some(AssignOp::XorAssign),
            TokenKind::Punct(Punct::PipeEq) => Some(AssignOp::OrAssign),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assign_expr()?;
            let span = lhs.span().merge(rhs.span());
            Ok(Expr::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            })
        } else {
            Ok(lhs)
        }
    }

    fn ternary(&mut self) -> Result<Expr, ParseErr> {
        let cond = self.binary(0)?;
        if self.peek().is(Punct::Question) {
            self.bump();
            let then_val = self.expr()?;
            self.expect(Punct::Colon)?;
            let else_val = self.assign_expr()?;
            let span = cond.span().merge(else_val.span());
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_val: Box::new(then_val),
                else_val: Box::new(else_val),
                span,
            })
        } else {
            Ok(cond)
        }
    }

    fn bin_op_here(&self) -> Option<(BinOp, u8)> {
        let op = match self.peek().kind {
            TokenKind::Punct(Punct::PipePipe) => (BinOp::Or, 1),
            TokenKind::Punct(Punct::AmpAmp) => (BinOp::And, 2),
            TokenKind::Punct(Punct::Pipe) => (BinOp::BitOr, 3),
            TokenKind::Punct(Punct::Caret) => (BinOp::BitXor, 4),
            TokenKind::Punct(Punct::Amp) => (BinOp::BitAnd, 5),
            TokenKind::Punct(Punct::EqEq) => (BinOp::EqEq, 6),
            TokenKind::Punct(Punct::BangEq) => (BinOp::Ne, 6),
            TokenKind::Punct(Punct::Lt) => (BinOp::Lt, 7),
            TokenKind::Punct(Punct::Gt) => (BinOp::Gt, 7),
            TokenKind::Punct(Punct::LtEq) => (BinOp::Le, 7),
            TokenKind::Punct(Punct::GtEq) => (BinOp::Ge, 7),
            TokenKind::Punct(Punct::Shl) => (BinOp::Shl, 8),
            TokenKind::Punct(Punct::Shr) => (BinOp::Shr, 8),
            TokenKind::Punct(Punct::Plus) => (BinOp::Add, 9),
            TokenKind::Punct(Punct::Minus) => (BinOp::Sub, 9),
            TokenKind::Punct(Punct::Star) => (BinOp::Mul, 10),
            TokenKind::Punct(Punct::Slash) => (BinOp::Div, 10),
            TokenKind::Punct(Punct::Percent) => (BinOp::Rem, 10),
            _ => return None,
        };
        Some(op)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseErr> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.bin_op_here() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseErr> {
        let t = self.peek();
        let op = match t.kind {
            TokenKind::Punct(Punct::Minus) => Some(UnOp::Neg),
            TokenKind::Punct(Punct::Plus) => Some(UnOp::Pos),
            TokenKind::Punct(Punct::Bang) => Some(UnOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnOp::BitNot),
            TokenKind::Punct(Punct::Star) => Some(UnOp::Deref),
            TokenKind::Punct(Punct::Amp) => Some(UnOp::AddrOf),
            TokenKind::Punct(Punct::PlusPlus) => Some(UnOp::PreInc),
            TokenKind::Punct(Punct::MinusMinus) => Some(UnOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.unary()?;
            let span = t.span.merge(expr.span());
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
                span,
            });
        }
        if t.kind == TokenKind::Ident && self.text(t) == "sizeof" {
            let start = self.bump().span;
            if self.peek().is(Punct::LParen) {
                let s = self.peek().span.start;
                self.skip_balanced(Punct::LParen, Punct::RParen)?;
                let e = self.toks[self.pos - 1].span.end;
                let arg = Symbol::intern(self.src[s as usize + 1..e as usize - 1].trim());
                return Ok(Expr::Sizeof {
                    arg,
                    span: start.merge(Span::new(s, e)),
                });
            }
            let e = self.unary()?;
            let span = start.merge(e.span());
            let arg = if e.span().is_synthetic() {
                Symbol::intern("")
            } else {
                Symbol::intern(&self.src[e.span().start as usize..e.span().end as usize])
            };
            return Ok(Expr::Sizeof { arg, span });
        }
        // C-style cast: `(T)expr`.
        if t.is(Punct::LParen) {
            if let Some((ty, after)) = self.try_cast_head()? {
                self.pos = after;
                let expr = self.unary()?;
                let span = t.span.merge(expr.span());
                return Ok(Expr::Cast {
                    ty,
                    expr: Box::new(expr),
                    span,
                });
            }
        }
        self.postfix()
    }

    /// Lookahead for `(T)` cast heads.
    fn try_cast_head(&mut self) -> Result<Option<(Type, usize)>, ParseErr> {
        let save = self.pos;
        let result = (|| {
            self.bump(); // (
            let t = self.peek();
            if t.kind != TokenKind::Ident {
                return Ok(None);
            }
            let name = self.text(t);
            let starts_type = self.is_type_name(name)
                || name == "struct"
                || name == "union"
                || name == "enum"
                || Self::is_qualifier(name);
            if !starts_type {
                return Ok(None);
            }
            let ty = match self.full_type() {
                Ok(ty) => ty,
                Err(_) => return Ok(None),
            };
            if !self.peek().is(Punct::RParen) {
                return Ok(None);
            }
            self.bump();
            // Must be followed by something that can start a unary expr.
            let next = self.peek();
            let ok = match next.kind {
                TokenKind::Ident => !is_keyword(self.text(next)) || self.text(next) == "sizeof",
                TokenKind::IntLit
                | TokenKind::FloatLit
                | TokenKind::StrLit
                | TokenKind::CharLit => true,
                TokenKind::Punct(
                    Punct::LParen
                    | Punct::Minus
                    | Punct::Plus
                    | Punct::Star
                    | Punct::Amp
                    | Punct::Bang
                    | Punct::Tilde,
                ) => true,
                _ => false,
            };
            if ok {
                Ok(Some((ty, self.pos)))
            } else {
                Ok(None)
            }
        })();
        self.pos = save;
        result
    }

    fn postfix(&mut self) -> Result<Expr, ParseErr> {
        let mut e = self.primary()?;
        loop {
            let t = self.peek();
            match t.kind {
                TokenKind::Punct(Punct::LParen) => {
                    self.bump();
                    let args = self.call_args()?;
                    let end = self.expect(Punct::RParen)?.span;
                    let span = e.span().merge(end);
                    e = Expr::Call {
                        callee: Box::new(e),
                        args,
                        span,
                    };
                }
                TokenKind::Punct(Punct::TripleLt) => {
                    self.bump();
                    let mut config = Vec::new();
                    while !self.peek().is(Punct::TripleGt) {
                        if self.at_eof() {
                            return Err(self.err_here("unterminated `<<<`"));
                        }
                        config.push(self.assign_or_dots()?);
                        if !self.eat(Punct::Comma) {
                            break;
                        }
                    }
                    self.expect(Punct::TripleGt)?;
                    self.expect(Punct::LParen)?;
                    let args = self.call_args()?;
                    let end = self.expect(Punct::RParen)?.span;
                    let span = e.span().merge(end);
                    e = Expr::KernelCall {
                        callee: Box::new(e),
                        config,
                        args,
                        span,
                    };
                }
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let mut indices = Vec::new();
                    while !self.peek().is(Punct::RBracket) {
                        indices.push(self.assign_or_dots()?);
                        if !self.eat(Punct::Comma) {
                            break;
                        }
                    }
                    let end = self.expect(Punct::RBracket)?.span;
                    let span = e.span().merge(end);
                    e = Expr::Index {
                        base: Box::new(e),
                        indices,
                        span,
                    };
                }
                TokenKind::Punct(Punct::Dot) | TokenKind::Punct(Punct::Arrow) => {
                    let arrow = t.is(Punct::Arrow);
                    self.bump();
                    let field = self.ident()?;
                    let span = e.span().merge(field.span);
                    e = Expr::Member {
                        base: Box::new(e),
                        arrow,
                        field,
                        span,
                    };
                }
                TokenKind::Punct(Punct::PlusPlus) | TokenKind::Punct(Punct::MinusMinus) => {
                    let inc = t.is(Punct::PlusPlus);
                    self.bump();
                    let span = e.span().merge(t.span);
                    e = Expr::PostIncDec {
                        expr: Box::new(e),
                        inc,
                        span,
                    };
                }
                TokenKind::Punct(Punct::At) if self.opts.pattern => {
                    self.bump();
                    let p = self.ident()?;
                    let span = e.span().merge(p.span);
                    e = Expr::PosAnn {
                        inner: Box::new(e),
                        pos: p.name,
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseErr> {
        let mut args = Vec::new();
        while !self.peek().is(Punct::RParen) {
            if self.at_eof() {
                return Err(self.err_here("unterminated argument list"));
            }
            args.push(self.assign_or_dots()?);
            if !self.eat(Punct::Comma) {
                break;
            }
        }
        Ok(args)
    }

    /// Assignment expression, or `...` in pattern mode.
    fn assign_or_dots(&mut self) -> Result<Expr, ParseErr> {
        if self.opts.pattern && self.peek().is(Punct::Ellipsis) {
            let t = self.bump();
            return Ok(Expr::Dots { span: t.span });
        }
        self.assign_expr()
    }

    fn primary(&mut self) -> Result<Expr, ParseErr> {
        let t = self.peek();
        match t.kind {
            TokenKind::IntLit => {
                self.bump();
                let raw = self.text(t);
                let value = parse_int(raw).ok_or_else(|| ParseErr {
                    span: t.span,
                    message: format!("bad integer literal `{raw}`"),
                })?;
                Ok(Expr::IntLit {
                    value,
                    raw: Symbol::intern(raw),
                    span: t.span,
                })
            }
            TokenKind::FloatLit => {
                self.bump();
                Ok(Expr::FloatLit {
                    raw: Symbol::intern(self.text(t)),
                    span: t.span,
                })
            }
            TokenKind::StrLit => {
                self.bump();
                Ok(Expr::StrLit {
                    raw: Symbol::intern(self.text(t)),
                    span: t.span,
                })
            }
            TokenKind::CharLit => {
                self.bump();
                Ok(Expr::CharLit {
                    raw: Symbol::intern(self.text(t)),
                    span: t.span,
                })
            }
            TokenKind::Punct(Punct::Ellipsis) if self.opts.pattern => {
                self.bump();
                Ok(Expr::Dots { span: t.span })
            }
            TokenKind::Punct(Punct::DisjOpen) if self.opts.pattern => {
                let start = self.bump().span;
                let mut branches = vec![self.assign_expr()?];
                while self.eat(Punct::DisjPipe) {
                    branches.push(self.assign_expr()?);
                }
                let end = self.expect(Punct::DisjClose)?.span;
                Ok(Expr::Disj {
                    branches,
                    span: start.merge(end),
                })
            }
            TokenKind::Punct(Punct::LParen) => {
                let start = self.bump().span;
                let inner = self.expr()?;
                let end = self.expect(Punct::RParen)?.span;
                Ok(Expr::Paren {
                    inner: Box::new(inner),
                    span: start.merge(end),
                })
            }
            TokenKind::Punct(Punct::LBrace) => self.init_list(),
            TokenKind::Ident => {
                let name = self.text(t);
                if matches!(name, "true" | "false" | "nullptr" | "this") {
                    self.bump();
                    return Ok(Expr::Ident(Ident {
                        name: t.ident_sym(),
                        span: t.span,
                    }));
                }
                if is_keyword(name) {
                    return Err(self.err_here(format!("unexpected keyword `{name}`")));
                }
                let id = self.ident_path()?;
                Ok(Expr::Ident(id))
            }
            _ => Err(self.err_here(format!(
                "expected expression, found {}",
                self.describe_current()
            ))),
        }
    }
}

/// Parse a C integer literal (decimal/hex/octal/binary, suffixes
/// stripped).
pub fn parse_int(raw: &str) -> Option<i128> {
    let s = raw.trim_end_matches(['u', 'U', 'l', 'L']).replace('_', "");
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i128::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = s.strip_prefix("0b").or_else(|| s.strip_prefix("0B")) {
        i128::from_str_radix(bin, 2).ok()
    } else if s.len() > 1 && s.starts_with('0') {
        i128::from_str_radix(&s[1..], 8).ok()
    } else {
        s.parse().ok()
    }
}
