//! Canonical rendering of AST nodes back to C text.
//!
//! Two uses: (1) rendering metavariable bindings whose value was
//! synthesized (script rules, fresh identifiers) rather than sliced from
//! source text; (2) debugging and golden-test construction. The output is
//! canonical, not source-faithful — the minimal-diff unparser in
//! `cocci-core` splices original text wherever possible and only falls
//! back to this renderer for synthetic nodes.

use crate::ast::*;
use std::fmt::Write;

/// Render an expression canonically.
pub fn render_expr(e: &Expr) -> String {
    let mut s = String::new();
    expr(&mut s, e);
    s
}

/// Render a type canonically.
pub fn render_type(t: &Type) -> String {
    let mut s = String::new();
    ty(&mut s, t);
    s
}

/// Render a statement canonically (single line, blocks braced).
pub fn render_stmt(st: &Stmt) -> String {
    let mut s = String::new();
    stmt(&mut s, st);
    s
}

/// Render a parameter.
pub fn render_param(p: &Param) -> String {
    if p.meta_list {
        return p
            .name
            .as_ref()
            .map(|n| n.as_str().to_string())
            .unwrap_or_default();
    }
    let mut s = render_type(&p.ty);
    if let Some(n) = &p.name {
        s.push(' ');
        s.push_str(n.as_str());
    }
    s
}

/// Render a declaration.
pub fn render_decl(d: &Declaration) -> String {
    let mut s = String::new();
    for sp in &d.specifiers {
        s.push_str(sp.as_str());
        s.push(' ');
    }
    ty(&mut s, &d.ty);
    let mut first = true;
    for dr in &d.declarators {
        if first {
            s.push(' ');
            first = false;
        } else {
            s.push_str(", ");
        }
        for _ in 0..dr.ptr {
            s.push('*');
        }
        if dr.reference {
            s.push('&');
        }
        s.push_str(dr.name.as_str());
        for a in &dr.array {
            s.push('[');
            if let Some(e) = a {
                expr(&mut s, e);
            }
            s.push(']');
        }
        if let Some(init) = &dr.init {
            s.push_str(" = ");
            expr(&mut s, init);
        }
    }
    s.push(';');
    s
}

fn ty(s: &mut String, t: &Type) {
    match &t.kind {
        TypeKind::Named {
            name,
            template_args,
        } => {
            s.push_str(name.as_str());
            if let Some(ta) = template_args {
                s.push_str(ta);
            }
        }
        TypeKind::Record {
            keyword,
            name,
            raw_body,
        } => {
            s.push_str(keyword.as_str());
            if let Some(n) = name {
                s.push(' ');
                s.push_str(n.as_str());
            }
            s.push(' ');
            s.push_str(raw_body);
        }
        TypeKind::Ptr(inner) => {
            ty(s, inner);
            s.push('*');
        }
        TypeKind::Ref(inner) => {
            ty(s, inner);
            s.push('&');
        }
        TypeKind::Qualified { quals, inner } => {
            for q in quals {
                s.push_str(q.as_str());
                s.push(' ');
            }
            ty(s, inner);
        }
        TypeKind::Meta { name } => s.push_str(name.as_str()),
    }
}

fn stmt(s: &mut String, st: &Stmt) {
    match st {
        Stmt::Expr { expr: e, .. } => {
            expr(s, e);
            s.push(';');
        }
        Stmt::Decl(d) => s.push_str(&render_decl(d)),
        Stmt::Block(b) => block(s, b),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            s.push_str("if (");
            expr(s, cond);
            s.push_str(") ");
            stmt(s, then_branch);
            if let Some(e) = else_branch {
                s.push_str(" else ");
                stmt(s, e);
            }
        }
        Stmt::While { cond, body, .. } => {
            s.push_str("while (");
            expr(s, cond);
            s.push_str(") ");
            stmt(s, body);
        }
        Stmt::DoWhile { body, cond, .. } => {
            s.push_str("do ");
            stmt(s, body);
            s.push_str(" while (");
            expr(s, cond);
            s.push_str(");");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            s.push_str("for (");
            match init.as_deref() {
                None => s.push(';'),
                Some(ForInit::Decl(d)) => s.push_str(&render_decl(d)),
                Some(ForInit::Expr(e)) => {
                    expr(s, e);
                    s.push(';');
                }
                Some(ForInit::Dots { .. }) => s.push_str("...;"),
            }
            s.push(' ');
            if let Some(c) = cond {
                expr(s, c);
            }
            s.push_str("; ");
            if let Some(st2) = step {
                expr(s, st2);
            }
            s.push_str(") ");
            stmt(s, body);
        }
        Stmt::RangeFor {
            ty: t,
            by_ref,
            var,
            range,
            body,
            ..
        } => {
            s.push_str("for (");
            ty(s, t);
            s.push(' ');
            if *by_ref {
                s.push('&');
            }
            s.push_str(var.as_str());
            s.push_str(" : ");
            expr(s, range);
            s.push_str(") ");
            stmt(s, body);
        }
        Stmt::Return { value, .. } => {
            s.push_str("return");
            if let Some(v) = value {
                s.push(' ');
                expr(s, v);
            }
            s.push(';');
        }
        Stmt::Break { .. } => s.push_str("break;"),
        Stmt::Continue { .. } => s.push_str("continue;"),
        Stmt::Goto { label, .. } => {
            let _ = write!(s, "goto {};", label.name);
        }
        Stmt::Label {
            label, stmt: st2, ..
        } => {
            let _ = write!(s, "{}: ", label.name);
            stmt(s, st2);
        }
        Stmt::Switch {
            scrutinee, body, ..
        } => {
            s.push_str("switch (");
            expr(s, scrutinee);
            s.push_str(") ");
            stmt(s, body);
        }
        Stmt::Case {
            value, stmt: st2, ..
        } => {
            match value {
                Some(v) => {
                    s.push_str("case ");
                    expr(s, v);
                    s.push_str(": ");
                }
                None => s.push_str("default: "),
            }
            stmt(s, st2);
        }
        Stmt::Directive(d) => s.push_str(&d.raw),
        Stmt::Empty { .. } => s.push(';'),
        Stmt::Dots { .. } => s.push_str("..."),
        Stmt::MetaStmt { name, pos, .. } => {
            s.push_str(name.as_str());
            if let Some(p) = pos {
                s.push('@');
                s.push_str(p.as_str());
            }
        }
        Stmt::MetaStmtList { name, .. } => s.push_str(name.as_str()),
        Stmt::PatGroup { conj, branches, .. } => {
            s.push_str("\\( ");
            for (i, b) in branches.iter().enumerate() {
                if i > 0 {
                    s.push_str(if *conj { " \\& " } else { " \\| " });
                }
                for (j, st2) in b.iter().enumerate() {
                    if j > 0 {
                        s.push(' ');
                    }
                    stmt(s, st2);
                }
            }
            s.push_str(" \\)");
        }
    }
}

fn block(s: &mut String, b: &Block) {
    s.push_str("{ ");
    for st in &b.stmts {
        stmt(s, st);
        s.push(' ');
    }
    s.push('}');
}

fn expr(s: &mut String, e: &Expr) {
    match e {
        Expr::Ident(i) => s.push_str(i.as_str()),
        Expr::IntLit { raw, .. }
        | Expr::FloatLit { raw, .. }
        | Expr::StrLit { raw, .. }
        | Expr::CharLit { raw, .. } => s.push_str(raw.as_str()),
        Expr::Paren { inner, .. } => {
            s.push('(');
            expr(s, inner);
            s.push(')');
        }
        Expr::Unary { op, expr: e2, .. } => {
            s.push_str(op.text());
            // Avoid gluing `- -x` into `--x`.
            if matches!(op, UnOp::Neg | UnOp::Pos)
                && matches!(
                    e2.as_ref(),
                    Expr::Unary {
                        op: UnOp::Neg | UnOp::Pos,
                        ..
                    }
                )
            {
                s.push(' ');
            }
            expr(s, e2);
        }
        Expr::PostIncDec { expr: e2, inc, .. } => {
            expr(s, e2);
            s.push_str(if *inc { "++" } else { "--" });
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            expr(s, lhs);
            if *op == BinOp::Comma {
                s.push_str(", ");
            } else {
                s.push(' ');
                s.push_str(op.text());
                s.push(' ');
            }
            expr(s, rhs);
        }
        Expr::Assign { op, lhs, rhs, .. } => {
            expr(s, lhs);
            s.push(' ');
            s.push_str(op.text());
            s.push(' ');
            expr(s, rhs);
        }
        Expr::Ternary {
            cond,
            then_val,
            else_val,
            ..
        } => {
            expr(s, cond);
            s.push_str(" ? ");
            expr(s, then_val);
            s.push_str(" : ");
            expr(s, else_val);
        }
        Expr::Call { callee, args, .. } => {
            expr(s, callee);
            s.push('(');
            exprs(s, args);
            s.push(')');
        }
        Expr::KernelCall {
            callee,
            config,
            args,
            ..
        } => {
            expr(s, callee);
            s.push_str("<<<");
            exprs(s, config);
            s.push_str(">>>(");
            exprs(s, args);
            s.push(')');
        }
        Expr::Index { base, indices, .. } => {
            expr(s, base);
            s.push('[');
            exprs(s, indices);
            s.push(']');
        }
        Expr::Member {
            base, arrow, field, ..
        } => {
            expr(s, base);
            s.push_str(if *arrow { "->" } else { "." });
            s.push_str(field.as_str());
        }
        Expr::Cast {
            ty: t, expr: e2, ..
        } => {
            s.push('(');
            ty(s, t);
            s.push(')');
            expr(s, e2);
        }
        Expr::Sizeof { arg, .. } => {
            let _ = write!(s, "sizeof({arg})");
        }
        Expr::InitList { elems, .. } => {
            s.push('{');
            exprs(s, elems);
            s.push('}');
        }
        Expr::Dots { .. } => s.push_str("..."),
        Expr::Disj { branches, .. } => {
            s.push_str("\\( ");
            for (i, b) in branches.iter().enumerate() {
                if i > 0 {
                    s.push_str(" \\| ");
                }
                expr(s, b);
            }
            s.push_str(" \\)");
        }
        Expr::PosAnn { inner, pos, .. } => {
            expr(s, inner);
            s.push('@');
            s.push_str(pos.as_str());
        }
    }
}

fn exprs(s: &mut String, es: &[Expr]) {
    for (i, e) in es.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        expr(s, e);
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_expression, parse_statements, NoMeta, ParseOptions};

    fn round_e(src: &str) -> String {
        super::render_expr(&parse_expression(src, ParseOptions::cpp(), &NoMeta).unwrap())
    }

    fn round_s(src: &str) -> String {
        super::render_stmt(
            &parse_statements(src, ParseOptions::cpp(), &NoMeta)
                .unwrap()
                .remove(0),
        )
    }

    #[test]
    fn expr_rendering() {
        assert_eq!(round_e("a[i]+b*2"), "a[i] + b * 2");
        assert_eq!(round_e("f(x,y)"), "f(x, y)");
        assert_eq!(round_e("a[x][y][z]"), "a[x][y][z]");
        assert_eq!(round_e("a[x, y, z]"), "a[x, y, z]");
        assert_eq!(round_e("k<<<b,t,0,s>>>(p,q)"), "k<<<b, t, 0, s>>>(p, q)");
        assert_eq!(round_e("p->next.val"), "p->next.val");
        assert_eq!(round_e("(double)x"), "(double)x");
    }

    #[test]
    fn stmt_rendering() {
        assert_eq!(round_s("x=1;"), "x = 1;");
        assert_eq!(
            round_s("for(int i=0;i<n;++i){s+=a[i];}"),
            "for (int i = 0; i < n; ++i) { s += a[i]; }"
        );
        assert_eq!(round_s("if(a)b();else c();"), "if (a) b(); else c();");
        assert_eq!(round_s("return x+1;"), "return x + 1;");
    }

    #[test]
    fn idempotent_on_own_output() {
        for src in ["a[i] + b * 2", "f(x, y)", "a ? b : c"] {
            let once = round_e(src);
            let twice = round_e(&once);
            assert_eq!(once, twice);
        }
    }
}
