//! Read-only AST visitors.
//!
//! The matcher uses these to search for subexpression occurrences (the
//! conjunction semantics of the unroll rules: "a statement *containing*
//! `i+1`"), and `cocci-flow` uses them to enumerate statements when
//! building control-flow graphs.

use crate::ast::*;

/// Call `f` on `e` and every subexpression of `e`, pre-order.
pub fn walk_expr<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Ident(_)
        | Expr::IntLit { .. }
        | Expr::FloatLit { .. }
        | Expr::StrLit { .. }
        | Expr::CharLit { .. }
        | Expr::Sizeof { .. }
        | Expr::Dots { .. } => {}
        Expr::Paren { inner, .. } => walk_expr(inner, f),
        Expr::Unary { expr, .. } => walk_expr(expr, f),
        Expr::PostIncDec { expr, .. } => walk_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Assign { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Ternary {
            cond,
            then_val,
            else_val,
            ..
        } => {
            walk_expr(cond, f);
            walk_expr(then_val, f);
            walk_expr(else_val, f);
        }
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::KernelCall {
            callee,
            config,
            args,
            ..
        } => {
            walk_expr(callee, f);
            for c in config {
                walk_expr(c, f);
            }
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Index { base, indices, .. } => {
            walk_expr(base, f);
            for i in indices {
                walk_expr(i, f);
            }
        }
        Expr::Member { base, .. } => walk_expr(base, f),
        Expr::Cast { expr, .. } => walk_expr(expr, f),
        Expr::InitList { elems, .. } => {
            for e2 in elems {
                walk_expr(e2, f);
            }
        }
        Expr::Disj { branches, .. } => {
            for b in branches {
                walk_expr(b, f);
            }
        }
        Expr::PosAnn { inner, .. } => walk_expr(inner, f),
    }
}

/// Call `f` on `s` and every nested statement, pre-order.
pub fn walk_stmt<'a>(s: &'a Stmt, f: &mut dyn FnMut(&'a Stmt)) {
    f(s);
    match s {
        Stmt::Block(b) => {
            for st in &b.stmts {
                walk_stmt(st, f);
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_stmt(then_branch, f);
            if let Some(e) = else_branch {
                walk_stmt(e, f);
            }
        }
        Stmt::While { body, .. }
        | Stmt::DoWhile { body, .. }
        | Stmt::For { body, .. }
        | Stmt::RangeFor { body, .. }
        | Stmt::Switch { body, .. } => walk_stmt(body, f),
        Stmt::Label { stmt, .. } | Stmt::Case { stmt, .. } => walk_stmt(stmt, f),
        Stmt::PatGroup { branches, .. } => {
            for b in branches {
                for st in b {
                    walk_stmt(st, f);
                }
            }
        }
        _ => {}
    }
}

/// Call `f` on every expression directly contained in `s` (not descending
/// into nested statements — combine with [`walk_stmt`] for a deep walk).
pub fn stmt_exprs<'a>(s: &'a Stmt, f: &mut dyn FnMut(&'a Expr)) {
    match s {
        Stmt::Expr { expr, .. } => walk_expr(expr, f),
        Stmt::Decl(d) => {
            for dr in &d.declarators {
                for a in dr.array.iter().flatten() {
                    walk_expr(a, f);
                }
                if let Some(init) = &dr.init {
                    walk_expr(init, f);
                }
            }
        }
        Stmt::If { cond, .. } | Stmt::While { cond, .. } | Stmt::DoWhile { cond, .. } => {
            walk_expr(cond, f)
        }
        Stmt::For {
            init, cond, step, ..
        } => {
            match init.as_deref() {
                Some(ForInit::Expr(e)) => walk_expr(e, f),
                Some(ForInit::Decl(d)) => {
                    for dr in &d.declarators {
                        if let Some(i) = &dr.init {
                            walk_expr(i, f);
                        }
                    }
                }
                _ => {}
            }
            if let Some(c) = cond {
                walk_expr(c, f);
            }
            if let Some(st) = step {
                walk_expr(st, f);
            }
        }
        Stmt::RangeFor { range, .. } => walk_expr(range, f),
        Stmt::Return { value: Some(v), .. } => walk_expr(v, f),
        Stmt::Switch { scrutinee, .. } => walk_expr(scrutinee, f),
        Stmt::Case { value: Some(v), .. } => walk_expr(v, f),
        _ => {}
    }
}

/// Call `f` on every expression anywhere inside `s`, including nested
/// statements.
pub fn deep_stmt_exprs<'a>(s: &'a Stmt, f: &mut dyn FnMut(&'a Expr)) {
    walk_stmt(s, &mut |st| stmt_exprs(st, f));
}

/// Call `f` on every function definition in the unit (descending into
/// namespaces and extern blocks).
pub fn walk_functions<'a>(tu: &'a TranslationUnit, f: &mut dyn FnMut(&'a FunctionDef)) {
    fn rec<'a>(items: &'a [Item], f: &mut dyn FnMut(&'a FunctionDef)) {
        for it in items {
            match it {
                Item::Function(fd) => f(fd),
                Item::Namespace { items, .. } | Item::ExternBlock { items, .. } => rec(items, f),
                _ => {}
            }
        }
    }
    rec(&tu.items, f);
}

/// Call `f` on every expression in the unit (function bodies and
/// initializers).
pub fn walk_all_exprs<'a>(tu: &'a TranslationUnit, f: &mut dyn FnMut(&'a Expr)) {
    fn rec<'a>(items: &'a [Item], f: &mut dyn FnMut(&'a Expr)) {
        for it in items {
            match it {
                Item::Function(fd) => {
                    for st in &fd.body.stmts {
                        deep_stmt_exprs(st, f);
                    }
                }
                Item::Decl(d) => {
                    for dr in &d.declarators {
                        if let Some(init) = &dr.init {
                            walk_expr(init, f);
                        }
                    }
                }
                Item::Namespace { items, .. } | Item::ExternBlock { items, .. } => rec(items, f),
                Item::Directive(_) => {}
            }
        }
    }
    rec(&tu.items, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_statements, parse_translation_unit, NoMeta, ParseOptions};

    #[test]
    fn walk_expr_counts_subexprs() {
        let s = parse_statements("x = a[i] + f(b, c);", ParseOptions::c(), &NoMeta)
            .unwrap()
            .remove(0);
        let mut count = 0;
        deep_stmt_exprs(&s, &mut |_| count += 1);
        // assign, x, a[i]+f(..), a[i], a, i, f(b,c), f, b, c
        assert_eq!(count, 10);
    }

    #[test]
    fn walk_stmt_visits_nested() {
        let s = parse_statements(
            "if (a) { x = 1; while (b) y = 2; } else z = 3;",
            ParseOptions::c(),
            &NoMeta,
        )
        .unwrap()
        .remove(0);
        let mut n = 0;
        walk_stmt(&s, &mut |_| n += 1);
        // if, block, x=1, while, y=2, z=3
        assert_eq!(n, 6);
    }

    #[test]
    fn walk_functions_finds_all() {
        let tu = parse_translation_unit(
            "int f(void) { return 1; }\nstatic double g(int x) { return x; }",
            ParseOptions::c(),
            &NoMeta,
        )
        .unwrap();
        let mut names = Vec::new();
        walk_functions(&tu, &mut |fd| names.push(fd.name.name));
        assert_eq!(names, vec!["f", "g"]);
    }
}
