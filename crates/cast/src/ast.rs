//! Abstract syntax tree for the C/C++ subset handled by the engine.
//!
//! Coverage is driven by the paper's Section-3 use cases plus generality
//! headroom: functions with attributes, declarations with initializers,
//! the full statement repertoire (including C++ range-`for`), the full
//! expression grammar with CUDA `<<< >>>` kernel launches and C++23
//! multi-index subscripts, and preprocessor directives preserved as
//! first-class items/statements (pragmas are what several semantic patches
//! transform).
//!
//! Every node carries a [`Span`] into the file it was parsed from, so the
//! transformation engine can splice edits into the original text.

use cocci_source::{Span, Symbol};

/// An identifier with its source span.
///
/// The name is an interned [`Symbol`]: comparing identifiers is an
/// integer compare, cloning is a copy, and the string itself is
/// resolved only at render/diagnostic boundaries via
/// [`Symbol::as_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    /// The interned name.
    pub name: Symbol,
    /// Source location.
    pub span: Span,
}

impl Ident {
    /// Construct a synthetic identifier (no source location).
    pub fn synthetic(name: impl Into<Symbol>) -> Self {
        Ident {
            name: name.into(),
            span: Span::SYNTHETIC,
        }
    }

    /// The identifier's text.
    pub fn as_str(&self) -> &'static str {
        self.name.as_str()
    }
}

/// A whole parsed file.
#[derive(Debug, Clone)]
pub struct TranslationUnit {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Span of the whole file.
    pub span: Span,
}

/// Top-level item.
#[derive(Debug, Clone)]
pub enum Item {
    /// `#include`, `#define`, `#pragma`, … — one logical line.
    Directive(Directive),
    /// A function definition (with body).
    Function(FunctionDef),
    /// A declaration (variables, prototypes, typedefs, struct defs).
    Decl(Declaration),
    /// `namespace N { ... }` — body re-parsed as items.
    Namespace {
        /// Namespace name (empty for anonymous).
        name: Option<Ident>,
        /// Contained items.
        items: Vec<Item>,
        /// Full span.
        span: Span,
    },
    /// `extern "C" { ... }`.
    ExternBlock {
        /// Contained items.
        items: Vec<Item>,
        /// Full span.
        span: Span,
    },
}

impl Item {
    /// Source span of the item.
    pub fn span(&self) -> Span {
        match self {
            Item::Directive(d) => d.span,
            Item::Function(f) => f.span,
            Item::Decl(d) => d.span,
            Item::Namespace { span, .. } | Item::ExternBlock { span, .. } => *span,
        }
    }
}

/// Classification of a preprocessor directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `#include`.
    Include,
    /// `#pragma`.
    Pragma,
    /// `#define`.
    Define,
    /// `#if/#ifdef/#ifndef/#else/#elif/#endif/#undef` and anything else.
    Other,
}

/// A preprocessor logical line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// Which directive.
    pub kind: DirectiveKind,
    /// Full raw text, `#` included, continuations joined by the lexer.
    pub raw: String,
    /// For `#pragma`: the text after `#pragma ` (e.g. `omp parallel for`).
    /// For `#include`: the header spec (e.g. `<omp.h>` or `"x.h"`).
    pub payload: String,
    /// Source span of the whole logical line.
    pub span: Span,
}

impl Directive {
    /// For `#pragma` directives: the first word of the payload (`omp`,
    /// `acc`, `GCC`, …), if any.
    pub fn pragma_namespace(&self) -> Option<&str> {
        if self.kind == DirectiveKind::Pragma {
            self.payload.split_whitespace().next()
        } else {
            None
        }
    }
}

/// A GCC/Clang `__attribute__((...))` group attached to a declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// The entries inside the double parentheses.
    pub items: Vec<AttrItem>,
    /// Span of the whole `__attribute__((...))`.
    pub span: Span,
}

/// One entry of an attribute group, e.g. `target("avx512")` or `unused`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrItem {
    /// Attribute name.
    pub name: Ident,
    /// Arguments, if parenthesized.
    pub args: Option<Vec<Expr>>,
    /// Span of the item.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct FunctionDef {
    /// Attributes preceding the declaration.
    pub attrs: Vec<Attribute>,
    /// Storage/function specifiers in source order (`static`, `inline`, …).
    pub specifiers: Vec<Ident>,
    /// Return type.
    pub ret: Type,
    /// Function name.
    pub name: Ident,
    /// Parameters.
    pub params: Vec<Param>,
    /// Whether the parameter list ends with `...`.
    pub varargs: bool,
    /// Body block.
    pub body: Block,
    /// Span from first specifier/attribute to closing brace.
    pub span: Span,
    /// Span from return type through closing parenthesis of the parameter
    /// list — the "signature" region used when cloning functions.
    pub sig_span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter type.
    pub ty: Type,
    /// Name, absent for abstract declarators (prototypes).
    pub name: Option<Ident>,
    /// Pattern-only: this "parameter" is a `parameter list` metavariable
    /// occurrence that matches any run of parameters.
    pub meta_list: bool,
    /// Span of the whole parameter.
    pub span: Span,
}

/// A declaration: specifiers/type plus one or more declarators.
#[derive(Debug, Clone)]
pub struct Declaration {
    /// Attributes preceding the declaration.
    pub attrs: Vec<Attribute>,
    /// Storage specifiers (`static`, `typedef`, …).
    pub specifiers: Vec<Ident>,
    /// The base type shared by all declarators.
    pub ty: Type,
    /// Declared entities.
    pub declarators: Vec<Declarator>,
    /// Full span including the `;`.
    pub span: Span,
}

/// One declared entity within a declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declarator {
    /// The name being declared.
    pub name: Ident,
    /// Pointer depth added by this declarator (`**x` → 2).
    pub ptr: u8,
    /// Whether declared as a C++ reference (`&x`).
    pub reference: bool,
    /// Array extents; `None` entry for `[]`.
    pub array: Vec<Option<Expr>>,
    /// Initializer, if any.
    pub init: Option<Expr>,
    /// If this declarator is a function prototype, its parameters.
    pub fn_params: Option<Vec<Param>>,
    /// Span of the declarator (name through initializer).
    pub span: Span,
}

/// A type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Type {
    /// Structure of the type.
    pub kind: TypeKind,
    /// Source span (synthetic for derived types built by the engine).
    pub span: Span,
}

/// Type structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeKind {
    /// Named type: builtin multi-word (`unsigned long`), typedef name,
    /// `struct S` / `union U` / `enum E`, optionally with template
    /// arguments (`std::vector<double>` — kept as raw text).
    Named {
        /// Canonical name, single-space separated (e.g. `unsigned long`,
        /// `struct particle`), interned.
        name: Symbol,
        /// Raw template-argument text including angle brackets, if any.
        template_args: Option<String>,
    },
    /// A `struct`/`union`/`enum` *definition* with a body.
    Record {
        /// `struct`, `union` or `enum`.
        keyword: Symbol,
        /// Tag name, if any.
        name: Option<Symbol>,
        /// Raw body text including braces (fields are not modelled;
        /// semantic patches in this workspace do not destructure them).
        raw_body: String,
    },
    /// Pointer to inner type.
    Ptr(Box<Type>),
    /// C++ reference to inner type.
    Ref(Box<Type>),
    /// `const`/`volatile`-qualified inner type (qualifiers normalized to
    /// the front, sorted).
    Qualified {
        /// Sorted qualifier names.
        quals: Vec<Symbol>,
        /// Qualified type.
        inner: Box<Type>,
    },
    /// Pattern-only: a type metavariable occurrence.
    Meta {
        /// Metavariable name.
        name: Symbol,
    },
}

impl Type {
    /// Construct a named type without template args.
    pub fn named(name: impl Into<Symbol>, span: Span) -> Self {
        Type {
            kind: TypeKind::Named {
                name: name.into(),
                template_args: None,
            },
            span,
        }
    }

    /// The base name if this is (possibly qualified) a named type.
    pub fn base_name(&self) -> Option<&'static str> {
        match &self.kind {
            TypeKind::Named { name, .. } => Some(name.as_str()),
            TypeKind::Qualified { inner, .. } => inner.base_name(),
            _ => None,
        }
    }
}

/// A `{ ... }` block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Span including both braces.
    pub span: Span,
}

/// Path quantifier on statement dots, from the `when` modifiers.
///
/// Statement dots quantify over control-flow paths; the modifier picks
/// the quantifier the CFG engine discharges the gap with. `Default` and
/// `Strict` both demand every path (CTL `AF`); `strict` is the explicit
/// spelling (upstream Coccinelle additionally relaxes error-exit paths
/// in the default reading — this engine does not model error exits, so
/// the two coincide here). `Exists` (`when exists`) demands only some
/// path (`EF`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DotsQuant {
    /// No modifier: all paths.
    #[default]
    Default,
    /// `when exists`: some path suffices.
    Exists,
    /// `when strict`: all paths, spelled out.
    Strict,
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Expression statement `e;`.
    Expr {
        /// The expression.
        expr: Expr,
        /// Span including `;`.
        span: Span,
    },
    /// Local declaration.
    Decl(Declaration),
    /// Nested block.
    Block(Block),
    /// `if (cond) then [else els]`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_branch: Box<Stmt>,
        /// Else-branch.
        else_branch: Option<Box<Stmt>>,
        /// Full span.
        span: Span,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Full span.
        span: Span,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
        /// Full span.
        span: Span,
    },
    /// Classic `for (init; cond; step) body`.
    For {
        /// Init clause: declaration or expression statement or empty.
        init: Option<Box<ForInit>>,
        /// Condition, if present.
        cond: Option<Expr>,
        /// Step expression, if present.
        step: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
        /// Full span.
        span: Span,
        /// Span of just the `(...)` header (used by header-local edits).
        header_span: Span,
    },
    /// C++ range-for `for (decl : range) body`.
    RangeFor {
        /// Element type.
        ty: Type,
        /// Pointer/reference markers on the element declarator.
        by_ref: bool,
        /// Element name.
        var: Ident,
        /// Range expression.
        range: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Full span.
        span: Span,
    },
    /// `return e?;`.
    Return {
        /// Returned value.
        value: Option<Expr>,
        /// Full span.
        span: Span,
    },
    /// `break;`
    Break {
        /// Full span.
        span: Span,
    },
    /// `continue;`
    Continue {
        /// Full span.
        span: Span,
    },
    /// `goto label;`
    Goto {
        /// Target label.
        label: Ident,
        /// Full span.
        span: Span,
    },
    /// `label: stmt`.
    Label {
        /// Label name.
        label: Ident,
        /// Labeled statement.
        stmt: Box<Stmt>,
        /// Full span.
        span: Span,
    },
    /// `switch (scrut) body`.
    Switch {
        /// Scrutinee.
        scrutinee: Expr,
        /// Body (normally a block with case labels).
        body: Box<Stmt>,
        /// Full span.
        span: Span,
    },
    /// `case e:` / `default:` followed by a statement.
    Case {
        /// Case value; `None` = `default`.
        value: Option<Expr>,
        /// The labeled statement.
        stmt: Box<Stmt>,
        /// Full span.
        span: Span,
    },
    /// A preprocessor directive in statement position (`#pragma` mostly).
    Directive(Directive),
    /// Empty statement `;`.
    Empty {
        /// Span of the semicolon.
        span: Span,
    },
    /// Pattern-only: `...` in statement position — matches any run of
    /// statements.
    Dots {
        /// Span of the `...` token.
        span: Span,
        /// `when != e` constraints: the skipped statements must not
        /// contain an occurrence of any of these expressions.
        when_not: Vec<Expr>,
        /// Path quantifier from `when exists` / `when strict`.
        quant: DotsQuant,
    },
    /// Pattern-only: a `statement` metavariable occurrence, optionally
    /// with a position attachment (`fc@p`).
    MetaStmt {
        /// Metavariable name.
        name: Symbol,
        /// Position metavariable attached with `@`, if any.
        pos: Option<Symbol>,
        /// Span of the occurrence.
        span: Span,
    },
    /// Pattern-only: a `statement list` metavariable occurrence.
    MetaStmtList {
        /// Metavariable name.
        name: Symbol,
        /// Span of the occurrence.
        span: Span,
    },
    /// Pattern-only: disjunction `\( P1 \| P2 \)` or conjunction
    /// `\( P1 \& P2 \)` of statement-sequence branches.
    PatGroup {
        /// True for conjunction (`\&`), false for disjunction (`\|`).
        conj: bool,
        /// The branches; each is a statement sequence.
        branches: Vec<Vec<Stmt>>,
        /// Full span.
        span: Span,
    },
}

/// The init clause of a classic `for`.
#[derive(Debug, Clone)]
pub enum ForInit {
    /// Declaration init (`for (int i = 0; ...`).
    Decl(Declaration),
    /// Expression init (`for (i = 0; ...`).
    Expr(Expr),
    /// Pattern-only: `...` as the init clause.
    Dots {
        /// Span of the `...`.
        span: Span,
    },
}

impl Stmt {
    /// Source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Expr { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::DoWhile { span, .. }
            | Stmt::For { span, .. }
            | Stmt::RangeFor { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Break { span }
            | Stmt::Continue { span }
            | Stmt::Goto { span, .. }
            | Stmt::Label { span, .. }
            | Stmt::Switch { span, .. }
            | Stmt::Case { span, .. }
            | Stmt::Empty { span }
            | Stmt::Dots { span, .. }
            | Stmt::MetaStmt { span, .. }
            | Stmt::MetaStmtList { span, .. }
            | Stmt::PatGroup { span, .. } => *span,
            Stmt::Decl(d) => d.span,
            Stmt::Block(b) => b.span,
            Stmt::Directive(d) => d.span,
        }
    }
}

/// Binary operators (includes assignment forms and comma).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    And,
    Or,
    Comma,
}

impl BinOp {
    /// Canonical operator text.
    pub fn text(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            Ne => "!=",
            BitAnd => "&",
            BitXor => "^",
            BitOr => "|",
            And => "&&",
            Or => "||",
            Comma => ",",
        }
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AssignOp {
    Assign,
    AddAssign,
    SubAssign,
    MulAssign,
    DivAssign,
    RemAssign,
    ShlAssign,
    ShrAssign,
    AndAssign,
    XorAssign,
    OrAssign,
}

impl AssignOp {
    /// Canonical operator text.
    pub fn text(self) -> &'static str {
        use AssignOp::*;
        match self {
            Assign => "=",
            AddAssign => "+=",
            SubAssign => "-=",
            MulAssign => "*=",
            DivAssign => "/=",
            RemAssign => "%=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            AndAssign => "&=",
            XorAssign => "^=",
            OrAssign => "|=",
        }
    }
}

/// Unary operators (prefix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Pos,
    Not,
    BitNot,
    Deref,
    AddrOf,
    PreInc,
    PreDec,
}

impl UnOp {
    /// Canonical operator text.
    pub fn text(self) -> &'static str {
        use UnOp::*;
        match self {
            Neg => "-",
            Pos => "+",
            Not => "!",
            BitNot => "~",
            Deref => "*",
            AddrOf => "&",
            PreInc => "++",
            PreDec => "--",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Identifier (possibly `::`-qualified; the full path is the name).
    Ident(Ident),
    /// Integer literal.
    IntLit {
        /// Parsed value (suffixes stripped).
        value: i128,
        /// Raw text (interned — small literals repeat heavily).
        raw: Symbol,
        /// Source span.
        span: Span,
    },
    /// Floating literal (kept as raw text; value irrelevant to matching).
    FloatLit {
        /// Raw text, interned.
        raw: Symbol,
        /// Source span.
        span: Span,
    },
    /// String literal, quotes included in `raw`.
    StrLit {
        /// Raw text with quotes, interned.
        raw: Symbol,
        /// Source span.
        span: Span,
    },
    /// Character literal, quotes included in `raw`.
    CharLit {
        /// Raw text with quotes, interned.
        raw: Symbol,
        /// Source span.
        span: Span,
    },
    /// Parenthesized expression.
    Paren {
        /// Inner expression.
        inner: Box<Expr>,
        /// Span including parens.
        span: Span,
    },
    /// Prefix unary application.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Full span.
        span: Span,
    },
    /// Postfix `++`/`--`.
    PostIncDec {
        /// Operand.
        expr: Box<Expr>,
        /// True for `++`.
        inc: bool,
        /// Full span.
        span: Span,
    },
    /// Binary application.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Full span.
        span: Span,
    },
    /// Assignment.
    Assign {
        /// Operator.
        op: AssignOp,
        /// Target.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
        /// Full span.
        span: Span,
    },
    /// Ternary conditional.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Then-value.
        then_val: Box<Expr>,
        /// Else-value.
        else_val: Box<Expr>,
        /// Full span.
        span: Span,
    },
    /// Function call.
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Full span.
        span: Span,
    },
    /// CUDA kernel launch `k<<<cfg...>>>(args...)`.
    KernelCall {
        /// Kernel name expression.
        callee: Box<Expr>,
        /// Launch configuration expressions inside `<<< >>>`.
        config: Vec<Expr>,
        /// Call arguments.
        args: Vec<Expr>,
        /// Full span.
        span: Span,
    },
    /// Subscript. `indices.len() > 1` only for C++23 multi-index
    /// subscripts `a[x, y, z]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expressions.
        indices: Vec<Expr>,
        /// Full span.
        span: Span,
    },
    /// Member access `a.b` / `a->b`.
    Member {
        /// Object expression.
        base: Box<Expr>,
        /// True for `->`.
        arrow: bool,
        /// Member name.
        field: Ident,
        /// Full span.
        span: Span,
    },
    /// C-style cast `(T)e`.
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
        /// Full span.
        span: Span,
    },
    /// `sizeof(e)` / `sizeof(T)` (argument kept as raw text).
    Sizeof {
        /// Raw text of the operand (parens stripped), interned.
        arg: Symbol,
        /// Full span.
        span: Span,
    },
    /// Brace initializer list `{a, b, c}`.
    InitList {
        /// Elements.
        elems: Vec<Expr>,
        /// Full span.
        span: Span,
    },
    /// Pattern-only: `...` in expression position. In an argument list it
    /// matches any run of arguments; elsewhere it matches any expression.
    Dots {
        /// Span of the `...`.
        span: Span,
    },
    /// Pattern-only: expression disjunction `\( e1 \| e2 \)`.
    Disj {
        /// The alternative patterns.
        branches: Vec<Expr>,
        /// Full span.
        span: Span,
    },
    /// Pattern-only: position attachment `e@p`.
    PosAnn {
        /// Annotated expression.
        inner: Box<Expr>,
        /// Position metavariable name.
        pos: Symbol,
        /// Full span.
        span: Span,
    },
}

impl Expr {
    /// Source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Ident(i) => i.span,
            Expr::IntLit { span, .. }
            | Expr::FloatLit { span, .. }
            | Expr::StrLit { span, .. }
            | Expr::CharLit { span, .. }
            | Expr::Paren { span, .. }
            | Expr::Unary { span, .. }
            | Expr::PostIncDec { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Assign { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Call { span, .. }
            | Expr::KernelCall { span, .. }
            | Expr::Index { span, .. }
            | Expr::Member { span, .. }
            | Expr::Cast { span, .. }
            | Expr::Sizeof { span, .. }
            | Expr::InitList { span, .. }
            | Expr::Dots { span }
            | Expr::Disj { span, .. }
            | Expr::PosAnn { span, .. } => *span,
        }
    }

    /// Strip parentheses.
    pub fn unparen(&self) -> &Expr {
        match self {
            Expr::Paren { inner, .. } => inner.unparen(),
            other => other,
        }
    }

    /// If this is a plain identifier, its name.
    pub fn as_ident(&self) -> Option<&Ident> {
        match self {
            Expr::Ident(i) => Some(i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unparen_strips_nesting() {
        let inner = Expr::Ident(Ident::synthetic("x"));
        let e = Expr::Paren {
            inner: Box::new(Expr::Paren {
                inner: Box::new(inner.clone()),
                span: Span::SYNTHETIC,
            }),
            span: Span::SYNTHETIC,
        };
        assert_eq!(e.unparen(), &inner);
    }

    #[test]
    fn type_base_name_through_qualifiers() {
        let t = Type {
            kind: TypeKind::Qualified {
                quals: vec![Symbol::intern("const")],
                inner: Box::new(Type::named("double", Span::SYNTHETIC)),
            },
            span: Span::SYNTHETIC,
        };
        assert_eq!(t.base_name(), Some("double"));
    }

    #[test]
    fn pragma_namespace_extraction() {
        let d = Directive {
            kind: DirectiveKind::Pragma,
            raw: "#pragma omp parallel for".into(),
            payload: "omp parallel for".into(),
            span: Span::SYNTHETIC,
        };
        assert_eq!(d.pragma_namespace(), Some("omp"));
        let inc = Directive {
            kind: DirectiveKind::Include,
            raw: "#include <omp.h>".into(),
            payload: "<omp.h>".into(),
            span: Span::SYNTHETIC,
        };
        assert_eq!(inc.pragma_namespace(), None);
    }

    #[test]
    fn op_texts() {
        assert_eq!(BinOp::Shl.text(), "<<");
        assert_eq!(AssignOp::AddAssign.text(), "+=");
        assert_eq!(UnOp::PreInc.text(), "++");
    }
}
