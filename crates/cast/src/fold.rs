//! Integer constant folding.
//!
//! Implements the *const-fold isomorphism* described in DESIGN.md: the
//! paper's unroll-removal rule matches the loop bound `i+k-1 < l` with
//! `constant k={4}` against source code reading `i+3 < l`, which requires
//! comparing constant subexpressions by value rather than by shape.

use crate::ast::{BinOp, Expr, UnOp};

/// Evaluate an integer constant expression. Returns `None` when the
/// expression involves non-constant subterms, floats, or operations we do
/// not model (casts, calls, …). Division by zero also yields `None`.
pub fn eval_const(expr: &Expr) -> Option<i128> {
    match expr {
        Expr::IntLit { value, .. } => Some(*value),
        Expr::CharLit { raw, .. } => {
            // 'a' or simple escapes.
            let inner = raw.as_str().strip_prefix('\'')?.strip_suffix('\'')?;
            let mut chars = inner.chars();
            match (chars.next()?, chars.next()) {
                (c, None) => Some(c as i128),
                ('\\', Some(e)) if chars.next().is_none() => Some(match e {
                    'n' => 10,
                    't' => 9,
                    'r' => 13,
                    '0' => 0,
                    '\\' => 92,
                    '\'' => 39,
                    _ => return None,
                }),
                _ => None,
            }
        }
        Expr::Paren { inner, .. } => eval_const(inner),
        Expr::Unary { op, expr, .. } => {
            let v = eval_const(expr)?;
            match op {
                UnOp::Neg => v.checked_neg(),
                UnOp::Pos => Some(v),
                UnOp::BitNot => Some(!v),
                UnOp::Not => Some(i128::from(v == 0)),
                _ => None,
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = eval_const(lhs)?;
            let b = eval_const(rhs)?;
            match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        None
                    } else {
                        a.checked_div(b)
                    }
                }
                BinOp::Rem => {
                    if b == 0 {
                        None
                    } else {
                        a.checked_rem(b)
                    }
                }
                BinOp::Shl => {
                    if (0..127).contains(&b) {
                        a.checked_shl(b as u32)
                    } else {
                        None
                    }
                }
                BinOp::Shr => {
                    if (0..127).contains(&b) {
                        a.checked_shr(b as u32)
                    } else {
                        None
                    }
                }
                BinOp::BitAnd => Some(a & b),
                BinOp::BitOr => Some(a | b),
                BinOp::BitXor => Some(a ^ b),
                BinOp::Lt => Some(i128::from(a < b)),
                BinOp::Gt => Some(i128::from(a > b)),
                BinOp::Le => Some(i128::from(a <= b)),
                BinOp::Ge => Some(i128::from(a >= b)),
                BinOp::EqEq => Some(i128::from(a == b)),
                BinOp::Ne => Some(i128::from(a != b)),
                BinOp::And => Some(i128::from(a != 0 && b != 0)),
                BinOp::Or => Some(i128::from(a != 0 || b != 0)),
                BinOp::Comma => Some(b),
            }
        }
        Expr::Ternary {
            cond,
            then_val,
            else_val,
            ..
        } => {
            let c = eval_const(cond)?;
            if c != 0 {
                eval_const(then_val)
            } else {
                eval_const(else_val)
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expression, NoMeta, ParseOptions};

    fn ev(src: &str) -> Option<i128> {
        eval_const(&parse_expression(src, ParseOptions::c(), &NoMeta).unwrap())
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ev("4-1"), Some(3));
        assert_eq!(ev("2*3+4"), Some(10));
        assert_eq!(ev("(1+2)*3"), Some(9));
        assert_eq!(ev("-5"), Some(-5));
        assert_eq!(ev("7/2"), Some(3));
        assert_eq!(ev("7%2"), Some(1));
    }

    #[test]
    fn bit_ops_and_shifts() {
        assert_eq!(ev("1<<4"), Some(16));
        assert_eq!(ev("0xff & 0x0f"), Some(15));
        assert_eq!(ev("8>>2"), Some(2));
        assert_eq!(ev("~0"), Some(-1));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(ev("3 < 4"), Some(1));
        assert_eq!(ev("3 > 4"), Some(0));
        assert_eq!(ev("1 && 0"), Some(0));
        assert_eq!(ev("1 || 0"), Some(1));
        assert_eq!(ev("!5"), Some(0));
    }

    #[test]
    fn ternary_and_comma() {
        assert_eq!(ev("1 ? 10 : 20"), Some(10));
        assert_eq!(ev("0 ? 10 : 20"), Some(20));
    }

    #[test]
    fn char_literals() {
        assert_eq!(ev("'a'"), Some(97));
        assert_eq!(ev("'\\n'"), Some(10));
    }

    #[test]
    fn non_constant_is_none() {
        assert_eq!(ev("x + 1"), None);
        assert_eq!(ev("f(3)"), None);
        assert_eq!(ev("4/0"), None);
    }

    #[test]
    fn unroll_use_case_shapes() {
        // Pattern `k-1` with k substituted by 4 must equal source `3`.
        assert_eq!(ev("4-1"), ev("3"));
        // `i+k-1` and `i+3` agree on the constant tail but not overall.
        assert_eq!(ev("i+4-1"), None);
    }
}
