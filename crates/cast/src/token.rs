//! Token definitions for the C/C++ lexer.
//!
//! The same lexer is reused by `cocci-smpl` for rule bodies, so the token
//! set includes everything SMPL patterns can mention: the full C operator
//! set, CUDA's `<<<`/`>>>` kernel-launch chevrons, C++ `::`, and the
//! ellipsis `...` (varargs in C, "dots" in SMPL).

use cocci_source::{Span, Symbol};
use std::fmt;
use std::sync::OnceLock;

/// Lexical category of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are distinguished by the parser via
    /// [`is_keyword`]) — the lexer stays keyword-agnostic so that SMPL can
    /// use keyword-shaped metavariable names.
    Ident,
    /// Integer literal (decimal, hex `0x`, octal, binary `0b`, with
    /// optional suffix).
    IntLit,
    /// Floating literal.
    FloatLit,
    /// String literal, including both quotes.
    StrLit,
    /// Character literal, including both quotes.
    CharLit,
    /// A whole preprocessor line starting with `#` (logical line: `\`
    /// continuations joined).
    Directive,
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input sentinel.
    Eof,
}

/// All punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    ColonColon,
    Question,
    Dot,
    Ellipsis,
    Arrow,
    Plus,
    PlusPlus,
    PlusEq,
    Minus,
    MinusMinus,
    MinusEq,
    Star,
    StarEq,
    Slash,
    SlashEq,
    Percent,
    PercentEq,
    Amp,
    AmpAmp,
    AmpEq,
    Pipe,
    PipePipe,
    PipeEq,
    Caret,
    CaretEq,
    Tilde,
    Bang,
    BangEq,
    Eq,
    EqEq,
    Lt,
    LtEq,
    Shl,
    ShlEq,
    TripleLt,
    Gt,
    GtEq,
    Shr,
    ShrEq,
    TripleGt,
    /// SMPL-only: `@` for position metavariable attachment.
    At,
    /// SMPL-only: `\(` disjunction open.
    DisjOpen,
    /// SMPL-only: `\|` disjunction separator.
    DisjPipe,
    /// SMPL-only: `\&` conjunction separator.
    ConjAmp,
    /// SMPL-only: `\)` disjunction close.
    DisjClose,
    /// SMPL-only: `##` identifier concatenation.
    HashHash,
}

impl Punct {
    /// Canonical text of the punctuation token.
    pub fn text(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            ColonColon => "::",
            Question => "?",
            Dot => ".",
            Ellipsis => "...",
            Arrow => "->",
            Plus => "+",
            PlusPlus => "++",
            PlusEq => "+=",
            Minus => "-",
            MinusMinus => "--",
            MinusEq => "-=",
            Star => "*",
            StarEq => "*=",
            Slash => "/",
            SlashEq => "/=",
            Percent => "%",
            PercentEq => "%=",
            Amp => "&",
            AmpAmp => "&&",
            AmpEq => "&=",
            Pipe => "|",
            PipePipe => "||",
            PipeEq => "|=",
            Caret => "^",
            CaretEq => "^=",
            Tilde => "~",
            Bang => "!",
            BangEq => "!=",
            Eq => "=",
            EqEq => "==",
            Lt => "<",
            LtEq => "<=",
            Shl => "<<",
            ShlEq => "<<=",
            TripleLt => "<<<",
            Gt => ">",
            GtEq => ">=",
            Shr => ">>",
            ShrEq => ">>=",
            TripleGt => ">>>",
            At => "@",
            DisjOpen => "\\(",
            DisjPipe => "\\|",
            ConjAmp => "\\&",
            DisjClose => "\\)",
            HashHash => "##",
        }
    }
}

/// A lexed token: kind plus the byte span of its text.
///
/// Identifier tokens additionally carry the interned [`Symbol`] of their
/// text (minted once by the lexer), so the parser never re-slices or
/// allocates identifier strings and keyword checks are integer compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical category.
    pub kind: TokenKind,
    /// Where in the file the token's text lives.
    pub span: Span,
    /// Interned text for [`TokenKind::Ident`] tokens; `None` otherwise
    /// (punctuation text is canonical via [`Punct::text`], literal and
    /// directive text is sliced on demand).
    pub sym: Option<Symbol>,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        if self.span.is_synthetic() {
            ""
        } else {
            &src[self.span.start as usize..self.span.end as usize]
        }
    }

    /// The interned symbol of an identifier token.
    ///
    /// Panics if called on a non-identifier token — parser code paths
    /// only reach this after checking `kind == TokenKind::Ident`.
    pub fn ident_sym(&self) -> Symbol {
        self.sym.expect("ident_sym on non-identifier token")
    }

    /// Whether this token is a specific punctuation.
    pub fn is(&self, p: Punct) -> bool {
        self.kind == TokenKind::Punct(p)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident => write!(f, "identifier"),
            TokenKind::IntLit => write!(f, "integer literal"),
            TokenKind::FloatLit => write!(f, "float literal"),
            TokenKind::StrLit => write!(f, "string literal"),
            TokenKind::CharLit => write!(f, "char literal"),
            TokenKind::Directive => write!(f, "preprocessor directive"),
            TokenKind::Punct(p) => write!(f, "`{}`", p.text()),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// C/C++ keywords that can never be identifiers in target code.
///
/// Deliberately *not* including SMPL metavariable-kind words
/// (`expression`, `statement`, …) which are only keywords inside rule
/// headers.
pub const KEYWORDS: &[&str] = &[
    "auto",
    "break",
    "case",
    "char",
    "const",
    "constexpr",
    "continue",
    "default",
    "do",
    "double",
    "else",
    "enum",
    "extern",
    "float",
    "for",
    "goto",
    "if",
    "inline",
    "int",
    "long",
    "register",
    "restrict",
    "return",
    "short",
    "signed",
    "sizeof",
    "static",
    "struct",
    "switch",
    "typedef",
    "union",
    "unsigned",
    "void",
    "volatile",
    "while",
    "bool",
    "true",
    "false",
    "class",
    "public",
    "private",
    "protected",
    "template",
    "typename",
    "namespace",
    "using",
    "new",
    "delete",
    "this",
    "operator",
    "virtual",
    "override",
    "final",
    "nullptr",
    "decltype",
];

/// Whether `s` is a C/C++ keyword.
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Interned, id-sorted copy of a keyword table, built once on first use.
/// Membership is then a binary search over ~50 `u32`s instead of a
/// linear scan of string compares.
fn sym_set(table: &[&str], cell: &'static OnceLock<Vec<Symbol>>) -> &'static [Symbol] {
    cell.get_or_init(|| {
        let mut v: Vec<Symbol> = table.iter().map(|s| Symbol::intern(s)).collect();
        v.sort_unstable();
        v
    })
}

/// Whether `sym` is a C/C++ keyword ([`KEYWORDS`], interned form).
pub fn is_keyword_sym(sym: Symbol) -> bool {
    static CELL: OnceLock<Vec<Symbol>> = OnceLock::new();
    sym_set(KEYWORDS, &CELL).binary_search(&sym).is_ok()
}

/// Whether `sym` is in [`TYPE_KEYWORDS`] (interned form).
pub fn is_type_keyword_sym(sym: Symbol) -> bool {
    static CELL: OnceLock<Vec<Symbol>> = OnceLock::new();
    sym_set(TYPE_KEYWORDS, &CELL).binary_search(&sym).is_ok()
}

/// Whether `sym` is in [`DECL_SPECIFIERS`] (interned form).
pub fn is_decl_specifier_sym(sym: Symbol) -> bool {
    static CELL: OnceLock<Vec<Symbol>> = OnceLock::new();
    sym_set(DECL_SPECIFIERS, &CELL).binary_search(&sym).is_ok()
}

/// Builtin type-ish keywords that may begin a declaration specifier.
pub const TYPE_KEYWORDS: &[&str] = &[
    "void",
    "char",
    "short",
    "int",
    "long",
    "float",
    "double",
    "signed",
    "unsigned",
    "bool",
    "const",
    "volatile",
    "restrict",
    "struct",
    "union",
    "enum",
    "auto",
    "constexpr",
];

/// Storage/function specifiers that may prefix a declaration.
pub const DECL_SPECIFIERS: &[&str] = &[
    "static",
    "extern",
    "inline",
    "register",
    "typedef",
    "virtual",
    "constexpr",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_table() {
        assert!(is_keyword("for"));
        assert!(is_keyword("restrict"));
        assert!(!is_keyword("kernel"));
        assert!(!is_keyword("expression")); // SMPL-only keyword
    }

    #[test]
    fn keyword_sym_tables_agree_with_string_tables() {
        for s in ["for", "restrict", "kernel", "expression", "static", "int"] {
            let sym = Symbol::intern(s);
            assert_eq!(is_keyword_sym(sym), is_keyword(s), "{s}");
            assert_eq!(is_type_keyword_sym(sym), TYPE_KEYWORDS.contains(&s), "{s}");
            assert_eq!(
                is_decl_specifier_sym(sym),
                DECL_SPECIFIERS.contains(&s),
                "{s}"
            );
        }
    }

    #[test]
    fn punct_text_roundtrip() {
        assert_eq!(Punct::TripleLt.text(), "<<<");
        assert_eq!(Punct::Ellipsis.text(), "...");
        assert_eq!(Punct::HashHash.text(), "##");
    }

    #[test]
    fn token_text_slicing() {
        let src = "int foo;";
        let t = Token {
            kind: TokenKind::Ident,
            span: Span::new(4, 7),
            sym: Some(Symbol::intern("foo")),
        };
        assert_eq!(t.text(src), "foo");
        assert_eq!(t.ident_sym(), "foo");
    }

    #[test]
    fn synthetic_token_text_is_empty() {
        let t = Token {
            kind: TokenKind::Ident,
            span: Span::SYNTHETIC,
            sym: Some(Symbol::intern("")),
        };
        assert_eq!(t.text("whatever"), "");
    }
}
