//! Token definitions for the C/C++ lexer.
//!
//! The same lexer is reused by `cocci-smpl` for rule bodies, so the token
//! set includes everything SMPL patterns can mention: the full C operator
//! set, CUDA's `<<<`/`>>>` kernel-launch chevrons, C++ `::`, and the
//! ellipsis `...` (varargs in C, "dots" in SMPL).

use cocci_source::Span;
use std::fmt;

/// Lexical category of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are distinguished by the parser via
    /// [`is_keyword`]) — the lexer stays keyword-agnostic so that SMPL can
    /// use keyword-shaped metavariable names.
    Ident,
    /// Integer literal (decimal, hex `0x`, octal, binary `0b`, with
    /// optional suffix).
    IntLit,
    /// Floating literal.
    FloatLit,
    /// String literal, including both quotes.
    StrLit,
    /// Character literal, including both quotes.
    CharLit,
    /// A whole preprocessor line starting with `#` (logical line: `\`
    /// continuations joined).
    Directive,
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input sentinel.
    Eof,
}

/// All punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    ColonColon,
    Question,
    Dot,
    Ellipsis,
    Arrow,
    Plus,
    PlusPlus,
    PlusEq,
    Minus,
    MinusMinus,
    MinusEq,
    Star,
    StarEq,
    Slash,
    SlashEq,
    Percent,
    PercentEq,
    Amp,
    AmpAmp,
    AmpEq,
    Pipe,
    PipePipe,
    PipeEq,
    Caret,
    CaretEq,
    Tilde,
    Bang,
    BangEq,
    Eq,
    EqEq,
    Lt,
    LtEq,
    Shl,
    ShlEq,
    TripleLt,
    Gt,
    GtEq,
    Shr,
    ShrEq,
    TripleGt,
    /// SMPL-only: `@` for position metavariable attachment.
    At,
    /// SMPL-only: `\(` disjunction open.
    DisjOpen,
    /// SMPL-only: `\|` disjunction separator.
    DisjPipe,
    /// SMPL-only: `\&` conjunction separator.
    ConjAmp,
    /// SMPL-only: `\)` disjunction close.
    DisjClose,
    /// SMPL-only: `##` identifier concatenation.
    HashHash,
}

impl Punct {
    /// Canonical text of the punctuation token.
    pub fn text(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            ColonColon => "::",
            Question => "?",
            Dot => ".",
            Ellipsis => "...",
            Arrow => "->",
            Plus => "+",
            PlusPlus => "++",
            PlusEq => "+=",
            Minus => "-",
            MinusMinus => "--",
            MinusEq => "-=",
            Star => "*",
            StarEq => "*=",
            Slash => "/",
            SlashEq => "/=",
            Percent => "%",
            PercentEq => "%=",
            Amp => "&",
            AmpAmp => "&&",
            AmpEq => "&=",
            Pipe => "|",
            PipePipe => "||",
            PipeEq => "|=",
            Caret => "^",
            CaretEq => "^=",
            Tilde => "~",
            Bang => "!",
            BangEq => "!=",
            Eq => "=",
            EqEq => "==",
            Lt => "<",
            LtEq => "<=",
            Shl => "<<",
            ShlEq => "<<=",
            TripleLt => "<<<",
            Gt => ">",
            GtEq => ">=",
            Shr => ">>",
            ShrEq => ">>=",
            TripleGt => ">>>",
            At => "@",
            DisjOpen => "\\(",
            DisjPipe => "\\|",
            ConjAmp => "\\&",
            DisjClose => "\\)",
            HashHash => "##",
        }
    }
}

/// A lexed token: kind plus the byte span of its text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical category.
    pub kind: TokenKind,
    /// Where in the file the token's text lives.
    pub span: Span,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        if self.span.is_synthetic() {
            ""
        } else {
            &src[self.span.start as usize..self.span.end as usize]
        }
    }

    /// Whether this token is a specific punctuation.
    pub fn is(&self, p: Punct) -> bool {
        self.kind == TokenKind::Punct(p)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident => write!(f, "identifier"),
            TokenKind::IntLit => write!(f, "integer literal"),
            TokenKind::FloatLit => write!(f, "float literal"),
            TokenKind::StrLit => write!(f, "string literal"),
            TokenKind::CharLit => write!(f, "char literal"),
            TokenKind::Directive => write!(f, "preprocessor directive"),
            TokenKind::Punct(p) => write!(f, "`{}`", p.text()),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// C/C++ keywords that can never be identifiers in target code.
///
/// Deliberately *not* including SMPL metavariable-kind words
/// (`expression`, `statement`, …) which are only keywords inside rule
/// headers.
pub const KEYWORDS: &[&str] = &[
    "auto",
    "break",
    "case",
    "char",
    "const",
    "constexpr",
    "continue",
    "default",
    "do",
    "double",
    "else",
    "enum",
    "extern",
    "float",
    "for",
    "goto",
    "if",
    "inline",
    "int",
    "long",
    "register",
    "restrict",
    "return",
    "short",
    "signed",
    "sizeof",
    "static",
    "struct",
    "switch",
    "typedef",
    "union",
    "unsigned",
    "void",
    "volatile",
    "while",
    "bool",
    "true",
    "false",
    "class",
    "public",
    "private",
    "protected",
    "template",
    "typename",
    "namespace",
    "using",
    "new",
    "delete",
    "this",
    "operator",
    "virtual",
    "override",
    "final",
    "nullptr",
    "decltype",
];

/// Whether `s` is a C/C++ keyword.
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Builtin type-ish keywords that may begin a declaration specifier.
pub const TYPE_KEYWORDS: &[&str] = &[
    "void",
    "char",
    "short",
    "int",
    "long",
    "float",
    "double",
    "signed",
    "unsigned",
    "bool",
    "const",
    "volatile",
    "restrict",
    "struct",
    "union",
    "enum",
    "auto",
    "constexpr",
];

/// Storage/function specifiers that may prefix a declaration.
pub const DECL_SPECIFIERS: &[&str] = &[
    "static",
    "extern",
    "inline",
    "register",
    "typedef",
    "virtual",
    "constexpr",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_table() {
        assert!(is_keyword("for"));
        assert!(is_keyword("restrict"));
        assert!(!is_keyword("kernel"));
        assert!(!is_keyword("expression")); // SMPL-only keyword
    }

    #[test]
    fn punct_text_roundtrip() {
        assert_eq!(Punct::TripleLt.text(), "<<<");
        assert_eq!(Punct::Ellipsis.text(), "...");
        assert_eq!(Punct::HashHash.text(), "##");
    }

    #[test]
    fn token_text_slicing() {
        let src = "int foo;";
        let t = Token {
            kind: TokenKind::Ident,
            span: Span::new(4, 7),
        };
        assert_eq!(t.text(src), "foo");
    }

    #[test]
    fn synthetic_token_text_is_empty() {
        let t = Token {
            kind: TokenKind::Ident,
            span: Span::SYNTHETIC,
        };
        assert_eq!(t.text("whatever"), "");
    }
}
