//! Span-insensitive structural equality.
//!
//! Needed by the matcher for bound-metavariable re-matching: when a
//! `statement` metavariable `A` is already bound, a later occurrence of
//! `A` in the pattern must match only statements *structurally equal* to
//! the binding — the paper's unroll-removal rule `r1` relies on exactly
//! this (`A` followed by `- A A A`). Derived `PartialEq` on the AST
//! compares spans, so it cannot be used for this purpose.

use crate::ast::*;

/// Structural equality of expressions, ignoring spans and parentheses at
/// the top level of each operand.
pub fn expr_eq(a: &Expr, b: &Expr) -> bool {
    use Expr::*;
    match (a.unparen(), b.unparen()) {
        (Ident(x), Ident(y)) => x.name == y.name,
        (IntLit { value: x, .. }, IntLit { value: y, .. }) => x == y,
        (FloatLit { raw: x, .. }, FloatLit { raw: y, .. }) => x == y,
        (StrLit { raw: x, .. }, StrLit { raw: y, .. }) => x == y,
        (CharLit { raw: x, .. }, CharLit { raw: y, .. }) => x == y,
        (
            Unary {
                op: o1, expr: e1, ..
            },
            Unary {
                op: o2, expr: e2, ..
            },
        ) => o1 == o2 && expr_eq(e1, e2),
        (
            PostIncDec {
                expr: e1, inc: i1, ..
            },
            PostIncDec {
                expr: e2, inc: i2, ..
            },
        ) => i1 == i2 && expr_eq(e1, e2),
        (
            Binary {
                op: o1,
                lhs: l1,
                rhs: r1,
                ..
            },
            Binary {
                op: o2,
                lhs: l2,
                rhs: r2,
                ..
            },
        ) => o1 == o2 && expr_eq(l1, l2) && expr_eq(r1, r2),
        (
            Assign {
                op: o1,
                lhs: l1,
                rhs: r1,
                ..
            },
            Assign {
                op: o2,
                lhs: l2,
                rhs: r2,
                ..
            },
        ) => o1 == o2 && expr_eq(l1, l2) && expr_eq(r1, r2),
        (
            Ternary {
                cond: c1,
                then_val: t1,
                else_val: e1,
                ..
            },
            Ternary {
                cond: c2,
                then_val: t2,
                else_val: e2,
                ..
            },
        ) => expr_eq(c1, c2) && expr_eq(t1, t2) && expr_eq(e1, e2),
        (
            Call {
                callee: c1,
                args: a1,
                ..
            },
            Call {
                callee: c2,
                args: a2,
                ..
            },
        ) => expr_eq(c1, c2) && exprs_eq(a1, a2),
        (
            KernelCall {
                callee: c1,
                config: g1,
                args: a1,
                ..
            },
            KernelCall {
                callee: c2,
                config: g2,
                args: a2,
                ..
            },
        ) => expr_eq(c1, c2) && exprs_eq(g1, g2) && exprs_eq(a1, a2),
        (
            Index {
                base: b1,
                indices: i1,
                ..
            },
            Index {
                base: b2,
                indices: i2,
                ..
            },
        ) => expr_eq(b1, b2) && exprs_eq(i1, i2),
        (
            Member {
                base: b1,
                arrow: ar1,
                field: f1,
                ..
            },
            Member {
                base: b2,
                arrow: ar2,
                field: f2,
                ..
            },
        ) => ar1 == ar2 && f1.name == f2.name && expr_eq(b1, b2),
        (
            Cast {
                ty: t1, expr: e1, ..
            },
            Cast {
                ty: t2, expr: e2, ..
            },
        ) => type_eq(t1, t2) && expr_eq(e1, e2),
        (Sizeof { arg: a1, .. }, Sizeof { arg: a2, .. }) => a1 == a2,
        (InitList { elems: e1, .. }, InitList { elems: e2, .. }) => exprs_eq(e1, e2),
        (Dots { .. }, Dots { .. }) => true,
        (
            PosAnn {
                inner: i1, pos: p1, ..
            },
            PosAnn {
                inner: i2, pos: p2, ..
            },
        ) => p1 == p2 && expr_eq(i1, i2),
        _ => false,
    }
}

fn exprs_eq(a: &[Expr], b: &[Expr]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| expr_eq(x, y))
}

/// Structural equality of types, ignoring spans.
pub fn type_eq(a: &Type, b: &Type) -> bool {
    use TypeKind::*;
    match (&a.kind, &b.kind) {
        (
            Named {
                name: n1,
                template_args: t1,
            },
            Named {
                name: n2,
                template_args: t2,
            },
        ) => n1 == n2 && t1 == t2,
        (
            Record {
                keyword: k1,
                name: n1,
                ..
            },
            Record {
                keyword: k2,
                name: n2,
                ..
            },
        ) => k1 == k2 && n1 == n2,
        (Ptr(i1), Ptr(i2)) | (Ref(i1), Ref(i2)) => type_eq(i1, i2),
        (
            Qualified {
                quals: q1,
                inner: i1,
            },
            Qualified {
                quals: q2,
                inner: i2,
            },
        ) => q1 == q2 && type_eq(i1, i2),
        (Meta { name: n1 }, Meta { name: n2 }) => n1 == n2,
        _ => false,
    }
}

/// Structural equality of statements, ignoring spans.
pub fn stmt_eq(a: &Stmt, b: &Stmt) -> bool {
    use Stmt::*;
    match (a, b) {
        (Expr { expr: e1, .. }, Expr { expr: e2, .. }) => expr_eq(e1, e2),
        (Decl(d1), Decl(d2)) => decl_eq(d1, d2),
        (Block(b1), Block(b2)) => block_eq(b1, b2),
        (
            If {
                cond: c1,
                then_branch: t1,
                else_branch: e1,
                ..
            },
            If {
                cond: c2,
                then_branch: t2,
                else_branch: e2,
                ..
            },
        ) => {
            expr_eq(c1, c2)
                && stmt_eq(t1, t2)
                && match (e1, e2) {
                    (None, None) => true,
                    (Some(x), Some(y)) => stmt_eq(x, y),
                    _ => false,
                }
        }
        (
            While {
                cond: c1, body: b1, ..
            },
            While {
                cond: c2, body: b2, ..
            },
        ) => expr_eq(c1, c2) && stmt_eq(b1, b2),
        (
            DoWhile {
                cond: c1, body: b1, ..
            },
            DoWhile {
                cond: c2, body: b2, ..
            },
        ) => expr_eq(c1, c2) && stmt_eq(b1, b2),
        (
            For {
                init: i1,
                cond: c1,
                step: s1,
                body: b1,
                ..
            },
            For {
                init: i2,
                cond: c2,
                step: s2,
                body: b2,
                ..
            },
        ) => {
            for_init_eq(i1.as_deref(), i2.as_deref())
                && opt_expr_eq(c1.as_ref(), c2.as_ref())
                && opt_expr_eq(s1.as_ref(), s2.as_ref())
                && stmt_eq(b1, b2)
        }
        (
            RangeFor {
                ty: t1,
                var: v1,
                range: r1,
                body: b1,
                by_ref: br1,
                ..
            },
            RangeFor {
                ty: t2,
                var: v2,
                range: r2,
                body: b2,
                by_ref: br2,
                ..
            },
        ) => {
            type_eq(t1, t2)
                && v1.name == v2.name
                && br1 == br2
                && expr_eq(r1, r2)
                && stmt_eq(b1, b2)
        }
        (Return { value: v1, .. }, Return { value: v2, .. }) => {
            opt_expr_eq(v1.as_ref(), v2.as_ref())
        }
        (Break { .. }, Break { .. }) => true,
        (Continue { .. }, Continue { .. }) => true,
        (Goto { label: l1, .. }, Goto { label: l2, .. }) => l1.name == l2.name,
        (
            Label {
                label: l1,
                stmt: s1,
                ..
            },
            Label {
                label: l2,
                stmt: s2,
                ..
            },
        ) => l1.name == l2.name && stmt_eq(s1, s2),
        (
            Switch {
                scrutinee: e1,
                body: b1,
                ..
            },
            Switch {
                scrutinee: e2,
                body: b2,
                ..
            },
        ) => expr_eq(e1, e2) && stmt_eq(b1, b2),
        (
            Case {
                value: v1,
                stmt: s1,
                ..
            },
            Case {
                value: v2,
                stmt: s2,
                ..
            },
        ) => opt_expr_eq(v1.as_ref(), v2.as_ref()) && stmt_eq(s1, s2),
        (Directive(d1), Directive(d2)) => d1.kind == d2.kind && d1.payload == d2.payload,
        (Empty { .. }, Empty { .. }) => true,
        (Dots { .. }, Dots { .. }) => true,
        (MetaStmt { name: n1, .. }, MetaStmt { name: n2, .. }) => n1 == n2,
        (MetaStmtList { name: n1, .. }, MetaStmtList { name: n2, .. }) => n1 == n2,
        _ => false,
    }
}

fn opt_expr_eq(a: Option<&Expr>, b: Option<&Expr>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => expr_eq(x, y),
        _ => false,
    }
}

fn for_init_eq(a: Option<&ForInit>, b: Option<&ForInit>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(ForInit::Decl(d1)), Some(ForInit::Decl(d2))) => decl_eq(d1, d2),
        (Some(ForInit::Expr(e1)), Some(ForInit::Expr(e2))) => expr_eq(e1, e2),
        (Some(ForInit::Dots { .. }), Some(ForInit::Dots { .. })) => true,
        _ => false,
    }
}

/// Structural equality of blocks.
pub fn block_eq(a: &Block, b: &Block) -> bool {
    a.stmts.len() == b.stmts.len() && a.stmts.iter().zip(&b.stmts).all(|(x, y)| stmt_eq(x, y))
}

/// Structural equality of declarations.
pub fn decl_eq(a: &Declaration, b: &Declaration) -> bool {
    a.specifiers.len() == b.specifiers.len()
        && a.specifiers
            .iter()
            .zip(&b.specifiers)
            .all(|(x, y)| x.name == y.name)
        && type_eq(&a.ty, &b.ty)
        && a.declarators.len() == b.declarators.len()
        && a.declarators
            .iter()
            .zip(&b.declarators)
            .all(|(x, y)| declarator_eq(x, y))
}

fn declarator_eq(a: &Declarator, b: &Declarator) -> bool {
    a.name.name == b.name.name
        && a.ptr == b.ptr
        && a.reference == b.reference
        && a.array.len() == b.array.len()
        && a.array.iter().zip(&b.array).all(|(x, y)| match (x, y) {
            (None, None) => true,
            (Some(p), Some(q)) => expr_eq(p, q),
            _ => false,
        })
        && match (&a.init, &b.init) {
            (None, None) => true,
            (Some(p), Some(q)) => expr_eq(p, q),
            _ => false,
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expression, parse_statements, NoMeta, ParseOptions};

    fn e(src: &str) -> Expr {
        parse_expression(src, ParseOptions::cpp(), &NoMeta).unwrap()
    }

    fn s(src: &str) -> Stmt {
        parse_statements(src, ParseOptions::cpp(), &NoMeta)
            .unwrap()
            .remove(0)
    }

    #[test]
    fn same_text_different_spans_equal() {
        assert!(expr_eq(&e("a[i] + b * 2"), &e("a[i]  +  b*2")));
    }

    #[test]
    fn parens_ignored_at_operand_level() {
        assert!(expr_eq(&e("(a) + b"), &e("a + b")));
        assert!(expr_eq(&e("((x))"), &e("x")));
    }

    #[test]
    fn different_structure_unequal() {
        assert!(!expr_eq(&e("a + b"), &e("a - b")));
        assert!(!expr_eq(&e("f(x)"), &e("f(x, y)")));
        assert!(!expr_eq(&e("a.f"), &e("a->f")));
    }

    #[test]
    fn int_literals_compare_by_value() {
        assert!(expr_eq(&e("0x10"), &e("16")));
        assert!(expr_eq(&e("10L"), &e("10")));
    }

    #[test]
    fn stmt_equality() {
        assert!(stmt_eq(&s("x = a[i+0];"), &s("x = a[i+0] ;")));
        assert!(!stmt_eq(&s("x = a[i+0];"), &s("x = a[i+1];")));
        assert!(stmt_eq(
            &s("for (int i = 0; i < n; ++i) { s += a[i]; }"),
            &s("for (int i=0; i<n; ++i) { s += a[i]; }")
        ));
    }

    #[test]
    fn decl_equality() {
        assert!(stmt_eq(&s("double x = 0;"), &s("double x = 0;")));
        assert!(!stmt_eq(&s("double x = 0;"), &s("float x = 0;")));
        assert!(!stmt_eq(&s("double x = 0;"), &s("double y = 0;")));
    }
}
