//! `cocci-cast`: lexer, AST, and parser for the C/C++ subset targeted by
//! the semantic-patch engine, plus the supporting analyses the matcher
//! needs (span-insensitive structural equality, integer constant folding,
//! canonical rendering, and AST visitors).
//!
//! The grammar coverage is dictated by the paper's Section-3 use cases:
//! functions with GCC attributes, OpenMP/OpenACC/GCC pragmas preserved as
//! first-class nodes, CUDA kernel-launch chevrons, C++ range-`for` and
//! C++23 multi-index subscripts. In pattern mode ([`ParseOptions::pattern`])
//! the same parser accepts SMPL extensions (dots, disjunction,
//! metavariables) so that semantic-patch rule bodies and target code share
//! one AST.

pub mod ast;
pub mod eq;
pub mod fold;
pub mod lexer;
pub mod parser;
pub mod render;
pub mod token;
pub mod visit;

pub use ast::*;
pub use lexer::{lex, LexError, LexMode};
pub use parser::{
    parse_expression, parse_int, parse_statements, parse_translation_unit, Lang, MetaKind,
    MetaLookup, NoMeta, ParseErr, ParseOptions,
};
pub use token::{Punct, Token, TokenKind};
