//! Integration tests for the C/C++ parser over realistic code shapes:
//! the constructs appearing in the paper's use cases plus general
//! HPC-flavoured C.

use cocci_cast::parser::{
    parse_expression, parse_statements, parse_translation_unit, MetaKind, MetaLookup, NoMeta,
    ParseOptions,
};
use cocci_cast::{ast::*, render};

fn tu(src: &str) -> TranslationUnit {
    parse_translation_unit(src, ParseOptions::c(), &NoMeta)
        .unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"))
}

fn tu_cpp(src: &str) -> TranslationUnit {
    parse_translation_unit(src, ParseOptions::cpp(), &NoMeta)
        .unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"))
}

#[test]
fn parses_simple_function() {
    let t = tu("double dot(const double *a, const double *b, int n) {\n\
                double s = 0.0;\n\
                for (int i = 0; i < n; ++i) s += a[i] * b[i];\n\
                return s;\n\
                }");
    assert_eq!(t.items.len(), 1);
    match &t.items[0] {
        Item::Function(f) => {
            assert_eq!(f.name.name, "dot");
            assert_eq!(f.params.len(), 3);
            assert_eq!(f.body.stmts.len(), 3);
        }
        other => panic!("expected function, got {other:?}"),
    }
}

#[test]
fn parses_includes_and_pragmas() {
    let t = tu("#include <omp.h>\n#include \"util.h\"\n\
                void f(int n, double *a) {\n\
                #pragma omp parallel for\n\
                for (int i = 0; i < n; ++i) a[i] = 0;\n\
                }");
    match &t.items[0] {
        Item::Directive(d) => {
            assert_eq!(d.kind, DirectiveKind::Include);
            assert_eq!(d.payload, "<omp.h>");
        }
        other => panic!("{other:?}"),
    }
    match &t.items[2] {
        Item::Function(f) => match &f.body.stmts[0] {
            Stmt::Directive(d) => {
                assert_eq!(d.kind, DirectiveKind::Pragma);
                assert_eq!(d.pragma_namespace(), Some("omp"));
                assert_eq!(d.payload, "omp parallel for");
            }
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn parses_attributes() {
    let t = tu("__attribute__((target(\"avx512\"))) static double norm(const double *x, int n) { return 0; }");
    match &t.items[0] {
        Item::Function(f) => {
            assert_eq!(f.attrs.len(), 1);
            let item = &f.attrs[0].items[0];
            assert_eq!(item.name.name, "target");
            let args = item.args.as_ref().unwrap();
            assert!(matches!(&args[0], Expr::StrLit { raw, .. } if raw == "\"avx512\""));
            assert_eq!(f.specifiers[0].name, "static");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn parses_target_clones_attribute() {
    let t =
        tu("__attribute__((target_clones(\"avx2\",\"default\"))) void k(double *a) { a[0] = 1; }");
    match &t.items[0] {
        Item::Function(f) => {
            let item = &f.attrs[0].items[0];
            assert_eq!(item.name.name, "target_clones");
            assert_eq!(item.args.as_ref().unwrap().len(), 2);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn parses_cuda_kernel_launch() {
    let t = tu_cpp(
        "void launch(int n, double *a) {\n\
                    saxpy<<<grid, block, 0, stream>>>(n, a);\n\
                    }",
    );
    match &t.items[0] {
        Item::Function(f) => match &f.body.stmts[0] {
            Stmt::Expr { expr, .. } => match expr {
                Expr::KernelCall { config, args, .. } => {
                    assert_eq!(config.len(), 4);
                    assert_eq!(args.len(), 2);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn parses_multi_index_subscript() {
    let e = parse_expression("a[x, y, z]", ParseOptions::cpp(), &NoMeta).unwrap();
    match e {
        Expr::Index { indices, .. } => assert_eq!(indices.len(), 3),
        other => panic!("{other:?}"),
    }
    let e2 = parse_expression("a[x][y][z]", ParseOptions::cpp(), &NoMeta).unwrap();
    match e2 {
        Expr::Index { base, indices, .. } => {
            assert_eq!(indices.len(), 1);
            assert!(matches!(*base, Expr::Index { .. }));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn parses_range_for() {
    let stmts =
        parse_statements("for (double &x : arr) x = 0;", ParseOptions::cpp(), &NoMeta).unwrap();
    match &stmts[0] {
        Stmt::RangeFor {
            ty, by_ref, var, ..
        } => {
            assert_eq!(ty.base_name(), Some("double"));
            assert!(*by_ref);
            assert_eq!(var.name, "x");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn parses_struct_definition_and_typedef() {
    let t = tu("struct particle { double x; double y; double z; };\n\
                typedef struct particle particle_t;\n\
                particle_t ps[100];");
    assert_eq!(t.items.len(), 3);
    match &t.items[0] {
        Item::Decl(d) => match &d.ty.kind {
            TypeKind::Record {
                keyword,
                name,
                raw_body,
            } => {
                assert_eq!(keyword, "struct");
                assert_eq!(name.map(|n| n.as_str()), Some("particle"));
                assert!(raw_body.contains("double x"));
            }
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
    // particle_t registered via typedef so the array decl parses.
    match &t.items[2] {
        Item::Decl(d) => {
            assert_eq!(d.declarators[0].name.name, "ps");
            assert_eq!(d.declarators[0].array.len(), 1);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn parses_unrolled_loop() {
    let stmts = parse_statements(
        "for (int i = 0; i + 3 < n; i += 4) {\n\
         y[i+0] = a * x[i+0];\n\
         y[i+1] = a * x[i+1];\n\
         y[i+2] = a * x[i+2];\n\
         y[i+3] = a * x[i+3];\n\
         }",
        ParseOptions::c(),
        &NoMeta,
    )
    .unwrap();
    match &stmts[0] {
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            assert!(matches!(init.as_deref(), Some(ForInit::Decl(_))));
            assert!(cond.is_some());
            assert!(matches!(
                step,
                Some(Expr::Assign {
                    op: AssignOp::AddAssign,
                    ..
                })
            ));
            match body.as_ref() {
                Stmt::Block(b) => assert_eq!(b.stmts.len(), 4),
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn parses_do_while_switch_goto() {
    let src = "void f(int n) {\n\
               int i = 0;\n\
               do { i++; } while (i < n);\n\
               switch (n) { case 0: return; default: break; }\n\
               again: if (n) goto again;\n\
               }";
    let t = tu(src);
    match &t.items[0] {
        Item::Function(f) => assert_eq!(f.body.stmts.len(), 4),
        other => panic!("{other:?}"),
    }
}

#[test]
fn parses_prototypes_and_globals() {
    let t = tu("extern int solve(double *A, double *b, int n);\n\
                static const double EPS = 1e-9;\n\
                double buf[1024];");
    assert_eq!(t.items.len(), 3);
    match &t.items[0] {
        Item::Decl(d) => assert!(d.declarators[0].fn_params.is_some()),
        other => panic!("{other:?}"),
    }
}

#[test]
fn parses_pointer_heavy_decls() {
    let t = tu("void f(void) { const char **argv2; double *p = 0, *q = 0; int x, y[4], *z; }");
    match &t.items[0] {
        Item::Function(f) => {
            assert_eq!(f.body.stmts.len(), 3);
            match &f.body.stmts[2] {
                Stmt::Decl(d) => {
                    assert_eq!(d.declarators.len(), 3);
                    assert_eq!(d.declarators[1].array.len(), 1);
                    assert_eq!(d.declarators[2].ptr, 1);
                }
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn parses_casts_vs_parens() {
    let e = parse_expression("(double)n * 2", ParseOptions::c(), &NoMeta).unwrap();
    assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    let e2 = parse_expression("(n) * 2", ParseOptions::c(), &NoMeta).unwrap();
    // (n) is not a known type → multiplication, not cast-deref.
    assert!(matches!(e2, Expr::Binary { op: BinOp::Mul, .. }));
    let e3 = parse_expression("(size_t)(a + b)", ParseOptions::c(), &NoMeta).unwrap();
    assert!(matches!(e3, Expr::Cast { .. }));
}

#[test]
fn parses_ternary_comma_assignment_chain() {
    let e = parse_expression("a = b ? c : d, e += 1", ParseOptions::c(), &NoMeta).unwrap();
    assert!(matches!(
        e,
        Expr::Binary {
            op: BinOp::Comma,
            ..
        }
    ));
}

#[test]
fn parses_namespace_and_extern_c() {
    let t = tu_cpp(
        "namespace blas { double nrm2(int n, const double *x); }\n\
                    extern \"C\" { void c_api(void); }",
    );
    assert!(matches!(&t.items[0], Item::Namespace { .. }));
    assert!(matches!(&t.items[1], Item::ExternBlock { .. }));
}

#[test]
fn parses_cpp_paths_and_templates() {
    let t = tu_cpp("std::vector<double> v;\nvoid f(void) { std::sort(begin(v), end(v)); }");
    match &t.items[0] {
        Item::Decl(d) => match &d.ty.kind {
            TypeKind::Named {
                name,
                template_args,
            } => {
                assert_eq!(name, "std::vector");
                assert_eq!(template_args.as_deref(), Some("<double>"));
            }
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn sig_span_covers_signature() {
    let src = "static double f(int a, int b) { return a + b; }";
    let t = tu(src);
    match &t.items[0] {
        Item::Function(f) => {
            let sig = &src[f.sig_span.start as usize..f.sig_span.end as usize];
            assert_eq!(sig, "double f(int a, int b)");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn gcc_pragma_sequence() {
    let t = tu("#pragma GCC push_options\n\
                #pragma GCC optimize \"-O3\", \"-fno-tree-loop-vectorize\"\n\
                void hot(double *a) { a[0] = 1; }\n\
                #pragma GCC pop_options");
    let pragmas: Vec<_> = t
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Directive(d) if d.kind == DirectiveKind::Pragma => Some(d.payload.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(pragmas.len(), 3);
    assert!(pragmas[1].contains("optimize"));
}

// ---- pattern mode ----

struct Table(Vec<(&'static str, MetaKind)>);

impl MetaLookup for Table {
    fn kind(&self, name: &str) -> Option<MetaKind> {
        self.0.iter().find(|(n, _)| *n == name).map(|(_, k)| *k)
    }
}

#[test]
fn pattern_function_with_metavars() {
    let meta = Table(vec![
        ("T", MetaKind::Type),
        ("f", MetaKind::Ident),
        ("PL", MetaKind::ParamList),
        ("SL", MetaKind::StmtList),
    ]);
    let t = parse_translation_unit("T f (PL) { SL }", ParseOptions::pattern(), &meta).unwrap();
    match &t.items[0] {
        Item::Function(fd) => {
            assert!(matches!(fd.ret.kind, TypeKind::Meta { ref name } if name == "T"));
            assert_eq!(fd.name.name, "f");
            assert!(fd.params[0].meta_list);
            assert!(matches!(&fd.body.stmts[0], Stmt::MetaStmtList { name, .. } if name == "SL"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn pattern_dots_in_statements_and_args() {
    let meta = Table(vec![]);
    let stmts = parse_statements("{ ... f(...); ... }", ParseOptions::pattern(), &meta).unwrap();
    match &stmts[0] {
        Stmt::Block(b) => {
            assert!(matches!(b.stmts[0], Stmt::Dots { .. }));
            assert!(matches!(b.stmts[2], Stmt::Dots { .. }));
            match &b.stmts[1] {
                Stmt::Expr { expr, .. } => match expr {
                    Expr::Call { args, .. } => assert!(matches!(args[0], Expr::Dots { .. })),
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn pattern_dots_when_modifiers_set_the_quantifier() {
    let meta = Table(vec![]);
    let quant_of = |src: &str| -> DotsQuant {
        let stmts = parse_statements(src, ParseOptions::pattern(), &meta).unwrap();
        match &stmts[1] {
            Stmt::Dots { quant, .. } => *quant,
            other => panic!("{other:?}"),
        }
    };
    assert_eq!(quant_of("a(); ... b();"), DotsQuant::Default);
    assert_eq!(quant_of("a(); ... when any b();"), DotsQuant::Default);
    assert_eq!(quant_of("a(); ... when exists b();"), DotsQuant::Exists);
    assert_eq!(quant_of("a(); ... when strict b();"), DotsQuant::Strict);
    // Modifiers stack with `when !=` guards.
    let stmts = parse_statements(
        "a(); ... when != g() when exists b();",
        ParseOptions::pattern(),
        &meta,
    )
    .unwrap();
    match &stmts[1] {
        Stmt::Dots {
            quant, when_not, ..
        } => {
            assert_eq!(*quant, DotsQuant::Exists);
            assert_eq!(when_not.len(), 1);
        }
        other => panic!("{other:?}"),
    }
    // The two quantifiers are mutually exclusive — conflicting
    // modifiers are a parse error, not last-one-wins.
    assert!(parse_statements(
        "a(); ... when exists when strict b();",
        ParseOptions::pattern(),
        &meta
    )
    .is_err());
    assert!(parse_statements(
        "a(); ... when strict when exists b();",
        ParseOptions::pattern(),
        &meta
    )
    .is_err());
    // Repeating the same modifier is harmless.
    assert_eq!(
        quant_of("a(); ... when exists when exists b();"),
        DotsQuant::Exists
    );
}

#[test]
fn pattern_for_header_dots() {
    let meta = Table(vec![("c", MetaKind::Ident), ("n", MetaKind::Expr)]);
    let stmts = parse_statements(
        "for (...; c < n; ...) { ... }",
        ParseOptions::pattern(),
        &meta,
    )
    .unwrap();
    match &stmts[0] {
        Stmt::For {
            init, cond, step, ..
        } => {
            assert!(matches!(init.as_deref(), Some(ForInit::Dots { .. })));
            assert!(matches!(cond, Some(Expr::Binary { op: BinOp::Lt, .. })));
            assert!(matches!(step, Some(Expr::Dots { .. })));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn pattern_conjunction_group() {
    let meta = Table(vec![
        ("A", MetaKind::Stmt),
        ("B", MetaKind::Stmt),
        ("i", MetaKind::Ident),
    ]);
    let stmts = parse_statements(
        "{ \\( A \\& i+0 \\) \\( B \\& i+1 \\) }",
        ParseOptions::pattern(),
        &meta,
    )
    .unwrap();
    match &stmts[0] {
        Stmt::Block(b) => {
            assert_eq!(b.stmts.len(), 2);
            match &b.stmts[0] {
                Stmt::PatGroup { conj, branches, .. } => {
                    assert!(*conj);
                    assert_eq!(branches.len(), 2);
                    assert!(matches!(&branches[0][0], Stmt::MetaStmt { name, .. } if name == "A"));
                }
                other => panic!("{other:?}"),
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn pattern_position_annotation() {
    let meta = Table(vec![
        ("fn", MetaKind::Ident),
        ("el", MetaKind::ExprList),
        ("p", MetaKind::Pos),
    ]);
    let e = parse_expression("fn@p(el)", ParseOptions::pattern(), &meta).unwrap();
    match e {
        Expr::Call { callee, args, .. } => {
            match *callee {
                Expr::PosAnn { pos, .. } => assert_eq!(pos, "p"),
                other => panic!("{other:?}"),
            }
            assert!(matches!(&args[0], Expr::Ident(i) if i.name == "el"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn pattern_expression_disjunction() {
    let meta = Table(vec![("elem", MetaKind::Ident), ("k", MetaKind::Ident)]);
    let stmts = parse_statements(
        "if ( \\( elem == k \\| k == elem \\) ) { ... }",
        ParseOptions::pattern(),
        &meta,
    )
    .unwrap();
    match &stmts[0] {
        Stmt::If { cond, .. } => match cond.unparen() {
            Expr::Disj { branches, .. } => assert_eq!(branches.len(), 2),
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn pattern_chevron_rule() {
    let meta = Table(vec![
        ("k", MetaKind::Ident),
        ("b", MetaKind::Expr),
        ("t", MetaKind::Expr),
        ("x", MetaKind::Expr),
        ("y", MetaKind::Expr),
        ("el", MetaKind::ExprList),
    ]);
    let e = parse_expression("k<<<b,t,x,y>>>(el)", ParseOptions::pattern(), &meta).unwrap();
    assert!(matches!(e, Expr::KernelCall { .. }));
}

#[test]
fn render_roundtrip_on_parsed_function() {
    let src = "int f(int n) { for (int i = 0; i < n; ++i) { g(i); } return n; }";
    let t = tu(src);
    match &t.items[0] {
        Item::Function(f) => {
            let body = render::render_stmt(&Stmt::Block(f.body.clone()));
            assert!(body.contains("for (int i = 0; i < n; ++i)"));
            assert!(body.contains("g(i);"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn adversarial_names_in_strings_and_comments() {
    // Text that defeats regex-based tools: identifiers inside strings and
    // comments must not produce AST identifier nodes.
    let src = "void log_it(void) {\n\
               // curand_uniform_double in a comment\n\
               printf(\"curand_uniform_double %d\", 1);\n\
               }";
    let t = tu(src);
    let mut idents = Vec::new();
    cocci_cast::visit::walk_all_exprs(&t, &mut |e| {
        if let Expr::Ident(i) = e {
            idents.push(i.name);
        }
    });
    assert!(idents.iter().any(|i| *i == "printf"));
    assert!(!idents.iter().any(|i| *i == "curand_uniform_double"));
}
