//! Phase counters vs. report fields: the engine's telemetry must agree
//! with the probes the engine already maintains (`ScanOutcome::parses`,
//! prefilter prune counts), or the `--stats` table is fiction.
//!
//! This lives in its own integration-test binary on purpose: trace
//! counters are process-global, and the library's unit tests (which run
//! as parallel threads of one binary) would pollute them. A dedicated
//! test file gets a process to itself, so one test function owns the
//! counters end to end.

use cocci_core::scan::scan_batch;
use cocci_core::{CompiledRuleSet, ExecOptions};
use cocci_trace::Counter;

fn src(id: &str, callee: &str) -> (String, String, String) {
    (
        format!("{id}.cocci"),
        id.to_string(),
        format!("@scan@\nexpression e;\nposition p;\n@@\n{callee}(e)@p;\n"),
    )
}

#[test]
fn phase_counters_reconcile_with_report_fields() {
    cocci_trace::set_enabled(true);
    cocci_trace::reset();

    let set = CompiledRuleSet::from_sources(&[
        src("r-alpha", "alpha"),
        src("r-beta", "beta"),
        src("r-gamma", "gamma"),
    ])
    .unwrap();
    let files: Vec<(String, String)> = vec![
        (
            "ab.c".into(),
            "void f(void) {\n    alpha(1);\n    beta(2);\n}\n".into(),
        ),
        ("g.c".into(), "void g(void) {\n    gamma(3);\n}\n".into()),
        // No rule atom at all: pruned outright, never parsed.
        ("none.c".into(), "void h(void) {\n    delta(4);\n}\n".into()),
    ];
    let outcomes = scan_batch(
        &set,
        &files,
        &ExecOptions {
            prefilter: true,
            ..Default::default()
        },
    );
    let data = cocci_trace::collect();
    cocci_trace::set_enabled(false);

    // parses counter == the contexts' own parse probes.
    let parses: usize = outcomes.iter().map(|o| o.parses).sum();
    assert!(parses > 0);
    assert_eq!(
        cocci_trace::counter_value(Counter::FilesParsed) as usize,
        parses,
        "files_parsed counter vs ScanOutcome::parses"
    );

    // pruned counter == files the merged prefilter dropped outright.
    let pruned_outright = outcomes
        .iter()
        .filter(|o| o.rules.is_empty() && o.rules_pruned == set.len())
        .count();
    assert_eq!(pruned_outright, 1, "none.c is pruned");
    assert_eq!(
        cocci_trace::counter_value(Counter::FilesPruned) as usize,
        pruned_outright,
        "files_pruned counter vs prefilter skips"
    );

    // Every surviving (file × rule) unit parses through the shared
    // context: the first unit pays, the rest must be recorded cache hits.
    let units: usize = outcomes.iter().map(|o| o.rules.len()).sum();
    assert_eq!(
        cocci_trace::counter_value(Counter::ParseCacheHits) as usize,
        units - parses,
        "cache hits vs (units - real parses)"
    );

    // Span totals tell the same story as the counters.
    let totals = data.phase_totals();
    assert_eq!(totals["parse"].count as usize, parses);
    assert_eq!(
        totals["prefilter"].count as usize,
        files.len(),
        "one merged-prefilter pass per file"
    );
    assert_eq!(
        totals["tree_match"].count as usize, units,
        "one single-seed tree match per surviving unit"
    );
}
