//! Funnel counters vs. per-outcome kill stages: `record_attempt` is the
//! single point where an attempt's stage becomes a counter bump *and* a
//! stored `KillStage`, so the `--stats` funnel and the sum of per-file
//! outcomes must reconcile exactly — no tolerance.
//!
//! Own integration-test binary for the same reason as
//! `trace_reconcile.rs`: trace counters are process-global and a shared
//! test binary's parallel threads would pollute them.

use cocci_core::explain::{funnel_rows, ExplainConfig, KillStage};
use cocci_core::scan::scan_batch;
use cocci_core::{CompiledRuleSet, ExecOptions};
use cocci_trace::Counter;
use std::sync::Arc;

fn src(id: &str, callee: &str) -> (String, String, String) {
    (
        format!("{id}.cocci"),
        id.to_string(),
        format!("@scan@\nexpression e;\nposition p;\n@@\n{callee}(e)@p;\n"),
    )
}

#[test]
fn funnel_counters_reconcile_exactly_with_outcomes() {
    cocci_trace::set_enabled(true);
    cocci_trace::reset();

    let set = CompiledRuleSet::from_sources(&[
        src("r-alpha", "alpha"),
        src("r-beta", "beta"),
        src("r-gamma", "gamma"),
    ])
    .unwrap();
    let files: Vec<(String, String)> = vec![
        (
            "ab.c".into(),
            "void f(void) {\n    alpha(1);\n    beta(2);\n}\n".into(),
        ),
        ("g.c".into(), "void g(void) {\n    gamma(3);\n}\n".into()),
        // No rule atom at all: every rule dies at the prefilter.
        ("none.c".into(), "void h(void) {\n    delta(4);\n}\n".into()),
        // The atom `alpha` appears, so r-alpha survives the prefilter
        // and parses — but `alpha(e)` anchors nothing in a declaration.
        (
            "miss.c".into(),
            "void m(void) {\n    int alpha = 1;\n}\n".into(),
        ),
    ];
    let outcomes = scan_batch(
        &set,
        &files,
        &ExecOptions {
            prefilter: true,
            explain: Some(Arc::new(ExplainConfig::default())),
            ..Default::default()
        },
    );
    cocci_trace::set_enabled(false);

    // The attempts counter is the sum of every outcome's attempt list.
    let total_attempts: usize = outcomes.iter().map(|o| o.attempts.len()).sum();
    assert_eq!(
        cocci_trace::counter_value(Counter::Attempts) as usize,
        total_attempts,
        "attempts counter vs stored attempts"
    );

    // Each kill counter is the count of stored attempts at that stage —
    // exact, because both come from the same record_attempt call.
    for stage in KillStage::ALL {
        let Some(counter) = stage.counter() else {
            continue;
        };
        let stored = outcomes
            .iter()
            .flat_map(|o| &o.attempts)
            .filter(|a| a.stage == stage)
            .count();
        assert_eq!(
            cocci_trace::counter_value(counter) as usize,
            stored,
            "counter {} vs stored attempts at that stage",
            counter.name()
        );
    }

    // Pruned scan rules record exactly one Prefilter attempt each.
    let pruned: usize = outcomes.iter().map(|o| o.rules_pruned).sum();
    assert_eq!(
        cocci_trace::counter_value(Counter::KillPrefilter) as usize,
        pruned,
        "kill_prefilter == sum of rules_pruned"
    );

    // Expected shape of this fixture: 3 completed (alpha+beta in ab.c,
    // gamma in g.c), 1 anchor kill (r-alpha in miss.c), the rest pruned.
    assert_eq!(total_attempts, 12);
    assert_eq!(cocci_trace::counter_value(Counter::KillPrefilter), 8);
    assert_eq!(cocci_trace::counter_value(Counter::KillAnchor), 1);
    let completed = outcomes
        .iter()
        .flat_map(|o| &o.attempts)
        .filter(|a| a.stage == KillStage::Completed)
        .count();
    assert_eq!(completed, 3);

    // Every surviving rule's stored kill_stage matches its attempt, and
    // attempts carry the *scan* rule id — the same attribution findings
    // use.
    for o in &outcomes {
        for r in &o.rules {
            let attempt = o
                .attempts
                .iter()
                .find(|a| a.rule == r.id && a.stage != KillStage::Prefilter)
                .unwrap_or_else(|| panic!("{}: no attempt for surviving rule {}", o.name, r.id));
            assert_eq!(r.kill_stage, Some(attempt.stage), "{}: {}", o.name, r.id);
            if r.matches > 0 {
                assert_eq!(r.kill_stage, Some(KillStage::Completed));
            }
        }
    }
    let miss = outcomes.iter().find(|o| o.name == "miss.c").unwrap();
    let anchor_kill = miss
        .attempts
        .iter()
        .find(|a| a.stage == KillStage::Anchor)
        .expect("r-alpha dies at the anchor stage in miss.c");
    assert_eq!(anchor_kill.rule, "r-alpha");
    assert!(
        anchor_kill.detail.is_some(),
        "explain-on attempts carry kill details"
    );
    let none = outcomes.iter().find(|o| o.name == "none.c").unwrap();
    assert!(none
        .attempts
        .iter()
        .all(|a| a.stage == KillStage::Prefilter && a.detail.is_some()));

    // The funnel table derived from the live counters is monotone and
    // lands exactly on the completed count.
    let rows = funnel_rows(|name| {
        Counter::ALL
            .iter()
            .find(|c| c.name() == name)
            .map(|c| cocci_trace::counter_value(*c))
            .unwrap_or(0)
    });
    assert_eq!(rows[0], ("attempts", total_attempts as u64));
    assert!(
        rows.windows(2).all(|w| w[0].1 >= w[1].1),
        "monotone funnel: {rows:?}"
    );
    assert_eq!(*rows.last().unwrap(), ("completed", completed as u64));
}
