//! Metavariable binding environments.

use cocci_cast::ast::{Expr, Param, Stmt, Type};
use cocci_cast::render;
use cocci_source::{Span, Symbol};
use std::collections::BTreeMap;

/// The value bound to a metavariable.
#[derive(Debug, Clone)]
pub enum Value {
    /// A bound expression (spans point into the target file).
    Expr(Expr),
    /// A bound expression list (argument run).
    ExprList(Vec<Expr>),
    /// A bound statement.
    Stmt(Stmt),
    /// A bound statement list.
    StmtList(Vec<Stmt>),
    /// A bound type.
    Type(Type),
    /// A bound parameter list.
    Params(Vec<Param>),
    /// A bound identifier (name + where it occurred).
    Ident {
        /// The identifier text (interned).
        name: Symbol,
        /// Source occurrence (synthetic for script/fresh-made idents).
        span: Span,
    },
    /// Synthesized text (script outputs, fresh identifiers, pragmainfo
    /// replacements).
    Text(String),
    /// A bound integer constant.
    Int(i128),
    /// A bound position: the source span of the matched occurrence plus
    /// the identity of the file it was matched in. Carrying the file is
    /// what makes inherited positions (`position cfe.p`) compare
    /// correctly: an offset alone would spuriously equate positions
    /// from different files of a corpus. (`Arc<str>`: positions ride
    /// along every environment clone during CFG witness forking, so the
    /// name is shared, not re-allocated.)
    Pos {
        /// Name of the target file the position was bound in.
        file: std::sync::Arc<str>,
        /// Byte span of the matched occurrence.
        span: Span,
        /// Line/column resolution captured when the position crossed a
        /// rule boundary (see [`ResolvedPos`]). `None` until export.
        resolved: Option<ResolvedPos>,
    },
    /// A bound `pragmainfo` (pragma payload remainder).
    Pragma(String),
    /// A value exported across a rule boundary after the target text may
    /// have changed: keeps the AST for structural comparison but renders
    /// from captured text (the old spans would be stale).
    Detached {
        /// The original value (for structural equality).
        ast: Box<Value>,
        /// Text captured at export time.
        text: String,
    },
}

impl Value {
    /// Render the value as target-language text, slicing the original
    /// source where the binding has real spans (preserving formatting),
    /// falling back to the canonical renderer for synthetic nodes.
    pub fn render(&self, src: &str) -> String {
        let slice = |span: Span| -> Option<String> {
            if span.is_synthetic() || span.end as usize > src.len() {
                None
            } else {
                Some(src[span.start as usize..span.end as usize].to_string())
            }
        };
        match self {
            Value::Expr(e) => slice(e.span()).unwrap_or_else(|| render::render_expr(e)),
            Value::ExprList(es) => {
                let merged = es
                    .iter()
                    .fold(Span::SYNTHETIC, |acc, e| acc.merge(e.span()));
                slice(merged).unwrap_or_else(|| {
                    es.iter()
                        .map(render::render_expr)
                        .collect::<Vec<_>>()
                        .join(", ")
                })
            }
            Value::Stmt(s) => slice(s.span()).unwrap_or_else(|| render::render_stmt(s)),
            Value::StmtList(ss) => {
                let merged = ss
                    .iter()
                    .fold(Span::SYNTHETIC, |acc, s| acc.merge(s.span()));
                slice(merged).unwrap_or_else(|| {
                    ss.iter()
                        .map(render::render_stmt)
                        .collect::<Vec<_>>()
                        .join("\n")
                })
            }
            Value::Type(t) => slice(t.span).unwrap_or_else(|| render::render_type(t)),
            Value::Params(ps) => {
                let merged = ps.iter().fold(Span::SYNTHETIC, |acc, p| acc.merge(p.span));
                slice(merged).unwrap_or_else(|| {
                    ps.iter()
                        .map(render::render_param)
                        .collect::<Vec<_>>()
                        .join(", ")
                })
            }
            Value::Ident { name, .. } => name.as_str().to_string(),
            Value::Text(t) => t.clone(),
            Value::Int(i) => i.to_string(),
            Value::Pos { file, span, .. } => format!("<pos:{file}:{}-{}>", span.start, span.end),
            Value::Pragma(p) => p.clone(),
            Value::Detached { text, .. } => text.clone(),
        }
    }

    /// Detach the value from `src`: capture its rendering so it stays
    /// valid after the target text changes, keeping the AST for
    /// structural comparison. Values that carry no spans are returned
    /// unchanged.
    pub fn detach(&self, src: &str) -> Value {
        match self {
            Value::Ident { .. }
            | Value::Text(_)
            | Value::Int(_)
            | Value::Pos { .. }
            | Value::Pragma(_)
            | Value::Detached { .. } => self.clone(),
            other => Value::Detached {
                ast: Box::new(other.clone()),
                text: other.render(src),
            },
        }
    }

    /// Unwrap a detached value to its structural core.
    pub fn structural(&self) -> &Value {
        match self {
            Value::Detached { ast, .. } => ast.structural(),
            other => other,
        }
    }
}

/// Line/column coordinates of a position, captured at the moment it was
/// exported across a rule boundary. Later rules may rewrite the
/// in-memory text and shift byte offsets, so a consumer (the script
/// reporting API, chiefly) must use this bind-time resolution rather
/// than re-resolving the stale span against the current text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedPos {
    /// 1-based start line.
    pub line: u32,
    /// 1-based start column.
    pub col: u32,
    /// 1-based end line.
    pub end_line: u32,
    /// 1-based end column.
    pub end_col: u32,
}

/// A metavariable environment: local bindings of the rule currently being
/// matched.
///
/// Keyed by interned [`Symbol`], so every lookup during matching is a
/// handful of `u32` compares instead of string comparisons. Symbol ids
/// reflect interning order (which varies with thread scheduling), so
/// [`Env::iter`] re-sorts by resolved name — user-visible binding order
/// stays alphabetical and deterministic.
#[derive(Debug, Clone, Default)]
pub struct Env {
    map: BTreeMap<Symbol, Value>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a binding.
    pub fn get(&self, name: impl Into<Symbol>) -> Option<&Value> {
        self.map.get(&name.into())
    }

    /// Insert a binding.
    pub fn bind(&mut self, name: impl Into<Symbol>, value: Value) {
        self.map.insert(name.into(), value);
    }

    /// Whether `name` is bound.
    pub fn is_bound(&self, name: impl Into<Symbol>) -> bool {
        self.map.contains_key(&name.into())
    }

    /// Iterate bindings in name (alphabetical) order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Value)> {
        let mut v: Vec<(Symbol, &Value)> = self.map.iter().map(|(k, val)| (*k, val)).collect();
        v.sort_by_key(|(k, _)| k.as_str());
        v.into_iter()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Exported environment accumulated along the rule chain: bindings
/// qualified by rule name, as visible to later rules via `rule.var`.
#[derive(Debug, Clone, Default)]
pub struct ExportedEnv {
    map: BTreeMap<(Symbol, Symbol), Value>,
}

impl ExportedEnv {
    /// Empty exported environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up `rule.var`.
    pub fn get(&self, rule: impl Into<Symbol>, var: impl Into<Symbol>) -> Option<&Value> {
        self.map.get(&(rule.into(), var.into()))
    }

    /// Record `rule.var = value`.
    pub fn bind(&mut self, rule: impl Into<Symbol>, var: impl Into<Symbol>, value: Value) {
        self.map.insert((rule.into(), var.into()), value);
    }

    /// Merge a rule's local bindings under its name.
    pub fn absorb(&mut self, rule: impl Into<Symbol>, env: &Env) {
        let rule = rule.into();
        for (k, v) in env.iter() {
            self.bind(rule, k, v.clone());
        }
    }

    /// Number of qualified bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocci_cast::ast::Ident;

    #[test]
    fn render_slices_source_for_real_spans() {
        let src = "foo(  a+b , c )";
        let e = Expr::Ident(Ident {
            name: "weird".into(),
            span: Span::new(6, 9), // "a+b"
        });
        assert_eq!(Value::Expr(e).render(src), "a+b");
    }

    #[test]
    fn render_falls_back_for_synthetic() {
        let e = Expr::Ident(Ident::synthetic("x"));
        assert_eq!(Value::Expr(e).render("unrelated"), "x");
    }

    #[test]
    fn text_and_int_render() {
        assert_eq!(Value::Text("hipMalloc".into()).render(""), "hipMalloc");
        assert_eq!(Value::Int(42).render(""), "42");
        assert_eq!(
            Value::Pragma("omp parallel".into()).render(""),
            "omp parallel"
        );
    }

    #[test]
    fn pos_renders_with_file_and_span() {
        let p = Value::Pos {
            file: "dir/a.c".into(),
            span: Span::new(4, 9),
            resolved: None,
        };
        assert_eq!(p.render(""), "<pos:dir/a.c:4-9>");
        // Positions are self-contained: detaching is the identity.
        assert!(matches!(p.detach("whatever"), Value::Pos { .. }));
    }

    #[test]
    fn env_bind_and_lookup() {
        let mut env = Env::new();
        env.bind("T", Value::Text("double".into()));
        assert!(env.is_bound("T"));
        assert_eq!(env.get("T").unwrap().render(""), "double");
        assert!(!env.is_bound("U"));
    }

    #[test]
    fn exported_env_chain() {
        let mut env = Env::new();
        env.bind(
            "fn",
            Value::Ident {
                name: "cudaMalloc".into(),
                span: Span::SYNTHETIC,
            },
        );
        let mut ex = ExportedEnv::new();
        ex.absorb("cfe", &env);
        assert_eq!(ex.get("cfe", "fn").unwrap().render(""), "cudaMalloc");
        assert!(ex.get("other", "fn").is_none());
    }
}
