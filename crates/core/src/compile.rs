//! Compile-once patch artifacts, shared immutably across driver workers.
//!
//! [`CompiledPatch::compile`] runs every per-patch preparation step exactly
//! once per run — `=~`/`!~` regex constraints are built via `cocci-rex`
//! (compile errors surface here, as a *run-level* error, instead of once
//! per file), the inherited-metavariable graph is resolved, and each
//! transform rule's **prefilter** is extracted (the literal atoms a file
//! must contain for the rule to possibly match, see
//! [`cocci_smpl::prefilter`]). The result is immutable and is shared
//! behind an [`Arc`] by every worker thread; per-application mutable state
//! (script-interpreter globals, statistics) stays in
//! [`Patcher`](crate::Patcher).

use crate::flowmatch::{self, FlowPattern};
use crate::orchestrate::ApplyError;
use cocci_cast::DotsQuant;
use cocci_rex::{MultiLiteral, Regex};
use cocci_smpl::{prefilter, Constraint, Pattern, Rule, SemanticPatch};
use std::collections::{HashMap, HashSet};

/// One prefilterable unit for [`AtomSieve::build`] — a patch (or a scan
/// rule) described by its literal-atom conjunctions.
#[derive(Debug, Clone)]
pub struct SieveUnit {
    /// Pruning is allowed for this unit. `false` (script/initialize/
    /// finalize side effects) makes the unit survive every text.
    pub prunable: bool,
    /// One clause per transform rule: the unit survives a text if *any*
    /// clause's atoms all occur in it. An empty clause (a rule with no
    /// required atoms) makes the unit unprunable too.
    pub clauses: Vec<Vec<String>>,
}

/// A merged multi-pattern prefilter over N units' literal atoms.
///
/// All units' atoms are interned into one [`MultiLiteral`] automaton;
/// a **single scan** of the file text then answers "which units may
/// match?" — replacing N independent `str::contains` sweeps. Small atom
/// sets skip the automaton: for the one-patch/few-atoms case,
/// memchr-accelerated `str::contains` beats a byte-at-a-time DFA walk,
/// so [`CompiledPatch::may_match`] keeps its old cost there.
#[derive(Debug, Clone)]
pub struct AtomSieve {
    /// Interned distinct atoms.
    lits: Vec<String>,
    /// Automaton over `lits` (built only above the contains cutoff).
    scanner: Option<MultiLiteral>,
    /// `(unit, atom ids)` conjunctions.
    clauses: Vec<(u32, Vec<u32>)>,
    /// Units that survive every text (unprunable, or an empty clause).
    always: Vec<u32>,
    /// Total number of units.
    units: usize,
}

/// Below this many distinct atoms the sieve evaluates clauses with
/// plain `str::contains` instead of the automaton.
const SIEVE_CONTAINS_CUTOFF: usize = 4;

impl AtomSieve {
    /// Intern all units' atoms and prepare the merged scanner.
    pub fn build(units: &[SieveUnit]) -> AtomSieve {
        let mut ids: HashMap<&str, u32> = HashMap::new();
        let mut lits: Vec<String> = Vec::new();
        let mut clauses = Vec::new();
        let mut always = Vec::new();
        for (ui, unit) in units.iter().enumerate() {
            let ui = ui as u32;
            if !unit.prunable || unit.clauses.iter().any(|c| c.is_empty()) {
                always.push(ui);
                continue;
            }
            for clause in &unit.clauses {
                let lit_ids = clause
                    .iter()
                    .map(|a| {
                        *ids.entry(a.as_str()).or_insert_with(|| {
                            lits.push(a.clone());
                            (lits.len() - 1) as u32
                        })
                    })
                    .collect();
                clauses.push((ui, lit_ids));
            }
        }
        let scanner = if lits.len() > SIEVE_CONTAINS_CUTOFF {
            Some(MultiLiteral::new(&lits))
        } else {
            None
        };
        AtomSieve {
            lits,
            scanner,
            clauses,
            always,
            units: units.len(),
        }
    }

    /// Which atoms occur in `text` — one automaton pass (or a handful of
    /// `contains` sweeps below the cutoff).
    fn found(&self, text: &str) -> Vec<bool> {
        match &self.scanner {
            Some(m) => m.find_all(text),
            None => self
                .lits
                .iter()
                .map(|l| text.contains(l.as_str()))
                .collect(),
        }
    }

    /// Indices of units that may match `text`, ascending.
    pub fn surviving(&self, text: &str) -> Vec<usize> {
        let mut alive = vec![false; self.units];
        for &u in &self.always {
            alive[u as usize] = true;
        }
        if !self.clauses.is_empty() {
            let found = self.found(text);
            for (u, lit_ids) in &self.clauses {
                if !alive[*u as usize] && lit_ids.iter().all(|&l| found[l as usize]) {
                    alive[*u as usize] = true;
                }
            }
        }
        (0..self.units).filter(|&u| alive[u]).collect()
    }

    /// Does *any* unit survive `text`? Early-exits without touching the
    /// text when an always-on unit exists.
    pub fn any_survivor(&self, text: &str) -> bool {
        if !self.always.is_empty() {
            return true;
        }
        if self.clauses.is_empty() {
            return false;
        }
        let found = self.found(text);
        self.clauses
            .iter()
            .any(|(_, lit_ids)| lit_ids.iter().all(|&l| found[l as usize]))
    }

    /// Number of units the sieve was built from.
    pub fn len(&self) -> usize {
        self.units
    }

    /// True when built from zero units.
    pub fn is_empty(&self) -> bool {
        self.units == 0
    }
}

/// Per-rule compiled artifacts.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// Compiled `=~` / `!~` regexes keyed by metavariable name.
    pub regexes: HashMap<String, Regex>,
    /// Prefilter atoms — `Some` for transform rules (possibly empty =
    /// "cannot prefilter"), `None` for script/initialize/finalize rules.
    pub atoms: Option<Vec<String>>,
    /// Lowered CFG path pattern — `Some` for flow-sensitive transform
    /// rules (statement dots) the path engine can route; `None` keeps
    /// the rule on the tree matcher.
    pub flow: Option<FlowPattern>,
    /// The rule's body is pure context (no `-`/`+` lines): its matches
    /// route to findings instead of edits. Always `false` for
    /// script/initialize/finalize rules.
    pub report_only: bool,
}

/// A semantic patch compiled once per run.
#[derive(Debug, Clone)]
pub struct CompiledPatch {
    /// The parsed patch.
    pub patch: SemanticPatch,
    /// Compiled artifacts, one per rule (same indexing as `patch.rules`).
    pub rules: Vec<CompiledRule>,
    /// Rule names that later rules inherit from (metavariables or script
    /// inputs) — only these export environments.
    pub inherited_from: HashSet<String>,
    /// Rule names whose bindings feed a *script* rule. A reporting-only
    /// rule in this set does not auto-emit its generic `matched`
    /// findings: the script authors the real message per site (via
    /// `coccilib.report.print_report`), and emitting both would
    /// double-report every location.
    pub script_inherited_from: HashSet<String>,
    /// Pruning is allowed: the patch consists solely of transform rules.
    /// Script/initialize/finalize rules have per-file side effects (the
    /// interpreter can print), so skipping the pipeline for a pruned file
    /// would make prefiltered and unfiltered runs observably diverge.
    prunable: bool,
    /// Single-unit merged prefilter over this patch's rule atoms —
    /// [`may_match`](CompiledPatch::may_match) is a thin wrapper over it.
    sieve: AtomSieve,
}

impl CompiledPatch {
    /// Compile `patch`: validate and build all regex constraints, resolve
    /// the inheritance set, and extract per-rule prefilter atoms.
    pub fn compile(patch: &SemanticPatch) -> Result<Self, ApplyError> {
        let mut rules = Vec::with_capacity(patch.rules.len());
        let mut inherited_from = HashSet::new();
        let mut script_inherited_from = HashSet::new();
        let mut has_transform = false;
        let mut has_script = false;
        // Metavariables each *named* earlier rule exports (declarations
        // for transform rules, outputs for script rules) — script inputs
        // referencing anything else would fail on every single file at
        // run time; refuse once here instead.
        let mut exported: HashMap<&str, HashSet<&str>> = HashMap::new();
        for rule in &patch.rules {
            let mut regexes = HashMap::new();
            let mut atoms = None;
            let mut flow = None;
            let mut report_only = false;
            match rule {
                Rule::Transform(t) => {
                    has_transform = true;
                    report_only = t.is_report_only();
                    for mv in &t.metavars {
                        if let Some(Constraint::Regex(re)) | Some(Constraint::NotRegex(re)) =
                            &mv.constraint
                        {
                            let compiled = Regex::new(re).map_err(|e| {
                                ApplyError::new(format!(
                                    "bad regex for metavariable `{}`: {e}",
                                    mv.name
                                ))
                            })?;
                            regexes.insert(mv.name.clone(), compiled);
                        }
                        if let Some(from) = &mv.inherited_from {
                            inherited_from.insert(from.clone());
                        }
                    }
                    // Reuse the regexes compiled above (the prefilter only
                    // reads their guaranteed literal factors).
                    atoms = Some(prefilter::pattern_atoms(
                        &t.body.pattern,
                        &t.metavars,
                        Some(&regexes),
                    ));
                    // Flow-sensitive rules (statement dots) are lowered
                    // once here; rules the path engine cannot express
                    // stay on the tree matcher.
                    if t.is_flow_sensitive() {
                        if let Pattern::Stmts(pats) = &t.body.pattern {
                            flow = flowmatch::lower_pattern(pats);
                        }
                    }
                    // Dots carrying an explicit path quantifier must end
                    // up on the CFG route — an unroutable top-level
                    // pattern, or dots nested inside sub-blocks that
                    // only the tree matcher visits, would silently read
                    // `when exists`/`when strict` as plain sequence
                    // dots. Refuse at compile time instead. (A lowered
                    // pattern has only simple top-level anchors, so it
                    // cannot hide nested dots.)
                    if flow.is_none()
                        && t.body
                            .pattern
                            .statement_dots_quants()
                            .iter()
                            .any(|q| *q != DotsQuant::Default)
                    {
                        return Err(ApplyError::new(format!(
                            "rule {}: `when exists` / `when strict` need a CFG-routable \
                             pattern (simple statement anchors around top-level dots)",
                            t.name.as_deref().unwrap_or("<anonymous>")
                        )));
                    }
                    if let Some(name) = &t.name {
                        exported
                            .entry(name.as_str())
                            .or_default()
                            .extend(t.metavars.iter().map(|m| m.name.as_str()));
                    }
                }
                Rule::Script(s) => {
                    has_script = true;
                    let script_name = s.name.as_deref().unwrap_or("<anonymous>");
                    for (local, from, var) in &s.inputs {
                        match exported.get(from.as_str()) {
                            None => {
                                return Err(ApplyError::new(format!(
                                    "script rule {script_name}: input `{local} << {from}.{var}` \
                                     references unknown rule `{from}` (no earlier rule has that \
                                     name)"
                                )))
                            }
                            Some(vars) if !vars.contains(var.as_str()) => {
                                return Err(ApplyError::new(format!(
                                    "script rule {script_name}: input `{local} << {from}.{var}` \
                                     references undeclared metavariable `{var}` of rule `{from}`"
                                )))
                            }
                            Some(_) => {}
                        }
                        inherited_from.insert(from.clone());
                        script_inherited_from.insert(from.clone());
                    }
                    if let Some(name) = &s.name {
                        exported
                            .entry(name.as_str())
                            .or_default()
                            .extend(s.outputs.iter().map(String::as_str));
                    }
                }
                _ => has_script = true,
            }
            rules.push(CompiledRule {
                regexes,
                atoms,
                flow,
                report_only,
            });
        }
        let prunable = has_transform && !has_script;
        let sieve = AtomSieve::build(&[Self::sieve_unit_of(prunable, &rules)]);
        Ok(CompiledPatch {
            patch: patch.clone(),
            rules,
            inherited_from,
            script_inherited_from,
            prunable,
            sieve,
        })
    }

    fn sieve_unit_of(prunable: bool, rules: &[CompiledRule]) -> SieveUnit {
        SieveUnit {
            prunable,
            clauses: rules
                .iter()
                .filter_map(|r| r.atoms.clone())
                .collect::<Vec<_>>(),
        }
    }

    /// This patch described as one prefilter unit, for merging into a
    /// rule-set-wide [`AtomSieve`] (`spatch scan` prefilters all rules
    /// with a single pass over each file).
    pub fn sieve_unit(&self) -> SieveUnit {
        Self::sieve_unit_of(self.prunable, &self.rules)
    }

    /// Cheap literal pre-scan: can any transform rule of this patch
    /// possibly match `text`? `false` is definitive (the full pipeline
    /// would find zero matches and change nothing, and no script side
    /// effects are lost — patches with script/initialize/finalize rules
    /// always return `true`); `true` means "run the real matcher".
    /// A thin single-unit wrapper over [`AtomSieve`].
    ///
    /// Sound under sequential rule semantics: if every rule's prefilter
    /// rejects the *original* text, no rule matches it, so the text is
    /// never transformed and later rules keep seeing the original text.
    pub fn may_match(&self, text: &str) -> bool {
        self.sieve.any_survivor(text)
    }

    /// Prefilter atoms of rule `ri` (`None` for non-transform rules).
    pub fn rule_atoms(&self, ri: usize) -> Option<&[String]> {
        self.rules.get(ri).and_then(|r| r.atoms.as_deref())
    }

    /// Whether the whole patch is transformation-free (every transform
    /// rule reporting-only) — the condition under which `spatch`
    /// auto-selects report mode.
    pub fn is_report_only(&self) -> bool {
        self.patch.is_report_only()
    }

    /// The name of the first rule that *requires* CFG path matching —
    /// its dots carry an explicit `when exists`/`when strict` the tree
    /// reading cannot honor. Drivers running with flow matching
    /// disabled (`--no-flow`) refuse such a patch once, at run level,
    /// instead of erroring on every file.
    pub fn requires_flow(&self) -> Option<&str> {
        self.rules
            .iter()
            .zip(&self.patch.rules)
            .find(|(c, _)| c.flow.as_ref().is_some_and(|fp| fp.explicit_quant))
            .map(|(_, r)| r.name().unwrap_or("<anonymous>"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocci_smpl::parse_semantic_patch;

    #[test]
    fn compile_collects_regexes_and_atoms() {
        let patch = parse_semantic_patch(
            "@@\ntype T;\nidentifier f =~ \"kernel\";\nparameter list PL;\nstatement list SL;\n@@\nT f (PL) { SL }\n",
        )
        .unwrap();
        let c = CompiledPatch::compile(&patch).unwrap();
        assert!(c.rules[0].regexes.contains_key("f"));
        assert_eq!(c.rule_atoms(0).unwrap(), ["kernel"]);
        assert!(c.may_match("void my_kernel_fn(int n) {}"));
        assert!(!c.may_match("void helper(int n) {}"));
    }

    #[test]
    fn compile_lowers_flow_sensitive_rules() {
        // Statement dots between simple anchors → CFG route.
        let patch = parse_semantic_patch("@@ @@\n- lock();\n+ lock2();\n...\nunlock();\n").unwrap();
        let c = CompiledPatch::compile(&patch).unwrap();
        assert!(c.rules[0].flow.is_some());
        // Expression pattern: not flow-sensitive.
        let patch = parse_semantic_patch("@@ @@\n- f(...)\n+ g()\n").unwrap();
        let c = CompiledPatch::compile(&patch).unwrap();
        assert!(c.rules[0].flow.is_none());
        // Statement dots the engine cannot lower (compound anchor) stay
        // on the tree matcher.
        let patch =
            parse_semantic_patch("@@ @@\n- init();\n+ init2();\n...\nwhile (x) { poll(); }\n")
                .unwrap();
        let c = CompiledPatch::compile(&patch).unwrap();
        assert!(c.rules[0].flow.is_none());
    }

    #[test]
    fn quantified_dots_on_unroutable_pattern_refuse_at_compile() {
        // `when exists` on a pattern the path engine cannot lower (a
        // compound anchor here) would silently degrade to plain tree
        // dots — refuse at compile time instead.
        let patch = parse_semantic_patch(
            "@@ @@\n- init();\n+ init2();\n... when exists\nwhile (x) { poll(); }\n",
        )
        .unwrap();
        let err = CompiledPatch::compile(&patch).unwrap_err();
        assert!(err.message.contains("when exists"), "{err}");
        // Quantified dots nested inside a braced sub-block never reach
        // the CFG route either — also a compile error.
        let patch = parse_semantic_patch(
            "@@ @@\n- start();\n+ start2();\nif (x) { ... when exists stop(); }\n",
        )
        .unwrap();
        let err = CompiledPatch::compile(&patch).unwrap_err();
        assert!(err.message.contains("when exists"), "{err}");
        // A routable quantified rule still compiles to a flow pattern.
        let patch =
            parse_semantic_patch("@@ @@\n- a();\n+ a2();\n... when exists\nb();\n").unwrap();
        let c = CompiledPatch::compile(&patch).unwrap();
        assert!(c.rules[0].flow.is_some());
        assert!(c.rules[0].flow.as_ref().unwrap().explicit_quant);
        // Plain nested dots (the LIKWID shape) stay fine on the tree
        // route.
        let patch =
            parse_semantic_patch("@@ @@\n#pragma omp ...\n{\n+ START();\n...\n}\n").unwrap();
        assert!(CompiledPatch::compile(&patch).is_ok());
    }

    #[test]
    fn compile_error_is_run_level() {
        let patch =
            parse_semantic_patch("@@\nidentifier f =~ \"bad(regex\";\n@@\n- f();\n+ g();\n")
                .unwrap();
        let err = CompiledPatch::compile(&patch).unwrap_err();
        assert!(err.message.contains("regex"), "{err}");
    }

    #[test]
    fn script_input_referencing_undeclared_metavar_refuses_at_compile() {
        // Valid inheritance compiles: `r` declares `e`, the script pulls it.
        let ok = parse_semantic_patch(
            "@r@\nexpression e;\nposition p;\n@@\nalpha(e)@p;\n\n\
             @script:python s@\nx << r.e;\n@@\nprint(x)\n",
        )
        .unwrap();
        assert!(CompiledPatch::compile(&ok).is_ok());
        // Undeclared metavariable: used to fail per file at run time.
        let bad_var = parse_semantic_patch(
            "@r@\nexpression e;\n@@\nalpha(e);\n\n\
             @script:python s@\nx << r.missing;\n@@\nprint(x)\n",
        )
        .unwrap();
        let err = CompiledPatch::compile(&bad_var).unwrap_err();
        assert!(
            err.message.contains("undeclared metavariable `missing`"),
            "{err}"
        );
        assert!(err.message.contains("rule `r`"), "{err}");
        // Unknown source rule (includes a later rule: rules run in order).
        let bad_rule = parse_semantic_patch(
            "@script:python s@\nx << r.e;\n@@\nprint(x)\n\n\
             @r@\nexpression e;\n@@\nalpha(e);\n",
        )
        .unwrap();
        let err = CompiledPatch::compile(&bad_rule).unwrap_err();
        assert!(err.message.contains("unknown rule `r`"), "{err}");
        // A script's declared *outputs* are inheritable by later scripts.
        let chain = parse_semantic_patch(
            "@r@\nexpression e;\n@@\nalpha(e);\n\n\
             @script:python a@\nx << r.e;\nout;\n@@\nout = x\n\n\
             @script:python b@\ny << a.out;\n@@\nprint(y)\n",
        )
        .unwrap();
        assert!(CompiledPatch::compile(&chain).is_ok());
    }

    #[test]
    fn multi_rule_prefilter_is_any_rule() {
        let patch =
            parse_semantic_patch("@@ @@\n- alpha();\n+ a2();\n\n@@ @@\n- beta();\n+ b2();\n")
                .unwrap();
        let c = CompiledPatch::compile(&patch).unwrap();
        assert!(c.may_match("void f(void) { alpha(); }"));
        assert!(c.may_match("void f(void) { beta(); }"));
        assert!(!c.may_match("void f(void) { gamma(); }"));
    }

    #[test]
    fn script_rules_disable_pruning() {
        // Script/initialize rules have per-file side effects; a patch
        // containing any must never prune, or prefiltered and unfiltered
        // runs would observably diverge.
        let patch = parse_semantic_patch(
            "@initialize:python@ @@\nN = { \"a\": \"b\" }\n\n@@ @@\n- alpha();\n+ beta();\n",
        )
        .unwrap();
        let c = CompiledPatch::compile(&patch).unwrap();
        assert!(c.may_match("void f(void) { gamma(); }"));
    }

    #[test]
    fn unfilterable_rule_disables_pruning() {
        // A pattern of pure metavariables has no required atoms, so the
        // patch as a whole can never prune.
        let patch = parse_semantic_patch(
            "@@\nexpression e;\n@@\n- f(e);\n+ g(e);\n\n@@\nexpression x, y;\n@@\n- x = y;\n+ y = x;\n",
        )
        .unwrap();
        let c = CompiledPatch::compile(&patch).unwrap();
        assert_eq!(c.rule_atoms(1).unwrap(), &[] as &[String]);
        assert!(c.may_match("anything at all"));
    }
}
