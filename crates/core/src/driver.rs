//! Parallel multi-file driver.
//!
//! Applying one semantic patch to N files is embarrassingly parallel —
//! the per-file pipeline shares nothing but the (read-only) patch. The
//! driver follows the hpc-parallel guide idioms: scoped threads pulling
//! file indices from an atomic work counter, results collected under a
//! mutex; no locks are held while patching.

use crate::orchestrate::Patcher;
use cocci_smpl::SemanticPatch;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Result of patching one file.
#[derive(Debug, Clone)]
pub struct FileOutcome {
    /// File name as passed in.
    pub name: String,
    /// Patched text when the patch changed the file.
    pub output: Option<String>,
    /// Error message when the file failed (parse error, edit conflict).
    pub error: Option<String>,
    /// Matches found across rules.
    pub matches: usize,
}

/// Apply `patch` to every `(name, text)` pair using `threads` worker
/// threads (0 = number of available CPUs). Outcomes are returned in input
/// order.
pub fn apply_to_files(
    patch: &SemanticPatch,
    files: &[(String, String)],
    threads: usize,
) -> Vec<FileOutcome> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(files.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<FileOutcome>>> = Mutex::new(vec![None; files.len()]);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // One Patcher per worker: script-interpreter globals are
                // per-application state and must not be shared.
                let mut patcher = match Patcher::new(patch) {
                    Ok(p) => p,
                    Err(e) => {
                        // Compile error affects every file identically;
                        // record it on whichever files this worker claims.
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= files.len() {
                                return;
                            }
                            results.lock().unwrap()[i] = Some(FileOutcome {
                                name: files[i].0.clone(),
                                output: None,
                                error: Some(e.to_string()),
                                matches: 0,
                            });
                        }
                    }
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= files.len() {
                        return;
                    }
                    let (name, text) = &files[i];
                    let outcome = match patcher.apply(name, text) {
                        Ok(output) => FileOutcome {
                            name: name.clone(),
                            output,
                            error: None,
                            matches: patcher.last_stats.matches_per_rule.iter().sum(),
                        },
                        Err(e) => FileOutcome {
                            name: name.clone(),
                            output: None,
                            error: Some(e.to_string()),
                            matches: 0,
                        },
                    };
                    results.lock().unwrap()[i] = Some(outcome);
                }
            });
        }
    });

    results
        .into_inner()
        .expect("worker thread panicked")
        .into_iter()
        .map(|o| o.expect("every file processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocci_smpl::parse_semantic_patch;

    #[test]
    fn parallel_driver_patches_all_files() {
        let patch = parse_semantic_patch("@@ @@\n- old_api(42);\n+ new_api(42);\n").unwrap();
        let files: Vec<(String, String)> = (0..32)
            .map(|i| {
                (
                    format!("f{i}.c"),
                    "void f(void) { old_api(42); done(); }\n".to_string(),
                )
            })
            .collect();
        let outcomes = apply_to_files(&patch, &files, 4);
        assert_eq!(outcomes.len(), 32);
        for o in &outcomes {
            assert!(o.error.is_none(), "{:?}", o.error);
            let out = o.output.as_ref().expect("patched");
            assert!(out.contains("new_api(42);"));
            assert!(!out.contains("old_api"));
        }
    }

    #[test]
    fn results_keep_input_order() {
        let patch = parse_semantic_patch("@@ @@\n- a();\n+ b();\n").unwrap();
        let files: Vec<(String, String)> = (0..8)
            .map(|i| (format!("f{i}.c"), "void g(void) { a(); }\n".to_string()))
            .collect();
        let outcomes = apply_to_files(&patch, &files, 3);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.name, format!("f{i}.c"));
        }
    }

    #[test]
    fn unmatched_files_return_none() {
        let patch = parse_semantic_patch("@@ @@\n- nothing_here();\n+ x();\n").unwrap();
        let files = vec![("f.c".to_string(), "void g(void) { other(); }\n".to_string())];
        let outcomes = apply_to_files(&patch, &files, 1);
        assert!(outcomes[0].output.is_none());
        assert!(outcomes[0].error.is_none());
    }
}
