//! Parallel multi-file driver.
//!
//! Applying one semantic patch to N files is embarrassingly parallel —
//! the per-file pipeline shares nothing but the (read-only) compiled
//! patch. The driver follows the hpc-parallel guide idioms: scoped
//! threads pulling file indices from an atomic work counter, results
//! collected under a mutex; no locks are held while patching.
//!
//! The patch is compiled **once** per run ([`CompiledPatch`]) and shared
//! immutably by every worker; each worker only builds a cheap
//! [`Patcher`] wrapper for its mutable per-application state. A compile
//! error therefore surfaces exactly once, as the run-level `Err` of
//! [`apply_to_files`], instead of being repeated for every file. With
//! `prefilter` enabled, [`apply_batch`] skips lexing/parsing entirely for
//! files that fail the patch's literal-atom pre-scan.

use crate::compile::CompiledPatch;
use crate::explain::{self, ExplainConfig, KillStage, RuleAttempt};
use crate::orchestrate::{ApplyError, Patcher};
use crate::pool::{resolve_threads, ResultSlots, WorkQueue};
use crate::report::content_hash;
use cocci_smpl::{Rule, SemanticPatch};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of patching one file.
#[derive(Debug, Clone)]
pub struct FileOutcome {
    /// File name as passed in.
    pub name: String,
    /// Patched text when the patch changed the file.
    pub output: Option<String>,
    /// Error message when the file failed (parse error, edit conflict).
    pub error: Option<String>,
    /// Matches found across rules.
    pub matches: usize,
    /// Per-path witnesses produced by CFG-routed (statement-dots)
    /// rules; cross-branch bindings that fork count once per path.
    pub witnesses: usize,
    /// Findings from reporting-only rules and script `print_report`
    /// calls — one per match witness.
    pub findings: Vec<crate::findings::Finding>,
    /// Findings dropped by `// spatch-ignore` suppression markers.
    pub suppressed: usize,
    /// The prefilter skipped this file before lexing/parsing.
    pub pruned: bool,
    /// The file exceeded the per-file time budget.
    pub timed_out: bool,
    /// FNV-1a hash of the *original* file text (resume bookkeeping).
    pub hash: u64,
    /// Wall-clock seconds this file took (prefilter scan included).
    pub seconds: f64,
    /// One record per (this file × rule) attempt with the stage that
    /// ended it — the explain funnel's per-file half. Empty for error
    /// outcomes (unattributable) and resumed files.
    pub attempts: Vec<RuleAttempt>,
    /// File-level summary: the deepest stage any attempt reached
    /// (`Completed` when any rule completed), `None` when nothing ran.
    pub kill_stage: Option<KillStage>,
}

/// Per-run execution knobs shared by every worker.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads (0 = number of available CPUs).
    pub threads: usize,
    /// Skip files failing the literal-atom pre-scan without parsing.
    pub prefilter: bool,
    /// Route flow-sensitive rules through the CFG path engine (all-paths
    /// statement dots). Off = legacy tree-sequence dots.
    pub flow: bool,
    /// Per-file wall-clock budget in milliseconds, checked at rule
    /// boundaries; over-budget files get a `timeout` outcome.
    pub timeout_ms: Option<u64>,
    /// `--explain` filter: attempts matching it carry human-readable
    /// kill details (the stage itself is always recorded).
    pub explain: Option<Arc<ExplainConfig>>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 0,
            prefilter: false,
            flow: true,
            timeout_ms: None,
            explain: None,
        }
    }
}

/// Apply `patch` to every `(name, text)` pair using `threads` worker
/// threads (0 = number of available CPUs). Outcomes are returned in input
/// order. A patch compile error is returned once, at run level.
pub fn apply_to_files(
    patch: &SemanticPatch,
    files: &[(String, String)],
    threads: usize,
) -> Result<Vec<FileOutcome>, ApplyError> {
    let compiled = Arc::new(CompiledPatch::compile(patch)?);
    Ok(apply_batch(&compiled, files, threads, false))
}

/// Apply an already-compiled patch to one in-memory batch of files.
///
/// With `prefilter`, files that cannot match (per
/// [`CompiledPatch::may_match`]) are marked pruned without being parsed.
/// Shorthand for [`apply_batch_opts`] with default flow/timeout knobs.
pub fn apply_batch(
    compiled: &Arc<CompiledPatch>,
    files: &[(String, String)],
    threads: usize,
    prefilter: bool,
) -> Vec<FileOutcome> {
    apply_batch_opts(
        compiled,
        files,
        &ExecOptions {
            threads,
            prefilter,
            ..Default::default()
        },
    )
}

/// Apply an already-compiled patch to one in-memory batch of files with
/// full execution options (prefilter, CFG flow routing, per-file time
/// budget).
pub fn apply_batch_opts(
    compiled: &Arc<CompiledPatch>,
    files: &[(String, String)],
    opts: &ExecOptions,
) -> Vec<FileOutcome> {
    // Workers are cheap (no stack pre-commit) and the queue parks the
    // surplus, so the count is NOT clamped to `files.len()`: a caller
    // that feeds small trailing batches through a shared `ExecOptions`
    // gets the same team size every time. (The corpus drivers go
    // further and keep one team alive across all batches — see
    // [`crate::pool`].)
    let threads = resolve_threads(opts.threads);
    let queue: WorkQueue<usize> = WorkQueue::new(threads);
    let slots: ResultSlots<FileOutcome> = ResultSlots::new();
    slots.reserve(files.len());

    std::thread::scope(|scope| {
        for w in 0..threads {
            let (queue, slots) = (&queue, &slots);
            scope.spawn(move || {
                // One Patcher per worker over the shared compile:
                // script-interpreter globals are per-application state and
                // must not be shared, but the compiled patch is immutable.
                let mut patcher = Patcher::from_compiled(Arc::clone(compiled));
                patcher.flow_enabled = opts.flow;
                patcher.time_budget = opts.timeout_ms.map(Duration::from_millis);
                patcher.explain = opts.explain.clone();
                while let Some(i) = queue.pop(w) {
                    let (name, text) = &files[i];
                    slots.set(i, run_one(&mut patcher, compiled, name, text, opts));
                }
            });
        }
        queue.push_chunk(0..files.len());
        queue.close();
    });

    slots.drain_ready()
}

thread_local! {
    /// Set while this thread runs inside [`catch_matcher_panics`]: the
    /// panic hook stays silent for it (the payload is captured and
    /// surfaced as the file's error entry), so one pathological file
    /// does not spray "thread panicked" noise over a corpus run.
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Chain a once-installed hook in front of the default one that
/// suppresses output only for threads currently inside the catch.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

/// Run `f`, converting a panic into an ordinary [`ApplyError`] so one
/// pathological file maps to a `failed` report entry instead of
/// poisoning the whole corpus run (the worker thread — and with it the
/// scoped-thread driver — would otherwise die with it).
pub(crate) fn catch_matcher_panics<T>(
    name: &str,
    f: impl FnOnce() -> Result<T, ApplyError>,
) -> Result<T, ApplyError> {
    install_quiet_panic_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    QUIET_PANICS.with(|q| q.set(false));
    match caught {
        Ok(result) => result,
        Err(payload) => {
            cocci_trace::count(cocci_trace::Counter::Panics, 1);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            Err(ApplyError::new(format!("{name}: matcher panicked: {msg}")))
        }
    }
}

/// One prefilter-killed attempt per transform rule of the patch, with
/// the absent required atoms as the `--explain` detail.
fn prefilter_attempts(
    compiled: &CompiledPatch,
    name: &str,
    text: &str,
    explain: Option<&ExplainConfig>,
) -> Vec<RuleAttempt> {
    let mut attempts = Vec::new();
    for (ri, rule) in compiled.patch.rules.iter().enumerate() {
        let Rule::Transform(t) = rule else { continue };
        let label = t.name.as_deref().unwrap_or("<anonymous>");
        let detail =
            explain
                .filter(|cfg| cfg.matches(name, label))
                .map(|_| match compiled.rule_atoms(ri) {
                    Some(atoms) => {
                        let absent: Vec<&str> = atoms
                            .iter()
                            .filter(|a| !text.contains(a.as_str()))
                            .map(String::as_str)
                            .collect();
                        format!("missing required atom(s): {}", absent.join(", "))
                    }
                    None => "prefilter rejected the file".to_string(),
                });
        attempts.push(RuleAttempt {
            rule: label.to_string(),
            stage: KillStage::Prefilter,
            detail,
        });
    }
    attempts
}

/// Fold per-rule attempts into the file-level summary stage.
fn file_stage(attempts: &[RuleAttempt]) -> Option<KillStage> {
    attempts.iter().map(|a| a.stage).max()
}

/// Store the funnel counters (and `--explain` instant events) for every
/// attempt of one file — the single record point per attempt, so the
/// `--stats` funnel, the report metrics, and the per-outcome stages
/// reconcile exactly.
fn record_attempts(name: &str, attempts: &[RuleAttempt]) {
    for a in attempts {
        explain::record_attempt(a.stage, name, &a.rule, a.detail.as_deref());
    }
}

/// Run the per-file pipeline (prefilter scan, then full apply) once.
pub(crate) fn run_one(
    patcher: &mut Patcher,
    compiled: &CompiledPatch,
    name: &str,
    text: &str,
    opts: &ExecOptions,
) -> FileOutcome {
    let t0 = Instant::now();
    let hash = content_hash(text);
    let survives = !opts.prefilter || {
        let _span = cocci_trace::span(cocci_trace::Phase::Prefilter);
        compiled.may_match(text)
    };
    if !survives {
        cocci_trace::count(cocci_trace::Counter::FilesPruned, 1);
        let attempts = prefilter_attempts(compiled, name, text, opts.explain.as_deref());
        record_attempts(name, &attempts);
        let kill_stage = file_stage(&attempts);
        return FileOutcome {
            name: name.to_string(),
            output: None,
            error: None,
            matches: 0,
            witnesses: 0,
            findings: Vec::new(),
            suppressed: 0,
            pruned: true,
            timed_out: false,
            hash,
            seconds: t0.elapsed().as_secs_f64(),
            attempts,
            kill_stage,
        };
    }
    // Attempt records survive in `last_stats` only when the application
    // itself stored them (success, timeout, parse failure); clear the
    // previous file's residue so unattributable errors stay empty.
    patcher.last_stats.attempts.clear();
    match catch_matcher_panics(name, || patcher.apply(name, text)) {
        Ok(output) => {
            let findings = std::mem::take(&mut patcher.last_stats.findings);
            let mut attempts = std::mem::take(&mut patcher.last_stats.attempts);
            // Pre-suppression finding counts per rule, to upgrade a
            // completed attempt whose findings all vanish.
            let pre: Vec<(String, usize)> = count_by_rule(&findings);
            // `// spatch-ignore` markers drop findings here, at the
            // outcome boundary — matching itself never sees them.
            let (findings, suppressed) = if findings.is_empty() {
                (findings, 0)
            } else {
                crate::suppress::SuppressionIndex::parse(text).filter(findings)
            };
            cocci_trace::count(cocci_trace::Counter::Suppressions, suppressed as u64);
            if suppressed > 0 {
                let post = count_by_rule(&findings);
                let count = |list: &[(String, usize)], rule: &str| {
                    list.iter()
                        .find(|(r, _)| r == rule)
                        .map(|(_, n)| *n)
                        .unwrap_or(0)
                };
                for a in &mut attempts {
                    let before = count(&pre, &a.rule);
                    if a.stage == KillStage::Completed && before > 0 && count(&post, &a.rule) == 0 {
                        a.stage = KillStage::Suppressed;
                        if a.detail.is_some() || patcher.explain_wants(name, &a.rule) {
                            a.detail = Some(format!("all {before} finding(s) suppressed inline"));
                        }
                    }
                }
            }
            record_attempts(name, &attempts);
            let kill_stage = file_stage(&attempts);
            FileOutcome {
                name: name.to_string(),
                output,
                error: None,
                matches: patcher.last_stats.matches_per_rule.iter().sum(),
                witnesses: patcher.last_stats.witnesses,
                findings,
                suppressed,
                pruned: false,
                timed_out: false,
                hash,
                seconds: t0.elapsed().as_secs_f64(),
                attempts,
                kill_stage,
            }
        }
        Err(e) => {
            // Timeout and parse failures stored their attempts before
            // erroring; other errors left the vec empty (cleared above)
            // and stay out of the funnel.
            let attempts = std::mem::take(&mut patcher.last_stats.attempts);
            record_attempts(name, &attempts);
            let kill_stage = file_stage(&attempts);
            FileOutcome {
                name: name.to_string(),
                output: None,
                error: Some(e.to_string()),
                matches: 0,
                witnesses: 0,
                findings: Vec::new(),
                suppressed: 0,
                pruned: false,
                timed_out: e.timed_out,
                hash,
                seconds: t0.elapsed().as_secs_f64(),
                attempts,
                kill_stage,
            }
        }
    }
}

/// Finding counts grouped by rule name (small lists; no hashing).
fn count_by_rule(findings: &[crate::findings::Finding]) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = Vec::new();
    for f in findings {
        match out.iter_mut().find(|(r, _)| *r == f.rule) {
            Some((_, n)) => *n += 1,
            None => out.push((f.rule.clone(), 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocci_smpl::parse_semantic_patch;

    #[test]
    fn parallel_driver_patches_all_files() {
        let patch = parse_semantic_patch("@@ @@\n- old_api(42);\n+ new_api(42);\n").unwrap();
        let files: Vec<(String, String)> = (0..32)
            .map(|i| {
                (
                    format!("f{i}.c"),
                    "void f(void) { old_api(42); done(); }\n".to_string(),
                )
            })
            .collect();
        let outcomes = apply_to_files(&patch, &files, 4).unwrap();
        assert_eq!(outcomes.len(), 32);
        for o in &outcomes {
            assert!(o.error.is_none(), "{:?}", o.error);
            let out = o.output.as_ref().expect("patched");
            assert!(out.contains("new_api(42);"));
            assert!(!out.contains("old_api"));
        }
    }

    #[test]
    fn results_keep_input_order() {
        let patch = parse_semantic_patch("@@ @@\n- a();\n+ b();\n").unwrap();
        let files: Vec<(String, String)> = (0..8)
            .map(|i| (format!("f{i}.c"), "void g(void) { a(); }\n".to_string()))
            .collect();
        let outcomes = apply_to_files(&patch, &files, 3).unwrap();
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.name, format!("f{i}.c"));
        }
    }

    #[test]
    fn unmatched_files_return_none() {
        let patch = parse_semantic_patch("@@ @@\n- nothing_here();\n+ x();\n").unwrap();
        let files = vec![("f.c".to_string(), "void g(void) { other(); }\n".to_string())];
        let outcomes = apply_to_files(&patch, &files, 1).unwrap();
        assert!(outcomes[0].output.is_none());
        assert!(outcomes[0].error.is_none());
        assert!(!outcomes[0].pruned);
    }

    #[test]
    fn compile_error_surfaces_once_at_run_level() {
        let patch =
            parse_semantic_patch("@@\nidentifier f =~ \"bad(regex\";\n@@\n- f();\n+ g();\n")
                .unwrap();
        let files: Vec<(String, String)> = (0..16)
            .map(|i| (format!("f{i}.c"), "void f(void) {}\n".to_string()))
            .collect();
        let err = apply_to_files(&patch, &files, 4).unwrap_err();
        assert!(err.to_string().contains("regex"), "{err}");
    }

    #[test]
    fn prefilter_prunes_without_parsing() {
        let patch = parse_semantic_patch("@@ @@\n- old_api(1);\n+ new_api(1);\n").unwrap();
        let compiled = Arc::new(CompiledPatch::compile(&patch).unwrap());
        let files = vec![
            ("hit.c".to_string(), "void f(void) { old_api(1); }\n".into()),
            ("miss.c".to_string(), "void f(void) { other(); }\n".into()),
            // Would be a parse error — the prefilter skips it before the
            // parser ever sees it.
            ("broken.c".to_string(), "void f( {".into()),
        ];
        let outcomes = apply_batch(&compiled, &files, 2, true);
        assert!(outcomes[0].output.is_some() && !outcomes[0].pruned);
        assert!(outcomes[1].pruned && outcomes[1].error.is_none());
        assert!(outcomes[2].pruned && outcomes[2].error.is_none());
        // Same batch without the prefilter: the broken file errors.
        let outcomes = apply_batch(&compiled, &files, 2, false);
        assert!(!outcomes[1].pruned);
        assert!(outcomes[2].error.is_some());
    }

    #[test]
    fn zero_time_budget_times_every_file_out() {
        let patch = parse_semantic_patch("@@ @@\n- a();\n+ b();\n").unwrap();
        let compiled = Arc::new(CompiledPatch::compile(&patch).unwrap());
        let files = vec![("f.c".to_string(), "void g(void) { a(); }\n".to_string())];
        let outcomes = apply_batch_opts(
            &compiled,
            &files,
            &ExecOptions {
                threads: 1,
                timeout_ms: Some(0),
                ..Default::default()
            },
        );
        assert!(outcomes[0].timed_out);
        assert!(outcomes[0].output.is_none());
        assert!(outcomes[0].error.as_deref().unwrap().contains("budget"));
        // A generous budget does not trip.
        let outcomes = apply_batch_opts(
            &compiled,
            &files,
            &ExecOptions {
                threads: 1,
                timeout_ms: Some(60_000),
                ..Default::default()
            },
        );
        assert!(!outcomes[0].timed_out);
        assert!(outcomes[0].output.is_some());
    }

    #[test]
    fn flow_toggle_changes_dots_semantics() {
        // Tree dots match across the early return; all-paths dots refuse.
        let patch =
            parse_semantic_patch("@@ @@\n- begin();\n+ begin2();\n...\nfinish();\n").unwrap();
        let compiled = Arc::new(CompiledPatch::compile(&patch).unwrap());
        let files = vec![(
            "f.c".to_string(),
            "void f(int x) { begin(); if (x) return; finish(); }\n".to_string(),
        )];
        let flow_on = apply_batch_opts(&compiled, &files, &ExecOptions::default());
        assert!(flow_on[0].output.is_none(), "all-paths semantics refuses");
        let flow_off = apply_batch_opts(
            &compiled,
            &files,
            &ExecOptions {
                flow: false,
                ..Default::default()
            },
        );
        assert!(
            flow_off[0].output.is_some(),
            "tree semantics over-matches: {:?}",
            flow_off[0].error
        );
    }

    #[test]
    fn matcher_panics_map_to_failed_outcomes() {
        // The guard converts a panic into an ordinary ApplyError (the
        // report-side contract for one pathological file), instead of
        // letting it poison the scoped-thread driver.
        let err = catch_matcher_panics::<()>("weird.c", || panic!("synthetic blowup")).unwrap_err();
        assert!(err.message.contains("weird.c"), "{err}");
        assert!(err.message.contains("synthetic blowup"), "{err}");
        assert!(err.message.contains("panicked"), "{err}");
        assert!(!err.timed_out);
        // String payloads are extracted too.
        let owned = String::from("owned payload");
        let err = catch_matcher_panics::<()>("s.c", move || panic!("{owned}")).unwrap_err();
        assert!(err.message.contains("owned payload"), "{err}");
        // Ordinary results pass through untouched.
        assert_eq!(catch_matcher_panics("f.c", || Ok(7)).unwrap(), 7);
        let plain = catch_matcher_panics::<()>("f.c", || Err(ApplyError::new("x"))).unwrap_err();
        assert_eq!(plain.message, "x");
    }

    #[test]
    fn flow_outcomes_carry_witness_counts_and_rewrite_both_arms() {
        // A metavariable that binds differently in the two arms forks
        // one witness per path; each drives its own rewrite.
        let patch =
            parse_semantic_patch("@@\nexpression e;\n@@\na();\n...\n- b(e);\n+ c(e);\n").unwrap();
        let files = vec![(
            "f.c".to_string(),
            "void f(int x) {\n    a();\n    if (x) {\n        b(1);\n    } else {\n        b(2);\n    }\n    done();\n}\n"
                .to_string(),
        )];
        let outcomes = apply_to_files(&patch, &files, 1).unwrap();
        assert!(outcomes[0].error.is_none(), "{:?}", outcomes[0].error);
        assert_eq!(outcomes[0].witnesses, 2, "one witness per path binding");
        let out = outcomes[0].output.as_ref().expect("both arms rewritten");
        assert!(out.contains("c(1);"), "{out}");
        assert!(out.contains("c(2);"), "{out}");
        assert!(!out.contains("b(1)") && !out.contains("b(2)"), "{out}");
    }

    #[test]
    fn suppression_markers_drop_findings_from_outcomes() {
        let patch = parse_semantic_patch("@scan@\nexpression e;\nposition p;\n@@\nold_api(e)@p;\n")
            .unwrap();
        let files = vec![(
            "s.c".to_string(),
            "void f(void) {\n    old_api(1); // spatch-ignore scan\n\n    old_api(2);\n}\n"
                .to_string(),
        )];
        let outcomes = apply_to_files(&patch, &files, 1).unwrap();
        assert_eq!(outcomes[0].matches, 2, "matching still sees both sites");
        assert_eq!(outcomes[0].findings.len(), 1);
        assert_eq!(outcomes[0].findings[0].line, 4);
        assert_eq!(outcomes[0].suppressed, 1);
        // A marker naming a different rule suppresses nothing.
        let files = vec![(
            "s.c".to_string(),
            "void f(void) {\n    old_api(1); // spatch-ignore other-rule\n}\n".to_string(),
        )];
        let outcomes = apply_to_files(&patch, &files, 1).unwrap();
        assert_eq!(outcomes[0].findings.len(), 1);
        assert_eq!(outcomes[0].suppressed, 0);
    }

    #[test]
    fn outcomes_carry_content_hashes() {
        let patch = parse_semantic_patch("@@ @@\n- a();\n+ b();\n").unwrap();
        let files = vec![
            ("f.c".to_string(), "void g(void) { a(); }\n".to_string()),
            ("g.c".to_string(), "void g(void) { a(); }\n".to_string()),
            ("h.c".to_string(), "void h(void) { x(); }\n".to_string()),
        ];
        let outcomes = apply_to_files(&patch, &files, 1).unwrap();
        assert_eq!(outcomes[0].hash, outcomes[1].hash, "same text, same hash");
        assert_ne!(outcomes[0].hash, outcomes[2].hash);
        assert_eq!(outcomes[0].hash, content_hash("void g(void) { a(); }\n"));
    }

    #[test]
    fn outcomes_carry_timings() {
        let patch = parse_semantic_patch("@@ @@\n- a();\n+ b();\n").unwrap();
        let files = vec![("f.c".to_string(), "void g(void) { a(); }\n".to_string())];
        let outcomes = apply_to_files(&patch, &files, 1).unwrap();
        assert!(outcomes[0].seconds > 0.0);
    }
}
