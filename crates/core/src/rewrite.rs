//! Edit generation: from a match and the rule body's `-`/`+` annotations
//! to concrete span edits on the target file.
//!
//! The rewrite walks the pattern recursively, consulting the per-line
//! annotations of the rule body ([`cocci_smpl::RuleBody`]) and the
//! correspondence pairs recorded by the matcher:
//!
//! * a pattern element whose tokens are all on `-` lines **deletes** its
//!   paired source span (expanded to whole lines when that leaves the line
//!   blank);
//! * a mixed element is **re-rendered**: the element's body lines are
//!   emitted skipping `-` lines, with metavariables replaced by their
//!   bindings (sliced from the original source, so unchanged inner code
//!   keeps its formatting) and `...` replaced by the source text its dots
//!   matched; the result replaces the paired source span.
//!   Structured statements recurse instead when the edits are confined to
//!   a header or a block body, keeping diffs minimal;
//! * `+` line groups anchored *between* pattern elements are insertions
//!   at the corresponding list position, indented like their context.

use crate::edits::{expand_to_full_lines, line_indent, line_start, next_line_start, EditSet};
use crate::matcher::{MatchState, PairKind};
use cocci_cast::ast::*;
use cocci_cast::token::{Punct, TokenKind};
use cocci_smpl::{Annot, PlusGroup, RuleBody};
use cocci_source::Span;

/// Generate edits for one match of a rule.
pub fn emit_edits(
    body: &RuleBody,
    st: &MatchState,
    src: &str,
    edits: &mut EditSet,
) -> Result<(), String> {
    let rw = Rewriter { body, st, src };
    match &body.pattern {
        cocci_smpl::Pattern::Expr(e) => rw.rewrite_expr_root(e, edits),
        cocci_smpl::Pattern::Stmts(stmts) => rw.rewrite_stmt_list(stmts, None, edits),
        cocci_smpl::Pattern::Items(items) => rw.rewrite_item_list(items, edits),
    }
}

struct Rewriter<'a> {
    body: &'a RuleBody,
    st: &'a MatchState,
    src: &'a str,
}

impl<'a> Rewriter<'a> {
    // ---- queries ----

    fn has_edits(&self, span: Span) -> bool {
        self.body.span_has_minus(span) || self.body.span_has_interior_plus(span)
    }

    fn all_minus(&self, span: Span) -> bool {
        self.body.span_all_minus(span)
    }

    /// Line range (inclusive lo, inclusive hi) covering `span`.
    fn line_range(&self, span: Span) -> (usize, usize) {
        (
            self.body.line_of_offset(span.start),
            self.body.line_of_offset(span.end.saturating_sub(1)),
        )
    }

    // ---- rendering ----

    /// Render body lines `[lo..=hi]`, skipping `-` lines, substituting
    /// metavariables and dots; join with spaces (intra-statement) or
    /// newlines.
    fn render_lines(&self, lo: usize, hi: usize, newline_join: bool) -> String {
        let mut parts = Vec::new();
        for idx in lo..=hi.min(self.body.lines.len() - 1) {
            let line = &self.body.lines[idx];
            if line.annot == Annot::Minus {
                continue;
            }
            let text = self.substitute_line(idx);
            let trimmed = text.trim();
            if !trimmed.is_empty() {
                parts.push(trimmed.to_string());
            }
        }
        if newline_join {
            return parts.join("\n");
        }
        // Space-join fragments, except where a space would split a
        // postfix form (`nf` + `(...)` must render `nf(...)`).
        let mut out = String::new();
        for p in parts {
            let no_space = out.is_empty()
                || out.ends_with('(')
                || out.ends_with('[')
                || matches!(
                    p.as_bytes().first(),
                    Some(b'(' | b')' | b'[' | b']' | b',' | b';')
                );
            if !no_space {
                out.push(' ');
            }
            out.push_str(&p);
        }
        out
    }

    /// Render a `+` group as full lines with the given indentation.
    fn render_group(&self, group: &PlusGroup, indent: &str) -> String {
        let mut out = String::new();
        for idx in group.lines.0..group.lines.1 {
            let text = self.substitute_line(idx);
            let trimmed = text.trim_end();
            let trimmed = trimmed.trim_start();
            out.push_str(indent);
            out.push_str(trimmed);
            out.push('\n');
        }
        out
    }

    /// Render one body line with metavariable / dots substitution.
    fn substitute_line(&self, idx: usize) -> String {
        let line = &self.body.lines[idx];
        let mut out = String::new();
        let base = line.start;
        let mut cursor = 0usize; // offset within line.text
        let mut skip_ident_after_at = false;
        let mut last_was_empty_subst = false;
        for (ti, tok) in line.tokens.iter().enumerate() {
            let rel_start = (tok.span.start - base) as usize;
            let rel_end = (tok.span.end - base) as usize;
            // Copy inter-token text.
            if rel_start > cursor {
                out.push_str(&line.text[cursor..rel_start]);
            }
            cursor = rel_end;
            let text = &line.text[rel_start..rel_end];
            if skip_ident_after_at && tok.kind == TokenKind::Ident {
                skip_ident_after_at = false;
                continue;
            }
            match tok.kind {
                TokenKind::Punct(Punct::At) => {
                    // `expr@pos` position annotations are pattern-only:
                    // drop the `@` and the following identifier.
                    if line
                        .tokens
                        .get(ti + 1)
                        .map(|t| t.kind == TokenKind::Ident)
                        .unwrap_or(false)
                    {
                        skip_ident_after_at = true;
                    }
                }
                TokenKind::Ident => {
                    if let Some(v) = self.st.env.get(text) {
                        out.push_str(&v.render(self.src));
                    } else {
                        out.push_str(text);
                    }
                    last_was_empty_subst = false;
                }
                TokenKind::Punct(Punct::Ellipsis) => {
                    let replacement = self.dots_text(tok.span);
                    if replacement.is_empty() {
                        last_was_empty_subst = true;
                    } else {
                        out.push_str(&replacement);
                        last_was_empty_subst = false;
                    }
                }
                TokenKind::Punct(Punct::Comma) if last_was_empty_subst => {
                    // `f(..., x)` with empty dots: swallow the comma.
                    last_was_empty_subst = false;
                }
                TokenKind::Directive => {
                    out.push_str(&self.substitute_words(text));
                    last_was_empty_subst = false;
                }
                _ => {
                    out.push_str(text);
                    last_was_empty_subst = false;
                }
            }
        }
        if cursor < line.text.len() {
            out.push_str(&line.text[cursor..]);
        }
        out
    }

    /// Word-level metavariable substitution inside directive text
    /// (`#pragma omp po` → `#pragma omp kernels copy(a)`).
    fn substitute_words(&self, text: &str) -> String {
        let mut out = String::new();
        let bytes = text.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            if c == b'_' || c.is_ascii_alphabetic() {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let word = &text[start..i];
                match self.st.env.get(word) {
                    Some(v) => out.push_str(&v.render(self.src)),
                    None => out.push_str(word),
                }
            } else {
                out.push(c as char);
                i += 1;
            }
        }
        out
    }

    /// The source text matched by the dots at pattern span `span`.
    fn dots_text(&self, span: Span) -> String {
        for p in &self.st.pairs {
            if p.kind == PairKind::Dots && p.pat == span {
                if p.src.is_synthetic() || p.src.is_empty() {
                    return String::new();
                }
                return self.src[p.src.start as usize..p.src.end as usize].to_string();
            }
        }
        "...".to_string()
    }

    /// Distinct source spans paired with `pat_span`, in pair order. CFG
    /// path matches can pair one pattern statement with several source
    /// sites (a hit on each branch of a join); tree matches pair one.
    fn distinct_srcs(&self, pat_span: Span) -> Vec<Span> {
        let mut out: Vec<Span> = Vec::new();
        for s in self.st.srcs_for(pat_span) {
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }

    /// Replace every source span paired with pattern span `pat_span` by
    /// the re-rendered element (all paired sites get the same
    /// replacement — they matched under one shared environment).
    fn replace_element(
        &self,
        pat_span: Span,
        newline_join: bool,
        edits: &mut EditSet,
    ) -> Result<(), String> {
        let srcs = self.distinct_srcs(pat_span);
        if srcs.is_empty() {
            return Err(format!(
                "no source correspondence for pattern span {pat_span}"
            ));
        }
        let (lo, hi) = self.line_range(pat_span);
        let replacement = self.render_lines(lo, hi, newline_join);
        for src_span in srcs {
            edits.replace(src_span, replacement.clone());
        }
        Ok(())
    }

    // ---- expression root ----

    fn rewrite_expr_root(&self, e: &Expr, edits: &mut EditSet) -> Result<(), String> {
        if !self.has_edits(Span::new(0, self.body.raw.len() as u32))
            && self.body.plus_groups.is_empty()
        {
            return Ok(());
        }
        let src_span = self
            .st
            .src_for(e.span())
            .ok_or_else(|| "expression pattern without root pair".to_string())?;
        if self.all_minus(e.span()) && self.body.plus_groups.is_empty() {
            edits.delete(expand_to_full_lines(self.src, src_span));
            return Ok(());
        }
        let replacement = self.render_lines(0, self.body.lines.len() - 1, false);
        edits.replace(src_span, replacement);
        Ok(())
    }

    // ---- statement lists ----

    /// Rewrite a pattern statement list. `enclosing` is the pattern block
    /// span when the list is a block body (used to claim plus groups).
    fn rewrite_stmt_list(
        &self,
        stmts: &[Stmt],
        enclosing: Option<Span>,
        edits: &mut EditSet,
    ) -> Result<(), String> {
        let spans: Vec<Span> = stmts.iter().map(|s| s.span()).collect();
        self.rewrite_element_list(
            &spans,
            enclosing,
            edits,
            &mut |i, edits| self.rewrite_stmt(&stmts[i], edits),
            &mut |i| {
                // Dots / statement-list metavariables are never deletable
                // elements themselves.
                !matches!(stmts[i], Stmt::Dots { .. } | Stmt::MetaStmtList { .. })
            },
        )
    }

    /// Shared list-rewrite algorithm for statement and item lists.
    ///
    /// 1. Plus groups adjacent to an all-minus element become in-place
    ///    *replacements* of that element (keeps one-line files intact);
    /// 2. remaining all-minus elements are deleted (expanded to blank
    ///    lines);
    /// 3. mixed elements recurse;
    /// 4. remaining plus groups are line-based gap insertions.
    fn rewrite_element_list(
        &self,
        spans: &[Span],
        enclosing: Option<Span>,
        edits: &mut EditSet,
        rewrite_child: &mut dyn FnMut(usize, &mut EditSet) -> Result<(), String>,
        deletable: &mut dyn FnMut(usize) -> bool,
    ) -> Result<(), String> {
        let region = enclosing.unwrap_or(Span::new(0, self.body.raw.len() as u32));
        let in_region = |g: &PlusGroup| g.anchor >= region.start && g.anchor <= region.end;
        let inside_child = |g: &PlusGroup| {
            spans
                .iter()
                .any(|sp| g.anchor > sp.start && g.anchor < sp.end)
        };

        let is_replacement_target =
            |i: usize| self.all_minus(spans[i]) && !self.body.span_has_interior_plus(spans[i]);

        // Pass A: pair groups with adjacent all-minus elements.
        let mut replaced_elems: Vec<usize> = Vec::new();
        let mut claimed_groups: Vec<usize> = Vec::new();
        for (gi, g) in self.body.plus_groups.iter().enumerate() {
            if !in_region(g) || inside_child(g) {
                continue;
            }
            let preceding = spans
                .iter()
                .enumerate()
                .filter(|(_, sp)| sp.end <= g.anchor)
                .map(|(i, _)| i)
                .next_back();
            let following = spans
                .iter()
                .enumerate()
                .find(|(_, sp)| sp.start >= g.anchor)
                .map(|(i, _)| i);
            let target = [preceding, following].into_iter().flatten().find(|&i| {
                is_replacement_target(i) && deletable(i) && !replaced_elems.contains(&i)
            });
            if let Some(i) = target {
                let srcs = self.distinct_srcs(spans[i]);
                if !srcs.is_empty() {
                    for src_span in srcs {
                        let indent = line_indent(self.src, src_span.start);
                        let mut lines = Vec::new();
                        for idx in g.lines.0..g.lines.1 {
                            lines.push(self.substitute_line(idx).trim().to_string());
                        }
                        let replacement = lines.join(&format!("\n{indent}"));
                        edits.replace(src_span, replacement);
                    }
                    replaced_elems.push(i);
                    claimed_groups.push(gi);
                }
            }
        }

        // Pass B: delete remaining all-minus elements (every paired
        // source site — path matches may pair several).
        for (i, sp) in spans.iter().enumerate() {
            if replaced_elems.contains(&i) || !deletable(i) {
                continue;
            }
            if self.all_minus(*sp) && !self.body.span_has_interior_plus(*sp) {
                for src_span in self.distinct_srcs(*sp) {
                    edits.delete(expand_to_full_lines(self.src, src_span));
                }
            }
        }

        // Pass C: mixed elements recurse.
        for (i, sp) in spans.iter().enumerate() {
            if replaced_elems.contains(&i) {
                continue;
            }
            if self.all_minus(*sp) && !self.body.span_has_interior_plus(*sp) && deletable(i) {
                continue;
            }
            if self.has_edits(*sp) {
                rewrite_child(i, edits)?;
            }
        }

        // Pass D: remaining groups are gap insertions.
        for (gi, g) in self.body.plus_groups.iter().enumerate() {
            if claimed_groups.contains(&gi) || !in_region(g) || inside_child(g) {
                continue;
            }
            self.insert_group_in_list(g, spans, enclosing, edits)?;
        }
        Ok(())
    }

    /// Insert a plus group at the list position corresponding to its
    /// anchor.
    fn insert_group_in_list(
        &self,
        g: &PlusGroup,
        elem_spans: &[Span],
        enclosing: Option<Span>,
        edits: &mut EditSet,
    ) -> Result<(), String> {
        // Before the first element whose span starts at/after the anchor.
        for &sp in elem_spans {
            if sp.start >= g.anchor {
                if let Some(pair) = self.st.pairs.iter().find(|p| p.pat == sp) {
                    let src_span = pair.src;
                    let mid_line = src_span.start > 0
                        && self.src.as_bytes().get(src_span.start as usize - 1) != Some(&b'\n');
                    if pair.kind == PairKind::Dots && mid_line {
                        // A dots region that begins right after the
                        // preceding statement's semicolon (the CFG
                        // route's gap span, or tree dots on a shared
                        // line): inserting at the *line* start would
                        // land before that statement, so splice onto
                        // the end of its line instead.
                        let indent = line_indent(
                            self.src,
                            src_span.end.saturating_sub(1).max(src_span.start),
                        );
                        let rendered = self.render_group(g, &indent);
                        edits.insert(
                            src_span.start,
                            format!("\n{}", rendered.trim_end_matches('\n')),
                        );
                        return Ok(());
                    }
                    let pos = line_start(self.src, src_span.start);
                    let indent = line_indent(self.src, src_span.start);
                    edits.insert(pos, self.render_group(g, &indent));
                    return Ok(());
                }
            }
        }
        // After the last element that ends before the anchor.
        for &sp in elem_spans.iter().rev() {
            if sp.end <= g.anchor {
                if let Some(src_span) = self.st.src_for(sp) {
                    if src_span.is_empty() {
                        // Empty dots run: insert at its anchor offset.
                        let indent = line_indent(self.src, src_span.start);
                        edits.insert(
                            src_span.start,
                            format!("\n{}", self.render_group(g, &indent)),
                        );
                    } else {
                        let pos = next_line_start(self.src, src_span.end.saturating_sub(1));
                        let indent = line_indent(self.src, src_span.end.saturating_sub(1));
                        edits.insert(pos, self.render_group(g, &indent));
                    }
                    return Ok(());
                }
            }
        }
        // Fall back to the enclosing block's braces.
        if let Some(block_pat) = enclosing {
            if let Some(block_src) = self.st.src_for(block_pat) {
                let pos = next_line_start(self.src, block_src.start);
                let indent = line_indent(self.src, block_src.start);
                edits.insert(pos, self.render_group(g, &format!("{indent}    ")));
                return Ok(());
            }
        }
        Err("plus group with no insertion anchor".to_string())
    }

    // ---- single statements ----

    fn rewrite_stmt(&self, s: &Stmt, edits: &mut EditSet) -> Result<(), String> {
        match s {
            Stmt::Block(b) => self.rewrite_stmt_list(&b.stmts, Some(b.span), edits),
            Stmt::For {
                body: fbody,
                header_span,
                ..
            } => {
                let header_edits = self.body.span_has_minus(*header_span)
                    || self
                        .body
                        .plus_groups
                        .iter()
                        .any(|g| g.anchor > header_span.start && g.anchor < header_span.end);
                if header_edits {
                    let src_header = self
                        .st
                        .src_for(*header_span)
                        .ok_or_else(|| "for-header without correspondence".to_string())?;
                    let (lo, hi) = self.line_range(*header_span);
                    edits.replace(src_header, self.render_lines(lo, hi, false));
                }
                if self.has_edits(fbody.span()) {
                    self.rewrite_stmt(fbody, edits)?;
                }
                Ok(())
            }
            Stmt::While { body, span, .. }
            | Stmt::DoWhile { body, span, .. }
            | Stmt::RangeFor { body, span, .. }
            | Stmt::Switch { body, span, .. } => {
                // Recurse when edits are confined to the body; otherwise
                // re-render the whole statement.
                if self.edits_confined_to(&[body.span()], *span) {
                    self.rewrite_stmt(body, edits)
                } else {
                    self.replace_element(*span, false, edits)
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                span,
                ..
            } => {
                let mut subs = vec![then_branch.span()];
                if let Some(e) = else_branch {
                    subs.push(e.span());
                }
                if self.edits_confined_to(&subs, *span) {
                    if self.has_edits(then_branch.span()) {
                        self.rewrite_stmt(then_branch, edits)?;
                    }
                    if let Some(e) = else_branch {
                        if self.has_edits(e.span()) {
                            self.rewrite_stmt(e, edits)?;
                        }
                    }
                    Ok(())
                } else {
                    self.replace_element(*span, false, edits)
                }
            }
            Stmt::PatGroup {
                conj,
                branches,
                span,
            } => self.rewrite_pat_group(*conj, branches, *span, edits),
            Stmt::Label { stmt, .. } | Stmt::Case { stmt, .. } => self.rewrite_stmt(stmt, edits),
            Stmt::Dots { .. } | Stmt::MetaStmtList { .. } => Ok(()),
            // Leaf statements: re-render the whole element.
            _ => self.replace_element(s.span(), false, edits),
        }
    }

    /// Whether all `-` tokens and interior `+` anchors of `outer` fall
    /// within one of the `inner` spans.
    fn edits_confined_to(&self, inner: &[Span], outer: Span) -> bool {
        for line in &self.body.lines {
            if line.annot != Annot::Minus {
                continue;
            }
            for t in &line.tokens {
                if t.span.start >= outer.start && t.span.end <= outer.end {
                    let covered = inner
                        .iter()
                        .any(|sp| t.span.start >= sp.start && t.span.end <= sp.end);
                    if !covered {
                        return false;
                    }
                }
            }
        }
        for g in &self.body.plus_groups {
            if g.anchor > outer.start && g.anchor < outer.end {
                let covered = inner
                    .iter()
                    .any(|sp| g.anchor > sp.start && g.anchor < sp.end);
                if !covered {
                    return false;
                }
            }
        }
        true
    }

    fn rewrite_pat_group(
        &self,
        conj: bool,
        branches: &[Vec<Stmt>],
        group_span: Span,
        edits: &mut EditSet,
    ) -> Result<(), String> {
        let matched_src = self.st.src_for(group_span);
        if conj {
            // First pass: statement branches that are entirely minus
            // delete the matched statement.
            let mut deleted = false;
            for b in branches {
                if b.len() != 1 {
                    continue;
                }
                let bspan = b[0].span();
                let is_expr_branch = matches!(&b[0], Stmt::Expr { .. });
                if !is_expr_branch && self.all_minus(bspan) {
                    if let Some(src_span) = matched_src {
                        edits.delete(expand_to_full_lines(self.src, src_span));
                        deleted = true;
                    }
                }
                // Statement metavariable branches (`- B`) are also
                // deletions of the matched statement.
                if is_expr_branch {
                    continue;
                }
            }
            // Handle `- B`-style MetaStmt branches.
            if !deleted {
                for b in branches {
                    if b.len() == 1
                        && matches!(&b[0], Stmt::MetaStmt { .. })
                        && self.all_minus(b[0].span())
                    {
                        if let Some(src_span) = matched_src {
                            edits.delete(expand_to_full_lines(self.src, src_span));
                            deleted = true;
                        }
                    }
                }
            }
            if deleted {
                return Ok(());
            }
            // Second pass: expression branches with edits rewrite every
            // contained occurrence.
            for (bi, b) in branches.iter().enumerate() {
                if b.len() != 1 {
                    continue;
                }
                if let Stmt::Expr { expr, .. } = &b[0] {
                    let bspan = expr.span();
                    if !self.body.span_has_minus(bspan)
                        && !self.branch_has_following_plus(branches, bi, group_span)
                    {
                        continue;
                    }
                    if !self.body.span_has_minus(bspan) {
                        continue;
                    }
                    let (lo, _) = self.line_range(bspan);
                    // Include adjacent plus lines up to the next branch.
                    let hi = self.branch_region_end(branches, bi, group_span);
                    let replacement = self.render_lines(lo, hi, false);
                    for occ in self.st.srcs_for(bspan) {
                        if replacement.is_empty() {
                            edits.delete(occ);
                        } else {
                            edits.replace(occ, replacement.clone());
                        }
                    }
                }
            }
            Ok(())
        } else {
            // Disjunction: rewrite only the chosen branch.
            let Some(choice) = self.st.choice_for(group_span) else {
                return Ok(());
            };
            let b = &branches[choice];
            if b.is_empty() {
                return Ok(());
            }
            let bspan = b.iter().fold(Span::SYNTHETIC, |acc, s| acc.merge(s.span()));
            if !self.body.span_has_minus(bspan)
                && !self
                    .body
                    .plus_groups
                    .iter()
                    .any(|g| g.anchor > bspan.start && g.anchor < group_span.end)
            {
                return Ok(());
            }
            if self.all_minus(bspan) {
                // Whole branch removed; adjacent plus lines replace the
                // matched statement.
                let (lo, _) = self.line_range(bspan);
                let hi = self.branch_region_end_spans(branches, choice, group_span);
                let replacement = self.render_lines(lo, hi, false);
                if let Some(src_span) = matched_src {
                    if replacement.is_empty() {
                        edits.delete(expand_to_full_lines(self.src, src_span));
                    } else {
                        edits.replace(src_span, replacement);
                    }
                }
                return Ok(());
            }
            // Mixed branch: recurse into its statements.
            self.rewrite_stmt_list(b, Some(group_span), edits)
        }
    }

    fn branch_has_following_plus(
        &self,
        branches: &[Vec<Stmt>],
        bi: usize,
        group_span: Span,
    ) -> bool {
        let bspan = branches[bi]
            .iter()
            .fold(Span::SYNTHETIC, |acc, s| acc.merge(s.span()));
        let next_start = branches
            .get(bi + 1)
            .and_then(|nb| nb.first())
            .map(|s| s.span().start)
            .unwrap_or(group_span.end);
        self.body
            .plus_groups
            .iter()
            .any(|g| g.anchor >= bspan.end && g.anchor < next_start)
    }

    /// Last line of the branch region: through any plus lines that follow
    /// the branch but precede the next branch.
    fn branch_region_end(&self, branches: &[Vec<Stmt>], bi: usize, group_span: Span) -> usize {
        self.branch_region_end_spans(branches, bi, group_span)
    }

    fn branch_region_end_spans(
        &self,
        branches: &[Vec<Stmt>],
        bi: usize,
        group_span: Span,
    ) -> usize {
        let bspan = branches[bi]
            .iter()
            .fold(Span::SYNTHETIC, |acc, s| acc.merge(s.span()));
        let next_start = branches
            .get(bi + 1)
            .and_then(|nb| nb.first())
            .map(|s| s.span().start)
            .unwrap_or(group_span.end);
        let mut hi = self.body.line_of_offset(bspan.end.saturating_sub(1));
        for g in &self.body.plus_groups {
            if g.anchor >= bspan.end && g.anchor < next_start {
                hi = hi.max(g.lines.1.saturating_sub(1));
            }
        }
        hi
    }

    // ---- items ----

    fn rewrite_item_list(&self, items: &[Item], edits: &mut EditSet) -> Result<(), String> {
        let spans: Vec<Span> = items.iter().map(|i| i.span()).collect();
        self.rewrite_element_list(
            &spans,
            None,
            edits,
            &mut |i, edits| self.rewrite_item(&items[i], edits),
            &mut |_| true,
        )
    }

    fn rewrite_item(&self, item: &Item, edits: &mut EditSet) -> Result<(), String> {
        match item {
            Item::Function(f) => {
                // Attribute deletions.
                let mut attr_spans = Vec::new();
                for a in &f.attrs {
                    attr_spans.push(a.span);
                    if self.all_minus(a.span) {
                        if let Some(src_span) = self.st.src_for(a.span) {
                            edits.delete(expand_to_full_lines(self.src, src_span));
                        }
                    }
                }
                let mut confined_regions = attr_spans.clone();
                confined_regions.push(f.body.span);
                if self.edits_confined_to(&confined_regions, f.span) {
                    if self.has_edits(f.body.span) {
                        self.rewrite_stmt_list(&f.body.stmts, Some(f.body.span), edits)?;
                    }
                    Ok(())
                } else {
                    // Signature or mixed edits: re-render the whole item.
                    self.replace_element(f.span, true, edits)
                }
            }
            Item::Decl(d) => self.replace_element(d.span, false, edits),
            Item::Directive(d) => self.replace_element(d.span, true, edits),
            Item::Namespace { .. } | Item::ExternBlock { .. } => Ok(()),
        }
    }
}
