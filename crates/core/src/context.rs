//! Run-scoped per-file state shared across rules: parse once, match N
//! times.
//!
//! Applying a single patch owns its file state implicitly — lex/parse,
//! build CFGs, resolve lines, done. Scanning a *rule collection* breaks
//! that shape: fifty rules over one file must not re-lex, re-parse, and
//! re-build every function's CFG fifty times. [`FileContext`] extracts
//! the rule-independent substrate — the target text, its parsed
//! translation unit, the per-function CFG cache, the line-table
//! [`Resolver`], the suppression-comment index — into one unit built
//! per file and borrowed by each rule's matcher
//! ([`Patcher::apply_ctx`](crate::Patcher::apply_ctx)).
//!
//! The context always describes the **original** file text. A transform
//! rule whose edits land mid-patch switches its `Patcher` onto private
//! (per-application) state for the rewritten text; the shared caches
//! stay valid for the next rule set member. The [`parses`] and
//! [`cfg_builds`] counters exist so tests can assert the "exactly once"
//! property instead of trusting it.
//!
//! [`parses`]: FileContext::parses
//! [`cfg_builds`]: FileContext::cfg_builds

use crate::findings::Resolver;
use crate::flowmatch::CfgCache;
use crate::report::content_hash;
use crate::suppress::SuppressionIndex;
use cocci_cast::ast::TranslationUnit;
use cocci_cast::parser::{parse_translation_unit, NoMeta, ParseOptions};
use cocci_cast::Lang;
use cocci_source::Interner;
use std::sync::Arc;

/// Per-file state built once and shared by every rule applied to the
/// file. See the module docs.
pub struct FileContext {
    name: String,
    text: Arc<str>,
    hash: u64,
    parsed: Option<(Lang, Arc<TranslationUnit>)>,
    parse_err: Option<(Lang, String)>,
    resolver: Option<Arc<Resolver>>,
    suppress: Option<Arc<SuppressionIndex>>,
    cfgs: CfgCache,
    interner: Arc<Interner>,
    parses: usize,
}

impl FileContext {
    /// A fresh context over one file's original text.
    pub fn new(name: impl Into<String>, text: impl Into<Arc<str>>) -> FileContext {
        let text = text.into();
        let hash = content_hash(&text);
        FileContext {
            name: name.into(),
            text,
            hash,
            parsed: None,
            parse_err: None,
            resolver: None,
            suppress: None,
            cfgs: CfgCache::default(),
            interner: Interner::global(),
            parses: 0,
        }
    }

    /// The interner this file's tokens and identifiers resolve through.
    ///
    /// All contexts share the process-global table (pattern-side and
    /// file-side symbols must compare equal), so the handle is a cheap
    /// `Arc` clone that worker threads can carry across the pool
    /// boundary without touching a lock.
    pub fn interner(&self) -> Arc<Interner> {
        Arc::clone(&self.interner)
    }

    /// The file's (display) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The original text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// A cheap shared handle on the original text.
    pub fn text_arc(&self) -> Arc<str> {
        Arc::clone(&self.text)
    }

    /// FNV-1a hash of the original text (the `--resume` identity).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Parse the file under `opts`, caching the result: the first rule
    /// pays for the parse, later rules (of this patch or any other in a
    /// scan) get the same tree. A parse *failure* is cached too — fifty
    /// rules over an unparsable file report one error each without
    /// re-lexing it fifty times.
    pub fn parse(&mut self, opts: ParseOptions) -> Result<Arc<TranslationUnit>, String> {
        if let Some((lang, tu)) = &self.parsed {
            if *lang == opts.lang {
                cocci_trace::count(cocci_trace::Counter::ParseCacheHits, 1);
                return Ok(Arc::clone(tu));
            }
        }
        if let Some((lang, e)) = &self.parse_err {
            if *lang == opts.lang {
                cocci_trace::count(cocci_trace::Counter::ParseCacheHits, 1);
                return Err(e.clone());
            }
        }
        self.parses += 1;
        match parse_translation_unit(&self.text, opts, &NoMeta) {
            Ok(tu) => {
                let tu = Arc::new(tu);
                self.parsed = Some((opts.lang, Arc::clone(&tu)));
                Ok(tu)
            }
            Err(e) => {
                let msg = e.to_string();
                self.parse_err = Some((opts.lang, msg.clone()));
                Err(msg)
            }
        }
    }

    /// The line/col resolver for the original text, built on first use.
    pub fn resolver(&mut self) -> Arc<Resolver> {
        match &self.resolver {
            Some(r) => Arc::clone(r),
            None => {
                let r = Arc::new(Resolver::new(&self.name, &self.text));
                self.resolver = Some(Arc::clone(&r));
                r
            }
        }
    }

    /// The `// spatch-ignore` suppression index, built on first use.
    pub fn suppressions(&mut self) -> Arc<SuppressionIndex> {
        match &self.suppress {
            Some(s) => Arc::clone(s),
            None => {
                let s = Arc::new(SuppressionIndex::parse(&self.text));
                self.suppress = Some(Arc::clone(&s));
                s
            }
        }
    }

    /// The shared per-function CFG cache.
    pub fn cfgs(&mut self) -> &mut CfgCache {
        &mut self.cfgs
    }

    /// How many times the file text was actually parsed through this
    /// context — the probe behind the scan engine's "one parse serves N
    /// rules" guarantee.
    pub fn parses(&self) -> usize {
        self.parses
    }

    /// How many per-function CFGs were built through this context.
    pub fn cfg_builds(&self) -> usize {
        self.cfgs.builds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_is_cached_per_lang() {
        let mut ctx = FileContext::new("a.c", "void f(void) { g(); }\n");
        let opts = ParseOptions {
            pattern: false,
            lang: Lang::C,
        };
        let t1 = ctx.parse(opts).unwrap();
        let t2 = ctx.parse(opts).unwrap();
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(ctx.parses(), 1);
    }

    #[test]
    fn parse_errors_are_cached() {
        let mut ctx = FileContext::new("bad.c", "void broken( {\n");
        let opts = ParseOptions {
            pattern: false,
            lang: Lang::C,
        };
        let e1 = ctx.parse(opts).unwrap_err();
        let e2 = ctx.parse(opts).unwrap_err();
        assert_eq!(e1, e2);
        assert_eq!(ctx.parses(), 1);
    }

    #[test]
    fn resolver_and_suppressions_are_shared() {
        let mut ctx = FileContext::new("a.c", "int x; // spatch-ignore\n");
        let r1 = ctx.resolver();
        let r2 = ctx.resolver();
        assert!(Arc::ptr_eq(&r1, &r2));
        let s1 = ctx.suppressions();
        let s2 = ctx.suppressions();
        assert!(Arc::ptr_eq(&s1, &s2));
    }

    #[test]
    fn hash_matches_content_hash() {
        let ctx = FileContext::new("a.c", "text");
        assert_eq!(ctx.hash(), content_hash("text"));
    }
}
