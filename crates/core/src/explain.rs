//! The explain engine: per-attempt match funnels and kill-stage
//! attribution.
//!
//! Every (file × rule) **attempt** the engine makes either completes
//! (rewrote the file or reported findings) or dies at exactly one
//! pipeline stage. This module gives that decision a name — a
//! [`KillStage`] — and two surfaces built on it:
//!
//! - **The cheap half, always computed:** each attempt stores one
//!   `KillStage` into its outcome ([`FileOutcome`](crate::FileOutcome),
//!   [`RuleOutcome`](crate::RuleOutcome)) and bumps the funnel counters
//!   in `cocci-trace` (one relaxed atomic add per attempt when tracing
//!   is on, nothing otherwise). `--stats` renders them as a funnel
//!   table: attempts → survived prefilter → parsed → anchored → gaps
//!   clean → bindings consistent → completed.
//! - **Full traces, opt-in:** `spatch --explain [FILE_GLOB[:RULE_ID]]`
//!   additionally materializes an [`AttemptTrace`] per matching attempt
//!   — stage plus a human-readable detail (which required atoms were
//!   absent, the gap-walk failure, the conflicting edit) — annotated in
//!   per-file text output and embedded as an `explain` block in the
//!   JSON report. Kill sites also emit Chrome-trace instant events
//!   (ring-buffered like spans) so Perfetto shows where attempts die.
//!
//! The funnel is exact by construction: counters and per-outcome
//! stages are stored at the same single point per attempt
//! ([`record_attempt`]), so the `--stats` table, the report `metrics`
//! counters, and the sum of per-file outcomes always reconcile.

use crate::report::json;
use std::fmt;

/// The pipeline stage that ended one (file × rule) attempt. `Completed`
/// means the attempt survived the whole funnel (rewrote or reported).
///
/// Variants are ordered by funnel depth: a stage kills an attempt
/// before every later stage could have.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KillStage {
    /// The literal-atom prefilter proved the rule cannot match.
    Prefilter,
    /// The target file would not parse.
    Parse,
    /// The pattern anchor hit nothing in the file.
    Anchor,
    /// Every anchor hit died walking a dots gap (quantifier
    /// unsatisfied, escaped node, `when !=` kill).
    GapWalk,
    /// Witness-group binding conflicts killed every match.
    Bindings,
    /// The surviving matches produced conflicting edits.
    EditConflict,
    /// Every finding was dropped by inline `spatch-ignore` markers.
    Suppressed,
    /// The per-file time budget expired.
    Timeout,
    /// Survived: the attempt rewrote the file or reported findings
    /// (or matched with nothing to change).
    Completed,
}

impl KillStage {
    /// Every stage, in funnel order (`Completed` last).
    pub const ALL: [KillStage; 9] = [
        KillStage::Prefilter,
        KillStage::Parse,
        KillStage::Anchor,
        KillStage::GapWalk,
        KillStage::Bindings,
        KillStage::EditConflict,
        KillStage::Suppressed,
        KillStage::Timeout,
        KillStage::Completed,
    ];

    /// Stable identifier used in reports, stats, and traces.
    pub fn name(self) -> &'static str {
        match self {
            KillStage::Prefilter => "prefilter",
            KillStage::Parse => "parse",
            KillStage::Anchor => "anchor",
            KillStage::GapWalk => "gap_walk",
            KillStage::Bindings => "bindings",
            KillStage::EditConflict => "edit_conflict",
            KillStage::Suppressed => "suppressed",
            KillStage::Timeout => "timeout",
            KillStage::Completed => "completed",
        }
    }

    /// Parse the [`name`](KillStage::name) spelling back.
    pub fn parse(s: &str) -> Option<KillStage> {
        KillStage::ALL.into_iter().find(|k| k.name() == s)
    }

    /// The `cocci-trace` kill counter for this stage (`None` for
    /// `Completed`: survivors are `attempts - Σ kills`).
    pub fn counter(self) -> Option<cocci_trace::Counter> {
        use cocci_trace::Counter;
        match self {
            KillStage::Prefilter => Some(Counter::KillPrefilter),
            KillStage::Parse => Some(Counter::KillParse),
            KillStage::Anchor => Some(Counter::KillAnchor),
            KillStage::GapWalk => Some(Counter::KillGapWalk),
            KillStage::Bindings => Some(Counter::KillBindings),
            KillStage::EditConflict => Some(Counter::KillEditConflict),
            KillStage::Suppressed => Some(Counter::KillSuppressed),
            KillStage::Timeout => Some(Counter::KillTimeout),
            KillStage::Completed => None,
        }
    }
}

impl fmt::Display for KillStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Record the end of one (file × rule) attempt: bump the funnel
/// counters and, at kill sites, emit a Chrome-trace instant event so
/// Perfetto shows where the attempt died. One relaxed atomic probe
/// when tracing is off; the detail string is only assembled when it
/// will actually be recorded.
pub fn record_attempt(stage: KillStage, file: &str, rule: &str, detail: Option<&str>) {
    if !cocci_trace::is_enabled() {
        return;
    }
    cocci_trace::count(cocci_trace::Counter::Attempts, 1);
    if let Some(counter) = stage.counter() {
        cocci_trace::count(counter, 1);
        let label = match detail {
            Some(d) => format!("{file}: {rule}: {d}"),
            None => format!("{file}: {rule}"),
        };
        cocci_trace::instant(counter.name(), Some(&label));
    }
}

/// One transform-rule attempt inside a single file application, before
/// the driver knows the file name: the orchestrator records these into
/// [`ApplyStats`](crate::orchestrate::ApplyStats) and the driver/scan
/// layer turns them into counters ([`record_attempt`]) and — under
/// `--explain` — [`AttemptTrace`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleAttempt {
    /// Rule name (`<anonymous>` if unnamed) or scan rule id.
    pub rule: String,
    /// The stage that ended the attempt.
    pub stage: KillStage,
    /// Stage-specific context, assembled only when `--explain` asked
    /// for this (file, rule).
    pub detail: Option<String>,
}

/// What the matcher saw during one transform-rule run, for kill-stage
/// attribution: how many anchors hit and where the failed attempts
/// died. The stage is resolved deepest-first — the funnel records how
/// far the rule's *best* attempt got.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttemptProbe {
    /// Anchor hits (flow route: CFG nodes matching the first anchor;
    /// tree route: full-pattern matches).
    pub anchors: u64,
    /// Flow attempts killed discharging a gap.
    pub gap_kills: u64,
    /// Flow attempts killed reconciling witness bindings.
    pub binding_kills: u64,
    /// Witness groups dropped by an earlier match's territory claim.
    pub group_blocked: u64,
    /// Witness groups dropped for contradictory member edits.
    pub contradictory: u64,
}

impl AttemptProbe {
    /// Resolve the stage for a rule whose final match set came out as
    /// `matched` (non-empty means the attempt completed).
    pub fn stage(&self, matched: bool) -> KillStage {
        if matched {
            KillStage::Completed
        } else if self.group_blocked + self.contradictory > 0 {
            KillStage::EditConflict
        } else if self.binding_kills > 0 {
            KillStage::Bindings
        } else if self.gap_kills > 0 {
            KillStage::GapWalk
        } else {
            KillStage::Anchor
        }
    }

    /// The `--explain` detail line for a killed attempt (`None` when
    /// nothing beyond the stage name is known).
    pub fn detail(&self, stage: KillStage) -> Option<String> {
        match stage {
            KillStage::Anchor => Some(match self.anchors {
                0 => "no anchor hit".to_string(),
                n => format!("{n} anchor hit(s), no match survived"),
            }),
            KillStage::GapWalk => Some(format!(
                "{} of {} anchor attempt(s) died in gap walks",
                self.gap_kills, self.anchors
            )),
            KillStage::Bindings => Some(format!(
                "{} attempt(s) failed witness binding reconciliation",
                self.binding_kills
            )),
            KillStage::EditConflict => Some(format!(
                "{} group(s) blocked by earlier claims, {} contradictory",
                self.group_blocked, self.contradictory
            )),
            _ => None,
        }
    }
}

/// One funnel row label and the kill stages consumed *up to and
/// including* that row. `--stats` and the report `explain` block both
/// derive the table from the same counters through [`funnel_rows`].
const FUNNEL: [(&str, KillStage); 6] = [
    ("survived_prefilter", KillStage::Prefilter),
    ("parsed", KillStage::Parse),
    ("anchored", KillStage::Anchor),
    ("gaps_clean", KillStage::GapWalk),
    ("bindings_consistent", KillStage::Bindings),
    // Edit conflicts, suppressions, and timeouts all land between
    // "bindings consistent" and done.
    ("completed", KillStage::Timeout),
];

/// Compute the funnel table from a counter lookup (name → value):
/// `attempts` first, then each survivor row as attempts minus every
/// kill at or before that row's stage.
pub fn funnel_rows(counter: impl Fn(&str) -> u64) -> Vec<(&'static str, u64)> {
    let attempts = counter("attempts");
    let mut rows = vec![("attempts", attempts)];
    for (label, through) in FUNNEL {
        let killed: u64 = KillStage::ALL
            .iter()
            .filter(|s| **s <= through)
            .filter_map(|s| s.counter())
            .map(|c| counter(c.name()))
            .sum();
        rows.push((label, attempts.saturating_sub(killed)));
    }
    rows
}

/// One fully-traced attempt: the rule, the stage that ended it, and a
/// human-readable reason. Produced only under `--explain` (the cheap
/// half stores just the stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptTrace {
    /// Target file of the attempt.
    pub file: String,
    /// Rule id (scan) or rule name (apply; `<anonymous>` if unnamed).
    pub rule: String,
    /// The stage that ended the attempt.
    pub stage: KillStage,
    /// Stage-specific context: absent prefilter atoms, the parse
    /// error, the gap-walk failure, the conflicting edit spans, ...
    pub detail: Option<String>,
}

impl AttemptTrace {
    /// The `--explain` text-annotation line (after `file: `).
    pub fn text(&self) -> String {
        match &self.detail {
            Some(d) => format!("{} [{}] {}", self.rule, self.stage, d),
            None => format!("{} [{}]", self.rule, self.stage),
        }
    }

    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"file\": {}, \"rule\": {}, \"stage\": \"{}\"",
            json::escape(&self.file),
            json::escape(&self.rule),
            self.stage
        );
        if let Some(d) = &self.detail {
            out.push_str(&format!(", \"detail\": {}", json::escape(d)));
        }
        out.push('}');
        out
    }

    fn from_json(v: &json::Value) -> Result<AttemptTrace, String> {
        let o = v.as_object().ok_or("explain attempt: expected an object")?;
        let s = |k: &str| -> Result<String, String> {
            o.get(k)
                .and_then(json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("explain attempt: missing \"{k}\""))
        };
        let stage = s("stage")?;
        Ok(AttemptTrace {
            file: s("file")?,
            rule: s("rule")?,
            stage: KillStage::parse(&stage)
                .ok_or_else(|| format!("explain attempt: unknown stage \"{stage}\""))?,
            detail: o
                .get("detail")
                .and_then(json::Value::as_str)
                .map(str::to_string),
        })
    }
}

/// Attempt traces kept in a report's `explain` block before the rest
/// are counted as dropped — bounds report size on huge corpora the
/// same way the trace rings bound span memory.
pub const EXPLAIN_ATTEMPT_CAP: usize = 4096;

/// The report-embedded `explain` block: the traced attempts (capped at
/// [`EXPLAIN_ATTEMPT_CAP`], sorted by file then rule so the block is
/// byte-identical across thread counts) plus how many were dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExplainBlock {
    /// Traced attempts, ascending by (file, rule).
    pub attempts: Vec<AttemptTrace>,
    /// Attempts beyond the cap, counted instead of stored.
    pub dropped: u64,
}

impl ExplainBlock {
    /// Add every trace, keeping the block sorted and capped.
    pub fn extend(&mut self, traces: impl IntoIterator<Item = AttemptTrace>) {
        for t in traces {
            if self.attempts.len() < EXPLAIN_ATTEMPT_CAP {
                self.attempts.push(t);
            } else {
                self.dropped += 1;
            }
        }
    }

    /// Deterministic order for report embedding.
    pub fn finish(&mut self) {
        self.attempts
            .sort_by(|a, b| a.file.cmp(&b.file).then(a.rule.cmp(&b.rule)));
    }

    /// Serialize as the report's `"explain"` value.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"attempts\": [");
        for (i, a) in self.attempts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&a.to_json());
        }
        out.push(']');
        if self.dropped > 0 {
            out.push_str(&format!(", \"dropped\": {}", self.dropped));
        }
        out.push('}');
        out
    }

    /// Parse the report's `"explain"` value back.
    pub fn from_json(v: &json::Value) -> Result<ExplainBlock, String> {
        let o = v.as_object().ok_or("explain: expected an object")?;
        let mut attempts = Vec::new();
        if let Some(arr) = o.get("attempts").and_then(json::Value::as_array) {
            for a in arr {
                attempts.push(AttemptTrace::from_json(a)?);
            }
        }
        Ok(ExplainBlock {
            attempts,
            dropped: o
                .get("dropped")
                .and_then(json::Value::as_f64)
                .unwrap_or(0.0) as u64,
        })
    }
}

/// What `--explain [FILE_GLOB[:RULE_ID]]` asked to trace. With no
/// filter every attempt is traced; `FILE_GLOB` narrows by target file
/// (`*`/`?` wildcards, matched against the reported path and, for
/// convenience, its basename), `:RULE_ID` by rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExplainConfig {
    /// File filter (glob), `None` for all files.
    pub file_glob: Option<String>,
    /// Rule filter (exact id/name), `None` for all rules.
    pub rule: Option<String>,
}

impl ExplainConfig {
    /// Parse the flag's optional `FILE_GLOB[:RULE_ID]` value. An empty
    /// spec traces everything; `:rule` alone filters by rule only.
    pub fn parse(spec: &str) -> ExplainConfig {
        let (glob, rule) = match spec.rsplit_once(':') {
            Some((g, r)) => (g, Some(r)),
            None => (spec, None),
        };
        let non_empty = |s: &str| (!s.is_empty()).then(|| s.to_string());
        ExplainConfig {
            file_glob: non_empty(glob),
            rule: rule.and_then(non_empty),
        }
    }

    /// Should this (file, rule) attempt be traced?
    pub fn matches(&self, file: &str, rule: &str) -> bool {
        if let Some(r) = &self.rule {
            if r != rule {
                return false;
            }
        }
        match &self.file_glob {
            None => true,
            Some(g) => {
                glob_match(g, file)
                    || file
                        .rsplit(['/', '\\'])
                        .next()
                        .is_some_and(|base| glob_match(g, base))
            }
        }
    }
}

/// Minimal glob matcher: `*` matches any run (including `/`), `?` one
/// character, everything else literally.
fn glob_match(pat: &str, name: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    let n: Vec<char> = name.chars().collect();
    // Iterative backtracking over the last `*`.
    let (mut pi, mut ni) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ni < n.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            mark = ni;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ni = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_round_trip() {
        for s in KillStage::ALL {
            assert_eq!(KillStage::parse(s.name()), Some(s), "{s}");
        }
        assert_eq!(KillStage::parse("bogus"), None);
        // Every kill stage has a counter; only Completed does not.
        for s in KillStage::ALL {
            assert_eq!(s.counter().is_none(), s == KillStage::Completed, "{s}");
        }
    }

    #[test]
    fn funnel_rows_are_monotone_and_exact() {
        let counters: std::collections::BTreeMap<&str, u64> = [
            ("attempts", 100),
            ("kill_prefilter", 40),
            ("kill_parse", 5),
            ("kill_anchor", 20),
            ("kill_gap_walk", 10),
            ("kill_bindings", 3),
            ("kill_edit_conflict", 1),
            ("kill_suppressed", 2),
            ("kill_timeout", 4),
        ]
        .into_iter()
        .collect();
        let rows = funnel_rows(|name| counters.get(name).copied().unwrap_or(0));
        let values: Vec<u64> = rows.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, [100, 60, 55, 35, 25, 22, 15]);
        assert!(values.windows(2).all(|w| w[0] >= w[1]), "monotone funnel");
        assert_eq!(rows[0].0, "attempts");
        assert_eq!(rows.last().unwrap().0, "completed");
    }

    #[test]
    fn explain_config_parses_and_filters() {
        let all = ExplainConfig::parse("");
        assert!(all.matches("src/a.c", "r1"));

        let by_file = ExplainConfig::parse("src/*.c");
        assert!(by_file.matches("src/a.c", "r1"));
        assert!(!by_file.matches("lib/a.h", "r1"));

        let by_both = ExplainConfig::parse("*.c:r1");
        assert!(by_both.matches("deep/dir/x.c", "r1"), "basename matching");
        assert!(!by_both.matches("deep/dir/x.c", "r2"));

        let by_rule = ExplainConfig::parse(":r2");
        assert!(by_rule.matches("anything.c", "r2"));
        assert!(!by_rule.matches("anything.c", "r1"));
    }

    #[test]
    fn glob_matcher_handles_stars_and_questions() {
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a*c", "abc"));
        assert!(glob_match("a*c", "ac"));
        assert!(!glob_match("a*c", "abd"));
        assert!(glob_match("file_?.c", "file_1.c"));
        assert!(!glob_match("file_?.c", "file_10.c"));
        assert!(glob_match("src/*/x.c", "src/deep/x.c"));
    }

    #[test]
    fn explain_block_json_round_trips_sorted_and_capped() {
        let mut block = ExplainBlock::default();
        block.extend([
            AttemptTrace {
                file: "b.c".into(),
                rule: "r2".into(),
                stage: KillStage::GapWalk,
                detail: Some("escaped node at 3:1".into()),
            },
            AttemptTrace {
                file: "a.c".into(),
                rule: "r1".into(),
                stage: KillStage::Completed,
                detail: None,
            },
        ]);
        block.finish();
        assert_eq!(block.attempts[0].file, "a.c", "sorted by file");
        let v = json::parse(&block.to_json()).unwrap();
        let back = ExplainBlock::from_json(&v).unwrap();
        assert_eq!(back, block);

        let mut big = ExplainBlock::default();
        big.extend((0..EXPLAIN_ATTEMPT_CAP + 7).map(|i| AttemptTrace {
            file: format!("f{i}.c"),
            rule: "r".into(),
            stage: KillStage::Anchor,
            detail: None,
        }));
        assert_eq!(big.attempts.len(), EXPLAIN_ATTEMPT_CAP);
        assert_eq!(big.dropped, 7);
    }
}
