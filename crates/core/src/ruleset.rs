//! Rule collections: a directory of semantic patches compiled once.
//!
//! `spatch scan --rules <dir>` lints a corpus with N rules in one pass.
//! [`CompiledRuleSet::load_dir`] reads every `*.cocci` file of the
//! directory, parses per-rule metadata from its leading comment lines,
//! compiles each patch once ([`CompiledPatch`]), refuses duplicate rule
//! ids, and merges every rule's prefilter atoms into one [`AtomSieve`]
//! so a single scan of a file's text yields the set of rules that may
//! match it.
//!
//! # Rule file metadata
//!
//! A rule file may carry header comments before its first `@` line:
//!
//! ```text
//! // spatch-rule: use-new-api        (id; default: the file stem)
//! // spatch-severity: warning       (error | warning | note; default note)
//! // spatch-message: old_api is deprecated   (default: the rule's own)
//! @@ ... @@
//! ```
//!
//! Rules are **sorted by id** after loading, whatever the directory
//! iteration order — reports, SARIF output, and `--resume` hashes must
//! be identical across platforms and filesystems.

use crate::compile::{AtomSieve, CompiledPatch};
use crate::orchestrate::ApplyError;
use crate::report::content_hash;
use std::path::Path;
use std::sync::Arc;

/// Severity a scan rule attaches to its findings (the SARIF `level`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Severity {
    /// SARIF `error`.
    Error,
    /// SARIF `warning`.
    Warning,
    /// SARIF `note` (the default).
    #[default]
    Note,
}

impl Severity {
    /// The SARIF / report-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }

    /// Parse the spelling used in `// spatch-severity:` headers.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "error" => Some(Severity::Error),
            "warning" => Some(Severity::Warning),
            "note" | "info" => Some(Severity::Note),
            _ => None,
        }
    }
}

/// Identity and presentation metadata of one scan rule.
#[derive(Debug, Clone)]
pub struct RuleMeta {
    /// Unique rule id (`// spatch-rule:` header, default the file stem).
    pub id: String,
    /// Finding severity (`// spatch-severity:` header).
    pub severity: Severity,
    /// Message override for this rule's findings (`// spatch-message:`);
    /// `None` keeps each finding's own message.
    pub message: Option<String>,
    /// The file the rule was loaded from (display only).
    pub source: String,
}

/// One member of a [`CompiledRuleSet`].
#[derive(Debug, Clone)]
pub struct ScanRule {
    /// Identity/severity/message metadata.
    pub meta: RuleMeta,
    /// The compiled patch, shareable across driver workers.
    pub compiled: Arc<CompiledPatch>,
}

/// A directory of semantic patches, compiled once and prefiltered
/// together. Rules are sorted by id; `hash` identifies the exact rule
/// texts for `--resume`.
#[derive(Debug, Clone)]
pub struct CompiledRuleSet {
    /// The rules, ascending by `meta.id`.
    pub rules: Vec<ScanRule>,
    /// Identity of the whole set: FNV-1a over every `id\0text\0` pair in
    /// sorted order. Plays the role `patch_hash` plays for single-patch
    /// reports.
    pub hash: u64,
    /// Merged prefilter: unit `i` is `rules[i]`.
    sieve: AtomSieve,
}

impl CompiledRuleSet {
    /// Load and compile every `*.cocci` file directly under `dir`.
    /// Errors name the offending file; duplicate rule ids refuse the
    /// whole set.
    pub fn load_dir(dir: &Path) -> Result<CompiledRuleSet, ApplyError> {
        let entries = std::fs::read_dir(dir).map_err(|e| {
            ApplyError::new(format!("cannot read rules dir {}: {e}", dir.display()))
        })?;
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file() && p.extension().and_then(|x| x.to_str()) == Some("cocci"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(ApplyError::new(format!(
                "rules dir {} contains no .cocci files",
                dir.display()
            )));
        }
        let mut sources = Vec::with_capacity(paths.len());
        for p in paths {
            let text = std::fs::read_to_string(&p)
                .map_err(|e| ApplyError::new(format!("cannot read {}: {e}", p.display())))?;
            let stem = p
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("rule")
                .to_string();
            sources.push((p.display().to_string(), stem, text));
        }
        Self::from_sources(&sources)
    }

    /// Compile a set from in-memory sources: `(display name, default id,
    /// patch text)` triples. This is what tests, benches, and
    /// [`load_dir`](CompiledRuleSet::load_dir) share.
    pub fn from_sources(
        sources: &[(String, String, String)],
    ) -> Result<CompiledRuleSet, ApplyError> {
        let mut rules = Vec::with_capacity(sources.len());
        for (source, default_id, text) in sources {
            let mut meta = parse_rule_metadata(text, default_id)
                .map_err(|e| ApplyError::new(format!("{source}: {e}")))?;
            meta.source = source.clone();
            let patch = cocci_smpl::parse_semantic_patch(text)
                .map_err(|e| ApplyError::new(format!("{source}: {e}")))?;
            let compiled = CompiledPatch::compile(&patch)
                .map_err(|e| ApplyError::new(format!("{source}: {}", e.message)))?;
            rules.push((meta, Arc::new(compiled), text.clone()));
        }
        // Deterministic rule order: sorted by id, whatever order the
        // filesystem handed the files back in.
        rules.sort_by(|a, b| a.0.id.cmp(&b.0.id));
        for w in rules.windows(2) {
            if w[0].0.id == w[1].0.id {
                return Err(ApplyError::new(format!(
                    "duplicate rule id `{}` ({} and {})",
                    w[0].0.id, w[0].0.source, w[1].0.source
                )));
            }
        }
        let mut identity = String::new();
        for (meta, _, text) in &rules {
            identity.push_str(&meta.id);
            identity.push('\0');
            identity.push_str(text);
            identity.push('\0');
        }
        let hash = content_hash(&identity);
        let units: Vec<_> = rules.iter().map(|(_, c, _)| c.sieve_unit()).collect();
        let sieve = AtomSieve::build(&units);
        Ok(CompiledRuleSet {
            rules: rules
                .into_iter()
                .map(|(meta, compiled, _)| ScanRule { meta, compiled })
                .collect(),
            hash,
            sieve,
        })
    }

    /// Number of rules in the set.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True for a set with no rules (refused by `load_dir`).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Indices of rules that may match `text` — a **single pass** of the
    /// merged automaton over the text, however many rules the set holds.
    /// Sound the same way [`CompiledPatch::may_match`] is: a rule not in
    /// the result would find zero matches.
    pub fn surviving_rules(&self, text: &str) -> Vec<usize> {
        self.sieve.surviving(text)
    }

    /// The first rule requiring CFG path matching, if any — scan drivers
    /// running with `--no-flow` refuse the set up front, like the
    /// single-patch driver does.
    pub fn requires_flow(&self) -> Option<&ScanRule> {
        self.rules
            .iter()
            .find(|r| r.compiled.requires_flow().is_some())
    }
}

/// Parse `// spatch-*:` headers from the leading comment lines of a rule
/// file. Stops at the first non-comment, non-blank line. A
/// `spatch-severity:` value outside the accepted spellings is an error:
/// silently defaulting would demote a rule the author meant to be an
/// `error` down to `note` without anyone noticing.
pub fn parse_rule_metadata(text: &str, default_id: &str) -> Result<RuleMeta, String> {
    let mut meta = RuleMeta {
        id: default_id.to_string(),
        severity: Severity::default(),
        message: None,
        source: String::new(),
    };
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Some(comment) = trimmed.strip_prefix("//") else {
            break;
        };
        let comment = comment.trim();
        if let Some(v) = comment.strip_prefix("spatch-rule:") {
            let v = v.trim();
            if !v.is_empty() {
                meta.id = v.to_string();
            }
        } else if let Some(v) = comment.strip_prefix("spatch-severity:") {
            let v = v.trim();
            match Severity::parse(v) {
                Some(s) => meta.severity = s,
                None => {
                    return Err(format!(
                        "bad spatch-severity `{v}` (expected error|warning|note|info)"
                    ))
                }
            }
        } else if let Some(v) = comment.strip_prefix("spatch-message:") {
            let v = v.trim();
            if !v.is_empty() {
                meta.message = Some(v.to_string());
            }
        }
    }
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(id: &str, text: &str) -> (String, String, String) {
        (format!("{id}.cocci"), id.to_string(), text.to_string())
    }

    const REPORT_A: &str = "@@\nexpression e;\n@@\nalpha(e);\n";
    const REPORT_B: &str = "@@\nexpression e;\n@@\nbeta(e);\n";

    #[test]
    fn sources_sort_by_id_and_survive_prefilter() {
        let set =
            CompiledRuleSet::from_sources(&[src("zz", REPORT_B), src("aa", REPORT_A)]).unwrap();
        assert_eq!(set.rules[0].meta.id, "aa");
        assert_eq!(set.rules[1].meta.id, "zz");
        assert_eq!(set.surviving_rules("void f(void){ alpha(1); }"), [0]);
        assert_eq!(set.surviving_rules("void f(void){ beta(1); }"), [1]);
        assert_eq!(set.surviving_rules("alpha(1); beta(2);"), [0, 1]);
        assert!(set.surviving_rules("gamma(3);").is_empty());
    }

    #[test]
    fn surviving_agrees_with_per_rule_may_match() {
        let set = CompiledRuleSet::from_sources(&[
            src("a", REPORT_A),
            src("b", REPORT_B),
            src("c", "@@\nexpression x, y;\n@@\nx = y;\n"),
        ])
        .unwrap();
        for text in [
            "alpha(1);",
            "beta(2);",
            "int q; q = 3;",
            "nothing here",
            "alpha beta gamma",
        ] {
            let merged = set.surviving_rules(text);
            let individual: Vec<usize> = set
                .rules
                .iter()
                .enumerate()
                .filter(|(_, r)| r.compiled.may_match(text))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(merged, individual, "text {text:?}");
        }
    }

    #[test]
    fn duplicate_ids_refuse() {
        let err = CompiledRuleSet::from_sources(&[
            ("x.cocci".into(), "same".into(), REPORT_A.into()),
            ("y.cocci".into(), "same".into(), REPORT_B.into()),
        ])
        .unwrap_err();
        assert!(err.message.contains("duplicate rule id `same`"), "{err}");
        assert!(err.message.contains("x.cocci"), "{err}");
        assert!(err.message.contains("y.cocci"), "{err}");
    }

    #[test]
    fn metadata_headers() {
        let text = "// spatch-rule: use-beta\n// spatch-severity: error\n\
                    // spatch-message: alpha is deprecated\n@@\nexpression e;\n@@\nalpha(e);\n";
        let set = CompiledRuleSet::from_sources(&[src("file-stem", text)]).unwrap();
        let meta = &set.rules[0].meta;
        assert_eq!(meta.id, "use-beta");
        assert_eq!(meta.severity, Severity::Error);
        assert_eq!(meta.message.as_deref(), Some("alpha is deprecated"));
    }

    #[test]
    fn metadata_stops_at_first_rule_line() {
        // A comment *after* the body must not override the id.
        let text = "@@\nexpression e;\n@@\nalpha(e);\n// spatch-rule: late\n";
        let set = CompiledRuleSet::from_sources(&[src("stem", text)]).unwrap();
        assert_eq!(set.rules[0].meta.id, "stem");
        assert_eq!(set.rules[0].meta.severity, Severity::Note);
    }

    #[test]
    fn unparsable_source_names_the_file() {
        let err = CompiledRuleSet::from_sources(&[(
            "broken.cocci".into(),
            "broken".into(),
            "@@\nnot a metavar decl\n".into(),
        )])
        .unwrap_err();
        assert!(err.message.contains("broken.cocci"), "{err}");
    }

    #[test]
    fn bad_severity_is_a_load_error_naming_the_file() {
        // Silently defaulting would demote an intended `error` rule.
        let text = "// spatch-severity: critical\n@@\nexpression e;\n@@\nalpha(e);\n";
        let err = CompiledRuleSet::from_sources(&[("sev.cocci".into(), "sev".into(), text.into())])
            .unwrap_err();
        assert!(err.message.contains("sev.cocci"), "{err}");
        assert!(
            err.message.contains("bad spatch-severity `critical`"),
            "{err}"
        );
        // All accepted spellings still parse.
        for (v, want) in [
            ("error", Severity::Error),
            ("warning", Severity::Warning),
            ("note", Severity::Note),
            ("info", Severity::Note),
        ] {
            let text = format!("// spatch-severity: {v}\n@@\nexpression e;\n@@\nalpha(e);\n");
            let meta = parse_rule_metadata(&text, "x").unwrap();
            assert_eq!(meta.severity, want, "{v}");
        }
    }

    #[test]
    fn hash_is_order_independent_but_text_sensitive() {
        let a = CompiledRuleSet::from_sources(&[src("a", REPORT_A), src("b", REPORT_B)]).unwrap();
        let b = CompiledRuleSet::from_sources(&[src("b", REPORT_B), src("a", REPORT_A)]).unwrap();
        assert_eq!(a.hash, b.hash);
        let c = CompiledRuleSet::from_sources(&[src("a", REPORT_B), src("b", REPORT_B)]).unwrap();
        assert_ne!(a.hash, c.hash);
    }

    #[test]
    fn load_dir_round_trip() {
        let dir = std::env::temp_dir().join(format!("cocci-ruleset-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b-rule.cocci"), REPORT_B).unwrap();
        std::fs::write(
            dir.join("a-rule.cocci"),
            format!("// spatch-severity: warning\n{REPORT_A}"),
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "not a rule").unwrap();
        let set = CompiledRuleSet::load_dir(&dir).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.rules[0].meta.id, "a-rule");
        assert_eq!(set.rules[0].meta.severity, Severity::Warning);
        assert_eq!(set.rules[1].meta.id, "b-rule");
        assert!(set.rules[1].meta.source.ends_with("b-rule.cocci"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_refuses() {
        let dir = std::env::temp_dir().join(format!("cocci-ruleset-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let err = CompiledRuleSet::load_dir(&dir).unwrap_err();
        assert!(err.message.contains("no .cocci files"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
