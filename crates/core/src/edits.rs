//! Span-based edit sets and their application to source text.
//!
//! Every transformation the engine performs is expressed as a set of
//! byte-span edits against the *original* file text (delete, replace,
//! insert). Applying the set splices all edits in one pass, preserving all
//! untouched bytes — this is what makes the output a minimal diff of the
//! input, like Coccinelle's.

use cocci_source::Span;
use std::fmt;

/// One edit: replace `span` with `replacement`. An empty span is a pure
/// insertion at that offset; an empty replacement is a deletion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// Byte range to replace.
    pub span: Span,
    /// Replacement text.
    pub replacement: String,
    /// Tie-break for multiple insertions at the same offset (stable order
    /// of emission).
    pub seq: u32,
}

/// Overlapping-edit conflict.
#[derive(Debug, Clone)]
pub struct EditConflict {
    /// First edit's span.
    pub a: Span,
    /// Second edit's span.
    pub b: Span,
}

impl fmt::Display for EditConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conflicting edits at {} and {}", self.a, self.b)
    }
}

impl std::error::Error for EditConflict {}

/// A collection of edits to one file.
#[derive(Debug, Default, Clone)]
pub struct EditSet {
    edits: Vec<Edit>,
    next_seq: u32,
}

impl EditSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded edits.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// Whether no edits were recorded.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Record a replacement. Exact duplicates are dropped.
    pub fn replace(&mut self, span: Span, replacement: impl Into<String>) {
        let replacement = replacement.into();
        if self
            .edits
            .iter()
            .any(|e| e.span == span && e.replacement == replacement)
        {
            return;
        }
        self.edits.push(Edit {
            span,
            replacement,
            seq: self.next_seq,
        });
        self.next_seq += 1;
    }

    /// Record a deletion.
    pub fn delete(&mut self, span: Span) {
        self.replace(span, "");
    }

    /// Record an insertion at `offset`.
    pub fn insert(&mut self, offset: u32, text: impl Into<String>) {
        self.replace(Span::empty(offset), text);
    }

    /// Whether `span` overlaps any recorded non-insertion edit.
    pub fn overlaps(&self, span: Span) -> bool {
        self.edits.iter().any(|e| {
            !e.span.is_empty()
                && !span.is_empty()
                && e.span.start < span.end
                && span.start < e.span.end
        })
    }

    /// Absorb every edit of `other` (exact duplicates still dropped,
    /// relative order of same-offset insertions preserved).
    pub fn merge(&mut self, other: EditSet) {
        let mut incoming = other.edits;
        incoming.sort_by_key(|e| e.seq);
        for e in incoming {
            self.replace(e.span, e.replacement);
        }
    }

    /// Sorted copy of the edits (application order).
    fn sorted(&self) -> Vec<Edit> {
        let mut edits = self.edits.clone();
        // Sort by start; insertions at equal offsets keep emission order;
        // an insertion at X sorts before a replacement starting at X.
        edits.sort_by(|a, b| {
            a.span
                .start
                .cmp(&b.span.start)
                .then(a.span.end.cmp(&b.span.end))
                .then(a.seq.cmp(&b.seq))
        });
        edits
    }

    /// First pair of conflicting edits in sorted order, if any:
    /// overlapping non-empty ranges, or an insertion point strictly
    /// inside a replacement.
    fn find_conflict(sorted: &[Edit]) -> Option<EditConflict> {
        for w in sorted.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if !a.span.is_empty() && !b.span.is_empty() && b.span.start < a.span.end {
                return Some(EditConflict {
                    a: a.span,
                    b: b.span,
                });
            }
            if !a.span.is_empty()
                && b.span.is_empty()
                && b.span.start > a.span.start
                && b.span.start < a.span.end
            {
                return Some(EditConflict {
                    a: a.span,
                    b: b.span,
                });
            }
        }
        None
    }

    /// Whether this set and `other` — two *independently derived* edit
    /// sets — contradict each other: overlapping edits, an insertion
    /// point strictly inside the other's replacement, or insertions at
    /// the same offset with different text. The last case is legal
    /// *within* one set (several `+` groups may stack at one point) but
    /// across two sets it means they disagree about what belongs there
    /// (the sibling-witness contradiction check relies on this).
    pub fn conflicts_with(&self, other: &EditSet) -> bool {
        self.edits.iter().any(|a| {
            other.edits.iter().any(|b| {
                if a.span == b.span {
                    return a.replacement != b.replacement;
                }
                let overlap = !a.span.is_empty()
                    && !b.span.is_empty()
                    && a.span.start < b.span.end
                    && b.span.start < a.span.end;
                let a_inside_b = a.span.is_empty()
                    && !b.span.is_empty()
                    && a.span.start > b.span.start
                    && a.span.start < b.span.end;
                let b_inside_a = b.span.is_empty()
                    && !a.span.is_empty()
                    && b.span.start > a.span.start
                    && b.span.start < a.span.end;
                overlap || a_inside_b || b_inside_a
            })
        })
    }

    /// Apply all edits to `src`. Returns the patched text, or a conflict
    /// if two non-identical edits overlap.
    pub fn apply(&self, src: &str) -> Result<String, EditConflict> {
        let edits = self.sorted();
        if let Some(c) = Self::find_conflict(&edits) {
            return Err(c);
        }
        let mut out = String::with_capacity(src.len() + 64);
        let mut cursor = 0usize;
        for e in &edits {
            let start = e.span.start as usize;
            let end = e.span.end as usize;
            if start > cursor {
                out.push_str(&src[cursor..start]);
            }
            out.push_str(&e.replacement);
            cursor = cursor.max(end);
        }
        if cursor < src.len() {
            out.push_str(&src[cursor..]);
        }
        Ok(out)
    }
}

/// Expand `span` so that deleting it also removes now-blank lines: if the
/// bytes before it on its line are all whitespace and the bytes after it
/// up to (and including) the newline are all whitespace, the expanded span
/// covers the full line(s).
pub fn expand_to_full_lines(src: &str, span: Span) -> Span {
    let bytes = src.as_bytes();
    let mut start = span.start as usize;
    let mut end = span.end as usize;
    // Scan left to line start; bail if non-whitespace found.
    let mut ls = start;
    while ls > 0 && bytes[ls - 1] != b'\n' {
        ls -= 1;
    }
    if src[ls..start].chars().all(|c| c == ' ' || c == '\t') {
        // Scan right to past newline; bail if non-whitespace found.
        let mut le = end;
        while le < bytes.len() && bytes[le] != b'\n' {
            le += 1;
        }
        if src[end..le].chars().all(|c| c == ' ' || c == '\t') {
            start = ls;
            end = if le < bytes.len() { le + 1 } else { le };
        }
    }
    Span::new(start as u32, end as u32)
}

/// Leading whitespace of the line containing `offset`.
pub fn line_indent(src: &str, offset: u32) -> String {
    let bytes = src.as_bytes();
    let mut ls = offset as usize;
    while ls > 0 && bytes[ls - 1] != b'\n' {
        ls -= 1;
    }
    let mut i = ls;
    while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t') {
        i += 1;
    }
    src[ls..i].to_string()
}

/// Offset of the start of the line containing `offset`.
pub fn line_start(src: &str, offset: u32) -> u32 {
    let bytes = src.as_bytes();
    let mut ls = offset as usize;
    while ls > 0 && bytes[ls - 1] != b'\n' {
        ls -= 1;
    }
    ls as u32
}

/// Offset just past the newline ending the line containing `offset` (or
/// end of text).
pub fn next_line_start(src: &str, offset: u32) -> u32 {
    let bytes = src.as_bytes();
    let mut i = offset as usize;
    while i < bytes.len() && bytes[i] != b'\n' {
        i += 1;
    }
    if i < bytes.len() {
        (i + 1) as u32
    } else {
        i as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replace_and_insert() {
        let mut es = EditSet::new();
        es.replace(Span::new(4, 7), "world");
        es.insert(0, ">> ");
        assert_eq!(es.apply("say foo now").unwrap(), ">> say world now");
    }

    #[test]
    fn deletion() {
        let mut es = EditSet::new();
        es.delete(Span::new(3, 7));
        assert_eq!(es.apply("abcdefghi").unwrap(), "abchi");
    }

    #[test]
    fn duplicate_edits_are_idempotent() {
        let mut es = EditSet::new();
        es.delete(Span::new(0, 2));
        es.delete(Span::new(0, 2));
        assert_eq!(es.len(), 1);
        assert_eq!(es.apply("xxrest").unwrap(), "rest");
    }

    #[test]
    fn overlapping_edits_conflict() {
        let mut es = EditSet::new();
        es.replace(Span::new(0, 5), "A");
        es.replace(Span::new(3, 8), "B");
        assert!(es.apply("0123456789").is_err());
    }

    #[test]
    fn insertions_at_same_offset_keep_order() {
        let mut es = EditSet::new();
        es.insert(5, "one ");
        es.insert(5, "two ");
        assert_eq!(es.apply("01234XYZ").unwrap(), "01234one two XYZ");
    }

    #[test]
    fn insertion_inside_replacement_conflicts() {
        let mut es = EditSet::new();
        es.replace(Span::new(0, 6), "NEW");
        es.insert(3, "x");
        assert!(es.apply("abcdef...").is_err());
    }

    #[test]
    fn expand_to_full_lines_blank_line_removal() {
        let src = "keep;\n    doomed;\nkeep2;\n";
        // "doomed;" spans 10..17.
        let got = expand_to_full_lines(src, Span::new(10, 17));
        assert_eq!(got, Span::new(6, 18));
        let mut es = EditSet::new();
        es.delete(got);
        assert_eq!(es.apply(src).unwrap(), "keep;\nkeep2;\n");
    }

    #[test]
    fn expand_keeps_span_when_line_shared() {
        let src = "a; b;\n";
        // Deleting just "a;" must not take the whole line.
        let got = expand_to_full_lines(src, Span::new(0, 2));
        assert_eq!(got, Span::new(0, 2));
    }

    #[test]
    fn indent_helpers() {
        let src = "x\n    indented();\n";
        assert_eq!(line_indent(src, 8), "    ");
        assert_eq!(line_start(src, 8), 2);
        assert_eq!(next_line_start(src, 8), 18);
    }
}
