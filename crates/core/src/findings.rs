//! The findings subsystem: reporting-only rules and their diagnostics.
//!
//! Several of the paper's use cases are *inspections*, not rewrites —
//! "find every call site of X on some path" — and upstream Coccinelle
//! ships a `report`/`org` mode for exactly that. A rule whose body is
//! pure context (no `+`/`-` lines) transforms nothing; instead, every
//! match witness it produces becomes a [`Finding`]: a `file:line:col`
//! record carrying the rule name, a message, and the witness's
//! metavariable bindings. Position metavariables (`position p;` bound
//! with `@p`) pin the finding to the annotated occurrence; without one
//! the finding anchors at the match root.
//!
//! Byte spans resolve to 1-based line/column through `cocci-source`'s
//! [`SourceMap`] at emit time ([`Resolver`]); findings then flow through
//! the driver ([`FileOutcome`](crate::FileOutcome)), the apply report
//! ([`FileReport`](crate::report::FileReport), JSON round trip,
//! `--resume` carries them forward for unchanged files), and out of the
//! CLI as grep-style text, report JSON, or SARIF 2.1.0 ([`to_sarif`])
//! for CI ingestion.

use crate::env::Value;
use crate::matcher::MatchState;
use crate::report::{json, ApplyReport};
use cocci_smpl::{MetaDecl, MetaDeclKind};
use cocci_source::{FileId, SourceMap, Span};
use std::fmt::Write as _;

/// One diagnostic produced by a reporting-only rule (or by a script
/// rule's `coccilib.report.print_report`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Target file the finding points into.
    pub path: String,
    /// 1-based start line.
    pub line: u32,
    /// 1-based start column (byte-oriented).
    pub col: u32,
    /// 1-based end line (inclusive position of the span end).
    pub end_line: u32,
    /// 1-based end column.
    pub end_col: u32,
    /// Name of the rule that produced the finding (`<anonymous>` for
    /// nameless rules).
    pub rule: String,
    /// Human-readable message.
    pub message: String,
    /// Rendered metavariable bindings of the witness, in declaration
    /// order (position metavariables excluded — they are the location).
    pub bindings: Vec<(String, String)>,
}

impl Finding {
    /// The grep-style text form: `file:line:col: rule: message`.
    pub fn text_line(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }

    /// A stable identity for set comparison across output formats.
    pub fn key(&self) -> (String, u32, u32, String, String) {
        (
            self.path.clone(),
            self.line,
            self.col,
            self.rule.clone(),
            self.message.clone(),
        )
    }
}

/// Line/column resolution for one target file, built on
/// `cocci-source`'s [`SourceMap`] line tables.
pub struct Resolver {
    map: SourceMap,
    id: FileId,
}

impl Resolver {
    /// Register `text` under `name` and precompute its line table.
    pub fn new(name: &str, text: &str) -> Resolver {
        let mut map = SourceMap::new();
        let id = map.add_file(name, text);
        Resolver { map, id }
    }

    /// 1-based line/column of a byte offset.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let lc = self.map.file(self.id).line_col(offset);
        (lc.line, lc.col)
    }
}

/// Build the finding for one match witness of a reporting-only rule.
///
/// The anchor span is the first *declared* position metavariable bound
/// to a [`Value::Pos`] in the witness (declaration order — the rule
/// author's primary position), falling back to the merge of the
/// witness's real source pairs when the rule declares none.
pub fn finding_for_match(
    rule: &str,
    decls: &[MetaDecl],
    m: &MatchState,
    resolver: &Resolver,
    src: &str,
) -> Finding {
    let pos_span = decls
        .iter()
        .filter(|d| matches!(d.kind, MetaDeclKind::Position))
        .find_map(|d| match m.env.get(&d.name) {
            Some(Value::Pos { span, .. }) => Some(*span),
            _ => None,
        });
    let span = pos_span.unwrap_or_else(|| {
        m.pairs
            .iter()
            .filter(|p| !p.src.is_synthetic() && !p.src.is_empty())
            .fold(Span::SYNTHETIC, |acc, p| acc.merge(p.src))
    });
    let span = if span.is_synthetic() {
        Span::empty(0)
    } else {
        span
    };
    let (line, col) = resolver.line_col(span.start);
    let (end_line, end_col) = resolver.line_col(span.end);
    let mut bindings = Vec::new();
    for d in decls {
        if matches!(d.kind, MetaDeclKind::Position) {
            continue;
        }
        if let Some(v) = m.env.get(&d.name) {
            bindings.push((d.name.clone(), v.render(src)));
        }
    }
    Finding {
        path: resolver.map.file(resolver.id).name.clone(),
        line,
        col,
        end_line,
        end_col,
        rule: rule.to_string(),
        message: "matched".to_string(),
        bindings,
    }
}

/// Serialize one finding as a JSON object (used inside apply reports).
pub fn finding_to_json(f: &Finding) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"path\": {}, \"line\": {}, \"col\": {}, \"end_line\": {}, \"end_col\": {}, \"rule\": {}, \"message\": {}",
        json::escape(&f.path),
        f.line,
        f.col,
        f.end_line,
        f.end_col,
        json::escape(&f.rule),
        json::escape(&f.message),
    );
    if !f.bindings.is_empty() {
        // An array of [name, value] pairs, not an object: the minimal
        // JSON parser reads objects into a BTreeMap, which would lose
        // the documented declaration order across a round trip.
        out.push_str(", \"bindings\": [");
        for (i, (k, v)) in f.bindings.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{}, {}]", json::escape(k), json::escape(v));
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// Parse one finding back from its JSON object form.
pub fn finding_from_json(v: &json::Value) -> Result<Finding, String> {
    let o = v.as_object().ok_or("finding: expected a JSON object")?;
    let s = |k: &str| -> Result<String, String> {
        o.get(k)
            .and_then(json::Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("finding: missing \"{k}\""))
    };
    let n = |k: &str| -> u32 { o.get(k).and_then(json::Value::as_f64).unwrap_or(0.0) as u32 };
    let mut bindings = Vec::new();
    if let Some(b) = o.get("bindings").and_then(json::Value::as_array) {
        for pair in b {
            let bad = || "finding: binding entry not a [name, value] pair".to_string();
            let p = pair.as_array().ok_or_else(bad)?;
            let [k, v] = p else { return Err(bad()) };
            match (k.as_str(), v.as_str()) {
                (Some(k), Some(v)) => bindings.push((k.to_string(), v.to_string())),
                _ => return Err(bad()),
            }
        }
    }
    Ok(Finding {
        path: s("path")?,
        line: n("line"),
        col: n("col"),
        end_line: n("end_line"),
        end_col: n("end_col"),
        rule: s("rule")?,
        message: s("message")?,
        bindings,
    })
}

/// Presentation metadata for one rule in SARIF output — the bridge
/// between a scan rule set's [`RuleMeta`](crate::RuleMeta) and the
/// `tool.driver.rules` section.
#[derive(Debug, Clone)]
pub struct SarifRule {
    /// The SARIF `ruleId`.
    pub id: String,
    /// The SARIF `level` (`error` | `warning` | `note`).
    pub level: &'static str,
    /// Short description shown by SARIF viewers.
    pub description: String,
}

/// Render every finding of a report as a SARIF 2.1.0 document, the
/// interchange format CI systems (GitHub code scanning among them)
/// ingest. One run, one rule entry per distinct rule id, one result per
/// finding with a single physical location. Single-patch shorthand for
/// [`to_sarif_with`] without rule metadata (every result at `note`).
pub fn to_sarif(report: &ApplyReport) -> String {
    to_sarif_with(report, &[])
}

/// [`to_sarif`] with per-rule metadata: `rules` entries supply the
/// SARIF `level` and description for their ids (scan mode passes every
/// loaded rule, so the tool section is complete — and byte-stable —
/// even for rules with zero findings this run). Finding rule ids
/// without a descriptor still get a generated entry at `note`.
pub fn to_sarif_with(report: &ApplyReport, rules: &[SarifRule]) -> String {
    // Lint diagnostics ride along as ordinary results: their "rule" is
    // the lint id and their location points into the rule source file.
    // Corpus findings carry their file's funnel kill stage along so CI
    // result processors can group by how far the attempt got.
    let findings: Vec<(&Finding, Option<crate::explain::KillStage>)> = report
        .lints
        .iter()
        .map(|l| (l, None))
        .chain(
            report
                .files
                .iter()
                .flat_map(|f| f.findings.iter().map(|fd| (fd, f.kill_stage))),
        )
        .collect();
    let mut rule_ids: Vec<&str> = findings.iter().map(|(f, _)| f.rule.as_str()).collect();
    rule_ids.extend(rules.iter().map(|r| r.id.as_str()));
    rule_ids.sort_unstable();
    rule_ids.dedup();
    let meta = |id: &str| rules.iter().find(|r| r.id == id);

    let mut out = String::from("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"runs\": [{\n");
    out.push_str("    \"tool\": {\"driver\": {\"name\": \"spatch\", \"informationUri\": \"https://coccinelle.gitlabpages.inria.fr/website/\", \"rules\": [");
    for (i, id) in rule_ids.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let description = match meta(id) {
            Some(r) => r.description.clone(),
            None => format!("semantic-patch rule {id}"),
        };
        let _ = write!(
            out,
            "{{\"id\": {}, \"shortDescription\": {{\"text\": {}}}",
            json::escape(id),
            json::escape(&description),
        );
        if let Some(r) = meta(id) {
            let _ = write!(
                out,
                ", \"defaultConfiguration\": {{\"level\": \"{}\"}}",
                r.level
            );
        }
        out.push('}');
    }
    out.push_str("]}},\n");
    out.push_str("    \"results\": [");
    for (i, (f, kill_stage)) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = meta(&f.rule).map(|r| r.level).unwrap_or("note");
        // A content-derived fingerprint so result trackers can match
        // findings across runs even as unrelated lines shift.
        let fingerprint = crate::report::content_hash(&format!(
            "{}:{}:{}:{}:{}",
            f.path, f.line, f.col, f.rule, f.message
        ));
        let _ = write!(
            out,
            "\n      {{\"ruleId\": {}, \"level\": \"{}\", \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}, \"endLine\": {}, \"endColumn\": {}}}}}}}], \
             \"partialFingerprints\": {{\"spatchFinding/v1\": \"{fingerprint:016x}\"}}",
            json::escape(&f.rule),
            level,
            json::escape(&f.message),
            json::escape(&f.path),
            f.line.max(1),
            f.col.max(1),
            f.end_line.max(1),
            f.end_col.max(1),
        );
        if let Some(k) = kill_stage {
            let _ = write!(out, ", \"properties\": {{\"killStage\": \"{}\"}}", k.name());
        }
        out.push('}');
    }
    out.push_str("\n    ]\n  }]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{FileReport, FileStatus};

    fn sample_finding() -> Finding {
        Finding {
            path: "src/a.c".into(),
            line: 3,
            col: 5,
            end_line: 3,
            end_col: 14,
            rule: "r".into(),
            message: "matched".into(),
            // Deliberately out of alphabetical order: the round trip
            // must preserve declaration order, not sort.
            bindings: vec![("z".into(), "q + 1".into()), ("a".into(), "w".into())],
        }
    }

    #[test]
    fn text_line_is_grep_style() {
        assert_eq!(sample_finding().text_line(), "src/a.c:3:5: r: matched");
    }

    #[test]
    fn finding_json_round_trips() {
        let f = sample_finding();
        let j = finding_to_json(&f);
        let v = json::parse(&j).unwrap();
        let back = finding_from_json(&v).unwrap();
        assert_eq!(back, f);
        // Bindings are optional in the wire form.
        let bare = r#"{"path": "x.c", "line": 1, "col": 2, "end_line": 1, "end_col": 3,
            "rule": "r", "message": "m"}"#;
        let back = finding_from_json(&json::parse(bare).unwrap()).unwrap();
        assert!(back.bindings.is_empty());
        // Malformed binding entries are loud errors, not silent drops.
        let bad = r#"{"path": "x.c", "line": 1, "col": 2, "end_line": 1, "end_col": 3,
            "rule": "r", "message": "m", "bindings": [["only-one"]]}"#;
        assert!(finding_from_json(&json::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn resolver_maps_offsets_to_line_col() {
        let r = Resolver::new("a.c", "int x;\nint y;\n");
        assert_eq!(r.line_col(0), (1, 1));
        assert_eq!(r.line_col(7), (2, 1));
        assert_eq!(r.line_col(12), (2, 6));
    }

    #[test]
    fn sarif_has_required_shape() {
        let report = ApplyReport {
            patch: "p.cocci".into(),
            patch_hash: 1,
            threads: 1,
            prefilter: true,
            resumed: 0,
            total_seconds: 0.0,
            metrics: None,
            lints: Vec::new(),
            explain: None,
            files: vec![FileReport {
                name: "src/a.c".into(),
                status: FileStatus::Matched,
                matches: 1,
                witnesses: 0,
                seconds: 0.0,
                hash: 1,
                error: None,
                findings: vec![sample_finding()],
                rules: Vec::new(),
                rules_pruned: 0,
                suppressed: 0,
                kill_stage: Some(crate::explain::KillStage::Completed),
            }],
        };
        let sarif = to_sarif(&report);
        let v = json::parse(&sarif).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(o.get("version").unwrap().as_str(), Some("2.1.0"));
        let runs = o.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 1);
        let run = runs[0].as_object().unwrap();
        let results = run.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 1);
        let res = results[0].as_object().unwrap();
        assert_eq!(res.get("ruleId").unwrap().as_str(), Some("r"));
        let loc = res.get("locations").unwrap().as_array().unwrap()[0]
            .as_object()
            .unwrap()
            .get("physicalLocation")
            .unwrap()
            .as_object()
            .unwrap();
        let region = loc.get("region").unwrap().as_object().unwrap();
        assert_eq!(region.get("startLine").unwrap().as_f64(), Some(3.0));
        // The tool section names every distinct rule once.
        let driver = run
            .get("tool")
            .unwrap()
            .as_object()
            .unwrap()
            .get("driver")
            .unwrap()
            .as_object()
            .unwrap();
        assert_eq!(driver.get("name").unwrap().as_str(), Some("spatch"));
        assert_eq!(driver.get("rules").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn sarif_rule_metadata_sets_levels_and_lists_findingless_rules() {
        let report = ApplyReport {
            patch: "rules/".into(),
            patch_hash: 1,
            threads: 1,
            prefilter: true,
            resumed: 0,
            total_seconds: 0.0,
            metrics: None,
            lints: Vec::new(),
            explain: None,
            files: vec![FileReport {
                name: "src/a.c".into(),
                status: FileStatus::Matched,
                matches: 1,
                witnesses: 0,
                seconds: 0.0,
                hash: 1,
                error: None,
                findings: vec![sample_finding()],
                rules: Vec::new(),
                rules_pruned: 0,
                suppressed: 0,
                kill_stage: None,
            }],
        };
        let rules = vec![
            SarifRule {
                id: "r".into(),
                level: "warning",
                description: "old API is deprecated".into(),
            },
            // A loaded rule with zero findings this run still appears in
            // the tool section (keeps the output shape rule-stable).
            SarifRule {
                id: "quiet-rule".into(),
                level: "error",
                description: "never fired".into(),
            },
        ];
        let sarif = to_sarif_with(&report, &rules);
        let v = json::parse(&sarif).unwrap();
        let run = v
            .as_object()
            .unwrap()
            .get("runs")
            .unwrap()
            .as_array()
            .unwrap()[0]
            .as_object()
            .unwrap()
            .clone();
        let listed = run
            .get("tool")
            .unwrap()
            .as_object()
            .unwrap()
            .get("driver")
            .unwrap()
            .as_object()
            .unwrap()
            .get("rules")
            .unwrap()
            .as_array()
            .unwrap()
            .to_vec();
        let ids: Vec<&str> = listed
            .iter()
            .map(|r| r.as_object().unwrap().get("id").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(ids, ["quiet-rule", "r"], "sorted, findingless included");
        let r_entry = listed[1].as_object().unwrap();
        assert_eq!(
            r_entry
                .get("defaultConfiguration")
                .unwrap()
                .as_object()
                .unwrap()
                .get("level")
                .unwrap()
                .as_str(),
            Some("warning")
        );
        let result = run.get("results").unwrap().as_array().unwrap()[0]
            .as_object()
            .unwrap()
            .clone();
        assert_eq!(result.get("level").unwrap().as_str(), Some("warning"));
    }
}
