//! Corpus abstraction: streaming file sources for codebase-scale runs.
//!
//! The driver's original API took an explicit in-memory
//! `&[(String, String)]`; a GADGET-scale tree does not fit that shape.
//! [`FileSource`] streams files in **bounded-memory batches**: a source
//! yields at most [`BatchOptions::max_files`] files / `max_bytes` bytes
//! of text per call, the driver patches the batch in parallel, records
//! outcomes into an [`ApplyReport`](crate::ApplyReport), and drops the
//! text before pulling the next batch.
//!
//! Two sources are provided:
//!
//! * [`MemorySource`] — wraps an in-memory list (tests, benches, the
//!   legacy API);
//! * [`WalkSource`] — walks directories with `.gitignore`-style
//!   filtering ([`IgnoreSet`]) and a C/C++/CUDA extension filter. Paths
//!   are enumerated eagerly (cheap — a path is ~100 bytes), file *text*
//!   is read lazily per batch, which is where the memory goes.

use crate::compile::CompiledPatch;
use crate::driver::{run_one, ExecOptions, FileOutcome};
use crate::explain::{AttemptTrace, ExplainBlock, ExplainConfig};
use crate::orchestrate::{ApplyError, Patcher};
use crate::pool::{resolve_threads, ResultSlots, WorkQueue};
use crate::report::{content_hash, ApplyReport, FileReport, FileStatus, RunMetrics};
use cocci_smpl::SemanticPatch;
use cocci_trace::Phase;
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Batch size limits for streaming sources.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Maximum files per batch.
    pub max_files: usize,
    /// Maximum total text bytes per batch (at least one file is always
    /// yielded, so a single oversized file still goes through).
    pub max_bytes: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            max_files: 512,
            max_bytes: 16 * 1024 * 1024,
        }
    }
}

/// A source of files to patch, pulled in bounded batches.
pub trait FileSource {
    /// The next batch of files, or an empty vector when exhausted.
    fn next_batch(&mut self, opts: &BatchOptions) -> Vec<(String, String)>;

    /// Drain `(name, message)` pairs for files that could not be read.
    fn take_errors(&mut self) -> Vec<(String, String)> {
        Vec::new()
    }
}

/// An in-memory file list as a (single- or multi-batch) source.
pub struct MemorySource {
    files: VecDeque<(String, String)>,
}

impl MemorySource {
    /// Wrap an in-memory list.
    pub fn new(files: impl IntoIterator<Item = (String, String)>) -> Self {
        MemorySource {
            files: files.into_iter().collect(),
        }
    }
}

impl FileSource for MemorySource {
    fn next_batch(&mut self, opts: &BatchOptions) -> Vec<(String, String)> {
        let mut batch = Vec::new();
        let mut bytes = 0usize;
        while let Some((_, text)) = self.files.front() {
            let len = text.len();
            if !batch.is_empty() && (batch.len() >= opts.max_files || bytes + len > opts.max_bytes)
            {
                break;
            }
            bytes += len;
            batch.push(self.files.pop_front().unwrap());
        }
        batch
    }
}

/// File extensions the walker considers patchable.
pub const SOURCE_EXTENSIONS: [&str; 10] = [
    "c", "h", "cc", "cpp", "cxx", "hpp", "hh", "cu", "cuh", "inl",
];

/// A directory/file walker source with ignore filtering.
///
/// Directories are walked recursively in sorted order; a `.gitignore` at
/// each walk root is honoured, plus any extra patterns supplied by the
/// caller. Explicitly listed files bypass both the extension filter and
/// the ignore set (you asked for them by name).
pub struct WalkSource {
    pending: VecDeque<PathBuf>,
    errors: Vec<(String, String)>,
}

impl WalkSource {
    /// Discover all candidate files under `paths` (files and/or directory
    /// roots), applying `extra_ignore` patterns (gitignore syntax) on top
    /// of each root's own `.gitignore`.
    pub fn discover(paths: &[PathBuf], extra_ignore: &[String]) -> WalkSource {
        let mut src = WalkSource {
            pending: VecDeque::new(),
            errors: Vec::new(),
        };
        for p in paths {
            if p.is_dir() {
                let mut ignore = IgnoreSet::new(extra_ignore.iter().map(String::as_str));
                let gi = p.join(".gitignore");
                if let Ok(text) = std::fs::read_to_string(&gi) {
                    ignore.add_lines(&text);
                }
                src.walk_dir(p, Path::new(""), &ignore);
            } else if p.exists() {
                src.pending.push_back(p.clone());
            } else {
                src.errors.push((
                    p.display().to_string(),
                    "no such file or directory".to_string(),
                ));
            }
        }
        src
    }

    /// Number of files discovered and still queued.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }

    fn walk_dir(&mut self, abs: &Path, rel: &Path, ignore: &IgnoreSet) {
        let mut entries: Vec<(String, PathBuf, bool)> = match std::fs::read_dir(abs) {
            Ok(rd) => rd
                .filter_map(|e| e.ok())
                .map(|e| {
                    let name = e.file_name().to_string_lossy().into_owned();
                    let is_dir = e.file_type().map(|t| t.is_dir()).unwrap_or(false);
                    (name, e.path(), is_dir)
                })
                .collect(),
            Err(e) => {
                self.errors.push((abs.display().to_string(), e.to_string()));
                return;
            }
        };
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, path, is_dir) in entries {
            if name.starts_with('.') {
                continue; // dotfiles: .git, .gitignore itself, editors' litter
            }
            let rel_child = if rel.as_os_str().is_empty() {
                PathBuf::from(&name)
            } else {
                rel.join(&name)
            };
            let rel_str = rel_child.to_string_lossy().replace('\\', "/");
            if ignore.is_ignored(&rel_str, is_dir) {
                continue;
            }
            if is_dir {
                self.walk_dir(&path, &rel_child, ignore);
            } else {
                let ext = path
                    .extension()
                    .map(|e| e.to_string_lossy().to_ascii_lowercase());
                if matches!(&ext, Some(e) if SOURCE_EXTENSIONS.contains(&e.as_str())) {
                    self.pending.push_back(path);
                }
            }
        }
    }
}

impl FileSource for WalkSource {
    fn next_batch(&mut self, opts: &BatchOptions) -> Vec<(String, String)> {
        let mut batch: Vec<(String, String)> = Vec::new();
        let mut bytes = 0usize;
        while let Some(path) = self.pending.front() {
            let size = std::fs::metadata(path)
                .map(|m| m.len() as usize)
                .unwrap_or(0);
            if !batch.is_empty() && (batch.len() >= opts.max_files || bytes + size > opts.max_bytes)
            {
                break;
            }
            let path = self.pending.pop_front().unwrap();
            let name = path.display().to_string();
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    bytes += text.len();
                    batch.push((name, text));
                }
                Err(e) => self.errors.push((name, e.to_string())),
            }
        }
        batch
    }

    fn take_errors(&mut self) -> Vec<(String, String)> {
        std::mem::take(&mut self.errors)
    }
}

/// A `.gitignore`-style pattern set (subset: `*`, `?`, `**`, leading `/`
/// anchoring, trailing `/` directory-only, `!` negation, `#` comments).
/// The last matching pattern wins, as in git.
#[derive(Debug, Clone, Default)]
pub struct IgnoreSet {
    patterns: Vec<IgnorePattern>,
}

#[derive(Debug, Clone)]
struct IgnorePattern {
    /// Slash-separated glob, leading `/` stripped.
    glob: String,
    /// Pattern started with `!` (re-include).
    negated: bool,
    /// Pattern ended with `/` (directories only).
    dir_only: bool,
    /// Pattern contained a `/` (anchored to the root) or started with one.
    anchored: bool,
}

impl IgnoreSet {
    /// Build from pattern lines (gitignore syntax).
    pub fn new<'a>(lines: impl IntoIterator<Item = &'a str>) -> IgnoreSet {
        let mut set = IgnoreSet::default();
        for l in lines {
            set.add_line(l);
        }
        set
    }

    /// Add every line of a `.gitignore` file.
    pub fn add_lines(&mut self, text: &str) {
        for l in text.lines() {
            self.add_line(l);
        }
    }

    /// Add one pattern line; comments and blanks are skipped.
    pub fn add_line(&mut self, line: &str) {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return;
        }
        let (negated, rest) = match line.strip_prefix('!') {
            Some(r) => (true, r),
            None => (false, line),
        };
        let (dir_only, rest) = match rest.strip_suffix('/') {
            Some(r) => (true, r),
            None => (false, rest),
        };
        // A separator anywhere (now that the trailing one is gone) anchors
        // the pattern to the walk root, per gitignore semantics.
        let anchored = rest.contains('/');
        let glob = rest.trim_start_matches('/').to_string();
        if glob.is_empty() {
            return;
        }
        self.patterns.push(IgnorePattern {
            glob,
            negated,
            dir_only,
            anchored,
        });
    }

    /// Whether root-relative `path` (using `/` separators) is ignored.
    /// `is_dir` enables directory-only patterns (and lets the walker
    /// prune whole subtrees).
    pub fn is_ignored(&self, path: &str, is_dir: bool) -> bool {
        let mut ignored = false;
        for p in &self.patterns {
            if p.dir_only && !is_dir {
                continue;
            }
            let subject: &str = if p.anchored {
                path
            } else {
                // Unanchored patterns match the basename at any depth.
                path.rsplit('/').next().unwrap_or(path)
            };
            if glob_match(&p.glob, subject) {
                ignored = !p.negated;
            }
        }
        ignored
    }
}

/// Match a gitignore-style glob against a `/`-separated path. `*` and `?`
/// do not cross separators; `**` does.
fn glob_match(glob: &str, path: &str) -> bool {
    fn seg_match(pat: &[u8], s: &[u8]) -> bool {
        match (pat.first(), s.first()) {
            (None, None) => true,
            (Some(b'*'), _) => {
                seg_match(&pat[1..], s) || (!s.is_empty() && seg_match(pat, &s[1..]))
            }
            (Some(b'?'), Some(_)) => seg_match(&pat[1..], &s[1..]),
            (Some(p), Some(c)) if p == c => seg_match(&pat[1..], &s[1..]),
            _ => false,
        }
    }
    fn segs_match(pats: &[&str], segs: &[&str]) -> bool {
        match pats.first() {
            None => segs.is_empty(),
            Some(&"**") => (0..=segs.len()).any(|k| segs_match(&pats[1..], &segs[k..])),
            Some(p) => match segs.first() {
                Some(s) if seg_match(p.as_bytes(), s.as_bytes()) => {
                    segs_match(&pats[1..], &segs[1..])
                }
                _ => false,
            },
        }
    }
    let pats: Vec<&str> = glob.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    segs_match(&pats, &segs)
}

/// Options for a streaming corpus run.
#[derive(Debug, Clone, Default)]
pub struct CorpusOptions {
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Disable the compile-time prefilter (it is on by default — pruning
    /// is sound, see [`CompiledPatch::may_match`]).
    pub no_prefilter: bool,
    /// Disable CFG path matching of statement dots (fall back to the
    /// legacy tree-sequence reading; `spatch --no-flow`).
    pub no_flow: bool,
    /// Per-file wall-clock budget in milliseconds; over-budget files are
    /// recorded with a `timeout` status instead of stalling the run.
    pub timeout_ms: Option<u64>,
    /// `--explain` filter: collect full attempt traces (stage + detail)
    /// for matching (file, rule) attempts into the report's `explain`
    /// block. `None` keeps only the cheap per-outcome stages.
    pub explain: Option<Arc<ExplainConfig>>,
    /// Batch limits.
    pub batch: BatchOptions,
}

/// Apply `patch` to every file of `source`, streaming batches with
/// bounded memory.
///
/// `sink` is invoked once per processed file with its name, original
/// text, and outcome — this is where a CLI prints diffs or rewrites
/// files while the text is still in memory. Returns the machine-readable
/// report; a patch compile error surfaces here once, before any file is
/// touched.
pub fn apply_to_corpus(
    patch: &SemanticPatch,
    source: &mut dyn FileSource,
    opts: &CorpusOptions,
    sink: impl FnMut(&str, &str, &FileOutcome),
) -> Result<ApplyReport, ApplyError> {
    apply_to_corpus_resumed(patch, source, opts, None, sink)
}

/// [`apply_to_corpus`] with incremental re-apply: files whose content
/// hash matches their entry in `previous` (a prior run's report) and
/// whose previous status was a *completed* outcome
/// ([`FileStatus::resumable`]) are skipped — the status is copied into
/// the new report with zero seconds, they are not handed to the sink,
/// and they are counted in [`ApplyReport::resumed`]. Files the previous
/// report does not know (or knew under a different hash), and files
/// whose previous attempt timed out or failed, run normally.
///
/// Skipping is only sound when `previous` was produced by the **same
/// semantic patch**: the caller must check
/// [`ApplyReport::patch_hash`] against the current patch text before
/// resuming (as `spatch --resume` does — it refuses on mismatch).
pub fn apply_to_corpus_resumed(
    patch: &SemanticPatch,
    source: &mut dyn FileSource,
    opts: &CorpusOptions,
    previous: Option<&ApplyReport>,
    mut sink: impl FnMut(&str, &str, &FileOutcome),
) -> Result<ApplyReport, ApplyError> {
    let compiled = Arc::new(CompiledPatch::compile(patch)?);
    // `when exists`/`when strict` only exist on the CFG route — refuse
    // once at run level rather than erroring identically on every file.
    if opts.no_flow {
        if let Some(rule) = compiled.requires_flow() {
            return Err(ApplyError::new(format!(
                "rule {rule}: `when exists` / `when strict` require CFG path matching, \
                 which --no-flow disables"
            )));
        }
    }
    let exec = ExecOptions {
        threads: opts.threads,
        prefilter: !opts.no_prefilter,
        flow: !opts.no_flow,
        timeout_ms: opts.timeout_ms,
        explain: opts.explain.clone(),
    };
    // Hash 0 means "unknown" (unreadable file, pre-hash report): never a
    // skip candidate.
    let prev_by_name: HashMap<&str, &FileReport> = previous
        .map(|r| {
            r.files
                .iter()
                .filter(|f| f.hash != 0)
                .map(|f| (f.name.as_str(), f))
                .collect()
        })
        .unwrap_or_default();
    let t0 = Instant::now();
    let mut files = Vec::new();
    let mut resumed = 0usize;

    // One persistent worker team for the whole run: the walker (this
    // thread) streams file units into a work-stealing queue while the
    // workers drain it, so there is no per-batch join barrier — a slow
    // file in batch N overlaps with the parsing of batch N+1. Every file
    // the producer encounters (run, resumed, or unreadable) reserves one
    // ordered result slot, so the sink and the report observe exactly
    // the walk order whatever the completion order was.
    enum Done {
        Ran(String, String, FileOutcome),
        Skipped(FileReport),
    }
    struct Task {
        slot: usize,
        name: String,
        text: String,
    }
    let threads = resolve_threads(opts.threads);
    let queue: WorkQueue<Task> = WorkQueue::new(threads);
    let slots: ResultSlots<Done> = ResultSlots::new();
    // Under `--explain`, matching attempts accumulate into the report's
    // explain block. Results arrive in walk order (the slots are
    // ordered), and the block sorts on finish, so the embedded traces
    // are byte-identical across thread counts.
    let mut explain_block = opts.explain.as_ref().map(|_| ExplainBlock::default());

    std::thread::scope(|scope| {
        for w in 0..threads {
            let (queue, slots, compiled, exec) = (&queue, &slots, &compiled, &exec);
            let spawn = std::thread::Builder::new().name(format!("worker-{w}"));
            let handle = spawn.spawn_scoped(scope, move || {
                // One Patcher per worker over the shared compile:
                // script-interpreter globals are per-application state
                // and must not be shared, but the compiled patch is
                // immutable.
                let mut patcher = Patcher::from_compiled(Arc::clone(compiled));
                patcher.flow_enabled = exec.flow;
                patcher.time_budget = exec.timeout_ms.map(Duration::from_millis);
                patcher.explain = exec.explain.clone();
                while let Some(task) = queue.pop(w) {
                    let outcome = run_one(&mut patcher, compiled, &task.name, &task.text, exec);
                    slots.set(task.slot, Done::Ran(task.name, task.text, outcome));
                }
            });
            handle.expect("spawn corpus worker");
        }

        let explain_cfg: Option<&ExplainConfig> = opts.explain.as_deref();
        let explain_block = &mut explain_block;
        let mut emit = |done: Vec<Done>, files: &mut Vec<FileReport>| {
            for d in done {
                let _report_span = cocci_trace::span(Phase::Report);
                match d {
                    Done::Ran(name, text, outcome) => {
                        if let (Some(block), Some(cfg)) = (explain_block.as_mut(), explain_cfg) {
                            block.extend(
                                outcome
                                    .attempts
                                    .iter()
                                    .filter(|a| cfg.matches(&name, &a.rule))
                                    .map(|a| AttemptTrace {
                                        file: name.clone(),
                                        rule: a.rule.clone(),
                                        stage: a.stage,
                                        detail: a.detail.clone(),
                                    }),
                            );
                        }
                        sink(&name, &text, &outcome);
                        files.push(FileReport::from_outcome(&outcome));
                    }
                    Done::Skipped(report) => files.push(report),
                }
            }
        };

        loop {
            let batch = {
                let _walk_span = cocci_trace::span(Phase::Walk);
                source.next_batch(&opts.batch)
            };
            for (name, msg) in source.take_errors() {
                let i = slots.reserve(1);
                slots.set(
                    i,
                    Done::Skipped(FileReport {
                        name,
                        status: FileStatus::Error,
                        matches: 0,
                        witnesses: 0,
                        seconds: 0.0,
                        hash: 0,
                        error: Some(msg),
                        findings: Vec::new(),
                        rules: Vec::new(),
                        rules_pruned: 0,
                        suppressed: 0,
                        kill_stage: None,
                    }),
                );
            }
            if batch.is_empty() {
                break;
            }
            let mut tasks = Vec::with_capacity(batch.len());
            for (name, text) in batch {
                let hash = content_hash(&text);
                let i = slots.reserve(1);
                match prev_by_name.get(name.as_str()) {
                    // Only completed statuses are copied forward: a prior
                    // `timeout`/`error` records a failed *attempt*, so the
                    // file is re-attempted even though its text is
                    // unchanged (see [`FileStatus::resumable`]).
                    Some(prev) if prev.hash == hash && prev.status.resumable() => {
                        resumed += 1;
                        slots.set(
                            i,
                            Done::Skipped(FileReport {
                                name,
                                status: prev.status,
                                matches: prev.matches,
                                witnesses: prev.witnesses,
                                seconds: 0.0,
                                hash,
                                error: prev.error.clone(),
                                // A skipped file's *findings* carry
                                // forward too — an unchanged file still
                                // has the same diagnostics, and report
                                // mode would otherwise silently drop them
                                // from incremental runs.
                                findings: prev.findings.clone(),
                                rules: prev.rules.clone(),
                                rules_pruned: prev.rules_pruned,
                                suppressed: prev.suppressed,
                                kill_stage: prev.kill_stage,
                            }),
                        );
                    }
                    _ => tasks.push(Task {
                        slot: i,
                        name,
                        text,
                    }),
                }
            }
            queue.push_chunk(tasks);
            // Stream out whatever has completed so far: the sink sees
            // results (and text memory is released) while workers chew
            // on the rest.
            emit(slots.drain_ready(), &mut files);
        }
        queue.close();
        emit(slots.drain_all(), &mut files);
    });

    // Workers are gone: every span for this run is recorded, so a traced
    // run can embed an exact aggregate alongside the pool's counters.
    let metrics = cocci_trace::is_enabled()
        .then(|| RunMetrics::from_trace(&cocci_trace::collect(), Some(&queue.stats())));
    if let Some(block) = explain_block.as_mut() {
        block.finish();
    }

    Ok(ApplyReport {
        patch: String::new(),
        patch_hash: 0,
        threads: opts.threads,
        prefilter: !opts.no_prefilter,
        resumed,
        total_seconds: t0.elapsed().as_secs_f64(),
        metrics,
        lints: Vec::new(),
        explain: explain_block,
        files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocci_smpl::parse_semantic_patch;

    #[test]
    fn memory_source_respects_batch_limits() {
        let files: Vec<(String, String)> = (0..10)
            .map(|i| (format!("f{i}.c"), "x".repeat(100)))
            .collect();
        let mut src = MemorySource::new(files);
        let opts = BatchOptions {
            max_files: 4,
            max_bytes: usize::MAX,
        };
        let sizes: Vec<usize> = std::iter::from_fn(|| {
            let b = src.next_batch(&opts);
            (!b.is_empty()).then_some(b.len())
        })
        .collect();
        assert_eq!(sizes, [4, 4, 2]);

        let mut src = MemorySource::new(vec![
            ("a.c".to_string(), "x".repeat(600)),
            ("b.c".to_string(), "x".repeat(600)),
        ]);
        let opts = BatchOptions {
            max_files: 100,
            max_bytes: 1000,
        };
        // Byte cap: one 600-byte file per batch (first always yielded).
        assert_eq!(src.next_batch(&opts).len(), 1);
        assert_eq!(src.next_batch(&opts).len(), 1);
        assert!(src.next_batch(&opts).is_empty());
    }

    #[test]
    fn gitignore_globs() {
        assert!(glob_match("*.tmp", "x.tmp"));
        assert!(!glob_match("*.tmp", "x.tmpz"));
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("*", "a/b"));
        assert!(glob_match("**/gen.c", "deep/down/gen.c"));
        assert!(glob_match("**/gen.c", "gen.c"));
        assert!(glob_match("build/**", "build/x/y.c"));
    }

    #[test]
    fn ignore_set_semantics() {
        let set = IgnoreSet::new(["build/", "*.tmp", "!keep.tmp", "# comment", "docs/*.c"]);
        assert!(set.is_ignored("build", true));
        assert!(!set.is_ignored("build", false)); // dir-only
        assert!(set.is_ignored("deep/scratch.tmp", false)); // basename match
        assert!(!set.is_ignored("deep/keep.tmp", false)); // negation wins (last match)
        assert!(set.is_ignored("docs/x.c", false)); // anchored
        assert!(!set.is_ignored("other/docs/x.c", false)); // anchored ≠ nested
    }

    #[test]
    fn corpus_run_streams_and_reports() {
        let patch = parse_semantic_patch("@@ @@\n- old_api(1);\n+ new_api(1);\n").unwrap();
        let mut files = vec![(
            "miss0.c".to_string(),
            "void f(void) { other(); }\n".to_string(),
        )];
        for i in 0..5 {
            files.push((
                format!("hit{i}.c"),
                "void f(void) { old_api(1); }\n".to_string(),
            ));
        }
        let mut src = MemorySource::new(files);
        let mut seen = Vec::new();
        let report = apply_to_corpus(
            &patch,
            &mut src,
            &CorpusOptions {
                threads: 2,
                batch: BatchOptions {
                    max_files: 2,
                    max_bytes: usize::MAX,
                },
                ..Default::default()
            },
            |name, _text, outcome| seen.push((name.to_string(), outcome.output.is_some())),
        )
        .unwrap();
        assert_eq!(report.files.len(), 6);
        assert_eq!(report.count(FileStatus::Changed), 5);
        assert_eq!(report.count(FileStatus::Pruned), 1);
        assert_eq!(seen.len(), 6);
        assert!(report.total_seconds > 0.0);
        // Round-trip through JSON preserves the counts.
        let back = ApplyReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.count(FileStatus::Changed), 5);
    }

    #[test]
    fn resume_skips_unchanged_files_and_copies_status() {
        let patch = parse_semantic_patch("@@ @@\n- old_api(1);\n+ new_api(1);\n").unwrap();
        let hit = (
            "hit.c".to_string(),
            "void f(void) { old_api(1); }\n".to_string(),
        );
        let miss = (
            "miss.c".to_string(),
            "void f(void) { other(); }\n".to_string(),
        );
        let first = apply_to_corpus(
            &patch,
            &mut MemorySource::new(vec![hit.clone(), miss.clone()]),
            &CorpusOptions::default(),
            |_, _, _| {},
        )
        .unwrap();
        assert_eq!(first.resumed, 0);

        // Second run: `hit.c` was modified (its previous hash no longer
        // matches), `miss.c` is unchanged and must be skipped.
        let hit2 = (
            "hit.c".to_string(),
            "void f(void) { old_api(1); done(); }\n".to_string(),
        );
        let mut sunk = Vec::new();
        let second = apply_to_corpus_resumed(
            &patch,
            &mut MemorySource::new(vec![hit2, miss.clone()]),
            &CorpusOptions::default(),
            Some(&first),
            |name, _, _| sunk.push(name.to_string()),
        )
        .unwrap();
        assert_eq!(second.resumed, 1);
        assert_eq!(sunk, ["hit.c"], "only the changed file reruns");
        let miss_entry = second.files.iter().find(|f| f.name == "miss.c").unwrap();
        assert_eq!(miss_entry.status, FileStatus::Pruned, "status copied");
        assert_eq!(miss_entry.seconds, 0.0);
        // Round-tripping the report through JSON keeps resume viable.
        let back = ApplyReport::from_json(&second.to_json()).unwrap();
        assert_eq!(back.resumed, 1);
        assert_eq!(
            back.files.iter().find(|f| f.name == "miss.c").unwrap().hash,
            miss_entry.hash
        );
    }

    #[test]
    fn resume_carries_findings_forward_for_unchanged_files() {
        // Reporting-only patch: matches become findings, not edits.
        let patch = parse_semantic_patch("@scan@\nexpression e;\nposition p;\n@@\nold_api(e)@p;\n")
            .unwrap();
        let hit = (
            "hit.c".to_string(),
            "void f(void) {\n    old_api(1);\n}\n".to_string(),
        );
        let first = apply_to_corpus(
            &patch,
            &mut MemorySource::new(vec![hit.clone()]),
            &CorpusOptions::default(),
            |_, _, _| {},
        )
        .unwrap();
        assert_eq!(first.files[0].status, FileStatus::Matched);
        assert_eq!(first.files[0].findings.len(), 1);
        assert_eq!(first.files[0].findings[0].line, 2);
        assert_eq!(first.files[0].findings[0].col, 5);

        // Resume over the unchanged file: skipped, but the findings ride
        // along — an incremental report still shows the full set.
        let second = apply_to_corpus_resumed(
            &patch,
            &mut MemorySource::new(vec![hit]),
            &CorpusOptions::default(),
            Some(&first),
            |_, _, _| {},
        )
        .unwrap();
        assert_eq!(second.resumed, 1);
        assert_eq!(second.files[0].findings, first.files[0].findings);
        // And they survive the JSON round trip the CLI resume path uses.
        let back = ApplyReport::from_json(&second.to_json()).unwrap();
        assert_eq!(back.files[0].findings, first.files[0].findings);
    }

    #[test]
    fn no_flow_corpus_run_refuses_quantified_patch_at_run_level() {
        let patch =
            parse_semantic_patch("@@ @@\n- a();\n+ a2();\n... when exists\nb();\n").unwrap();
        let err = apply_to_corpus(
            &patch,
            &mut MemorySource::new(vec![(
                "f.c".to_string(),
                "void f(void) { a(); b(); }\n".into(),
            )]),
            &CorpusOptions {
                no_flow: true,
                ..Default::default()
            },
            |_, _, _| {},
        )
        .unwrap_err();
        assert!(err.message.contains("when exists"), "{err}");
        // With flow on, the same patch runs.
        assert!(apply_to_corpus(
            &patch,
            &mut MemorySource::new(vec![(
                "f.c".to_string(),
                "void f(void) { a(); b(); }\n".into()
            )]),
            &CorpusOptions::default(),
            |_, _, _| {},
        )
        .is_ok());
    }

    #[test]
    fn resume_retries_previously_timed_out_and_failed_files() {
        let patch = parse_semantic_patch("@@ @@\n- old_api(1);\n+ new_api(1);\n").unwrap();
        let hit = (
            "hit.c".to_string(),
            "void f(void) { old_api(1); }\n".to_string(),
        );
        // First run under a zero budget: the file times out.
        let first = apply_to_corpus(
            &patch,
            &mut MemorySource::new(vec![hit.clone()]),
            &CorpusOptions {
                timeout_ms: Some(0),
                ..Default::default()
            },
            |_, _, _| {},
        )
        .unwrap();
        assert_eq!(first.count(FileStatus::Timeout), 1);

        // Resuming without the budget must re-attempt the unchanged
        // file rather than copying the timeout forward.
        let second = apply_to_corpus_resumed(
            &patch,
            &mut MemorySource::new(vec![hit.clone()]),
            &CorpusOptions::default(),
            Some(&first),
            |_, _, _| {},
        )
        .unwrap();
        assert_eq!(second.resumed, 0, "a failed attempt is not resumable");
        assert_eq!(second.count(FileStatus::Changed), 1);

        // `error` statuses re-run too.
        let mut prior = second.clone();
        prior.files[0].status = FileStatus::Error;
        prior.files[0].error = Some("synthetic".into());
        let third = apply_to_corpus_resumed(
            &patch,
            &mut MemorySource::new(vec![hit.clone()]),
            &CorpusOptions::default(),
            Some(&prior),
            |_, _, _| {},
        )
        .unwrap();
        assert_eq!(third.resumed, 0);
        assert_eq!(third.count(FileStatus::Changed), 1);

        // A completed status still skips, as before.
        let fourth = apply_to_corpus_resumed(
            &patch,
            &mut MemorySource::new(vec![hit]),
            &CorpusOptions::default(),
            Some(&second),
            |_, _, _| {},
        )
        .unwrap();
        assert_eq!(fourth.resumed, 1);
    }

    #[test]
    fn walker_discovers_filters_and_reads() {
        let root = std::env::temp_dir().join(format!("cocci-walk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("src/deep")).unwrap();
        std::fs::create_dir_all(root.join("build")).unwrap();
        std::fs::write(root.join(".gitignore"), "build/\n*.skip.c\n").unwrap();
        std::fs::write(root.join("src/a.c"), "void a(void) {}\n").unwrap();
        std::fs::write(root.join("src/deep/b.cu"), "void b(void) {}\n").unwrap();
        std::fs::write(root.join("src/x.skip.c"), "void x(void) {}\n").unwrap();
        std::fs::write(root.join("src/notes.md"), "# not source\n").unwrap();
        std::fs::write(root.join("build/gen.c"), "void g(void) {}\n").unwrap();

        let mut src = WalkSource::discover(std::slice::from_ref(&root), &[]);
        assert_eq!(src.remaining(), 2);
        let batch = src.next_batch(&BatchOptions::default());
        let names: Vec<&str> = batch.iter().map(|f| f.0.as_str()).collect();
        assert!(names[0].ends_with("src/a.c"), "{names:?}");
        assert!(names[1].ends_with("src/deep/b.cu"), "{names:?}");
        assert!(src.next_batch(&BatchOptions::default()).is_empty());
        assert!(src.take_errors().is_empty());

        // Extra ignore patterns stack on the root's .gitignore.
        let mut src =
            WalkSource::discover(std::slice::from_ref(&root), &["deep/".to_string()]).pending;
        assert_eq!(src.len(), 1);
        src.clear();

        // Missing paths surface as errors, not panics.
        let mut src = WalkSource::discover(&[root.join("nope.c")], &[]);
        assert!(src.next_batch(&BatchOptions::default()).is_empty());
        let errs = src.take_errors();
        assert_eq!(errs.len(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// The streaming pool must not leak scheduling into observable
    /// output: whatever the thread count, batch size, or steal pattern,
    /// the sink stream and the report are byte-identical — and a thread
    /// count larger than any single batch still engages every worker
    /// (the old per-batch driver clamped threads to the batch size).
    #[test]
    fn corpus_output_identical_across_threads_and_batch_sizes() {
        let patch = parse_semantic_patch("@@ @@\n- old_api(1);\n+ new_api(1);\n").unwrap();
        let files: Vec<(String, String)> = (0..12)
            .map(|i| {
                let body = if i % 3 == 0 {
                    "void f(void) { other(); }\n".to_string()
                } else {
                    format!("void f{i}(void) {{ old_api(1); }}\n")
                };
                (format!("f{i:02}.c"), body)
            })
            .collect();
        let mut runs = Vec::new();
        for threads in [1, 2, 4] {
            for max_files in [1, 3, 100] {
                let mut sunk = Vec::new();
                let report = apply_to_corpus(
                    &patch,
                    &mut MemorySource::new(files.clone()),
                    &CorpusOptions {
                        threads,
                        batch: BatchOptions {
                            max_files,
                            max_bytes: usize::MAX,
                        },
                        ..Default::default()
                    },
                    |name, text, outcome| {
                        sunk.push((name.to_string(), text.to_string(), outcome.output.clone()))
                    },
                )
                .unwrap();
                let digest: Vec<(String, String, usize)> = report
                    .files
                    .iter()
                    .map(|f| (f.name.clone(), f.status.to_string(), f.matches))
                    .collect();
                runs.push((sunk, digest));
            }
        }
        for r in &runs[1..] {
            assert_eq!(r.0, runs[0].0, "sink stream differs");
            assert_eq!(r.1, runs[0].1, "report sequence differs");
        }
        // And the sink saw the files in walk order, not completion order.
        let names: Vec<&str> = runs[0].0.iter().map(|(n, _, _)| n.as_str()).collect();
        let expect: Vec<String> = (0..12).map(|i| format!("f{i:02}.c")).collect();
        assert_eq!(names, expect);
    }
}
