//! Machine-readable apply reports.
//!
//! A corpus run produces an [`ApplyReport`]: one [`FileReport`] per file
//! (outcome, match count, wall-clock seconds) plus run-level metadata.
//! The report serializes to JSON ([`ApplyReport::to_json`]) for CI bots
//! and round-trips back ([`ApplyReport::from_json`]) via a minimal
//! in-house JSON parser — the workspace builds offline with zero
//! crates.io dependencies, so there is no serde to lean on.

use crate::driver::FileOutcome;
use crate::explain::{ExplainBlock, KillStage};
use crate::findings::{finding_from_json, finding_to_json, Finding};
use crate::pool::PoolStats;
use crate::scan::RuleOutcome;
use std::collections::BTreeMap;
use std::fmt;

/// Classified outcome of one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileStatus {
    /// Skipped by the prefilter before lexing/parsing.
    Pruned,
    /// Fully processed, zero matches.
    Unmatched,
    /// Matched at least one rule but produced no edits (pure-match rules).
    Matched,
    /// Edits were produced; `FileOutcome::output` holds the new text.
    Changed,
    /// Exceeded the per-file time budget (`--timeout-ms`); abandoned at
    /// a rule boundary so the corpus run could move on.
    Timeout,
    /// Failed (parse error, edit conflict, unreadable file).
    Error,
}

impl FileStatus {
    /// All statuses, in display order.
    pub const ALL: [FileStatus; 6] = [
        FileStatus::Pruned,
        FileStatus::Unmatched,
        FileStatus::Matched,
        FileStatus::Changed,
        FileStatus::Timeout,
        FileStatus::Error,
    ];

    /// Stable string form used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            FileStatus::Pruned => "pruned",
            FileStatus::Unmatched => "unmatched",
            FileStatus::Matched => "matched",
            FileStatus::Changed => "changed",
            FileStatus::Timeout => "timeout",
            FileStatus::Error => "error",
        }
    }

    /// Parse the JSON string form.
    pub fn parse(s: &str) -> Option<FileStatus> {
        FileStatus::ALL.into_iter().find(|st| st.as_str() == s)
    }

    /// Whether `--resume` may copy this status forward for an unchanged
    /// file. Completed outcomes (pruned / unmatched / matched / changed)
    /// skip; `timeout` and `error` describe a *failed attempt*, not the
    /// file, so those files are re-attempted — a larger budget or a
    /// fixed engine may well succeed on the identical text.
    pub fn resumable(self) -> bool {
        !matches!(self, FileStatus::Timeout | FileStatus::Error)
    }
}

impl fmt::Display for FileStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// FNV-1a hash of a file's text — the content identity `--resume` uses
/// to skip unchanged files across runs.
pub fn content_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Per-file entry of an apply report.
#[derive(Debug, Clone)]
pub struct FileReport {
    /// File name/path as processed.
    pub name: String,
    /// Classified outcome.
    pub status: FileStatus,
    /// Matches found across rules (0 unless fully processed).
    pub matches: usize,
    /// Per-path witnesses from CFG-routed (statement-dots) rules —
    /// forked cross-branch bindings count once per path.
    pub witnesses: usize,
    /// Wall-clock seconds spent on this file.
    pub seconds: f64,
    /// FNV-1a hash of the original file text (0 = unknown, e.g. an
    /// unreadable file); lets `--resume` skip unchanged files.
    pub hash: u64,
    /// Error message when `status` is [`FileStatus::Error`] or
    /// [`FileStatus::Timeout`].
    pub error: Option<String>,
    /// Findings from reporting-only rules (and script `print_report`
    /// calls). `--resume` carries them forward for unchanged files.
    pub findings: Vec<Finding>,
    /// Per-rule outcomes (scan mode only; empty for single-patch runs).
    pub rules: Vec<RuleOutcome>,
    /// Rules the merged prefilter pruned for this file (scan mode only).
    pub rules_pruned: usize,
    /// Findings dropped by `// spatch-ignore` markers.
    pub suppressed: usize,
    /// Deepest funnel stage reached across this file's rule attempts
    /// (`None` for files with no recorded attempts — errors outside the
    /// match pipeline, or reports from older builds).
    pub kill_stage: Option<KillStage>,
}

impl FileReport {
    /// Classify a driver outcome.
    pub fn from_outcome(o: &FileOutcome) -> FileReport {
        let status = if o.timed_out {
            FileStatus::Timeout
        } else if o.error.is_some() {
            FileStatus::Error
        } else if o.pruned {
            FileStatus::Pruned
        } else if o.output.is_some() {
            FileStatus::Changed
        } else if o.matches > 0 {
            FileStatus::Matched
        } else {
            FileStatus::Unmatched
        };
        FileReport {
            name: o.name.clone(),
            status,
            matches: o.matches,
            witnesses: o.witnesses,
            seconds: o.seconds,
            hash: o.hash,
            error: o.error.clone(),
            findings: o.findings.clone(),
            rules: Vec::new(),
            rules_pruned: 0,
            suppressed: o.suppressed,
            kill_stage: o.kill_stage,
        }
    }
}

/// Pool scheduler-health numbers carried in a [`RunMetrics`] block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Worker threads the queue was sized for.
    pub workers: usize,
    /// Units taken from a neighbour's shard, summed over workers.
    pub steals: u64,
    /// Nanoseconds spent blocked waiting for work, summed over workers.
    pub idle_ns: u64,
    /// High-water mark of queued-but-unpopped units.
    pub queue_depth_max: u64,
}

impl PoolMetrics {
    /// Collapse a per-worker [`PoolStats`] snapshot into report totals.
    pub fn from_stats(stats: &PoolStats) -> PoolMetrics {
        PoolMetrics {
            workers: stats.workers,
            steals: stats.total_steals(),
            idle_ns: stats.total_idle_ns(),
            queue_depth_max: stats.queue_depth_max,
        }
    }

    /// Fraction of the team's wall-clock budget spent idle (`0..=1`).
    pub fn idle_frac(&self, wall_seconds: f64) -> f64 {
        let budget_ns = wall_seconds * 1e9 * self.workers.max(1) as f64;
        if budget_ns <= 0.0 {
            return 0.0;
        }
        (self.idle_ns as f64 / budget_ns).clamp(0.0, 1.0)
    }

    /// Utilization percentage (100 − idle share) for display.
    pub fn utilization_pct(&self, wall_seconds: f64) -> f64 {
        (1.0 - self.idle_frac(wall_seconds)) * 100.0
    }
}

/// Aggregated telemetry for one run, embedded in the report JSON when
/// tracing was enabled (`--stats` / `--trace-out`). The daemon and CI
/// consume this block instead of re-deriving numbers from trace files.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Phase name -> spans recorded.
    pub phase_counts: BTreeMap<String, u64>,
    /// Phase name -> total nanoseconds across all threads.
    pub phase_ns: BTreeMap<String, u64>,
    /// Counter name -> value (see `cocci_trace::Counter`).
    pub counters: BTreeMap<String, u64>,
    /// Work-stealing pool health (absent for in-process batch runs that
    /// never built a pool).
    pub pool: Option<PoolMetrics>,
}

impl RunMetrics {
    /// Build a metrics block from a collected trace snapshot plus an
    /// optional pool snapshot.
    pub fn from_trace(data: &cocci_trace::TraceData, pool: Option<&PoolStats>) -> RunMetrics {
        let mut phase_counts = BTreeMap::new();
        let mut phase_ns = BTreeMap::new();
        for (name, total) in data.phase_totals() {
            phase_counts.insert(name.to_string(), total.count);
            phase_ns.insert(name.to_string(), total.total_ns);
        }
        let counters = data
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        RunMetrics {
            phase_counts,
            phase_ns,
            counters,
            pool: pool.map(PoolMetrics::from_stats),
        }
    }

    /// Total nanoseconds recorded for one phase (0 if never entered).
    pub fn phase_total_ns(&self, phase: &str) -> u64 {
        self.phase_ns.get(phase).copied().unwrap_or(0)
    }

    /// Counter value by name (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serialize as a JSON object (nanosecond totals ride as numbers;
    /// they stay far below the f64 53-bit integer limit).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"phases\": {");
        for (i, (name, count)) in self.phase_counts.iter().enumerate() {
            let ns = self.phase_total_ns(name);
            let _ = write!(
                out,
                "{}{}: {{\"count\": {count}, \"ns\": {ns}}}",
                if i == 0 { "" } else { ", " },
                json::escape(name)
            );
        }
        out.push_str("}, \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let _ = write!(
                out,
                "{}{}: {v}",
                if i == 0 { "" } else { ", " },
                json::escape(name)
            );
        }
        out.push('}');
        if let Some(pool) = &self.pool {
            let _ = write!(
                out,
                ", \"pool\": {{\"workers\": {}, \"steals\": {}, \"idle_ns\": {}, \"queue_depth_max\": {}}}",
                pool.workers, pool.steals, pool.idle_ns, pool.queue_depth_max
            );
        }
        out.push('}');
        out
    }

    /// Parse the JSON object form back.
    pub fn from_json(v: &json::Value) -> Result<RunMetrics, String> {
        let obj = v.as_object().ok_or("metrics: expected a JSON object")?;
        let mut phase_counts = BTreeMap::new();
        let mut phase_ns = BTreeMap::new();
        if let Some(phases) = obj.get("phases").and_then(json::Value::as_object) {
            for (name, pv) in phases {
                let po = pv.as_object().ok_or("metrics: phase entry not an object")?;
                let count = po.get("count").and_then(json::Value::as_f64).unwrap_or(0.0);
                let ns = po.get("ns").and_then(json::Value::as_f64).unwrap_or(0.0);
                phase_counts.insert(name.clone(), count as u64);
                phase_ns.insert(name.clone(), ns as u64);
            }
        }
        let mut counters = BTreeMap::new();
        if let Some(cs) = obj.get("counters").and_then(json::Value::as_object) {
            for (name, cv) in cs {
                counters.insert(name.clone(), cv.as_f64().unwrap_or(0.0) as u64);
            }
        }
        let pool = obj
            .get("pool")
            .and_then(json::Value::as_object)
            .map(|po| PoolMetrics {
                workers: po
                    .get("workers")
                    .and_then(json::Value::as_f64)
                    .unwrap_or(0.0) as usize,
                steals: po
                    .get("steals")
                    .and_then(json::Value::as_f64)
                    .unwrap_or(0.0) as u64,
                idle_ns: po
                    .get("idle_ns")
                    .and_then(json::Value::as_f64)
                    .unwrap_or(0.0) as u64,
                queue_depth_max: po
                    .get("queue_depth_max")
                    .and_then(json::Value::as_f64)
                    .unwrap_or(0.0) as u64,
            });
        Ok(RunMetrics {
            phase_counts,
            phase_ns,
            counters,
            pool,
        })
    }
}

/// A whole corpus run, ready for JSON serialization.
#[derive(Debug, Clone)]
pub struct ApplyReport {
    /// Semantic-patch identifier (the `--sp-file` path, typically).
    pub patch: String,
    /// [`content_hash`] of the semantic-patch *text* (0 = unknown, as
    /// in reports from older builds). `--resume` refuses a previous
    /// report whose patch hash does not match the current patch —
    /// including the unknown case: skipping "unchanged" files is only
    /// sound against the very same patch.
    pub patch_hash: u64,
    /// Worker threads used (0 = all cores at run time).
    pub threads: usize,
    /// Whether the prefilter was enabled.
    pub prefilter: bool,
    /// Files skipped by `--resume` because their content hash matched
    /// the previous report (their entries carry the copied status).
    pub resumed: usize,
    /// Total wall-clock seconds for the run.
    pub total_seconds: f64,
    /// Aggregated telemetry (phase totals, counters, pool health);
    /// present when the run was traced (`--stats` / `--trace-out`).
    pub metrics: Option<RunMetrics>,
    /// Rule-lint diagnostics from the load-time static analysis
    /// (`cocci-lint` via the CLI): each finding points into a *rule
    /// source file*, with the lint id as its rule name. Empty when
    /// linting was clean, skipped (`--no-lint`), or predates this field.
    pub lints: Vec<Finding>,
    /// Full per-attempt traces (file × rule × kill stage), present only
    /// when the run was started with `--explain`; capped at
    /// [`crate::explain::EXPLAIN_ATTEMPT_CAP`] entries.
    pub explain: Option<ExplainBlock>,
    /// Per-file entries, in processing order.
    pub files: Vec<FileReport>,
}

impl ApplyReport {
    /// Number of files with the given status.
    pub fn count(&self, status: FileStatus) -> usize {
        self.files.iter().filter(|f| f.status == status).count()
    }

    /// Fraction of files the prefilter pruned (0.0 when no files).
    pub fn prune_rate(&self) -> f64 {
        if self.files.is_empty() {
            0.0
        } else {
            self.count(FileStatus::Pruned) as f64 / self.files.len() as f64
        }
    }

    /// One-line human summary (`3 changed, 2 pruned, …`).
    pub fn summary(&self) -> String {
        let counts: Vec<String> = FileStatus::ALL
            .into_iter()
            .map(|s| format!("{} {s}", self.count(s)))
            .collect();
        format!("{} file(s): {}", self.files.len(), counts.join(", "))
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"patch\": {},\n  \"patch_hash\": \"{:016x}\",\n  \"threads\": {},\n  \"prefilter\": {},\n  \"resumed\": {},\n  \"total_seconds\": {:e},\n  \"counts\": {{",
            json::escape(&self.patch),
            self.patch_hash,
            self.threads,
            self.prefilter,
            self.resumed,
            self.total_seconds
        );
        for (i, s) in FileStatus::ALL.into_iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{s}\": {}",
                if i == 0 { "" } else { ", " },
                self.count(s)
            );
        }
        out.push('}');
        if let Some(m) = &self.metrics {
            let _ = write!(out, ",\n  \"metrics\": {}", m.to_json());
        }
        if !self.lints.is_empty() {
            out.push_str(",\n  \"lints\": [");
            for (i, l) in self.lints.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&finding_to_json(l));
            }
            out.push(']');
        }
        if let Some(ex) = &self.explain {
            let _ = write!(out, ",\n  \"explain\": {}", ex.to_json());
        }
        out.push_str(",\n  \"files\": [");
        for (i, f) in self.files.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // The hash rides as a hex string: u64 does not survive the
            // f64 number path of the minimal JSON parser.
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"status\": \"{}\", \"matches\": {}, \"witnesses\": {}, \"seconds\": {:e}, \"hash\": \"{:016x}\"",
                json::escape(&f.name),
                f.status,
                f.matches,
                f.witnesses,
                f.seconds,
                f.hash
            );
            if let Some(e) = &f.error {
                let _ = write!(out, ", \"error\": {}", json::escape(e));
            }
            if f.suppressed > 0 {
                let _ = write!(out, ", \"suppressed\": {}", f.suppressed);
            }
            if f.rules_pruned > 0 {
                let _ = write!(out, ", \"rules_pruned\": {}", f.rules_pruned);
            }
            if let Some(k) = f.kill_stage {
                let _ = write!(out, ", \"kill_stage\": \"{}\"", k.name());
            }
            if !f.rules.is_empty() {
                out.push_str(", \"rules\": [");
                for (j, r) in f.rules.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&r.to_json());
                }
                out.push(']');
            }
            if !f.findings.is_empty() {
                out.push_str(", \"findings\": [");
                for (j, fd) in f.findings.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&finding_to_json(fd));
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a report back from its JSON form.
    pub fn from_json(text: &str) -> Result<ApplyReport, String> {
        let v = json::parse(text)?;
        let obj = v.as_object().ok_or("report: expected a JSON object")?;
        let patch = obj
            .get("patch")
            .and_then(json::Value::as_str)
            .ok_or("report: missing \"patch\"")?
            .to_string();
        let patch_hash = obj
            .get("patch_hash")
            .and_then(json::Value::as_str)
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .unwrap_or(0);
        let threads = obj
            .get("threads")
            .and_then(json::Value::as_f64)
            .ok_or("report: missing \"threads\"")? as usize;
        let prefilter = obj
            .get("prefilter")
            .and_then(json::Value::as_bool)
            .ok_or("report: missing \"prefilter\"")?;
        let total_seconds = obj
            .get("total_seconds")
            .and_then(json::Value::as_f64)
            .unwrap_or(0.0);
        let resumed = obj
            .get("resumed")
            .and_then(json::Value::as_f64)
            .unwrap_or(0.0) as usize;
        let metrics = match obj.get("metrics") {
            Some(mv) => Some(RunMetrics::from_json(mv)?),
            None => None,
        };
        let mut lints = Vec::new();
        if let Some(arr) = obj.get("lints").and_then(json::Value::as_array) {
            for lv in arr {
                lints.push(finding_from_json(lv)?);
            }
        }
        let explain = match obj.get("explain") {
            Some(ev) => Some(ExplainBlock::from_json(ev)?),
            None => None,
        };
        let mut files = Vec::new();
        for fv in obj
            .get("files")
            .and_then(json::Value::as_array)
            .ok_or("report: missing \"files\"")?
        {
            let fo = fv.as_object().ok_or("report: file entry not an object")?;
            let name = fo
                .get("name")
                .and_then(json::Value::as_str)
                .ok_or("report: file entry missing \"name\"")?
                .to_string();
            let status = fo
                .get("status")
                .and_then(json::Value::as_str)
                .and_then(FileStatus::parse)
                .ok_or("report: file entry has bad \"status\"")?;
            let matches = fo
                .get("matches")
                .and_then(json::Value::as_f64)
                .unwrap_or(0.0) as usize;
            let witnesses = fo
                .get("witnesses")
                .and_then(json::Value::as_f64)
                .unwrap_or(0.0) as usize;
            let seconds = fo
                .get("seconds")
                .and_then(json::Value::as_f64)
                .unwrap_or(0.0);
            let hash = fo
                .get("hash")
                .and_then(json::Value::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or(0);
            let error = fo
                .get("error")
                .and_then(json::Value::as_str)
                .map(str::to_string);
            let mut findings = Vec::new();
            if let Some(arr) = fo.get("findings").and_then(json::Value::as_array) {
                for fv in arr {
                    findings.push(finding_from_json(fv)?);
                }
            }
            let suppressed = fo
                .get("suppressed")
                .and_then(json::Value::as_f64)
                .unwrap_or(0.0) as usize;
            let rules_pruned = fo
                .get("rules_pruned")
                .and_then(json::Value::as_f64)
                .unwrap_or(0.0) as usize;
            let kill_stage = fo
                .get("kill_stage")
                .and_then(json::Value::as_str)
                .and_then(KillStage::parse);
            let mut rules = Vec::new();
            if let Some(arr) = fo.get("rules").and_then(json::Value::as_array) {
                for rv in arr {
                    rules.push(RuleOutcome::from_json(rv)?);
                }
            }
            files.push(FileReport {
                name,
                status,
                matches,
                witnesses,
                seconds,
                hash,
                error,
                findings,
                rules,
                rules_pruned,
                suppressed,
                kill_stage,
            });
        }
        Ok(ApplyReport {
            patch,
            patch_hash,
            threads,
            prefilter,
            resumed,
            total_seconds,
            metrics,
            lints,
            explain,
            files,
        })
    }
}

/// Minimal JSON reader/writer — just enough for apply reports and bench
/// files; not a general-purpose implementation.
pub mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (parsed as `f64`).
        Num(f64),
        /// String.
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object (key order not preserved).
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The boolean payload, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }

        /// The members, if this is an object.
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
    }

    /// Escape `s` as a JSON string literal (quotes included).
    pub fn escape(s: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Parse one JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("json: trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("json: expected `{}` at byte {pos}", c as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("json: unexpected end of input".into()),
            Some(b'{') => {
                *pos += 1;
                let mut map = BTreeMap::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(map));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    expect(b, pos, b':')?;
                    let val = parse_value(b, pos)?;
                    map.insert(key, val);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(map));
                        }
                        _ => return Err(format!("json: expected `,` or `}}` at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut arr = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(arr));
                }
                loop {
                    arr.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(arr));
                        }
                        _ => return Err(format!("json: expected `,` or `]` at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *pos;
                while *pos < b.len()
                    && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
                s.parse::<f64>()
                    .map(Value::Num)
                    .map_err(|_| format!("json: bad number `{s}` at byte {start}"))
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("json: expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("json: unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or("json: truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err("json: bad escape".into()),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte safe).
                    let start = *pos;
                    *pos += 1;
                    while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                        *pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ApplyReport {
        ApplyReport {
            patch: "p.cocci".into(),
            patch_hash: content_hash("@@ @@\n- a();\n"),
            threads: 4,
            prefilter: true,
            resumed: 1,
            total_seconds: 0.25,
            metrics: Some(RunMetrics {
                phase_counts: [("parse".to_string(), 3), ("tree_match".to_string(), 5)]
                    .into_iter()
                    .collect(),
                phase_ns: [
                    ("parse".to_string(), 1_200_000),
                    ("tree_match".to_string(), 800_000),
                ]
                .into_iter()
                .collect(),
                counters: [
                    ("files_parsed".to_string(), 3),
                    ("files_pruned".to_string(), 1),
                ]
                .into_iter()
                .collect(),
                pool: Some(PoolMetrics {
                    workers: 4,
                    steals: 7,
                    idle_ns: 50_000_000,
                    queue_depth_max: 12,
                }),
            }),
            lints: vec![Finding {
                path: "rules/old.cocci".into(),
                line: 1,
                col: 1,
                end_line: 1,
                end_col: 1,
                rule: "SPL01".into(),
                message: "rule r: metavariable `x` is declared but never used".into(),
                bindings: Vec::new(),
            }],
            explain: Some(ExplainBlock {
                attempts: vec![crate::explain::AttemptTrace {
                    file: "a/b.c".into(),
                    rule: "use-new-api".into(),
                    stage: KillStage::Completed,
                    detail: None,
                }],
                dropped: 0,
            }),
            files: vec![
                FileReport {
                    name: "a/b.c".into(),
                    status: FileStatus::Changed,
                    matches: 3,
                    witnesses: 2,
                    seconds: 1e-4,
                    hash: 0xDEADBEEFCAFE0123,
                    error: None,
                    findings: vec![Finding {
                        path: "a/b.c".into(),
                        line: 3,
                        col: 5,
                        end_line: 3,
                        end_col: 12,
                        rule: "scan".into(),
                        message: "matched".into(),
                        bindings: vec![("e".into(), "q".into())],
                    }],
                    rules: vec![
                        RuleOutcome {
                            id: "use-new-api".into(),
                            status: FileStatus::Matched,
                            matches: 2,
                            findings: 1,
                            suppressed: 1,
                            seconds: 2.5e-4,
                            kill_stage: Some(KillStage::Completed),
                        },
                        RuleOutcome {
                            id: "no-old-free".into(),
                            status: FileStatus::Unmatched,
                            matches: 0,
                            findings: 0,
                            suppressed: 0,
                            seconds: 1e-5,
                            kill_stage: Some(KillStage::Anchor),
                        },
                    ],
                    rules_pruned: 3,
                    suppressed: 1,
                    kill_stage: Some(KillStage::Completed),
                },
                FileReport {
                    name: "a/skip.c".into(),
                    status: FileStatus::Pruned,
                    matches: 0,
                    witnesses: 0,
                    seconds: 2e-6,
                    hash: content_hash("void f(void) {}\n"),
                    error: None,
                    findings: Vec::new(),
                    rules: Vec::new(),
                    rules_pruned: 0,
                    suppressed: 0,
                    kill_stage: Some(KillStage::Prefilter),
                },
                FileReport {
                    name: "slow.c".into(),
                    status: FileStatus::Timeout,
                    matches: 0,
                    witnesses: 0,
                    seconds: 1.0,
                    hash: 7,
                    error: Some("exceeded per-file time budget".into()),
                    findings: Vec::new(),
                    rules: Vec::new(),
                    rules_pruned: 0,
                    suppressed: 0,
                    kill_stage: Some(KillStage::Timeout),
                },
                FileReport {
                    name: "bad.c".into(),
                    status: FileStatus::Error,
                    matches: 0,
                    witnesses: 0,
                    seconds: 5e-5,
                    hash: 0,
                    error: Some("cannot parse \"target\"".into()),
                    findings: Vec::new(),
                    rules: Vec::new(),
                    rules_pruned: 0,
                    suppressed: 0,
                    kill_stage: None,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample();
        let json = r.to_json();
        let back = ApplyReport::from_json(&json).unwrap();
        assert_eq!(back.patch, r.patch);
        assert_eq!(back.threads, r.threads);
        assert_eq!(back.prefilter, r.prefilter);
        assert_eq!(back.files.len(), r.files.len());
        for s in FileStatus::ALL {
            assert_eq!(back.count(s), r.count(s), "{s}");
        }
        assert_eq!(back.files[0].matches, 3);
        assert_eq!(
            back.files[3].error.as_deref(),
            Some("cannot parse \"target\"")
        );
        // Findings survive the round trip exactly.
        assert_eq!(back.files[0].findings, r.files[0].findings);
        assert!(back.files[1].findings.is_empty());
        // Scan-mode fields (per-rule outcomes, prune/suppression counts)
        // survive too; legacy entries default to empty/zero.
        assert_eq!(back.files[0].rules, r.files[0].rules);
        assert_eq!(back.files[0].rules_pruned, 3);
        assert_eq!(back.files[0].suppressed, 1);
        assert!(back.files[1].rules.is_empty());
        assert_eq!(back.files[1].suppressed, 0);
        // Hashes and the resumed count survive the round trip exactly.
        assert_eq!(back.resumed, 1);
        assert_eq!(back.patch_hash, r.patch_hash);
        assert_eq!(back.files[0].hash, 0xDEADBEEFCAFE0123);
        assert_eq!(back.files[1].hash, r.files[1].hash);
        assert_eq!(back.files[3].hash, 0);
        assert_eq!(back.files[2].status, FileStatus::Timeout);
        // The metrics block survives exactly.
        assert_eq!(back.metrics, r.metrics);
        // Lint findings survive exactly; reports without the block
        // (older runs, clean lints) parse to an empty list.
        assert_eq!(back.lints, r.lints);
        // Kill stages and the explain block survive exactly; legacy
        // entries without them parse to None.
        assert_eq!(back.files[0].kill_stage, Some(KillStage::Completed));
        assert_eq!(back.files[1].kill_stage, Some(KillStage::Prefilter));
        assert_eq!(back.files[3].kill_stage, None);
        let ex = back.explain.as_ref().unwrap();
        assert_eq!(ex.attempts.len(), 1);
        assert_eq!(ex.attempts[0].rule, "use-new-api");
        assert_eq!(ex.attempts[0].stage, KillStage::Completed);
        let mut bare = sample();
        bare.explain = None;
        let back = ApplyReport::from_json(&bare.to_json()).unwrap();
        assert!(back.explain.is_none());
        let mut clean = sample();
        clean.lints = Vec::new();
        let back = ApplyReport::from_json(&clean.to_json()).unwrap();
        assert!(back.lints.is_empty());
    }

    #[test]
    fn metrics_block_round_trips_and_is_optional() {
        let r = sample();
        let m = r.metrics.as_ref().unwrap();
        assert_eq!(m.phase_total_ns("parse"), 1_200_000);
        assert_eq!(m.phase_total_ns("flow_match"), 0);
        assert_eq!(m.counter("files_parsed"), 3);
        assert_eq!(m.counter("timeouts"), 0);
        let pool = m.pool.as_ref().unwrap();
        // 50ms idle over a 0.25s x 4-worker budget = 5% idle.
        assert!((pool.idle_frac(r.total_seconds) - 0.05).abs() < 1e-9);
        assert!((pool.utilization_pct(r.total_seconds) - 95.0).abs() < 1e-9);
        // A report without a metrics block parses to None.
        let mut bare = sample();
        bare.metrics = None;
        let back = ApplyReport::from_json(&bare.to_json()).unwrap();
        assert!(back.metrics.is_none());
    }

    #[test]
    fn counts_and_rates() {
        let r = sample();
        assert_eq!(r.count(FileStatus::Changed), 1);
        assert_eq!(r.count(FileStatus::Timeout), 1);
        assert_eq!(r.count(FileStatus::Unmatched), 0);
        assert!((r.prune_rate() - 1.0 / 4.0).abs() < 1e-9);
        assert!(r.summary().contains("4 file(s)"));
    }

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        assert_eq!(content_hash(""), 0xcbf29ce484222325);
        assert_eq!(content_hash("abc"), content_hash("abc"));
        assert_ne!(content_hash("abc"), content_hash("abd"));
        // Reports written without a hash field (older runs) parse as 0.
        let legacy = r#"{"patch": "p", "threads": 1, "prefilter": false,
            "files": [{"name": "x.c", "status": "unmatched", "matches": 0, "seconds": 0}]}"#;
        let back = ApplyReport::from_json(legacy).unwrap();
        assert_eq!(back.files[0].hash, 0);
        assert_eq!(back.resumed, 0);
    }

    #[test]
    fn json_parser_handles_the_basics() {
        let v = json::parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        let o = v.as_object().unwrap();
        let a = o.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(o.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(o.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(o.get("d"), Some(&json::Value::Null));
        assert!(json::parse("{\"unterminated\": ").is_err());
        assert!(json::parse("[1,]").is_err());
    }

    #[test]
    fn status_string_round_trip() {
        for s in FileStatus::ALL {
            assert_eq!(FileStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(FileStatus::parse("bogus"), None);
    }
}
