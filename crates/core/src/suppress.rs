//! Inline finding suppression: `// spatch-ignore [rule-id]` comments.
//!
//! A finding is suppressed when its line — or the line immediately above
//! it — carries a suppression marker naming the finding's rule, or a
//! bare marker (which silences every rule on that line). This is the
//! lint-tool convention (`NOLINT`, `noqa`, `eslint-disable-line`):
//!
//! ```c
//! old_api(1); // spatch-ignore use-new-api   <- this rule, this line
//! // spatch-ignore                           <- all rules, next line
//! old_api(2);
//! ```
//!
//! Suppressed findings are *counted*, not silently dropped:
//! [`FileReport`](crate::FileReport) and the text output surface how
//! many findings each file (and in scan mode, each rule) suppressed.

use crate::findings::Finding;
use std::collections::HashMap;

/// The comment marker introducing a suppression.
pub const MARKER: &str = "spatch-ignore";

/// Per-rule or blanket suppression scope on one line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Scope {
    /// Bare `// spatch-ignore`: every rule.
    All,
    /// `// spatch-ignore id [id ...]`: only the named rules.
    Rules(Vec<String>),
}

/// Line-indexed suppression markers of one file.
#[derive(Debug, Clone, Default)]
pub struct SuppressionIndex {
    /// 1-based line number → scope.
    lines: HashMap<u32, Scope>,
}

impl SuppressionIndex {
    /// Scan `text` for `// spatch-ignore` (also accepted inside block
    /// comments and after other trailing content). Rule ids after the
    /// marker are whitespace/comma separated.
    pub fn parse(text: &str) -> SuppressionIndex {
        let mut lines = HashMap::new();
        for (i, line) in text.lines().enumerate() {
            let Some(at) = line.find(MARKER) else {
                continue;
            };
            // Require a comment introducer before the marker so the
            // string literal "spatch-ignore" in ordinary code does not
            // suppress anything.
            let before = &line[..at];
            if !before.contains("//") && !before.contains("/*") {
                continue;
            }
            let rest = line[at + MARKER.len()..]
                .trim_end_matches("*/")
                .trim()
                .trim_matches(':')
                .trim();
            let ids: Vec<String> = rest
                .split([' ', '\t', ','])
                .filter(|s| !s.is_empty())
                .map(|s| s.to_string())
                .collect();
            let scope = if ids.is_empty() {
                Scope::All
            } else {
                Scope::Rules(ids)
            };
            lines.insert((i + 1) as u32, scope);
        }
        SuppressionIndex { lines }
    }

    /// True if the file carries no markers at all.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Is `rule` suppressed at 1-based `line` (marker on the line itself
    /// or the line above)?
    pub fn suppresses(&self, rule: &str, line: u32) -> bool {
        let hit = |l: u32| match self.lines.get(&l) {
            Some(Scope::All) => true,
            Some(Scope::Rules(ids)) => ids.iter().any(|id| id == rule),
            None => false,
        };
        hit(line) || (line > 1 && hit(line - 1))
    }

    /// Split `findings` into kept and suppressed-count, honouring each
    /// finding's own rule id and line.
    pub fn filter(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
        if self.lines.is_empty() {
            return (findings, 0);
        }
        let before = findings.len();
        let kept: Vec<Finding> = findings
            .into_iter()
            .filter(|f| !self.suppresses(&f.rule, f.line))
            .collect();
        let suppressed = before - kept.len();
        (kept, suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, line: u32) -> Finding {
        Finding {
            path: "a.c".into(),
            line,
            col: 1,
            end_line: line,
            end_col: 2,
            rule: rule.into(),
            message: "matched".into(),
            bindings: Vec::new(),
        }
    }

    #[test]
    fn same_line_and_line_above() {
        let idx = SuppressionIndex::parse(
            "old_api(1); // spatch-ignore use-new\n// spatch-ignore\nold_api(2);\nold_api(3);\n",
        );
        assert!(idx.suppresses("use-new", 1));
        assert!(!idx.suppresses("other", 1));
        // Bare marker on line 2 silences everything on lines 2 and 3.
        assert!(idx.suppresses("use-new", 3));
        assert!(idx.suppresses("other", 3));
        assert!(!idx.suppresses("use-new", 4));
    }

    #[test]
    fn marker_needs_comment_introducer() {
        let idx = SuppressionIndex::parse("char *s = \"spatch-ignore\";\n");
        assert!(!idx.suppresses("any", 1));
        let idx = SuppressionIndex::parse("f(); /* spatch-ignore r1 */\n");
        assert!(idx.suppresses("r1", 1));
        assert!(!idx.suppresses("r2", 1));
    }

    #[test]
    fn multiple_ids_and_separators() {
        let idx = SuppressionIndex::parse("g(); // spatch-ignore a, b c\n");
        for r in ["a", "b", "c"] {
            assert!(idx.suppresses(r, 1), "{r}");
        }
        assert!(!idx.suppresses("d", 1));
    }

    #[test]
    fn filter_counts() {
        let idx = SuppressionIndex::parse("x; // spatch-ignore r1\ny;\n");
        let (kept, suppressed) =
            idx.filter(vec![finding("r1", 1), finding("r2", 1), finding("r1", 3)]);
        assert_eq!(suppressed, 1);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|f| !(f.rule == "r1" && f.line == 1)));
    }

    #[test]
    fn empty_index_is_free() {
        let idx = SuppressionIndex::parse("no markers here\n");
        assert!(idx.is_empty());
        let (kept, suppressed) = idx.filter(vec![finding("r", 1)]);
        assert_eq!((kept.len(), suppressed), (1, 0));
    }
}
