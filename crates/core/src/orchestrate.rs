//! Rule orchestration: running a whole semantic patch against one file.
//!
//! Rules execute **in order**, and each transformation rule's edits are
//! applied to the text before the next rule runs (Coccinelle's sequential
//! semantics — the unroll patch relies on rule `r1` seeing `p1`'s
//! substitutions). Rules communicate through:
//!
//! * the *matched set* — `depends on r` skips a rule unless `r` matched;
//! * *exported environments* — a rule that later rules inherit from
//!   (via `rule.var` metavariables or script inputs) exports one
//!   environment per match; dependent rules run once per environment.
//!   Environments form a linear chain (`cfe` → `cf2hf` → `hfe`), which
//!   covers every multi-rule patch in the paper; full cross-product
//!   semantics of upstream Coccinelle are intentionally not reproduced
//!   (documented in DESIGN.md).
//! * the shared script interpreter: `@initialize@` blocks populate
//!   globals, `@script@` rules compute new bindings per environment.

use crate::compile::CompiledPatch;
use crate::context::FileContext;
use crate::edits::EditSet;
use crate::env::{Env, ExportedEnv, Value};
use crate::explain::{AttemptProbe, ExplainConfig, KillStage, RuleAttempt};
use crate::findings::{self, Finding, Resolver};
use crate::matcher::{self, MatchCtx, MatchState};
use crate::rewrite;
use cocci_cast::ast::*;
use cocci_cast::parser::{parse_translation_unit, NoMeta, ParseOptions};
use cocci_cast::visit;
use cocci_script::{Interp, PosInfo, Value as ScriptValue};
use cocci_smpl::{
    Constraint, DepExpr, FreshPart, MetaDeclKind, Pattern, Rule, ScriptRule, SemanticPatch,
    TransformRule,
};
use cocci_source::Span;
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Error applying a semantic patch.
#[derive(Debug, Clone)]
pub struct ApplyError {
    /// Description.
    pub message: String,
    /// The file exceeded its per-file time budget (recorded as a
    /// `timeout` outcome by the driver, not a hard error).
    pub timed_out: bool,
}

impl ApplyError {
    /// An ordinary (non-timeout) apply error.
    pub fn new(message: impl Into<String>) -> ApplyError {
        ApplyError {
            message: message.into(),
            timed_out: false,
        }
    }

    /// A per-file time-budget violation.
    pub fn timeout(message: impl Into<String>) -> ApplyError {
        ApplyError {
            message: message.into(),
            timed_out: true,
        }
    }
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ApplyError {}

fn aerr(message: impl Into<String>) -> ApplyError {
    ApplyError::new(message)
}

/// Statistics from one application.
#[derive(Debug, Clone, Default)]
pub struct ApplyStats {
    /// Matches found per rule (by index).
    pub matches_per_rule: Vec<usize>,
    /// Total edits applied.
    pub edits: usize,
    /// Per-path witnesses produced by CFG-routed (statement-dots)
    /// rules — every match of such a rule is one witness, so forked
    /// cross-branch bindings count once per path.
    pub witnesses: usize,
    /// Findings produced by reporting-only rules (pure-context bodies)
    /// and by script rules via `coccilib.report.print_report` — one per
    /// match witness.
    pub findings: Vec<Finding>,
    /// One record per transform-rule attempt (and per timed-out rule
    /// boundary), in rule order: the kill stage that ended it, plus an
    /// `--explain` detail when the patcher's explain filter matched.
    /// Valid after `Ok` returns *and* after timeout/parse errors (the
    /// two attributable failure modes); other errors leave the previous
    /// application's records in place.
    pub attempts: Vec<RuleAttempt>,
}

/// Applies a parsed semantic patch to files.
///
/// The expensive, immutable per-patch artifacts (rule patterns, compiled
/// regexes, prefilters) live in a shared [`CompiledPatch`]; a `Patcher`
/// only adds the per-application mutable state (script-interpreter
/// globals, statistics), so building one from an existing compile is
/// cheap — the driver compiles once and hands every worker its own
/// `Patcher` over the same `Arc`.
pub struct Patcher {
    compiled: Arc<CompiledPatch>,
    /// Statistics of the most recent `apply` call.
    pub last_stats: ApplyStats,
    /// Route flow-sensitive rules (statement dots) through the CFG path
    /// engine. On by default; `spatch --no-flow` and benchmarks clear it
    /// to get the legacy tree-sequence reading of dots.
    pub flow_enabled: bool,
    /// Per-file wall-clock budget, checked at rule boundaries. A file
    /// over budget aborts with a timeout error instead of stalling the
    /// corpus run.
    pub time_budget: Option<std::time::Duration>,
    /// `--explain` filter: when set and matching a (file, rule)
    /// attempt, its [`RuleAttempt`] carries a human-readable detail
    /// (the always-on half records only the stage).
    pub explain: Option<Arc<ExplainConfig>>,
}

impl Patcher {
    /// Compile a semantic patch (regex constraints validated eagerly) and
    /// wrap it in a fresh `Patcher`. Prefer [`CompiledPatch::compile`] +
    /// [`Patcher::from_compiled`] when applying to many files so the
    /// compile happens once.
    pub fn new(patch: &SemanticPatch) -> Result<Self, ApplyError> {
        Ok(Self::from_compiled(Arc::new(CompiledPatch::compile(
            patch,
        )?)))
    }

    /// A patcher over an already-compiled patch (no per-worker recompile).
    pub fn from_compiled(compiled: Arc<CompiledPatch>) -> Self {
        Patcher {
            compiled,
            last_stats: ApplyStats::default(),
            flow_enabled: true,
            time_budget: None,
            explain: None,
        }
    }

    /// The shared compiled patch.
    pub fn compiled(&self) -> &CompiledPatch {
        &self.compiled
    }

    /// Apply the patch to one file. Returns `Ok(Some(text))` when edits
    /// were made, `Ok(None)` when nothing matched.
    pub fn apply(&mut self, name: &str, src: &str) -> Result<Option<String>, ApplyError> {
        let mut ctx = FileContext::new(name, src);
        self.apply_ctx(&mut ctx)
    }

    /// Apply the patch against a shared [`FileContext`]. The context's
    /// caches (parse tree, CFGs, line table, suppression index) describe
    /// the **original** text and survive the call untouched: the scan
    /// driver applies N compiled rule sets through one context and the
    /// file is lexed/parsed once. When this patch's own edits land
    /// mid-application, the patcher transparently switches to private
    /// state for the rewritten text (sequential rule semantics are
    /// preserved); the returned `Some(text)` is the rewritten file.
    pub fn apply_ctx(&mut self, ctx: &mut FileContext) -> Result<Option<String>, ApplyError> {
        let t0 = std::time::Instant::now();
        let opts = ParseOptions {
            pattern: false,
            lang: self.compiled.patch.lang,
        };
        let name = ctx.name().to_string();
        let mut current: Arc<str> = ctx.text_arc();
        let mut changed = false;
        let mut interp = Interp::new();
        let mut matched: HashSet<String> = HashSet::new();
        let mut streams: Vec<ExportedEnv> = vec![ExportedEnv::new()];
        let mut stats = ApplyStats {
            matches_per_rule: vec![0; self.compiled.patch.rules.len()],
            edits: 0,
            witnesses: 0,
            findings: Vec::new(),
            attempts: Vec::new(),
        };
        let mut finalizers = Vec::new();
        // Line/col resolution for findings and script positions, built
        // lazily over the *current* text and invalidated whenever a
        // transform rule rewrites it. While the text is still the
        // original, the build is fetched from (and cached in) the shared
        // context, so several rules — of this patch or any other scan
        // rule — share a single line-table build.
        let mut resolver: Option<Arc<Resolver>> = None;
        // Auto-findings of reporting rules whose bindings feed a script
        // rule are *deferred*: if that script ends up authoring findings
        // (via `coccilib.report.print_report`), the generic `matched`
        // records are dropped — emitting both would double-report every
        // site — but a script that never reports must not silently
        // swallow the matches either.
        let mut deferred: Vec<(String, Vec<Finding>)> = Vec::new();
        let mut scripts_reporting: HashSet<String> = HashSet::new();

        // Clone the Arc handle (not the rules) so rule iteration does not
        // conflict with the `&self` borrows of the helper methods.
        let compiled = Arc::clone(&self.compiled);
        for (ri, rule) in compiled.patch.rules.iter().enumerate() {
            // Per-file time budget, checked at rule boundaries so a
            // pathological file aborts between rules instead of stalling
            // the whole corpus run.
            if let Some(budget) = self.time_budget {
                if t0.elapsed() >= budget {
                    cocci_trace::count(cocci_trace::Counter::Timeouts, 1);
                    let rule_label = rule.name().unwrap_or("<anonymous>");
                    stats.attempts.push(RuleAttempt {
                        rule: rule_label.to_string(),
                        stage: KillStage::Timeout,
                        detail: self.explain_detail(&name, rule_label, || {
                            Some(format!(
                                "budget {} ms expired before this rule",
                                budget.as_millis()
                            ))
                        }),
                    });
                    self.last_stats = stats;
                    return Err(ApplyError::timeout(format!(
                        "{name}: exceeded per-file time budget ({} ms) before rule {}",
                        budget.as_millis(),
                        rule.name().unwrap_or("<anonymous>"),
                    )));
                }
            }
            match rule {
                Rule::Initialize(b) => {
                    interp
                        .run_block(&b.code)
                        .map_err(|e| aerr(format!("{name}: initialize block: {e}")))?;
                }
                Rule::Finalize(b) => finalizers.push(b.code.clone()),
                Rule::Script(s) => {
                    if !deps_ok(s.depends.as_ref(), &matched) {
                        continue;
                    }
                    let shared = if changed { None } else { Some(&mut *ctx) };
                    self.run_script_rule(
                        s,
                        &mut interp,
                        &mut streams,
                        &mut matched,
                        &name,
                        &current,
                        &mut resolver,
                        shared,
                        &mut stats.findings,
                        &mut scripts_reporting,
                    )?;
                }
                Rule::Transform(t) => {
                    if !deps_ok(t.depends.as_ref(), &matched) {
                        continue;
                    }
                    // The original text parses through the shared
                    // context (cached across rules and across scan rule
                    // sets); once this patch's own edits landed, the
                    // rewritten text is private and parses privately.
                    let parsed: Result<Arc<TranslationUnit>, String> = if changed {
                        parse_translation_unit(&current, opts, &NoMeta)
                            .map(Arc::new)
                            .map_err(|e| format!("cannot parse target (after transformation): {e}"))
                    } else {
                        ctx.parse(opts)
                            .map_err(|e| format!("cannot parse target: {e}"))
                    };
                    let tu: Arc<TranslationUnit> = match parsed {
                        Ok(tu) => tu,
                        Err(msg) => {
                            let rule_label = t.name.as_deref().unwrap_or("<anonymous>");
                            stats.attempts.push(RuleAttempt {
                                rule: rule_label.to_string(),
                                stage: KillStage::Parse,
                                detail: self
                                    .explain_detail(&name, rule_label, || Some(msg.clone())),
                            });
                            self.last_stats = stats;
                            return Err(aerr(format!("{name}: {msg}")));
                        }
                    };
                    // Contradictory witness groups are already rejected
                    // inside run_transform_rule (before they could claim
                    // territory or export environments), so every match
                    // here is one whose edits landed in the returned
                    // set. A non-zero witness_group marks a CFG path
                    // witness; a flow-routed rule's tree-fallback
                    // matches (over-budget functions) keep 0 and are
                    // not counted as witnesses.
                    let shared = if changed { None } else { Some(&mut *ctx) };
                    let (all_matches, new_streams, edits, probe) =
                        self.run_transform_rule(ri, t, &tu, &name, &current, &streams, shared)?;
                    let rule_label = t.name.as_deref().unwrap_or("<anonymous>");
                    let stage = probe.stage(!all_matches.is_empty());
                    stats.attempts.push(RuleAttempt {
                        rule: rule_label.to_string(),
                        stage,
                        detail: self.explain_detail(&name, rule_label, || probe.detail(stage)),
                    });
                    stats.matches_per_rule[ri] = all_matches.len();
                    stats.witnesses += all_matches.iter().filter(|m| m.witness_group != 0).count();
                    // Reporting-only rules (pure-context bodies) route
                    // their witnesses to findings: one finding per
                    // witness, anchored at the rule's first bound
                    // position metavariable (or the match root), with
                    // line/col resolved against the *current* text.
                    // Rules whose bindings feed a script rule defer
                    // theirs (see `deferred` above).
                    if self.compiled.rules[ri].report_only && !all_matches.is_empty() {
                        let rule_name = t.name.as_deref().unwrap_or("<anonymous>");
                        let shared = if changed { None } else { Some(&mut *ctx) };
                        let r = shared_resolver(&mut resolver, shared, &name, &current);
                        let mut auto = Vec::with_capacity(all_matches.len());
                        for m in &all_matches {
                            auto.push(findings::finding_for_match(
                                rule_name,
                                &t.metavars,
                                m,
                                &r,
                                &current,
                            ));
                        }
                        let feeds_script = t
                            .name
                            .as_ref()
                            .is_some_and(|n| self.compiled.script_inherited_from.contains(n));
                        if feeds_script {
                            deferred.push((rule_name.to_string(), auto));
                        } else {
                            stats.findings.extend(auto);
                        }
                    }
                    if !all_matches.is_empty() {
                        if let Some(n) = &t.name {
                            matched.insert(n.clone());
                        }
                        if let Some(ns) = new_streams {
                            streams = ns;
                        }
                        if !edits.is_empty() {
                            stats.edits += edits.len();
                            let _render = cocci_trace::span(cocci_trace::Phase::Render);
                            current = edits
                                .apply(&current)
                                .map_err(|e| {
                                    aerr(format!(
                                        "{name}: rule {}: {e}",
                                        t.name.as_deref().unwrap_or("<anonymous>")
                                    ))
                                })?
                                .into();
                            changed = true;
                            // The line table describes the pre-edit
                            // text now; rebuild on next use.
                            resolver = None;
                        }
                    }
                }
            }
        }
        // Settle the deferred auto-findings: a rule whose inheriting
        // script reported keeps only the script's messages; if no such
        // script reported anything, the generic findings stand in so
        // the matches do not silently vanish from report output.
        for (rname, auto) in deferred {
            let authored = compiled.patch.rules.iter().any(|r| match r {
                Rule::Script(s) => {
                    s.inputs.iter().any(|(_, from, _)| *from == rname)
                        && s.name
                            .as_ref()
                            .is_some_and(|n| scripts_reporting.contains(n))
                }
                _ => false,
            });
            if !authored {
                stats.findings.extend(auto);
            }
        }
        for code in finalizers {
            interp
                .run_block(&code)
                .map_err(|e| aerr(format!("{name}: finalize block: {e}")))?;
        }
        self.last_stats = stats;
        Ok(if changed {
            Some(current.to_string())
        } else {
            None
        })
    }

    /// Whether the `--explain` filter is set and matches this
    /// (file, rule) attempt — i.e. whether details should be kept.
    pub fn explain_wants(&self, file: &str, rule: &str) -> bool {
        self.explain.as_ref().is_some_and(|c| c.matches(file, rule))
    }

    /// The `--explain` detail for one (file, rule) attempt: `None`
    /// unless the explain filter is set and matches — the cheap always-on
    /// half never assembles detail strings.
    fn explain_detail(
        &self,
        file: &str,
        rule: &str,
        make: impl FnOnce() -> Option<String>,
    ) -> Option<String> {
        let cfg = self.explain.as_ref()?;
        if cfg.matches(file, rule) {
            make()
        } else {
            None
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_script_rule(
        &self,
        s: &ScriptRule,
        interp: &mut Interp,
        streams: &mut Vec<ExportedEnv>,
        matched: &mut HashSet<String>,
        file: &str,
        src: &str,
        resolver: &mut Option<Arc<Resolver>>,
        mut shared: Option<&mut FileContext>,
        findings: &mut Vec<Finding>,
        scripts_reporting: &mut HashSet<String>,
    ) -> Result<(), ApplyError> {
        let mut new_streams = Vec::new();
        let mut any = false;
        // The shared resolver is built lazily (most script rules inherit
        // no positions) over the caller's *current* text. Positions were
        // bound against the current text of their rule's run; report
        // mode is restricted to transformation-free patches, so the
        // text — and with it the line table — cannot have moved since.
        for ex in streams.iter() {
            // Gather inputs; environments lacking them pass through
            // unchanged (the script does not run for them).
            let mut inputs = BTreeMap::new();
            let mut complete = true;
            for (local, from, var) in &s.inputs {
                match ex.get(from, var) {
                    Some(Value::Pos {
                        file: pf,
                        span,
                        resolved,
                    }) => {
                        // Exported positions carry their bind-time
                        // line/col (the text may have been rewritten
                        // since); resolving the raw span against the
                        // current text is only a fallback for
                        // positions that never crossed the export path.
                        let (line, column, line_end, column_end) = match resolved {
                            Some(rp) => (rp.line, rp.col, rp.end_line, rp.end_col),
                            None => {
                                let r = shared_resolver(resolver, shared.as_deref_mut(), file, src);
                                let (line, column) = r.line_col(span.start);
                                let (line_end, column_end) = r.line_col(span.end);
                                (line, column, line_end, column_end)
                            }
                        };
                        inputs.insert(
                            local.clone(),
                            // Coccinelle hands scripts a *list* of
                            // positions per metavariable; this engine
                            // binds one site per witness, so the list
                            // is a singleton — `p[0]`.
                            ScriptValue::List(vec![ScriptValue::Pos(PosInfo {
                                file: pf.to_string(),
                                line: i64::from(line),
                                column: i64::from(column),
                                line_end: i64::from(line_end),
                                column_end: i64::from(column_end),
                            })]),
                        );
                    }
                    Some(v) => {
                        inputs.insert(local.clone(), ScriptValue::Str(v.render("")));
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                new_streams.push(ex.clone());
                continue;
            }
            let run = interp
                .run_script(&s.code, &inputs)
                .map_err(|e| aerr(format!("{file}: script rule: {e}")))?;
            // `coccilib.report.print_report` calls become findings,
            // attributed to this script rule.
            for r in interp.take_reports() {
                if let Some(n) = &s.name {
                    scripts_reporting.insert(n.clone());
                }
                findings.push(Finding {
                    path: r.pos.file,
                    line: r.pos.line.max(0) as u32,
                    col: r.pos.column.max(0) as u32,
                    end_line: r.pos.line_end.max(0) as u32,
                    end_col: r.pos.column_end.max(0) as u32,
                    rule: s.name.clone().unwrap_or_else(|| "<script>".to_string()),
                    message: r.message,
                    bindings: Vec::new(),
                });
            }
            match run {
                Some(outputs) => {
                    let mut ex2 = ex.clone();
                    if let Some(rname) = &s.name {
                        for (k, v) in outputs {
                            ex2.bind(rname, &k, Value::Text(v.render()));
                        }
                    }
                    new_streams.push(ex2);
                    any = true;
                }
                None => {
                    // Dict-miss idiom: drop this environment.
                }
            }
        }
        if any {
            if let Some(n) = &s.name {
                matched.insert(n.clone());
            }
        }
        if !new_streams.is_empty() {
            *streams = new_streams;
        }
        Ok(())
    }

    /// Run one transformation rule over all seed environments. Returns
    /// the surviving matches (contradictory witness groups already
    /// rejected), (when the rule is inherited from) the new environment
    /// stream, the emitted edit set for those matches, ready to
    /// apply, and the attempt probe for kill-stage attribution.
    #[allow(clippy::type_complexity)]
    #[allow(clippy::too_many_arguments)]
    fn run_transform_rule(
        &self,
        ri: usize,
        t: &TransformRule,
        tu: &TranslationUnit,
        file: &str,
        src: &str,
        streams: &[ExportedEnv],
        mut shared: Option<&mut FileContext>,
    ) -> Result<
        (
            Vec<MatchState>,
            Option<Vec<ExportedEnv>>,
            EditSet,
            AttemptProbe,
        ),
        ApplyError,
    > {
        let exports_needed = t
            .name
            .as_ref()
            .map(|n| self.compiled.inherited_from.contains(n))
            .unwrap_or(false);
        let has_inherited = t.metavars.iter().any(|m| m.inherited_from.is_some());

        // Build seeds: one per stream env when inheriting, else a single
        // empty seed. Constant-set metavariables multiply seeds.
        let base_seeds: Vec<(Option<&ExportedEnv>, Env)> = if has_inherited {
            let mut seeds = Vec::new();
            'outer: for ex in streams {
                let mut env = Env::new();
                for mv in &t.metavars {
                    if let Some(from) = &mv.inherited_from {
                        match ex.get(from, &mv.name) {
                            Some(v) => env.bind(&mv.name, v.clone()),
                            None => continue 'outer,
                        }
                    }
                }
                seeds.push((Some(ex), env));
            }
            seeds
        } else {
            vec![(None, Env::new())]
        };

        let mut seeds = Vec::new();
        for (ex, env) in base_seeds {
            let mut variants = vec![env];
            for mv in &t.metavars {
                if mv.kind == MetaDeclKind::Constant {
                    if let Some(Constraint::Set(vals)) = &mv.constraint {
                        let mut next = Vec::new();
                        for v in vals {
                            if let Ok(i) = v.parse::<i128>() {
                                for base in &variants {
                                    let mut e = base.clone();
                                    e.bind(&mv.name, Value::Int(i));
                                    next.push(e);
                                }
                            }
                        }
                        if !next.is_empty() {
                            variants = next;
                        }
                    }
                }
            }
            for v in variants {
                seeds.push((ex, v));
            }
        }

        let ctx = MatchCtx {
            file,
            src,
            decls: &t.metavars,
            regexes: &self.compiled.rules[ri].regexes,
        };
        // Positions crossing a rule boundary capture their line/col
        // *now*, against the text this rule matched — later transform
        // rules may rewrite the in-memory text and shift the byte
        // offsets out from under the span. Built lazily: only rules
        // that export positions pay for the line table.
        let mut export_resolver: Option<Arc<Resolver>> = None;

        // Flow-sensitive rules route through the CFG path engine
        // (all-paths dots semantics); everything else — and every rule
        // when `--no-flow` cleared `flow_enabled` — stays on the tree
        // matcher. The search (per-function CFGs + span indexes) is
        // built once and reused across all seed environments.
        //
        // Exception: a rule whose dots carry an explicit `when exists`/
        // `when strict` cannot take the tree reading at all — it would
        // silently discard the quantifier and (for strict) over-match.
        // With flow matching disabled that is a loud per-file error,
        // not a degraded rewrite.
        if !self.flow_enabled {
            if let Some(fp) = &self.compiled.rules[ri].flow {
                if fp.explicit_quant {
                    return Err(aerr(format!(
                        "rule {}: `when exists` / `when strict` require CFG path matching, \
                         which is disabled (--no-flow)",
                        t.name.as_deref().unwrap_or("<anonymous>")
                    )));
                }
            }
        }
        let flow_search = match (&self.compiled.rules[ri].flow, &t.body.pattern) {
            (Some(fp), Pattern::Stmts(pats)) if self.flow_enabled => Some(match &mut shared {
                // Shared context: this file's CFGs build once, no matter
                // how many flow-routed rules (of how many patches) run.
                Some(ctx) => crate::flowmatch::FlowSearch::with_cache(fp, pats, tu, ctx.cfgs()),
                None => crate::flowmatch::FlowSearch::new(fp, pats, tu),
            }),
            _ => None,
        };

        let mut all_matches: Vec<MatchState> = Vec::new();
        let mut new_streams: Vec<ExportedEnv> = Vec::new();
        let mut claimed: Vec<(Span, u32)> = Vec::new();
        let mut edits = EditSet::new();
        let mut probe = AttemptProbe::default();
        let rule_label = t.name.as_deref().unwrap_or("<anonymous>");
        for (ex, seed) in &seeds {
            let mut found = match &flow_search {
                Some(fs) => {
                    let _span = cocci_trace::span_with(cocci_trace::Phase::FlowMatch, rule_label);
                    fs.find(&ctx, seed)
                }
                None => {
                    let _span = cocci_trace::span_with(cocci_trace::Phase::TreeMatch, rule_label);
                    let found = find_matches(&ctx, &t.body.pattern, tu, seed);
                    // Tree route: a full-pattern match *is* the anchor
                    // hit (no separate gap/binding stages).
                    probe.anchors += found.len() as u64;
                    found
                }
            };
            for m in &mut found {
                // Fresh identifiers computed per match.
                for mv in &t.metavars {
                    if let MetaDeclKind::FreshIdentifier(parts) = &mv.kind {
                        let mut text = String::new();
                        for p in parts {
                            match p {
                                FreshPart::Lit(l) => text.push_str(l),
                                FreshPart::MetaRef(r) => match m.env.get(r) {
                                    Some(v) => text.push_str(&v.render(src)),
                                    None => {
                                        return Err(aerr(format!(
                                            "fresh identifier `{}` references unbound `{r}`",
                                            mv.name
                                        )))
                                    }
                                },
                            }
                        }
                        m.env.bind(
                            &mv.name,
                            Value::Ident {
                                name: text.into(),
                                span: Span::SYNTHETIC,
                            },
                        );
                    }
                }
            }
            // Sibling witnesses forked from one anchor attempt (adjacent
            // in `found`, shared non-zero group id) are handled as a
            // group. For patterns with a *forall* gap the group is
            // atomic — the siblings jointly discharge the all-paths
            // obligation, so if an earlier claim blocks any sibling, or
            // their rewrites contradict, keeping a subset would rewrite
            // only some of the attempt's arms. Pure-`exists` patterns
            // fork one *independent* witness per surviving path: there
            // only the individually blocked/contradicting siblings
            // drop.
            let atomic_groups = self.compiled.rules[ri]
                .flow
                .as_ref()
                .map(|fp| fp.has_forall_gap())
                .unwrap_or(true);
            let mut it = found.into_iter().peekable();
            while let Some(first) = it.next() {
                let gid = first.witness_group;
                let mut members = vec![first];
                if gid != 0 {
                    while it.peek().map(|m| m.witness_group == gid).unwrap_or(false) {
                        members.push(it.next().expect("peeked"));
                    }
                }
                let member_blocked = |m: &MatchState| {
                    let root = match_root(m);
                    !root.is_synthetic() && claims_conflict(&claimed, root, m)
                };
                if gid != 0 && atomic_groups {
                    if members.iter().any(member_blocked) {
                        probe.group_blocked += 1;
                        continue;
                    }
                    // Contradictory rewrites (a forked metavariable
                    // substituted into a *shared* anchor's replacement
                    // or insertion) reject the group here, before it
                    // claims territory, exports environments, or counts
                    // as matched — the clean no-match outcome the
                    // pre-fork engine gave. Each member's edits land in
                    // their own set so cross-member contradictions are
                    // visible (same-offset insertions with different
                    // text never trip a single merged set).
                    let mut member_sets = Vec::with_capacity(members.len());
                    {
                        let _rewrite = cocci_trace::span(cocci_trace::Phase::Rewrite);
                        for m in &members {
                            let mut set = EditSet::new();
                            rewrite::emit_edits(&t.body, m, src, &mut set)
                                .map_err(|e| aerr(format!("rewrite: {e}")))?;
                            member_sets.push(set);
                        }
                    }
                    let contradictory = member_sets
                        .iter()
                        .enumerate()
                        .any(|(i, a)| member_sets[i + 1..].iter().any(|b| a.conflicts_with(b)));
                    if contradictory {
                        probe.contradictory += 1;
                        continue;
                    }
                    for set in member_sets {
                        edits.merge(set);
                    }
                } else if gid != 0 {
                    // Independent exists witnesses: drop blocked ones,
                    // then keep a maximal consistent set in source
                    // order (a later witness whose edits contradict an
                    // accepted sibling's drops alone).
                    let before = members.len();
                    members.retain(|m| !member_blocked(m));
                    probe.group_blocked += (before - members.len()) as u64;
                    let mut accepted_sets: Vec<EditSet> = Vec::new();
                    let mut kept = Vec::with_capacity(members.len());
                    let _rewrite = cocci_trace::span(cocci_trace::Phase::Rewrite);
                    for m in members {
                        let mut set = EditSet::new();
                        rewrite::emit_edits(&t.body, &m, src, &mut set)
                            .map_err(|e| aerr(format!("rewrite: {e}")))?;
                        if accepted_sets.iter().all(|a| !a.conflicts_with(&set)) {
                            accepted_sets.push(set);
                            kept.push(m);
                        } else {
                            probe.contradictory += 1;
                        }
                    }
                    members = kept;
                    for set in accepted_sets {
                        edits.merge(set);
                    }
                } else {
                    if members.iter().any(member_blocked) {
                        probe.group_blocked += 1;
                        continue;
                    }
                    let _rewrite = cocci_trace::span(cocci_trace::Phase::Rewrite);
                    for m in &members {
                        rewrite::emit_edits(&t.body, m, src, &mut edits)
                            .map_err(|e| aerr(format!("rewrite: {e}")))?;
                    }
                }
                for m in members {
                    let root = match_root(&m);
                    if !root.is_synthetic() {
                        claimed.push((root, m.witness_group));
                    }
                    if exports_needed {
                        let mut ex2 = ex.map(|e| (*e).clone()).unwrap_or_default();
                        let mut detached = Env::new();
                        for (k, v) in m.env.iter() {
                            let dv = match v {
                                // Freshly bound positions resolve here;
                                // a position inherited already-resolved
                                // keeps its original (bind-time)
                                // coordinates.
                                Value::Pos {
                                    file: pf,
                                    span,
                                    resolved: None,
                                } => {
                                    let r = shared_resolver(
                                        &mut export_resolver,
                                        shared.as_deref_mut(),
                                        file,
                                        src,
                                    );
                                    let (line, col) = r.line_col(span.start);
                                    let (end_line, end_col) = r.line_col(span.end);
                                    Value::Pos {
                                        file: pf.clone(),
                                        span: *span,
                                        resolved: Some(crate::env::ResolvedPos {
                                            line,
                                            col,
                                            end_line,
                                            end_col,
                                        }),
                                    }
                                }
                                v => v.detach(src),
                            };
                            detached.bind(k, dv);
                        }
                        if let Some(n) = &t.name {
                            ex2.absorb(n, &detached);
                        }
                        new_streams.push(ex2);
                    }
                    all_matches.push(m);
                }
            }
        }
        let streams_out = if exports_needed && !new_streams.is_empty() {
            Some(new_streams)
        } else {
            None
        };
        if let Some(fs) = &flow_search {
            // Flow route: per-anchor-attempt accounting accumulated
            // inside the search (across every seed environment).
            let p = fs.probe();
            probe.anchors += p.anchors.get();
            probe.gap_kills += p.gap_kills.get();
            probe.binding_kills += p.binding_kills.get();
        }
        Ok((all_matches, streams_out, edits, probe))
    }
}

/// The lazily-built line-table resolver for the text a rule is running
/// against. While the text is still the file's original (`shared` is
/// `Some`), the build comes from the shared [`FileContext`] — one line
/// table serves every rule applied to the file; once the patch's own
/// edits rewrote the text, `shared` is `None` and a private resolver is
/// built over `src`. Either way the handle is memoized in `slot`.
fn shared_resolver(
    slot: &mut Option<Arc<Resolver>>,
    shared: Option<&mut FileContext>,
    name: &str,
    src: &str,
) -> Arc<Resolver> {
    if let Some(r) = slot {
        return Arc::clone(r);
    }
    let r = match shared {
        Some(ctx) => ctx.resolver(),
        None => Arc::new(Resolver::new(name, src)),
    };
    *slot = Some(Arc::clone(&r));
    r
}

/// Whether an overlapping earlier claim blocks match `m`. Sibling
/// witnesses forked from one CFG anchor attempt deliberately share
/// source territory (the common anchors); matches with the same
/// non-zero witness group never block each other — each rewrites its
/// own per-path sites.
fn claims_conflict(claimed: &[(Span, u32)], root: Span, m: &MatchState) -> bool {
    claimed
        .iter()
        .any(|&(c, g)| overlaps(c, root) && !(m.witness_group != 0 && g == m.witness_group))
}

/// Evaluate a dependency expression against the matched-rule set.
fn deps_ok(dep: Option<&DepExpr>, matched: &HashSet<String>) -> bool {
    match dep {
        None => true,
        Some(DepExpr::Rule(n)) => matched.contains(n),
        Some(DepExpr::Not(n)) => !matched.contains(n),
        Some(DepExpr::And(parts)) => parts.iter().all(|p| deps_ok(Some(p), matched)),
        Some(DepExpr::Or(parts)) => parts.iter().any(|p| deps_ok(Some(p), matched)),
    }
}

/// Root source span of a match (merge of all pair spans).
fn match_root(m: &MatchState) -> Span {
    m.pairs
        .iter()
        .filter(|p| !p.src.is_synthetic() && !p.src.is_empty())
        .fold(Span::SYNTHETIC, |acc, p| acc.merge(p.src))
}

fn overlaps(a: Span, b: Span) -> bool {
    a.start < b.end && b.start < a.end
}

/// Find all matches of a pattern in a translation unit, starting from a
/// seed environment.
pub fn find_matches(
    ctx: &MatchCtx,
    pattern: &Pattern,
    tu: &TranslationUnit,
    seed: &Env,
) -> Vec<MatchState> {
    let mut out = Vec::new();
    match pattern {
        Pattern::Expr(pat) => {
            visit::walk_all_exprs(tu, &mut |e| {
                let mut st = MatchState {
                    env: seed.clone(),
                    ..Default::default()
                };
                if matcher::match_expr(ctx, pat, e, &mut st) {
                    // Record the root pair for the rewriter.
                    st.pairs.push(crate::matcher::Pair {
                        pat: pat.span(),
                        src: e.span(),
                        kind: crate::matcher::PairKind::Expr,
                    });
                    out.push(st);
                }
            });
        }
        Pattern::Stmts(pats) => {
            // Match inside every block of every function.
            let mut blocks: Vec<&Block> = Vec::new();
            visit::walk_functions(tu, &mut |f| {
                blocks.push(&f.body);
            });
            let mut nested: Vec<&Block> = Vec::new();
            for b in &blocks {
                for s in &b.stmts {
                    visit::walk_stmt(s, &mut |st| {
                        if let Stmt::Block(inner) = st {
                            nested.push(inner);
                        }
                    });
                }
            }
            blocks.extend(nested);
            for block in blocks {
                collect_seq_matches(ctx, pats, &block.stmts, block.span, seed, &mut out);
            }
            // Single-statement patterns also match at nested
            // sub-statement positions (unbraced `if`/loop branches),
            // which block-list windows never visit.
            if pats.len() == 1 && !matches!(pats[0], Stmt::Dots { .. } | Stmt::MetaStmtList { .. })
            {
                let mut nested_stmts: Vec<&Stmt> = Vec::new();
                visit::walk_functions(tu, &mut |f| {
                    for s in &f.body.stmts {
                        visit::walk_stmt(s, &mut |st| {
                            if !matches!(st, Stmt::Block(_)) {
                                nested_stmts.push(st);
                            }
                        });
                    }
                });
                for s in nested_stmts {
                    let mut st = MatchState {
                        env: seed.clone(),
                        ..Default::default()
                    };
                    if matcher::match_stmt(ctx, &pats[0], s, &mut st) {
                        out.push(st);
                    }
                }
            }
            // Dual: directive/declaration-only patterns also match the
            // top level (the include-insertion and API-translation rules
            // need this).
            let only_toplevel_shapes = pats
                .iter()
                .all(|p| matches!(p, Stmt::Directive(_) | Stmt::Decl(_) | Stmt::Dots { .. }));
            if only_toplevel_shapes {
                let pseudo: Vec<Stmt> = tu
                    .items
                    .iter()
                    .map(|it| match it {
                        Item::Directive(d) => Stmt::Directive(d.clone()),
                        Item::Decl(d) => Stmt::Decl(d.clone()),
                        other => Stmt::Empty { span: other.span() },
                    })
                    .collect();
                collect_seq_matches(ctx, pats, &pseudo, tu.span, seed, &mut out);
            }
        }
        Pattern::Items(pats) => {
            collect_item_matches(ctx, pats, &tu.items, seed, &mut out);
            // Recurse into namespaces / extern blocks.
            fn rec(
                ctx: &MatchCtx,
                pats: &[Item],
                items: &[Item],
                seed: &Env,
                out: &mut Vec<MatchState>,
            ) {
                for it in items {
                    match it {
                        Item::Namespace { items, .. } | Item::ExternBlock { items, .. } => {
                            collect_item_matches(ctx, pats, items, seed, out);
                            rec(ctx, pats, items, seed, out);
                        }
                        _ => {}
                    }
                }
            }
            rec(ctx, pats, &tu.items, seed, &mut out);
        }
    }
    out
}

pub(crate) fn collect_seq_matches(
    ctx: &MatchCtx,
    pats: &[Stmt],
    srcs: &[Stmt],
    enclosing: Span,
    seed: &Env,
    out: &mut Vec<MatchState>,
) {
    let leading_dots = matches!(pats.first(), Some(Stmt::Dots { .. }));
    let starts: Vec<usize> = if leading_dots {
        vec![0]
    } else {
        (0..srcs.len().max(1)).collect()
    };
    for start in starts {
        if start > srcs.len() {
            break;
        }
        let mut st = MatchState {
            env: seed.clone(),
            ..Default::default()
        };
        if matcher::match_stmt_seq(ctx, pats, &srcs[start..], false, enclosing, &mut st) {
            out.push(st);
        }
    }
}

fn collect_item_matches(
    ctx: &MatchCtx,
    pats: &[Item],
    items: &[Item],
    seed: &Env,
    out: &mut Vec<MatchState>,
) {
    if pats.is_empty() {
        return;
    }
    for start in 0..items.len() {
        if start + pats.len() > items.len() {
            break;
        }
        let mut st = MatchState {
            env: seed.clone(),
            ..Default::default()
        };
        let mut ok = true;
        for (pi, p) in pats.iter().enumerate() {
            if !matcher::match_item(ctx, p, &items[start + pi], &mut st) {
                ok = false;
                break;
            }
        }
        if ok {
            out.push(st);
        }
    }
}
