//! Work-stealing queue and ordered result slots for corpus runs.
//!
//! The original drivers spawned a fresh scoped-thread team per batch and
//! joined it at the batch boundary — a barrier at which every worker
//! idles while the slowest file of the batch finishes, repeated once per
//! batch. The corpus drivers now keep **one persistent team** alive for
//! the whole run and feed it through a [`WorkQueue`]: the producer (the
//! walker thread) streams work units in chunks while workers drain, and
//! an idle worker steals from its neighbours instead of waiting for the
//! next batch.
//!
//! Determinism is preserved by separating *scheduling* from *output
//! order*: every unit carries the index of a preassigned cell in a
//! [`ResultSlots`], reserved by the producer in encounter order. Workers
//! complete cells in any order; the producer drains the filled prefix in
//! index order, so sinks and reports observe exactly the sequence the
//! walker produced, byte-identical across thread counts, steal patterns
//! and batch-size choices.
//!
//! Both types are std-only: shards are `Mutex<VecDeque>`s (an uncontended
//! lock is a compare-and-swap — the units here are whole-file parses, so
//! queue overhead is noise) and blocking uses one `Condvar`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Scheduler-health counters for one [`WorkQueue`] (one corpus run).
///
/// Kept unconditionally — each is a relaxed atomic touched only on the
/// push path or the already-expensive steal/block path — so scheduler
/// health is observable even in untraced runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Shards the queue was sized for (= worker count).
    pub workers: usize,
    /// Units a worker took from a neighbour's shard, per worker.
    pub steals: Vec<u64>,
    /// Nanoseconds each worker spent blocked waiting for work.
    pub idle_ns: Vec<u64>,
    /// High-water mark of units queued and not yet popped.
    pub queue_depth_max: u64,
}

impl PoolStats {
    /// Total steals across workers.
    pub fn total_steals(&self) -> u64 {
        self.steals.iter().sum()
    }

    /// Total idle nanoseconds across workers.
    pub fn total_idle_ns(&self) -> u64 {
        self.idle_ns.iter().sum()
    }

    /// Fraction of the team's wall-clock budget spent idle, given the
    /// run's wall time. Clamped to `0..=1`.
    pub fn idle_frac(&self, wall_seconds: f64) -> f64 {
        let budget_ns = wall_seconds * 1e9 * self.workers.max(1) as f64;
        if budget_ns <= 0.0 {
            return 0.0;
        }
        (self.total_idle_ns() as f64 / budget_ns).clamp(0.0, 1.0)
    }
}

/// A sharded work queue: one deque per worker plus an overflow shard for
/// producers, with stealing between shards.
///
/// * the producer pushes round-robin across shards (chunks land on one
///   shard each, keeping cache-warm runs of same-file units together);
/// * worker `w` pops from the **back** of shard `w` (LIFO — its own most
///   recent, cache-warm work);
/// * an idle worker steals from the **front** of the other shards (FIFO —
///   the oldest work, which the owner would reach last);
/// * `pop` blocks when everything is empty and returns `None` only after
///   [`close`](WorkQueue::close).
pub struct WorkQueue<T> {
    shards: Box<[Mutex<VecDeque<T>>]>,
    /// Round-robin cursor for producer pushes.
    cursor: AtomicUsize,
    /// Items pushed and not yet popped. Incremented *before* the wakeup
    /// notification and re-checked under the state lock by sleeping
    /// workers, so a push between "shards look empty" and "wait" cannot
    /// be missed.
    pending: AtomicUsize,
    closed: Mutex<bool>,
    cond: Condvar,
    /// Per-worker counts of units taken from a neighbour's shard.
    steals: Box<[AtomicU64]>,
    /// Per-worker nanoseconds spent blocked in `pop`.
    idle_ns: Box<[AtomicU64]>,
    /// High-water mark of `pending`.
    depth_max: AtomicU64,
}

impl<T> WorkQueue<T> {
    /// A queue with one shard per worker (at least one).
    pub fn new(workers: usize) -> WorkQueue<T> {
        let n = workers.max(1);
        WorkQueue {
            shards: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            cursor: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            closed: Mutex::new(false),
            cond: Condvar::new(),
            steals: (0..n).map(|_| AtomicU64::new(0)).collect(),
            idle_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            depth_max: AtomicU64::new(0),
        }
    }

    /// Snapshot the scheduler-health counters accumulated so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.shards.len(),
            steals: self
                .steals
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            idle_ns: self
                .idle_ns
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            queue_depth_max: self.depth_max.load(Ordering::Relaxed),
        }
    }

    /// Number of shards (= workers the queue was sized for).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Push one unit onto the next shard (round-robin).
    pub fn push(&self, item: T) {
        let s = self.cursor.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[s].lock().unwrap().push_back(item);
        let depth = self.pending.fetch_add(1, Ordering::SeqCst) + 1;
        self.depth_max.fetch_max(depth as u64, Ordering::Relaxed);
        let _guard = self.closed.lock().unwrap();
        self.cond.notify_one();
    }

    /// Push a chunk of units onto one shard, keeping them adjacent (a
    /// worker that grabs the shard processes the run back-to-back; other
    /// workers steal from the far end).
    pub fn push_chunk(&self, items: impl IntoIterator<Item = T>) {
        let s = self.cursor.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut n = 0usize;
        {
            let mut shard = self.shards[s].lock().unwrap();
            for it in items {
                shard.push_back(it);
                n += 1;
            }
        }
        if n > 0 {
            let depth = self.pending.fetch_add(n, Ordering::SeqCst) + n;
            self.depth_max.fetch_max(depth as u64, Ordering::Relaxed);
            let _guard = self.closed.lock().unwrap();
            self.cond.notify_all();
        }
    }

    /// Declare the stream finished: blocked and future `pop`s return
    /// `None` once the queue drains.
    pub fn close(&self) {
        let mut closed = self.closed.lock().unwrap();
        *closed = true;
        self.cond.notify_all();
    }

    /// Take one unit for worker `worker`: own shard's back first, then
    /// steal from the front of the others, then block. Returns `None`
    /// when the queue is closed and empty.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let n = self.shards.len();
        let w = worker % n;
        loop {
            if let Some(item) = self.shards[w].lock().unwrap().pop_back() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(item);
            }
            for off in 1..n {
                if let Some(item) = self.shards[(w + off) % n].lock().unwrap().pop_front() {
                    self.pending.fetch_sub(1, Ordering::SeqCst);
                    self.steals[w].fetch_add(1, Ordering::Relaxed);
                    return Some(item);
                }
            }
            let closed = self.closed.lock().unwrap();
            // Re-check under the lock: a producer that pushed after our
            // scan has already bumped `pending`, so we scan again instead
            // of sleeping through its notification.
            if self.pending.load(Ordering::SeqCst) > 0 {
                continue;
            }
            if *closed {
                return None;
            }
            let blocked = Instant::now();
            let _unused = self.cond.wait(closed).unwrap();
            self.idle_ns[w].fetch_add(blocked.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// Preassigned, in-order result cells.
///
/// The producer [`reserve`](ResultSlots::reserve)s cells in encounter
/// order and hands each work unit its cell index; workers
/// [`set`](ResultSlots::set) cells as they finish, in any order. The
/// producer then drains the *filled prefix* — results come out exactly
/// in reservation order, whatever the completion order was, which is
/// what keeps corpus output byte-identical across thread counts.
pub struct ResultSlots<T> {
    inner: Mutex<Slots<T>>,
    cond: Condvar,
}

struct Slots<T> {
    /// Index of `cells[0]` in the global reservation sequence.
    base: usize,
    cells: VecDeque<Option<T>>,
}

impl<T> Default for ResultSlots<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ResultSlots<T> {
    /// An empty slot sequence.
    pub fn new() -> ResultSlots<T> {
        ResultSlots {
            inner: Mutex::new(Slots {
                base: 0,
                cells: VecDeque::new(),
            }),
            cond: Condvar::new(),
        }
    }

    /// Reserve `n` consecutive cells; returns the index of the first.
    pub fn reserve(&self, n: usize) -> usize {
        let mut s = self.inner.lock().unwrap();
        let start = s.base + s.cells.len();
        s.cells.extend((0..n).map(|_| None));
        start
    }

    /// Fill cell `index` (reserved earlier; filled exactly once).
    pub fn set(&self, index: usize, value: T) {
        let mut s = self.inner.lock().unwrap();
        let i = index - s.base;
        debug_assert!(s.cells[i].is_none(), "result slot {index} filled twice");
        s.cells[i] = Some(value);
        self.cond.notify_all();
    }

    /// Pop the filled prefix without blocking (producer-side streaming
    /// drain between batches).
    pub fn drain_ready(&self) -> Vec<T> {
        let mut s = self.inner.lock().unwrap();
        s.take_ready()
    }

    /// Pop everything, blocking until every reserved cell is filled.
    pub fn drain_all(&self) -> Vec<T> {
        let mut s = self.inner.lock().unwrap();
        let mut out = Vec::new();
        loop {
            out.extend(s.take_ready());
            if s.cells.is_empty() {
                return out;
            }
            s = self.cond.wait(s).unwrap();
        }
    }
}

impl<T> Slots<T> {
    fn take_ready(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        while matches!(self.cells.front(), Some(Some(_))) {
            out.push(self.cells.pop_front().unwrap().unwrap());
            self.base += 1;
        }
        out
    }
}

/// Resolve a thread-count option: 0 means all available CPUs.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn queue_delivers_everything_once() {
        let q: WorkQueue<usize> = WorkQueue::new(4);
        assert_eq!(q.shards(), 4);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let (q, seen) = (&q, &seen);
            for w in 0..4 {
                scope.spawn(move || {
                    while let Some(i) = q.pop(w) {
                        seen.lock().unwrap().push(i);
                    }
                });
            }
            for i in 0..100 {
                q.push(i);
            }
            q.push_chunk(100..200);
            q.close();
        });
        let mut got = seen.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn idle_workers_steal_from_loaded_shards() {
        // All items land on shard 0 (single chunk), but worker 0 never
        // pops — workers 1..3 must steal everything through the fronts
        // of their neighbours' shards.
        let q: WorkQueue<usize> = WorkQueue::new(4);
        q.push_chunk(0..50);
        q.close();
        let stolen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let (q, stolen) = (&q, &stolen);
            for w in 1..4 {
                scope.spawn(move || {
                    while q.pop(w).is_some() {
                        stolen.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(stolen.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn pop_blocks_until_push_or_close() {
        let q: WorkQueue<u32> = WorkQueue::new(1);
        let got = AtomicUsize::new(0);
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while let Some(v) = q.pop(0) {
                    got.fetch_add(v as usize, Ordering::SeqCst);
                }
                done.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.push(7);
            q.push(5);
            q.close();
        });
        assert_eq!(got.load(Ordering::SeqCst), 12);
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn result_slots_reorder_out_of_order_completions() {
        let slots: ResultSlots<&str> = ResultSlots::new();
        assert_eq!(slots.reserve(3), 0);
        slots.set(2, "c");
        assert!(slots.drain_ready().is_empty(), "prefix not filled yet");
        slots.set(0, "a");
        assert_eq!(slots.drain_ready(), ["a"], "only the filled prefix");
        assert_eq!(slots.reserve(1), 3, "indices keep counting after drain");
        slots.set(1, "b");
        slots.set(3, "d");
        assert_eq!(slots.drain_all(), ["b", "c", "d"]);
    }

    #[test]
    fn drain_all_waits_for_stragglers() {
        let slots: ResultSlots<usize> = ResultSlots::new();
        slots.reserve(10);
        let out = std::thread::scope(|scope| {
            let h = scope.spawn(|| slots.drain_all());
            for i in (0..10).rev() {
                slots.set(i, i * i);
            }
            h.join().unwrap()
        });
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn stats_track_steals_and_queue_depth() {
        let q: WorkQueue<usize> = WorkQueue::new(4);
        q.push_chunk(0..50);
        assert_eq!(q.stats().queue_depth_max, 50);
        q.close();
        std::thread::scope(|scope| {
            let q = &q;
            for w in 1..4 {
                scope.spawn(move || while q.pop(w).is_some() {});
            }
        });
        let stats = q.stats();
        assert_eq!(stats.workers, 4);
        // Shard 0's owner never popped, so everything was stolen.
        assert_eq!(stats.total_steals(), 50);
        assert_eq!(stats.steals[0], 0);
    }

    #[test]
    fn blocked_pop_accrues_idle_time() {
        let q: WorkQueue<u32> = WorkQueue::new(1);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _ = q.pop(0);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.push(1);
            q.close();
        });
        let stats = q.stats();
        assert!(stats.total_idle_ns() > 0, "{stats:?}");
        let frac = stats.idle_frac(1.0);
        assert!(frac > 0.0 && frac <= 1.0, "{frac}");
        assert_eq!(stats.idle_frac(0.0), 0.0);
    }

    #[test]
    fn resolve_threads_zero_means_all_cpus() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
