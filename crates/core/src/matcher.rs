//! Pattern matching: SMPL pattern ASTs against target-code ASTs.
//!
//! The matcher implements Coccinelle's metavariable semantics:
//!
//! * first occurrence of a metavariable **binds**, later occurrences must
//!   match a structurally equal term (span-insensitive);
//! * `...` dots match any run of statements/arguments (shortest-first);
//! * `\( … \| … \)` disjunction tries branches in order;
//! * `\( … \& … \)` conjunction requires all branches to match the *same*
//!   statement — an expression branch matches when the statement
//!   *contains* occurrences of the expression (all occurrences recorded,
//!   which is what lets the unroll rules rewrite every `i+1` in a bound
//!   statement);
//! * the **const-fold isomorphism**: when structural matching fails, two
//!   sides that both fold to the same integer constant match (so pattern
//!   `i+k-1` with `k=4` matches source `i+3`);
//! * position metavariables bind source offsets; inherited positions
//!   constrain matching to the recorded location.
//!
//! Every successful sub-match records a *correspondence pair* (pattern
//! span → source span) that the rewriter uses to anchor edits.

use crate::env::{Env, Value};
use cocci_cast::ast::*;
use cocci_cast::eq;
use cocci_cast::fold::eval_const;
use cocci_cast::visit;
use cocci_rex::Regex;
use cocci_smpl::{Constraint, MetaDecl, MetaDeclKind};
use cocci_source::{Span, Symbol};
use std::collections::HashMap;

/// What a correspondence pair refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairKind {
    /// Expression occurrence.
    Expr,
    /// Statement.
    Stmt,
    /// Block (braces included).
    Block,
    /// Loop/`for` header region.
    Header,
    /// Attribute group.
    Attr,
    /// Top-level item.
    Item,
    /// A dots run (source span covers the skipped region).
    Dots,
    /// Preprocessor directive.
    Directive,
}

/// One pattern-to-source correspondence.
#[derive(Debug, Clone, Copy)]
pub struct Pair {
    /// Span in the rule body (pattern coordinates).
    pub pat: Span,
    /// Span in the target file.
    pub src: Span,
    /// What kind of node the pair links.
    pub kind: PairKind,
}

/// Accumulated state of one match attempt.
#[derive(Debug, Clone, Default)]
pub struct MatchState {
    /// Metavariable bindings.
    pub env: Env,
    /// Correspondence pairs.
    pub pairs: Vec<Pair>,
    /// Disjunction branch choices: (group pattern span, branch index).
    pub choices: Vec<(Span, usize)>,
    /// Witness family this match belongs to. `0` for tree-matcher
    /// matches (including a flow-routed rule's per-function tree
    /// fallback); every CFG path witness carries its anchor attempt's
    /// non-zero id, shared by siblings forked from that attempt, so
    /// downstream overlap-claiming treats them as one match family
    /// (each witness rewrites its own source sites) instead of
    /// discarding all but the first.
    pub witness_group: u32,
}

impl MatchState {
    /// All source spans paired with pattern span `pat`.
    pub fn srcs_for(&self, pat: Span) -> Vec<Span> {
        self.pairs
            .iter()
            .filter(|p| p.pat == pat)
            .map(|p| p.src)
            .collect()
    }

    /// First source span paired with pattern span `pat`.
    pub fn src_for(&self, pat: Span) -> Option<Span> {
        self.pairs.iter().find(|p| p.pat == pat).map(|p| p.src)
    }

    /// Chosen branch of the pattern group at `span`.
    pub fn choice_for(&self, span: Span) -> Option<usize> {
        self.choices
            .iter()
            .find(|(s, _)| *s == span)
            .map(|(_, i)| *i)
    }
}

/// Matching context: the rule's metavariable declarations, compiled regex
/// constraints, and the target source text.
pub struct MatchCtx<'a> {
    /// Target file name — the identity recorded into position bindings
    /// so inherited positions compare correctly across a corpus.
    pub file: &'a str,
    /// Target file text (for constraint checks on source slices).
    pub src: &'a str,
    /// Metavariable declarations of the rule being matched.
    pub decls: &'a [MetaDecl],
    /// Compiled `=~` / `!~` regexes keyed by metavariable name.
    pub regexes: &'a HashMap<String, Regex>,
}

impl<'a> MatchCtx<'a> {
    /// Kind of metavariable `name`, if declared.
    pub fn kind(&self, name: impl AsRef<str>) -> Option<&MetaDeclKind> {
        let name = name.as_ref();
        self.decls.iter().find(|d| d.name == name).map(|d| &d.kind)
    }

    /// Check the declaration constraint of `name` against bound text.
    fn check_constraint(&self, name: &str, text: &str) -> bool {
        let Some(decl) = self.decls.iter().find(|d| d.name == name) else {
            return true;
        };
        match &decl.constraint {
            None => true,
            Some(Constraint::Regex(_)) => self
                .regexes
                .get(name)
                .map(|re| re.is_match(text))
                .unwrap_or(false),
            Some(Constraint::NotRegex(_)) => self
                .regexes
                .get(name)
                .map(|re| !re.is_match(text))
                .unwrap_or(true),
            Some(Constraint::Set(vals)) => vals.iter().any(|v| v == text),
        }
    }
}

/// Span-insensitive equality between two bound values.
pub(crate) fn value_eq(a: &Value, b: &Value) -> bool {
    let a = a.structural();
    let b = b.structural();
    match (a, b) {
        (Value::Expr(x), Value::Expr(y)) => eq::expr_eq(x, y),
        (Value::Stmt(x), Value::Stmt(y)) => eq::stmt_eq(x, y),
        (Value::Type(x), Value::Type(y)) => eq::type_eq(x, y),
        (Value::Ident { name: x, .. }, Value::Ident { name: y, .. }) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Text(x), Value::Text(y)) => x == y,
        (
            Value::Pos {
                file: fx, span: sx, ..
            },
            Value::Pos {
                file: fy, span: sy, ..
            },
        ) => fx == fy && sx == sy,
        (Value::Pragma(x), Value::Pragma(y)) => x == y,
        (Value::ExprList(x), Value::ExprList(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| eq::expr_eq(p, q))
        }
        (Value::StmtList(x), Value::StmtList(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| eq::stmt_eq(p, q))
        }
        (Value::Params(x), Value::Params(y)) => x.len() == y.len(),
        // Cross-representation comparisons (script outputs, sizeof text).
        (Value::Ident { name, .. }, Value::Text(t))
        | (Value::Text(t), Value::Ident { name, .. }) => name.as_str() == t,
        (Value::Type(ty), Value::Text(t)) | (Value::Text(t), Value::Type(ty)) => {
            cocci_cast::render::render_type(ty) == *t
        }
        _ => false,
    }
}

/// Bind `name` to `value`, or check consistency with an existing binding.
fn bind_or_check(
    ctx: &MatchCtx,
    st: &mut MatchState,
    name: impl Into<Symbol>,
    value: Value,
) -> bool {
    let name = name.into();
    if let Some(existing) = st.env.get(name) {
        return value_eq(existing, &value);
    }
    let text = value.render(ctx.src);
    if !ctx.check_constraint(name.as_str(), &text) {
        return false;
    }
    st.env.bind(name, value);
    true
}

/// Fold an expression to an integer constant, resolving bound constant
/// metavariables through the environment.
fn fold_with_env(e: &Expr, env: &Env) -> Option<i128> {
    match e {
        Expr::Ident(id) => match env.get(id.name) {
            Some(Value::Int(v)) => Some(*v),
            _ => None,
        },
        Expr::Paren { inner, .. } => fold_with_env(inner, env),
        Expr::Unary { op, expr, .. } => {
            let v = fold_with_env(expr, env)?;
            match op {
                UnOp::Neg => Some(-v),
                UnOp::Pos => Some(v),
                UnOp::BitNot => Some(!v),
                UnOp::Not => Some(i128::from(v == 0)),
                _ => None,
            }
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let a = fold_with_env(lhs, env)?;
            let b = fold_with_env(rhs, env)?;
            // Reuse eval_const's operator semantics by rebuilding a
            // literal expression.
            let lit = |v: i128| Expr::IntLit {
                value: v,
                raw: v.to_string().into(),
                span: Span::SYNTHETIC,
            };
            eval_const(&Expr::Binary {
                op: *op,
                lhs: Box::new(lit(a)),
                rhs: Box::new(lit(b)),
                span: Span::SYNTHETIC,
            })
        }
        _ => eval_const(e),
    }
}

// ---- expressions ----

/// Match an expression pattern against a source expression.
pub fn match_expr(ctx: &MatchCtx, pat: &Expr, src: &Expr, st: &mut MatchState) -> bool {
    if match_expr_inner(ctx, pat, src, st) {
        return true;
    }
    // Const-fold isomorphism: whole-expression fold.
    if let (Some(a), Some(b)) = (fold_with_env(pat, &st.env), eval_const(src)) {
        return a == b;
    }
    // Additive-normalization isomorphism: `i + k - 1` with `k = 4` must
    // match `i + 3`. Both sides are flattened into signed additive terms;
    // constant terms are summed and compared, non-constant residues must
    // match pairwise. Requires an explicit constant term on both sides so
    // that `i + 0` does not silently match a bare `i`.
    match_additive(ctx, pat, src, st)
}

fn flatten_additive<'e>(e: &'e Expr, sign: i128, out: &mut Vec<(i128, &'e Expr)>) {
    match e.unparen() {
        Expr::Binary {
            op: BinOp::Add,
            lhs,
            rhs,
            ..
        } => {
            flatten_additive(lhs, sign, out);
            flatten_additive(rhs, sign, out);
        }
        Expr::Binary {
            op: BinOp::Sub,
            lhs,
            rhs,
            ..
        } => {
            flatten_additive(lhs, sign, out);
            flatten_additive(rhs, -sign, out);
        }
        other => out.push((sign, other)),
    }
}

fn match_additive(ctx: &MatchCtx, pat: &Expr, src: &Expr, st: &mut MatchState) -> bool {
    let additive = |e: &Expr| {
        matches!(
            e.unparen(),
            Expr::Binary {
                op: BinOp::Add | BinOp::Sub,
                ..
            }
        )
    };
    if !additive(pat) || !additive(src) {
        return false;
    }
    let mut pts = Vec::new();
    flatten_additive(pat, 1, &mut pts);
    let mut sts = Vec::new();
    flatten_additive(src, 1, &mut sts);

    let mut pat_const = 0i128;
    let mut pat_residue = Vec::new();
    let mut pat_has_const = false;
    for (sign, term) in pts {
        match fold_with_env(term, &st.env) {
            Some(v) => {
                pat_const += sign * v;
                pat_has_const = true;
            }
            None => pat_residue.push((sign, term)),
        }
    }
    let mut src_const = 0i128;
    let mut src_residue = Vec::new();
    let mut src_has_const = false;
    for (sign, term) in sts {
        match eval_const(term) {
            Some(v) => {
                src_const += sign * v;
                src_has_const = true;
            }
            None => src_residue.push((sign, term)),
        }
    }
    if !pat_has_const || !src_has_const {
        return false;
    }
    if pat_const != src_const || pat_residue.len() != src_residue.len() {
        return false;
    }
    let mut attempt = st.clone();
    for ((ps, pe), (ss, se)) in pat_residue.iter().zip(&src_residue) {
        if ps != ss || !match_expr(ctx, pe, se, &mut attempt) {
            return false;
        }
    }
    *st = attempt;
    true
}

fn match_expr_inner(ctx: &MatchCtx, pat: &Expr, src: &Expr, st: &mut MatchState) -> bool {
    let pat = pat.unparen();
    let src_e = src.unparen();
    match pat {
        Expr::Dots { .. } => true,
        Expr::Disj { branches, span } => {
            for (i, b) in branches.iter().enumerate() {
                let mut attempt = st.clone();
                if match_expr(ctx, b, src, &mut attempt) {
                    attempt.choices.push((*span, i));
                    *st = attempt;
                    return true;
                }
            }
            false
        }
        Expr::PosAnn { inner, pos, .. } => {
            if !match_expr(ctx, inner, src, st) {
                return false;
            }
            bind_or_check(
                ctx,
                st,
                pos,
                Value::Pos {
                    file: ctx.file.into(),
                    span: src.span(),
                    resolved: None,
                },
            )
        }
        Expr::Ident(id) => match ctx.kind(id.name) {
            Some(MetaDeclKind::Expression) | Some(MetaDeclKind::ExpressionList) => {
                bind_or_check(ctx, st, id.name, Value::Expr(src.clone()))
            }
            Some(MetaDeclKind::Identifier)
            | Some(MetaDeclKind::Function)
            | Some(MetaDeclKind::FreshIdentifier(_)) => match src_e {
                Expr::Ident(s) => bind_or_check(
                    ctx,
                    st,
                    id.name,
                    Value::Ident {
                        name: s.name,
                        span: s.span,
                    },
                ),
                _ => false,
            },
            Some(MetaDeclKind::Constant) => match eval_const(src_e) {
                Some(v) => {
                    // Set constraints compare the folded value's text.
                    bind_or_check(ctx, st, id.name, Value::Int(v))
                }
                None => match src_e {
                    Expr::StrLit { raw, .. } | Expr::FloatLit { raw, .. } => {
                        bind_or_check(ctx, st, id.name, Value::Text(raw.as_str().to_string()))
                    }
                    _ => false,
                },
            },
            Some(MetaDeclKind::Symbol) => matches!(src_e, Expr::Ident(s) if s.name == id.name),
            Some(MetaDeclKind::Type) => false,
            _ => matches!(src_e, Expr::Ident(s) if s.name == id.name),
        },
        Expr::IntLit { value, .. } => {
            matches!(src_e, Expr::IntLit { value: sv, .. } if sv == value)
        }
        Expr::FloatLit { raw, .. } => {
            matches!(src_e, Expr::FloatLit { raw: sr, .. } if sr == raw)
        }
        Expr::StrLit { raw, .. } => {
            matches!(src_e, Expr::StrLit { raw: sr, .. } if sr == raw)
        }
        Expr::CharLit { raw, .. } => {
            matches!(src_e, Expr::CharLit { raw: sr, .. } if sr == raw)
        }
        Expr::Unary { op, expr, .. } => match src_e {
            Expr::Unary {
                op: so, expr: se, ..
            } => op == so && match_expr(ctx, expr, se, st),
            _ => false,
        },
        Expr::PostIncDec { expr, inc, .. } => match src_e {
            Expr::PostIncDec {
                expr: se, inc: si, ..
            } => inc == si && match_expr(ctx, expr, se, st),
            _ => false,
        },
        Expr::Binary { op, lhs, rhs, .. } => match src_e {
            Expr::Binary {
                op: so,
                lhs: sl,
                rhs: sr,
                ..
            } => op == so && match_expr(ctx, lhs, sl, st) && match_expr(ctx, rhs, sr, st),
            _ => false,
        },
        Expr::Assign { op, lhs, rhs, .. } => match src_e {
            Expr::Assign {
                op: so,
                lhs: sl,
                rhs: sr,
                ..
            } => op == so && match_expr(ctx, lhs, sl, st) && match_expr(ctx, rhs, sr, st),
            _ => false,
        },
        Expr::Ternary {
            cond,
            then_val,
            else_val,
            ..
        } => match src_e {
            Expr::Ternary {
                cond: sc,
                then_val: stv,
                else_val: sev,
                ..
            } => {
                match_expr(ctx, cond, sc, st)
                    && match_expr(ctx, then_val, stv, st)
                    && match_expr(ctx, else_val, sev, st)
            }
            _ => false,
        },
        Expr::Call { callee, args, .. } => match src_e {
            Expr::Call {
                callee: sc,
                args: sa,
                ..
            } => match_expr(ctx, callee, sc, st) && match_expr_list(ctx, args, sa, st),
            _ => false,
        },
        Expr::KernelCall {
            callee,
            config,
            args,
            ..
        } => match src_e {
            Expr::KernelCall {
                callee: sc,
                config: sg,
                args: sa,
                ..
            } => {
                match_expr(ctx, callee, sc, st)
                    && match_expr_list(ctx, config, sg, st)
                    && match_expr_list(ctx, args, sa, st)
            }
            _ => false,
        },
        Expr::Index { base, indices, .. } => match src_e {
            Expr::Index {
                base: sb,
                indices: si,
                ..
            } => match_expr(ctx, base, sb, st) && match_expr_list(ctx, indices, si, st),
            _ => false,
        },
        Expr::Member {
            base, arrow, field, ..
        } => match src_e {
            Expr::Member {
                base: sb,
                arrow: sa,
                field: sf,
                ..
            } => {
                arrow == sa
                    && match ctx.kind(field.name) {
                        Some(MetaDeclKind::Identifier) => bind_or_check(
                            ctx,
                            st,
                            field.name,
                            Value::Ident {
                                name: sf.name,
                                span: sf.span,
                            },
                        ),
                        _ => field.name == sf.name,
                    }
                    && match_expr(ctx, base, sb, st)
            }
            _ => false,
        },
        Expr::Cast { ty, expr, .. } => match src_e {
            Expr::Cast {
                ty: sty, expr: se, ..
            } => match_type(ctx, ty, sty, st) && match_expr(ctx, expr, se, st),
            _ => false,
        },
        Expr::Sizeof { arg, .. } => match src_e {
            Expr::Sizeof { arg: sa, .. } => {
                // The operand is kept as raw text; a metavariable name as
                // the whole operand binds/checks against it.
                if ctx.kind(arg).is_some() {
                    bind_or_check(ctx, st, arg, Value::Text(sa.as_str().to_string()))
                } else {
                    sa == arg
                }
            }
            _ => false,
        },
        Expr::InitList { elems, .. } => match src_e {
            Expr::InitList { elems: se, .. } => match_expr_list(ctx, elems, se, st),
            _ => false,
        },
        Expr::Paren { .. } => unreachable!("unparen applied"),
    }
}

/// Match a pattern expression list (arguments, launch config, indices)
/// against a source list, honouring `...` and `expression list`
/// metavariables.
pub fn match_expr_list(ctx: &MatchCtx, pats: &[Expr], srcs: &[Expr], st: &mut MatchState) -> bool {
    fn list_span(srcs: &[Expr]) -> Span {
        srcs.iter()
            .fold(Span::SYNTHETIC, |acc, e| acc.merge(e.span()))
    }
    fn go(ctx: &MatchCtx, pats: &[Expr], srcs: &[Expr], st: &mut MatchState) -> bool {
        let Some((p0, rest)) = pats.split_first() else {
            return srcs.is_empty();
        };
        match p0.unparen() {
            Expr::Dots { span } => {
                for k in 0..=srcs.len() {
                    let mut attempt = st.clone();
                    let consumed = &srcs[..k];
                    let src_span = if consumed.is_empty() {
                        Span::empty(srcs.first().map(|e| e.span().start).unwrap_or(u32::MAX))
                    } else {
                        list_span(consumed)
                    };
                    attempt.pairs.push(Pair {
                        pat: *span,
                        src: src_span,
                        kind: PairKind::Dots,
                    });
                    if go(ctx, rest, &srcs[k..], &mut attempt) {
                        *st = attempt;
                        return true;
                    }
                }
                false
            }
            Expr::Ident(id) if ctx.kind(id.name) == Some(&MetaDeclKind::ExpressionList) => {
                // Bound: must match exactly that run length.
                if let Some(Value::ExprList(bound)) =
                    st.env.get(id.name).map(|v| v.structural().clone())
                {
                    if bound.len() > srcs.len() {
                        return false;
                    }
                    for (b, s) in bound.iter().zip(srcs) {
                        if !eq::expr_eq(b, s) {
                            return false;
                        }
                    }
                    return go(ctx, rest, &srcs[bound.len()..], st);
                }
                for k in (0..=srcs.len()).rev() {
                    // Greedy: an expression-list metavariable usually
                    // captures "all the remaining arguments".
                    let mut attempt = st.clone();
                    attempt
                        .env
                        .bind(id.name, Value::ExprList(srcs[..k].to_vec()));
                    if go(ctx, rest, &srcs[k..], &mut attempt) {
                        *st = attempt;
                        return true;
                    }
                }
                false
            }
            _ => {
                let Some((s0, srest)) = srcs.split_first() else {
                    return false;
                };
                let mut attempt = st.clone();
                if match_expr(ctx, p0, s0, &mut attempt) && go(ctx, rest, srest, &mut attempt) {
                    *st = attempt;
                    return true;
                }
                false
            }
        }
    }
    go(ctx, pats, srcs, st)
}

// ---- types ----

/// Match a type pattern against a source type.
pub fn match_type(ctx: &MatchCtx, pat: &Type, src: &Type, st: &mut MatchState) -> bool {
    match (&pat.kind, &src.kind) {
        (TypeKind::Meta { name }, _) => bind_or_check(ctx, st, name, Value::Type(src.clone())),
        // Qualifier-insensitivity isomorphism: an unqualified pattern
        // matches a qualified source type.
        (_, TypeKind::Qualified { inner, .. })
            if !matches!(pat.kind, TypeKind::Qualified { .. }) =>
        {
            match_type(ctx, pat, inner, st)
        }
        (
            TypeKind::Named {
                name: pn,
                template_args: pt,
            },
            TypeKind::Named {
                name: sn,
                template_args: tt,
            },
        ) => {
            // A type-metavariable name cannot appear here (handled by
            // Meta); identifier metavariables as type names bind.
            if let Some(MetaDeclKind::Identifier) = ctx.kind(pn) {
                return pt.is_none()
                    && bind_or_check(
                        ctx,
                        st,
                        pn,
                        Value::Ident {
                            name: *sn,
                            span: src.span,
                        },
                    );
            }
            pn == sn && pt == tt
        }
        (TypeKind::Ptr(pi), TypeKind::Ptr(si)) => match_type(ctx, pi, si, st),
        (TypeKind::Ref(pi), TypeKind::Ref(si)) => match_type(ctx, pi, si, st),
        (
            TypeKind::Qualified {
                quals: pq,
                inner: pi,
            },
            TypeKind::Qualified {
                quals: sq,
                inner: si,
            },
        ) => pq == sq && match_type(ctx, pi, si, st),
        (
            TypeKind::Record {
                keyword: pk,
                name: pn,
                ..
            },
            TypeKind::Record {
                keyword: sk,
                name: sn,
                ..
            },
        ) => pk == sk && pn == sn,
        _ => false,
    }
}

// ---- directives ----

/// Match a directive pattern (pragma/include) against a source directive.
pub fn match_directive(
    ctx: &MatchCtx,
    pat: &Directive,
    src: &Directive,
    st: &mut MatchState,
) -> bool {
    if pat.kind != src.kind {
        return false;
    }
    let ok = match pat.kind {
        DirectiveKind::Include => pat.payload == src.payload,
        DirectiveKind::Pragma => {
            let pat_words: Vec<&str> = pat.payload.split_whitespace().collect();
            let src_words: Vec<&str> = src.payload.split_whitespace().collect();
            match_pragma_words(ctx, &pat_words, &src_words, st)
        }
        _ => pat.raw.trim() == src.raw.trim(),
    };
    if ok {
        st.pairs.push(Pair {
            pat: pat.span,
            src: src.span,
            kind: PairKind::Directive,
        });
    }
    ok
}

fn match_pragma_words(ctx: &MatchCtx, pats: &[&str], srcs: &[&str], st: &mut MatchState) -> bool {
    let Some((p0, rest)) = pats.split_first() else {
        return srcs.is_empty();
    };
    if *p0 == "..." {
        // Dots: match the rest of the payload (must be final).
        return rest.is_empty();
    }
    if let Some(MetaDeclKind::PragmaInfo) = ctx.kind(p0) {
        // Binds the remainder of the payload; must be final.
        if !rest.is_empty() {
            return false;
        }
        return bind_or_check(ctx, st, *p0, Value::Pragma(srcs.join(" ")));
    }
    if let Some(MetaDeclKind::Identifier) = ctx.kind(p0) {
        let Some((s0, srest)) = srcs.split_first() else {
            return false;
        };
        return bind_or_check(
            ctx,
            st,
            *p0,
            Value::Ident {
                name: Symbol::intern(s0),
                span: Span::SYNTHETIC,
            },
        ) && match_pragma_words(ctx, rest, srest, st);
    }
    match srcs.split_first() {
        Some((s0, srest)) if s0 == p0 => match_pragma_words(ctx, rest, srest, st),
        _ => false,
    }
}

// ---- statements ----

/// Match a statement pattern against a source statement.
pub fn match_stmt(ctx: &MatchCtx, pat: &Stmt, src: &Stmt, st: &mut MatchState) -> bool {
    let matched = match pat {
        Stmt::MetaStmt { name, pos, .. } => {
            if !bind_or_check(ctx, st, name, Value::Stmt(src.clone())) {
                false
            } else if let Some(p) = pos {
                bind_or_check(
                    ctx,
                    st,
                    p,
                    Value::Pos {
                        file: ctx.file.into(),
                        span: src.span(),
                        resolved: None,
                    },
                )
            } else {
                true
            }
        }
        Stmt::PatGroup {
            conj,
            branches,
            span,
        } => {
            if *conj {
                match_conj(ctx, branches, src, st)
            } else {
                let mut ok = false;
                for (i, b) in branches.iter().enumerate() {
                    if b.len() != 1 {
                        continue;
                    }
                    let mut attempt = st.clone();
                    if match_stmt(ctx, &b[0], src, &mut attempt) {
                        attempt.choices.push((*span, i));
                        *st = attempt;
                        ok = true;
                        break;
                    }
                }
                ok
            }
        }
        Stmt::Expr { expr, .. } => match src {
            Stmt::Expr { expr: se, .. } => match_expr(ctx, expr, se, st),
            _ => false,
        },
        Stmt::Decl(pd) => match src {
            Stmt::Decl(sd) => match_decl(ctx, pd, sd, st),
            _ => false,
        },
        Stmt::Block(pb) => match src {
            Stmt::Block(sb) => match_block(ctx, pb, sb, st),
            _ => false,
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => match src {
            Stmt::If {
                cond: sc,
                then_branch: stb,
                else_branch: seb,
                ..
            } => {
                match_expr(ctx, cond, sc, st)
                    && match_stmt(ctx, then_branch, stb, st)
                    && match (else_branch, seb) {
                        (None, None) => true,
                        (Some(p), Some(s)) => match_stmt(ctx, p, s, st),
                        _ => false,
                    }
            }
            _ => false,
        },
        Stmt::While { cond, body, .. } => match src {
            Stmt::While {
                cond: sc, body: sb, ..
            } => match_expr(ctx, cond, sc, st) && match_stmt(ctx, body, sb, st),
            _ => false,
        },
        Stmt::DoWhile { body, cond, .. } => match src {
            Stmt::DoWhile {
                body: sb, cond: sc, ..
            } => match_expr(ctx, cond, sc, st) && match_stmt(ctx, body, sb, st),
            _ => false,
        },
        Stmt::For {
            init,
            cond,
            step,
            body,
            header_span,
            ..
        } => match src {
            Stmt::For {
                init: si,
                cond: sc,
                step: ss,
                body: sb,
                header_span: shs,
                ..
            } => {
                let ok = match_for_init(ctx, init.as_deref(), si.as_deref(), st)
                    && match_opt_expr(ctx, cond.as_ref(), sc.as_ref(), st)
                    && match_opt_expr(ctx, step.as_ref(), ss.as_ref(), st)
                    && match_stmt(ctx, body, sb, st);
                if ok {
                    st.pairs.push(Pair {
                        pat: *header_span,
                        src: *shs,
                        kind: PairKind::Header,
                    });
                }
                ok
            }
            _ => false,
        },
        Stmt::RangeFor {
            ty,
            by_ref,
            var,
            range,
            body,
            ..
        } => match src {
            Stmt::RangeFor {
                ty: sty,
                by_ref: sbr,
                var: sv,
                range: sr,
                body: sb,
                ..
            } => {
                by_ref == sbr
                    && match_type(ctx, ty, sty, st)
                    && match_ident(ctx, var, sv, st)
                    && match_expr(ctx, range, sr, st)
                    && match_stmt(ctx, body, sb, st)
            }
            _ => false,
        },
        Stmt::Return { value, .. } => match src {
            Stmt::Return { value: sv, .. } => match_opt_expr(ctx, value.as_ref(), sv.as_ref(), st),
            _ => false,
        },
        Stmt::Break { .. } => matches!(src, Stmt::Break { .. }),
        Stmt::Continue { .. } => matches!(src, Stmt::Continue { .. }),
        Stmt::Goto { label, .. } => match src {
            Stmt::Goto { label: sl, .. } => match_ident(ctx, label, sl, st),
            _ => false,
        },
        Stmt::Label { label, stmt, .. } => match src {
            Stmt::Label {
                label: sl,
                stmt: ss,
                ..
            } => match_ident(ctx, label, sl, st) && match_stmt(ctx, stmt, ss, st),
            _ => false,
        },
        Stmt::Switch {
            scrutinee, body, ..
        } => match src {
            Stmt::Switch {
                scrutinee: se,
                body: sb,
                ..
            } => match_expr(ctx, scrutinee, se, st) && match_stmt(ctx, body, sb, st),
            _ => false,
        },
        Stmt::Case { value, stmt, .. } => match src {
            Stmt::Case {
                value: sv,
                stmt: ss,
                ..
            } => {
                match_opt_expr(ctx, value.as_ref(), sv.as_ref(), st)
                    && match_stmt(ctx, stmt, ss, st)
            }
            _ => false,
        },
        Stmt::Directive(pd) => match src {
            Stmt::Directive(sd) => match_directive(ctx, pd, sd, st),
            _ => false,
        },
        Stmt::Empty { .. } => matches!(src, Stmt::Empty { .. }),
        Stmt::Dots { .. } | Stmt::MetaStmtList { .. } => {
            unreachable!("sequence elements handled in match_stmt_seq")
        }
    };
    if matched {
        st.pairs.push(Pair {
            pat: pat.span(),
            src: src.span(),
            kind: PairKind::Stmt,
        });
    }
    matched
}

/// Conjunction: all branches must match the same source statement. A
/// single-expression branch falls back to *containment*: all occurrences
/// of the expression within the statement are matched and recorded.
fn match_conj(ctx: &MatchCtx, branches: &[Vec<Stmt>], src: &Stmt, st: &mut MatchState) -> bool {
    for b in branches {
        if b.len() != 1 {
            return false;
        }
        let mut attempt = st.clone();
        if match_stmt(ctx, &b[0], src, &mut attempt) {
            *st = attempt;
            continue;
        }
        // Containment fallback for expression branches.
        if let Stmt::Expr { expr: pat_e, .. } = &b[0] {
            let mut found = Vec::new();
            let mut working = st.clone();
            visit::deep_stmt_exprs(src, &mut |se| {
                // Top-level occurrences only: skip when an enclosing
                // occurrence already matched (e.g. `i+1` inside `a[i+1]`
                // matches once, not per-subtree — handled by span overlap
                // check below).
                let mut attempt = working.clone();
                if match_expr(ctx, pat_e, se, &mut attempt) {
                    let span = se.span();
                    let overlaps = found
                        .iter()
                        .any(|s: &Span| s.contains(span) || span.contains(*s));
                    if !overlaps {
                        found.push(span);
                        working = attempt;
                        working.pairs.push(Pair {
                            pat: pat_e.span(),
                            src: span,
                            kind: PairKind::Expr,
                        });
                    }
                }
            });
            if found.is_empty() {
                return false;
            }
            *st = working;
            continue;
        }
        return false;
    }
    true
}

fn match_ident(ctx: &MatchCtx, pat: &Ident, src: &Ident, st: &mut MatchState) -> bool {
    match ctx.kind(pat.name) {
        Some(MetaDeclKind::Identifier)
        | Some(MetaDeclKind::Function)
        | Some(MetaDeclKind::FreshIdentifier(_)) => bind_or_check(
            ctx,
            st,
            pat.name,
            Value::Ident {
                name: src.name,
                span: src.span,
            },
        ),
        Some(MetaDeclKind::Symbol) => pat.name == src.name,
        _ => pat.name == src.name,
    }
}

fn match_opt_expr(
    ctx: &MatchCtx,
    pat: Option<&Expr>,
    src: Option<&Expr>,
    st: &mut MatchState,
) -> bool {
    match (pat, src) {
        (None, None) => true,
        // `...` in an optional header slot matches presence or absence.
        (Some(Expr::Dots { .. }), _) => true,
        (Some(p), Some(s)) => match_expr(ctx, p, s, st),
        _ => false,
    }
}

fn match_for_init(
    ctx: &MatchCtx,
    pat: Option<&ForInit>,
    src: Option<&ForInit>,
    st: &mut MatchState,
) -> bool {
    match (pat, src) {
        (None, None) => true,
        (Some(ForInit::Dots { .. }), _) => true,
        (Some(ForInit::Decl(pd)), Some(ForInit::Decl(sd))) => match_decl(ctx, pd, sd, st),
        (Some(ForInit::Expr(pe)), Some(ForInit::Expr(se))) => match_expr(ctx, pe, se, st),
        _ => false,
    }
}

fn match_decl(ctx: &MatchCtx, pat: &Declaration, src: &Declaration, st: &mut MatchState) -> bool {
    // Pattern specifiers must all appear, in order, among source
    // specifiers (a pattern without `static` still matches a static decl).
    let mut si = 0usize;
    for ps in &pat.specifiers {
        match src.specifiers[si..].iter().position(|s| s.name == ps.name) {
            Some(k) => si += k + 1,
            None => return false,
        }
    }
    if !match_type(ctx, &pat.ty, &src.ty, st) {
        return false;
    }
    if pat.declarators.len() != src.declarators.len() {
        return false;
    }
    for (pd, sd) in pat.declarators.iter().zip(&src.declarators) {
        if pd.ptr != sd.ptr || pd.reference != sd.reference {
            return false;
        }
        if !match_ident(ctx, &pd.name, &sd.name, st) {
            return false;
        }
        if pd.array.len() != sd.array.len() {
            return false;
        }
        for (pa, sa) in pd.array.iter().zip(&sd.array) {
            match (pa, sa) {
                (None, None) => {}
                (Some(p), Some(s)) => {
                    if !match_expr(ctx, p, s, st) {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        match (&pd.init, &sd.init) {
            (None, None) => {}
            (None, Some(_)) => return false,
            (Some(_), None) => return false,
            (Some(p), Some(s)) => {
                if !match_expr(ctx, p, s, st) {
                    return false;
                }
            }
        }
        // Function-prototype declarators.
        match (&pd.fn_params, &sd.fn_params) {
            (None, None) => {}
            (Some(pp), Some(sp)) => {
                if !match_params(ctx, pp, false, sp, false, st) {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

/// Match a block: the pattern statement sequence must cover the entire
/// source block (dots absorb).
pub fn match_block(ctx: &MatchCtx, pat: &Block, src: &Block, st: &mut MatchState) -> bool {
    let ok = match_stmt_seq(ctx, &pat.stmts, &src.stmts, true, src.span, st);
    if ok {
        st.pairs.push(Pair {
            pat: pat.span,
            src: src.span,
            kind: PairKind::Block,
        });
    }
    ok
}

/// Match a pattern statement sequence against source statements.
///
/// With `require_full`, the pattern must consume every source statement
/// (block semantics); otherwise trailing source statements may remain
/// (window semantics).
///
/// `enclosing` is the span of the enclosing block (used to give empty
/// dots runs a real anchor position).
pub fn match_stmt_seq(
    ctx: &MatchCtx,
    pats: &[Stmt],
    srcs: &[Stmt],
    require_full: bool,
    enclosing: Span,
    st: &mut MatchState,
) -> bool {
    let Some((p0, rest)) = pats.split_first() else {
        return !require_full || srcs.is_empty();
    };
    match p0 {
        // The path quantifier (`when exists` / `when strict`) is a CFG
        // notion; the tree-sequence reading of dots ignores it.
        Stmt::Dots { span, when_not, .. } => {
            for k in 0..=srcs.len() {
                // `when != e`: no skipped statement may contain e.
                if !when_not.is_empty() {
                    let violates = srcs[..k].iter().any(|skipped| {
                        when_not.iter().any(|forbidden| {
                            let mut hit = false;
                            visit::deep_stmt_exprs(skipped, &mut |se| {
                                if !hit {
                                    let mut probe = st.clone();
                                    if match_expr(ctx, forbidden, se, &mut probe) {
                                        hit = true;
                                    }
                                }
                            });
                            hit
                        })
                    });
                    if violates {
                        // Longer runs only add more statements; stop.
                        break;
                    }
                }
                let mut attempt = st.clone();
                let consumed = &srcs[..k];
                let src_span = if consumed.is_empty() {
                    let anchor = srcs
                        .first()
                        .map(|s| s.span().start)
                        .unwrap_or(enclosing.end.saturating_sub(1));
                    Span::empty(anchor)
                } else {
                    consumed
                        .iter()
                        .fold(Span::SYNTHETIC, |acc, s| acc.merge(s.span()))
                };
                attempt.pairs.push(Pair {
                    pat: *span,
                    src: src_span,
                    kind: PairKind::Dots,
                });
                if match_stmt_seq(ctx, rest, &srcs[k..], require_full, enclosing, &mut attempt) {
                    *st = attempt;
                    return true;
                }
            }
            false
        }
        Stmt::MetaStmtList { name, span } => {
            // Bound: must match that exact run; else try runs
            // (greedy — a statement-list metavariable usually captures
            // "the whole body").
            if let Some(Value::StmtList(bound)) = st.env.get(name).map(|v| v.structural().clone()) {
                if bound.len() > srcs.len() {
                    return false;
                }
                for (b, s) in bound.iter().zip(srcs) {
                    if !eq::stmt_eq(b, s) {
                        return false;
                    }
                }
                return match_stmt_seq(
                    ctx,
                    rest,
                    &srcs[bound.len()..],
                    require_full,
                    enclosing,
                    st,
                );
            }
            for k in (0..=srcs.len()).rev() {
                let mut attempt = st.clone();
                let consumed = srcs[..k].to_vec();
                let src_span = if consumed.is_empty() {
                    Span::empty(
                        srcs.first()
                            .map(|s| s.span().start)
                            .unwrap_or(enclosing.end.saturating_sub(1)),
                    )
                } else {
                    consumed
                        .iter()
                        .fold(Span::SYNTHETIC, |acc, s| acc.merge(s.span()))
                };
                attempt.env.bind(name, Value::StmtList(consumed));
                attempt.pairs.push(Pair {
                    pat: *span,
                    src: src_span,
                    kind: PairKind::Dots,
                });
                if match_stmt_seq(ctx, rest, &srcs[k..], require_full, enclosing, &mut attempt) {
                    *st = attempt;
                    return true;
                }
            }
            false
        }
        _ => {
            let Some((s0, srest)) = srcs.split_first() else {
                return false;
            };
            let mut attempt = st.clone();
            if match_stmt(ctx, p0, s0, &mut attempt)
                && match_stmt_seq(ctx, rest, srest, require_full, enclosing, &mut attempt)
            {
                *st = attempt;
                return true;
            }
            false
        }
    }
}

// ---- parameters ----

/// Match pattern parameters (with `parameter list` metavariables and the
/// pattern-mode `(...)` any-params form) against source parameters.
pub fn match_params(
    ctx: &MatchCtx,
    pats: &[Param],
    pat_varargs: bool,
    srcs: &[Param],
    src_varargs: bool,
    st: &mut MatchState,
) -> bool {
    // Pattern `(...)`: matches any parameter list.
    if pats.is_empty() && pat_varargs {
        return true;
    }
    fn go(ctx: &MatchCtx, pats: &[Param], srcs: &[Param], st: &mut MatchState) -> bool {
        let Some((p0, rest)) = pats.split_first() else {
            return srcs.is_empty();
        };
        if p0.meta_list {
            let name = p0
                .name
                .as_ref()
                .map(|n| n.name)
                .unwrap_or_else(|| Symbol::intern(""));
            if let Some(Value::Params(bound)) = st.env.get(name).map(|v| v.structural().clone()) {
                if bound.len() > srcs.len() {
                    return false;
                }
                return go(ctx, rest, &srcs[bound.len()..], st);
            }
            for k in (0..=srcs.len()).rev() {
                let mut attempt = st.clone();
                attempt.env.bind(name, Value::Params(srcs[..k].to_vec()));
                if go(ctx, rest, &srcs[k..], &mut attempt) {
                    *st = attempt;
                    return true;
                }
            }
            return false;
        }
        let Some((s0, srest)) = srcs.split_first() else {
            return false;
        };
        let mut attempt = st.clone();
        if !match_type(ctx, &p0.ty, &s0.ty, &mut attempt) {
            return false;
        }
        match (&p0.name, &s0.name) {
            (None, _) => {}
            (Some(pn), Some(sn)) => {
                if !match_ident(ctx, pn, sn, &mut attempt) {
                    return false;
                }
            }
            (Some(_), None) => return false,
        }
        if go(ctx, rest, srest, &mut attempt) {
            *st = attempt;
            return true;
        }
        false
    }
    if pat_varargs != src_varargs && !pat_varargs {
        return false;
    }
    go(ctx, pats, srcs, st)
}

// ---- attributes, functions, items ----

/// Match an attribute pattern against a source attribute group.
pub fn match_attribute(
    ctx: &MatchCtx,
    pat: &Attribute,
    src: &Attribute,
    st: &mut MatchState,
) -> bool {
    if pat.items.len() != src.items.len() {
        return false;
    }
    for (pi, si) in pat.items.iter().zip(&src.items) {
        if !match_ident(ctx, &pi.name, &si.name, st) {
            return false;
        }
        match (&pi.args, &si.args) {
            (None, None) => {}
            (Some(pa), Some(sa)) => {
                if !match_expr_list(ctx, pa, sa, st) {
                    return false;
                }
            }
            _ => return false,
        }
    }
    st.pairs.push(Pair {
        pat: pat.span,
        src: src.span,
        kind: PairKind::Attr,
    });
    true
}

/// Match a function-definition pattern against a source function.
pub fn match_function(
    ctx: &MatchCtx,
    pat: &FunctionDef,
    src: &FunctionDef,
    st: &mut MatchState,
) -> bool {
    // Specifiers: pattern's must all appear in order.
    let mut si = 0usize;
    for ps in &pat.specifiers {
        match src.specifiers[si..].iter().position(|s| s.name == ps.name) {
            Some(k) => si += k + 1,
            None => return false,
        }
    }
    // Attributes: each pattern attribute must match a distinct source
    // attribute, in order; extra source attributes are allowed only when
    // the pattern declares none of its own at that position.
    let mut sa = 0usize;
    for pattr in &pat.attrs {
        let mut matched = false;
        while sa < src.attrs.len() {
            let mut attempt = st.clone();
            if match_attribute(ctx, pattr, &src.attrs[sa], &mut attempt) {
                *st = attempt;
                sa += 1;
                matched = true;
                break;
            }
            sa += 1;
        }
        if !matched {
            return false;
        }
    }
    if !match_type(ctx, &pat.ret, &src.ret, st) {
        return false;
    }
    if !match_ident(ctx, &pat.name, &src.name, st) {
        return false;
    }
    if !match_params(ctx, &pat.params, pat.varargs, &src.params, src.varargs, st) {
        return false;
    }
    if !match_block(ctx, &pat.body, &src.body, st) {
        return false;
    }
    st.pairs.push(Pair {
        pat: pat.span,
        src: src.span,
        kind: PairKind::Item,
    });
    true
}

/// Match an item pattern against a source item.
pub fn match_item(ctx: &MatchCtx, pat: &Item, src: &Item, st: &mut MatchState) -> bool {
    let ok = match (pat, src) {
        (Item::Function(pf), Item::Function(sf)) => match_function(ctx, pf, sf, st),
        (Item::Decl(pd), Item::Decl(sd)) => match_decl(ctx, pd, sd, st),
        (Item::Directive(pd), Item::Directive(sd)) => return match_directive(ctx, pd, sd, st),
        _ => false,
    };
    if ok {
        st.pairs.push(Pair {
            pat: pat.span(),
            src: src.span(),
            kind: PairKind::Item,
        });
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocci_cast::parser::{parse_expression, parse_statements, NoMeta, ParseOptions};
    use cocci_smpl::{Constraint, MetaDecl, MetaDeclKind};

    fn decls(list: &[(&str, MetaDeclKind)]) -> Vec<MetaDecl> {
        list.iter()
            .map(|(n, k)| MetaDecl {
                name: n.to_string(),
                kind: k.clone(),
                constraint: None,
                inherited_from: None,
            })
            .collect()
    }

    struct DeclsLookup<'a>(&'a [MetaDecl]);
    impl cocci_cast::MetaLookup for DeclsLookup<'_> {
        fn kind(&self, name: &str) -> Option<cocci_cast::MetaKind> {
            self.0
                .iter()
                .find(|d| d.name == name)
                .map(|d| d.kind.parse_kind())
        }
    }

    fn pat_expr(src: &str, ds: &[MetaDecl]) -> Expr {
        parse_expression(src, ParseOptions::pattern(), &DeclsLookup(ds)).unwrap()
    }

    fn src_expr(src: &str) -> Expr {
        parse_expression(src, ParseOptions::cpp(), &NoMeta).unwrap()
    }

    fn try_match(pat: &str, src: &str, ds: Vec<MetaDecl>) -> Option<MatchState> {
        let p = pat_expr(pat, &ds);
        let s = src_expr(src);
        let regexes = HashMap::new();
        let ctx = MatchCtx {
            file: "t.c",
            src,
            decls: &ds,
            regexes: &regexes,
        };
        let mut st = MatchState::default();
        if match_expr(&ctx, &p, &s, &mut st) {
            Some(st)
        } else {
            None
        }
    }

    #[test]
    fn expr_metavar_binds_whole_subterm() {
        let ds = decls(&[("x", MetaDeclKind::Expression)]);
        let st = try_match("f(x)", "f(a[i] + 1)", ds).unwrap();
        assert_eq!(st.env.get("x").unwrap().render("f(a[i] + 1)"), "a[i] + 1");
    }

    #[test]
    fn repeated_metavar_must_agree() {
        let ds = decls(&[("x", MetaDeclKind::Expression)]);
        assert!(try_match("f(x, x)", "f(a+1, a+1)", ds.clone()).is_some());
        assert!(try_match("f(x, x)", "f(a+1, a+2)", ds).is_none());
    }

    #[test]
    fn ident_metavar_only_matches_identifiers() {
        let ds = decls(&[("f", MetaDeclKind::Identifier)]);
        assert!(try_match("f(1)", "foo(1)", ds.clone()).is_some());
        assert!(try_match("f(1)", "(p->fn)(1)", ds).is_none());
    }

    #[test]
    fn symbol_matches_literally() {
        let ds = decls(&[("a", MetaDeclKind::Symbol)]);
        assert!(try_match("a[0]", "a[0]", ds.clone()).is_some());
        assert!(try_match("a[0]", "b[0]", ds).is_none());
    }

    #[test]
    fn const_fold_isomorphism() {
        let ds = decls(&[
            ("i", MetaDeclKind::Identifier),
            ("l", MetaDeclKind::Identifier),
        ]);
        let mut with_k = decls(&[
            ("i", MetaDeclKind::Identifier),
            ("l", MetaDeclKind::Identifier),
        ]);
        with_k.push(MetaDecl {
            name: "k".into(),
            kind: MetaDeclKind::Constant,
            constraint: Some(Constraint::Set(vec!["4".into()])),
            inherited_from: None,
        });
        // Pre-bind k=4 (orchestrator seeds set-constrained constants).
        let p = pat_expr("i+k-1 < l", &with_k);
        let s = src_expr("i+3 < n");
        let regexes = HashMap::new();
        let ctx = MatchCtx {
            file: "t.c",
            src: "i+3 < n",
            decls: &with_k,
            regexes: &regexes,
        };
        let mut st = MatchState::default();
        st.env.bind("k", Value::Int(4));
        assert!(match_expr(&ctx, &p, &s, &mut st));
        assert_eq!(st.env.get("l").unwrap().render("i+3 < n"), "n");
        let _ = ds;
    }

    #[test]
    fn expr_list_metavar_captures_args() {
        let ds = decls(&[
            ("fn", MetaDeclKind::Identifier),
            ("el", MetaDeclKind::ExpressionList),
        ]);
        let src = "curand_init(seed, tid, 0, &state)";
        let st = try_match("fn(el)", src, ds).unwrap();
        assert_eq!(
            st.env.get("el").unwrap().render(src),
            "seed, tid, 0, &state"
        );
    }

    #[test]
    fn dots_in_args() {
        let ds = decls(&[]);
        assert!(try_match("f(..., 7)", "f(1, 2, 7)", ds.clone()).is_some());
        assert!(try_match("f(..., 7)", "f(7)", ds.clone()).is_some());
        assert!(try_match("f(..., 7)", "f(7, 8)", ds).is_none());
    }

    #[test]
    fn kernel_call_pattern() {
        let ds = decls(&[
            ("k", MetaDeclKind::Identifier),
            ("b", MetaDeclKind::Expression),
            ("t", MetaDeclKind::Expression),
            ("x", MetaDeclKind::Expression),
            ("y", MetaDeclKind::Expression),
            ("el", MetaDeclKind::ExpressionList),
        ]);
        let src = "saxpy<<<grid, block, 0, stream>>>(n, a, xs, ys)";
        let st = try_match("k<<<b,t,x,y>>>(el)", src, ds).unwrap();
        assert_eq!(st.env.get("k").unwrap().render(src), "saxpy");
        assert_eq!(st.env.get("el").unwrap().render(src), "n, a, xs, ys");
    }

    #[test]
    fn multi_index_pattern() {
        let ds = decls(&[
            ("a", MetaDeclKind::Symbol),
            ("x", MetaDeclKind::Expression),
            ("y", MetaDeclKind::Expression),
            ("z", MetaDeclKind::Expression),
        ]);
        let src = "a[i][j+1][k*2]";
        let st = try_match("a[x][y][z]", src, ds).unwrap();
        assert_eq!(st.env.get("y").unwrap().render(src), "j+1");
    }

    #[test]
    fn position_annotation_binds_offset() {
        let ds = decls(&[
            ("fn", MetaDeclKind::Identifier),
            ("el", MetaDeclKind::ExpressionList),
            ("p", MetaDeclKind::Position),
        ]);
        let src = "  foo(1)";
        let p = pat_expr("fn@p(el)", &ds);
        let s = src_expr(src);
        let regexes = HashMap::new();
        let ctx = MatchCtx {
            file: "t.c",
            src,
            decls: &ds,
            regexes: &regexes,
        };
        let mut st = MatchState::default();
        assert!(match_expr(&ctx, &p, &s, &mut st));
        match st.env.get("p").unwrap() {
            Value::Pos { file, span, .. } => {
                assert_eq!(file.as_ref(), "t.c");
                // `fn@p(el)` annotates the callee identifier, so the
                // span covers `foo`.
                assert_eq!((span.start, span.end), (2, 5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inherited_position_constrains() {
        let ds = decls(&[
            ("fn", MetaDeclKind::Identifier),
            ("el", MetaDeclKind::ExpressionList),
            ("p", MetaDeclKind::Position),
        ]);
        let src = "foo(1)";
        let p = pat_expr("fn@p(el)", &ds);
        let s = src_expr(src);
        let regexes = HashMap::new();
        let ctx = MatchCtx {
            file: "t.c",
            src,
            decls: &ds,
            regexes: &regexes,
        };
        let mut st = MatchState::default();
        st.env.bind(
            "p",
            Value::Pos {
                file: "t.c".into(),
                span: Span::new(99, 105),
                resolved: None,
            },
        );
        assert!(!match_expr(&ctx, &p, &s, &mut st));
        // The *right* inherited position does match.
        let mut st = MatchState::default();
        st.env.bind(
            "p",
            Value::Pos {
                file: "t.c".into(),
                span: Span::new(0, 3),
                resolved: None,
            },
        );
        assert!(match_expr(&ctx, &p, &s, &mut st));
        // Same span in a *different file* refuses: positions carry file
        // identity, so offset collisions across a corpus cannot alias.
        let mut st = MatchState::default();
        st.env.bind(
            "p",
            Value::Pos {
                file: "other.c".into(),
                span: Span::new(0, 3),
                resolved: None,
            },
        );
        assert!(!match_expr(&ctx, &p, &s, &mut st));
    }

    #[test]
    fn stmt_seq_with_dots() {
        let ds = decls(&[("x", MetaDeclKind::Expression)]);
        let pats =
            parse_statements("a(); ... b(x);", ParseOptions::pattern(), &DeclsLookup(&ds)).unwrap();
        let src_text = "{ a(); mid1(); mid2(); b(42); after(); }";
        let srcs = parse_statements(src_text, ParseOptions::c(), &NoMeta).unwrap();
        let Stmt::Block(b) = &srcs[0] else { panic!() };
        let regexes = HashMap::new();
        let ctx = MatchCtx {
            file: "t.c",
            src: src_text,
            decls: &ds,
            regexes: &regexes,
        };
        let mut st = MatchState::default();
        assert!(match_stmt_seq(
            &ctx, &pats, &b.stmts, false, b.span, &mut st
        ));
        assert_eq!(st.env.get("x").unwrap().render(src_text), "42");
    }

    #[test]
    fn stmt_metavar_rebinding_requires_equality() {
        let ds = decls(&[("A", MetaDeclKind::Statement)]);
        let pats = parse_statements("A A", ParseOptions::pattern(), &DeclsLookup(&ds)).unwrap();
        let same = "{ x = f(1); x = f(1); }";
        let srcs = parse_statements(same, ParseOptions::c(), &NoMeta).unwrap();
        let Stmt::Block(b) = &srcs[0] else { panic!() };
        let regexes = HashMap::new();
        let ctx = MatchCtx {
            file: "t.c",
            src: same,
            decls: &ds,
            regexes: &regexes,
        };
        let mut st = MatchState::default();
        assert!(match_stmt_seq(&ctx, &pats, &b.stmts, true, b.span, &mut st));

        let diff = "{ x = f(1); x = f(2); }";
        let srcs2 = parse_statements(diff, ParseOptions::c(), &NoMeta).unwrap();
        let Stmt::Block(b2) = &srcs2[0] else { panic!() };
        let ctx2 = MatchCtx {
            file: "t.c",
            src: diff,
            decls: &ds,
            regexes: &regexes,
        };
        let mut st2 = MatchState::default();
        assert!(!match_stmt_seq(
            &ctx2, &pats, &b2.stmts, true, b2.span, &mut st2
        ));
    }

    #[test]
    fn conjunction_containment() {
        let ds = decls(&[
            ("A", MetaDeclKind::Statement),
            ("i", MetaDeclKind::Identifier),
        ]);
        let pats = parse_statements(
            r"\( A \& i+1 \)",
            ParseOptions::pattern(),
            &DeclsLookup(&ds),
        )
        .unwrap();
        let src_text = "y[i+1] = a * x[i+1];";
        let srcs = parse_statements(src_text, ParseOptions::c(), &NoMeta).unwrap();
        let regexes = HashMap::new();
        let ctx = MatchCtx {
            file: "t.c",
            src: src_text,
            decls: &ds,
            regexes: &regexes,
        };
        let mut st = MatchState::default();
        assert!(match_stmt(&ctx, &pats[0], &srcs[0], &mut st));
        // Both occurrences of i+1 recorded.
        let Stmt::PatGroup { branches, .. } = &pats[0] else {
            panic!()
        };
        let Stmt::Expr { expr, .. } = &branches[1][0] else {
            panic!()
        };
        assert_eq!(st.srcs_for(expr.span()).len(), 2);
    }

    #[test]
    fn pragma_dots_and_pragmainfo() {
        let ds = decls(&[("pi", MetaDeclKind::PragmaInfo)]);
        let regexes = HashMap::new();
        let mk = |payload: &str| Directive {
            kind: DirectiveKind::Pragma,
            raw: format!("#pragma {payload}"),
            payload: payload.to_string(),
            span: Span::new(0, 1),
        };
        let ctx = MatchCtx {
            file: "t.c",
            src: "",
            decls: &ds,
            regexes: &regexes,
        };
        // dots form
        let pat = mk("omp ...");
        let mut st = MatchState::default();
        assert!(match_directive(
            &ctx,
            &pat,
            &mk("omp parallel for"),
            &mut st
        ));
        assert!(!match_directive(&ctx, &pat, &mk("acc kernels"), &mut st));
        // pragmainfo capture
        let pat2 = mk("acc pi");
        let mut st2 = MatchState::default();
        assert!(match_directive(
            &ctx,
            &pat2,
            &mk("acc kernels copy(a)"),
            &mut st2
        ));
        assert_eq!(st2.env.get("pi").unwrap().render(""), "kernels copy(a)");
    }

    #[test]
    fn regex_constraint_on_identifier() {
        let mut ds = decls(&[]);
        ds.push(MetaDecl {
            name: "f".into(),
            kind: MetaDeclKind::Identifier,
            constraint: Some(Constraint::Regex("kernel".into())),
            inherited_from: None,
        });
        let mut regexes = HashMap::new();
        regexes.insert("f".to_string(), Regex::new("kernel").unwrap());
        let src = "my_kernel_fn(1)";
        let p = pat_expr("f(1)", &ds);
        let s = src_expr(src);
        let ctx = MatchCtx {
            file: "t.c",
            src,
            decls: &ds,
            regexes: &regexes,
        };
        let mut st = MatchState::default();
        assert!(match_expr(&ctx, &p, &s, &mut st));

        let src2 = "other_fn(1)";
        let s2 = src_expr(src2);
        let ctx2 = MatchCtx {
            file: "t.c",
            src: src2,
            decls: &ds,
            regexes: &regexes,
        };
        let mut st2 = MatchState::default();
        assert!(!match_expr(&ctx2, &p, &s2, &mut st2));
    }

    #[test]
    fn disjunction_tries_branches() {
        let ds = decls(&[
            ("elem", MetaDeclKind::Identifier),
            ("k", MetaDeclKind::Identifier),
        ]);
        let st = try_match(r"\( elem == k \| k == elem \)", "key == x", ds.clone());
        assert!(st.is_some());
        let st2 = try_match(r"\( elem == k \| k == elem \)", "a != b", ds);
        assert!(st2.is_none());
    }
}
